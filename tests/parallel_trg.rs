//! Acceptance tests for parallel TRG construction: with the `parallel`
//! feature, `build_trg` must produce byte-identical state tables to the
//! serial construction on the paper's nets, for any thread count.

#![cfg(feature = "parallel")]

use timed_petri::prelude::*;

fn assert_identical(net: &TimedPetriNet) {
    let domain = NumericDomain::new();
    let serial = build_trg(net, &domain, &TrgOptions::default()).unwrap();
    for threads in [0, 2, 4] {
        let parallel = build_trg(
            net,
            &domain,
            &TrgOptions {
                threads,
                ..TrgOptions::default()
            },
        )
        .unwrap();
        assert_eq!(
            parallel.describe_states(net),
            serial.describe_states(net),
            "state tables diverge at threads={threads}"
        );
        assert_eq!(
            parallel.to_dot(net),
            serial.to_dot(net),
            "edges diverge at threads={threads}"
        );
    }
}

#[test]
fn figure1_net_identical_and_18_states() {
    let proto = timed_petri::protocols::simple::paper();
    let trg = build_trg(
        &proto.net,
        &NumericDomain::new(),
        &TrgOptions {
            threads: 0,
            ..TrgOptions::default()
        },
    )
    .unwrap();
    assert_eq!(trg.num_states(), 18, "the paper's Figure 4");
    assert_identical(&proto.net);
}

#[test]
fn abp_net_identical() {
    let proto = timed_petri::protocols::abp::abp(&timed_petri::protocols::simple::Params::paper());
    assert_identical(&proto.net);
}

#[test]
fn parallel_pipeline_reproduces_paper_throughput() {
    // End-to-end over the parallel-built graph: same throughput as the
    // paper's §4 derivation.
    let proto = timed_petri::protocols::simple::paper();
    let domain = NumericDomain::new();
    let trg = build_trg(
        &proto.net,
        &domain,
        &TrgOptions {
            threads: 0,
            ..TrgOptions::default()
        },
    )
    .unwrap();
    let dg = DecisionGraph::from_trg(&trg, &domain).unwrap();
    let rates = solve_rates(&dg, 0).unwrap();
    let perf = Performance::new(&dg, rates, &domain).unwrap();
    let t7 = proto.t[6];
    let throughput = perf.throughput(&dg, t7);
    assert!((throughput.to_f64() * 1000.0 - 2.8518).abs() < 1e-3);
}
