//! Loopback integration tests for the `tpn-service` HTTP daemon.
//!
//! A real server is bound to an ephemeral port and exercised with raw
//! `TcpStream` HTTP/1.1 requests. The load-bearing assertions:
//!
//! * two *concurrent* `POST /analyze` of the paper's Figure-1 net
//!   return byte-identical JSON carrying the paper's t7 throughput
//!   (≈ 0.002852 firings/ms), and `/stats` shows **exactly one**
//!   pipeline computation — the second request either coalesced onto
//!   the first or hit the cache;
//! * a cache hit is byte-identical to the miss that populated it, and
//!   both match the library/CLI JSON rendering (`tpn batch` shares the
//!   same serializer).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::Command;

use timed_petri::service::RequestKind;

mod common;
use common::{fig1_text, http, json_counter, start_server};

#[test]
fn concurrent_analyzes_coalesce_to_one_computation() {
    let (handle, addr) = start_server();
    let net = fig1_text();

    // Two concurrent POST /analyze of the same net.
    let bodies: Vec<(u16, String)> = std::thread::scope(|scope| {
        let tasks: Vec<_> = (0..2)
            .map(|_| {
                let net = net.clone();
                scope.spawn(move || http(addr, "POST", "/analyze", &net))
            })
            .collect();
        tasks.into_iter().map(|t| t.join().unwrap()).collect()
    });
    assert_eq!(bodies[0].0, 200);
    assert_eq!(bodies[1].0, 200);
    assert_eq!(bodies[0].1, bodies[1].1, "concurrent responses identical");
    // the paper's §4 throughput: t7 ≈ 0.0028518 firings per millisecond
    assert!(
        bodies[0].1.contains(r#""transition":"t7","exact":"#)
            && bodies[0].1.contains(r#""approx":0.002852"#),
        "paper throughput in response: {}",
        bodies[0].1
    );

    // Exactly one pipeline computation across both requests: the second
    // either coalesced onto the in-flight first or hit the cache.
    let (status, stats) = http(addr, "GET", "/stats", "");
    assert_eq!(status, 200);
    assert_eq!(json_counter(&stats, "computations"), 1, "{stats}");
    assert_eq!(json_counter(&stats, "requests"), 2, "{stats}");

    // Subsequent identical requests are cache hits.
    let hits_before = json_counter(&stats, "hits");
    let (status, third) = http(addr, "POST", "/analyze", &net);
    assert_eq!(status, 200);
    assert_eq!(third, bodies[0].1, "cache hit is byte-identical");
    let (_, stats) = http(addr, "GET", "/stats", "");
    assert_eq!(
        json_counter(&stats, "computations"),
        1,
        "still one: {stats}"
    );
    assert_eq!(json_counter(&stats, "hits"), hits_before + 1, "{stats}");

    handle.shutdown();
}

#[test]
fn server_json_matches_the_cli_pipeline_on_hit_and_miss() {
    let (handle, addr) = start_server();
    let net = fig1_text();

    // Miss (first request) and hit (second request) must be
    // byte-identical…
    let (_, miss) = http(addr, "POST", "/analyze", &net);
    let (_, hit) = http(addr, "POST", "/analyze", &net);
    assert_eq!(miss, hit);

    // …and equal to the shared JSON layer's rendering, which is what
    // the CLI uses.
    let parsed = timed_petri::net::parse_tpn(&net).unwrap();
    let expected = timed_petri::service::run(&parsed, RequestKind::Analyze).unwrap();
    assert_eq!(miss, expected);

    // `tpn batch` on the fixtures directory embeds the very same bytes.
    let fixtures = format!("{}/tests/fixtures", env!("CARGO_MANIFEST_DIR"));
    let out = Command::new(env!("CARGO_BIN_EXE_tpn"))
        .args(["batch", &fixtures])
        .output()
        .expect("tpn batch runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    let line = stdout
        .lines()
        .find(|l| l.contains("\"file\":\"fig1.tpn\""))
        .expect("fig1 line in batch output");
    assert!(
        line.contains(&miss),
        "batch line embeds the server body verbatim:\n{line}\nvs\n{miss}"
    );

    handle.shutdown();
}

#[test]
fn all_analysis_endpoints_serve_fig1() {
    let (handle, addr) = start_server();
    let net = fig1_text();
    for (target, needle) in [
        ("/graph", r#""states":18"#),
        ("/correctness", r#""deadlock_free":"#),
        ("/invariants", r#""p_semiflows":"#),
        ("/simulate?events=20000&seed=7", r#""seed":7"#),
    ] {
        let (status, body) = http(addr, "POST", target, &net);
        assert_eq!(status, 200, "{target}: {body}");
        assert!(body.contains(needle), "{target}: {body}");
    }
    // simulation responses are cached per (events, seed)
    let (_, a) = http(addr, "POST", "/simulate?events=20000&seed=7", &net);
    let (_, b) = http(addr, "POST", "/simulate?events=20000&seed=8", &net);
    assert_ne!(a, b, "different seed is a different cache key");
    handle.shutdown();
}

#[test]
fn expect_100_continue_is_answered_before_the_body() {
    // curl sends `Expect: 100-continue` for bodies over ~1 KiB and
    // waits for the interim response before transmitting the body.
    let (handle, addr) = start_server();
    let net = fig1_text();
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(
            format!(
                "POST /analyze HTTP/1.1\r\nHost: x\r\nExpect: 100-continue\r\nContent-Length: {}\r\n\r\n",
                net.len()
            )
            .as_bytes(),
        )
        .unwrap();
    // the interim response must arrive while the body is still unsent
    let mut interim = [0u8; 25];
    stream.read_exact(&mut interim).unwrap();
    assert_eq!(&interim, b"HTTP/1.1 100 Continue\r\n\r\n");
    stream.write_all(net.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 200"), "{response}");
    assert!(response.contains(r#""approx":0.002852"#), "{response}");
    handle.shutdown();
}

#[test]
fn protocol_errors_map_to_statuses() {
    let (handle, addr) = start_server();
    // liveness + stats endpoints
    let (status, body) = http(addr, "GET", "/healthz", "");
    assert_eq!((status, body.as_str()), (200, r#"{"status":"ok"}"#));
    // unparseable body
    let (status, body) = http(addr, "POST", "/analyze", "this is not a net");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("parse error"), "{body}");
    // parses but has no steady-state cycle
    let dead = "net d\nplace a init 1\nplace b\ntrans t in a out b firing 1";
    let (status, body) = http(addr, "POST", "/analyze", dead);
    assert_eq!(status, 422, "{body}");
    // unknown route and bad method
    let (status, _) = http(addr, "POST", "/nope", "");
    assert_eq!(status, 404);
    let (status, _) = http(addr, "GET", "/analyze", "");
    assert_eq!(status, 405);
    // bad query parameter
    let (status, body) = http(addr, "POST", "/simulate?events=lots", "net x");
    assert_eq!(status, 400, "{body}");
    // an event budget over the configured cap is rejected before any
    // work happens
    let (status, body) = http(
        addr,
        "POST",
        "/simulate?events=18446744073709551615",
        "net x",
    );
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("exceeds the limit"), "{body}");
    // chunked transfer encoding is explicitly unimplemented, not
    // silently served against an empty body
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(b"POST /analyze HTTP/1.1\r\nHost: x\r\nTransfer-Encoding: chunked\r\n\r\n")
        .unwrap();
    let mut resp = String::new();
    stream.read_to_string(&mut resp).unwrap();
    assert!(resp.starts_with("HTTP/1.1 501"), "{resp}");
    assert!(resp.contains("not supported"), "{resp}");
    handle.shutdown();
}
