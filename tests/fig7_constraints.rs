//! E5 — Figure 7: which timing constraint resolves each multi-candidate
//! minimum. The paper lists exactly five states with more than one
//! non-zero RET/RFT (its states 4, 5, 10, 12, 13); in each, RET(t3)
//! competes with one firing time and loses:
//!
//! | paper state | competitors            | derived from |
//! |---|---|---|
//! | 4  | E(t3) vs F(t4)                  | (1)          |
//! | 5  | E(t3) vs F(t5)                  | (1), (3)     |
//! | 10 | E(t3)−F(t4) vs F(t6)            | (1)          |
//! | 12 | E(t3)−F(t4)−F(t6) vs F(t9)      | (1), (4)     |
//! | 13 | E(t3)−F(t4)−F(t6) vs F(t8)      | (1)          |

use timed_petri::prelude::*;
use timed_petri::protocols::simple;
use tpn_net::symbols;

#[test]
fn five_minimum_resolutions_all_against_the_timeout() {
    let (proto, cs) = simple::symbolic();
    let domain = SymbolicDomain::new(&proto.net, cs);
    let trg = build_trg(&proto.net, &domain, &TrgOptions::default()).unwrap();
    let res = trg.min_resolutions();
    assert_eq!(res.len(), 5, "paper Figure 7 lists five constrained states");
    let t3 = proto.t[2];
    for r in res {
        assert_eq!(r.candidates.len(), 2, "each is a two-way comparison");
        // one competitor is always the timeout's RET
        let timeout = r
            .candidates
            .iter()
            .position(|(t, is_rft, _)| *t == t3 && !is_rft)
            .expect("RET(t3) competes in every constrained state");
        // ... and it never wins (constraint (1) guarantees the firing
        // time elapses first)
        assert_ne!(r.chosen, timeout, "the timeout must not expire early");
    }
}

#[test]
fn competitor_firing_times_match_the_table() {
    let (proto, cs) = simple::symbolic();
    let domain = SymbolicDomain::new(&proto.net, cs);
    let trg = build_trg(&proto.net, &domain, &TrgOptions::default()).unwrap();
    let f = |n: &str| LinExpr::symbol(symbols::firing(n));
    // The five winning competitors are the RFTs of t4, t5, t6, t8, t9.
    let mut winners: Vec<LinExpr> = trg
        .min_resolutions()
        .iter()
        .map(|r| r.candidates[r.chosen].2.clone())
        .collect();
    winners.sort();
    let mut expect = vec![f("t4"), f("t5"), f("t6"), f("t8"), f("t9")];
    expect.sort();
    assert_eq!(winners, expect);
}

#[test]
fn timeout_remainders_match_the_table() {
    // The losing RET(t3) expressions are E3, E3, E3−F4, E3−F4−F6 (×2).
    let (proto, cs) = simple::symbolic();
    let domain = SymbolicDomain::new(&proto.net, cs);
    let trg = build_trg(&proto.net, &domain, &TrgOptions::default()).unwrap();
    let t3 = proto.t[2];
    let e3 = LinExpr::symbol(symbols::enabling("t3"));
    let f = |n: &str| LinExpr::symbol(symbols::firing(n));
    let mut losers: Vec<LinExpr> = trg
        .min_resolutions()
        .iter()
        .map(|r| {
            r.candidates
                .iter()
                .find(|(t, is_rft, _)| *t == t3 && !is_rft)
                .unwrap()
                .2
                .clone()
        })
        .collect();
    losers.sort();
    let mut expect = vec![
        e3.clone(),
        e3.clone(),
        e3.clone() - f("t4"),
        e3.clone() - f("t4") - f("t6"),
        e3.clone() - f("t4") - f("t6"),
    ];
    expect.sort();
    assert_eq!(losers, expect);
}
