//! E9 — Figure 2: the semantic point of §1. In a *Timed* Petri Net a
//! transition with enabling time `E` must stay continuously enabled for
//! `E` before it fires; a competitor that becomes firable earlier can
//! absorb the shared token and disable it. The paper's Figure-2a
//! scenario: `t1` (E=3, F=7) is racing a token that arrives at time 2
//! and instantly enables `t2` — `t2` must win, deterministically.

use timed_petri::prelude::*;
use timed_petri::protocols::fig2::fig2;
use tpn_reach::EdgeKind;

#[test]
fn t2_preempts_t1_deterministically() {
    let f = fig2();
    let domain = NumericDomain::new();
    let trg = build_trg(&f.net, &domain, &TrgOptions::default()).unwrap();
    // No decisions anywhere: the race is resolved by time, not chance.
    assert!(trg.decision_states().is_empty());
    // t1 never begins firing; t2 does exactly once.
    let mut fired_t1 = 0;
    let mut fired_t2 = 0;
    for e in trg.all_edges() {
        fired_t1 += e.fired.iter().filter(|&&t| t == f.t1).count();
        fired_t2 += e.fired.iter().filter(|&&t| t == f.t2).count();
    }
    assert_eq!(
        fired_t1, 0,
        "t1 must be disabled before its enabling time elapses"
    );
    assert_eq!(fired_t2, 1);
}

#[test]
fn timeline_matches_the_narrative() {
    // t = 0: feeder starts (F=2); t1's enabling clock runs (E=3).
    // t = 2: token arrives; t2 firable instantly; t1 disabled at 2 < 3.
    // t = 3: t2 completes (F=1).
    let f = fig2();
    let domain = NumericDomain::new();
    let trg = build_trg(&f.net, &domain, &TrgOptions::default()).unwrap();
    let mut s = trg.initial();
    let mut elapsed = Rational::ZERO;
    let mut t2_fired_at = None;
    loop {
        let es = trg.edges_from(s);
        if es.is_empty() {
            break;
        }
        let e = &es[0];
        if e.kind == EdgeKind::Fire && e.fired.contains(&f.t2) {
            t2_fired_at = Some(elapsed);
        }
        elapsed += e.delay;
        s = e.to;
    }
    assert_eq!(t2_fired_at, Some(Rational::from_int(2)));
    assert_eq!(elapsed, Rational::from_int(3), "t2 completes at t=3");
}

#[test]
fn simulation_agrees() {
    let f = fig2();
    let stats = tpn_sim::simulate(&f.net, &SimOptions::default()).unwrap();
    assert!(stats.deadlocked());
    let t1 = f.t1;
    let t2 = f.t2;
    assert_eq!(stats.firings(t1), 0);
    assert_eq!(stats.firings(t2), 1);
    assert_eq!(stats.measured_time(), &Rational::from_int(3));
}

#[test]
fn without_the_race_t1_fires_after_its_enabling_time() {
    // Remove the feeder token: t1 is unopposed and fires at t=3,
    // completing at t=10.
    let mut b = NetBuilder::new("fig2-solo");
    let shared = b.place("P1", 1);
    let out1 = b.place("out", 0);
    b.transition("t1")
        .input(shared)
        .output(out1)
        .enabling_const(3)
        .firing_const(7)
        .add();
    let net = b.build().unwrap();
    let stats = tpn_sim::simulate(&net, &SimOptions::default()).unwrap();
    assert_eq!(stats.measured_time(), &Rational::from_int(10));
    let t1 = net.transition_by_name("t1").unwrap();
    assert_eq!(stats.completions(t1), 1);
}
