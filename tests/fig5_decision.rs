//! E3 — Figure 5: the numeric decision graph. Two decision nodes (the
//! paper's states 3 and 11) and four collapsed edges:
//!
//! * edge 1 (packet lost, timeout):  p = 0.05, d = 1002 ms
//! * edge 3 (packet delivered):      p = 0.95, d = 120.2 ms
//! * edge 2 (ACK delivered):         p = 0.95, d = 122.2 ms
//! * edge 4 (ACK lost, timeout):     p = 0.05, d = 881.8 ms

use timed_petri::prelude::*;
use timed_petri::protocols::simple;

fn r(s: &str) -> Rational {
    s.parse().unwrap()
}

struct Fig5 {
    proto: simple::SimpleProtocol,
    dg: DecisionGraph<NumericDomain>,
    // edge indices in paper order [e1, e2, e3, e4]
    e: [usize; 4],
}

fn build() -> Fig5 {
    let proto = simple::paper();
    let domain = NumericDomain::new();
    let trg = build_trg(&proto.net, &domain, &TrgOptions::default()).unwrap();
    let dg = DecisionGraph::from_trg(&trg, &domain).unwrap();
    // Identify nodes: the "packet" decision node fires t4/t5, the "ACK"
    // node fires t8/t9.
    let [_, _, _, t4, t5, _, _, t8, t9] = proto.t;
    let node3 = dg.nodes()[dg.edges()[dg
        .edge_firing_first(dg.nodes()[0], t4)
        .or_else(|| dg.edge_firing_first(dg.nodes()[1], t4))
        .unwrap()]
    .from];
    let node11 = dg.nodes()[dg.edges()[dg
        .edge_firing_first(dg.nodes()[0], t8)
        .or_else(|| dg.edge_firing_first(dg.nodes()[1], t8))
        .unwrap()]
    .from];
    let e1 = dg.edge_firing_first(node3, t5).expect("loss edge");
    let e3 = dg.edge_firing_first(node3, t4).expect("delivery edge");
    let e2 = dg.edge_firing_first(node11, t8).expect("ack edge");
    let e4 = dg.edge_firing_first(node11, t9).expect("ack-loss edge");
    Fig5 {
        proto,
        dg,
        e: [e1, e2, e3, e4],
    }
}

#[test]
fn four_edges_two_nodes() {
    let f = build();
    assert_eq!(f.dg.num_nodes(), 2);
    assert_eq!(f.dg.num_edges(), 4);
}

#[test]
fn probabilities_match_figure_5() {
    let f = build();
    let [e1, e2, e3, e4] = f.e;
    assert_eq!(f.dg.edges()[e1].prob, r("0.05"));
    assert_eq!(f.dg.edges()[e2].prob, r("0.95"));
    assert_eq!(f.dg.edges()[e3].prob, r("0.95"));
    assert_eq!(f.dg.edges()[e4].prob, r("0.05"));
}

#[test]
fn delays_match_figure_5() {
    let f = build();
    let [e1, e2, e3, e4] = f.e;
    // d1 = F5 + (E3−F5) + F3 + F2 = 1000 + 1 + 1
    assert_eq!(f.dg.edges()[e1].delay, r("1002"));
    // d2 = F8 + F7 + F1 + F2 = 106.7 + 13.5 + 1 + 1
    assert_eq!(f.dg.edges()[e2].delay, r("122.2"));
    // d3 = F4 + F6 = 106.7 + 13.5
    assert_eq!(f.dg.edges()[e3].delay, r("120.2"));
    // d4 = F9 + (E3−F4−F6−F9) + F3 + F2 = 1000 − 120.2 + 2
    assert_eq!(f.dg.edges()[e4].delay, r("881.8"));
}

#[test]
fn edge_topology_matches_figure_5() {
    // e3 goes from node 3 to node 11; e1 loops on node 3; e2 and e4
    // return from node 11 to node 3.
    let f = build();
    let [e1, e2, e3, e4] = f.e;
    let edges = f.dg.edges();
    assert_eq!(
        edges[e1].from, edges[e1].to,
        "loss edge loops at the send decision"
    );
    assert_eq!(edges[e3].from, edges[e1].from);
    assert_eq!(edges[e3].to, edges[e2].from);
    assert_eq!(edges[e2].to, edges[e1].from);
    assert_eq!(edges[e4].from, edges[e2].from);
    assert_eq!(edges[e4].to, edges[e1].from);
}

#[test]
fn collapsed_paths_follow_the_paper() {
    // Edge 2's path is 11-13-15-16-17-18-1-2-3: 9 states; edge 3's path
    // is 3-4-9-10-11: 5 states.
    let f = build();
    let [e1, e2, e3, e4] = f.e;
    assert_eq!(f.dg.edges()[e3].path.len(), 5);
    assert_eq!(f.dg.edges()[e2].path.len(), 9);
    assert_eq!(f.dg.edges()[e1].path.len(), 8); // 3-5-6-7-8-1-2-3
    assert_eq!(f.dg.edges()[e4].path.len(), 8); // 11-12-14-7-8-1-2-3
                                                // edge 2 fires t8 (ack transmit), t7 (ack receipt), t1, t2
    let names: Vec<&str> = f.dg.edges()[e2]
        .fired
        .iter()
        .map(|t| f.proto.net.transition(*t).name())
        .collect();
    assert_eq!(names, vec!["t8", "t7", "t1", "t2"]);
}
