//! E11 — the alternating-bit extension the paper sketches. The analysis
//! machinery applies unchanged: the TRG is roughly two mirrored copies
//! of the Figure-4 graph plus the duplicate-handling paths, and the
//! goodput (first-time deliveries per unit time) matches both the
//! mirrored symmetry and long simulations.

use timed_petri::prelude::*;
use timed_petri::protocols::{abp::abp, simple};

fn perf_of(
    net: &tpn_net::TimedPetriNet,
) -> (
    tpn_reach::TimedReachabilityGraph<NumericDomain>,
    DecisionGraph<NumericDomain>,
    Performance<NumericDomain>,
) {
    let domain = NumericDomain::new();
    let trg = build_trg(net, &domain, &TrgOptions::default()).unwrap();
    let dg = DecisionGraph::from_trg(&trg, &domain).unwrap();
    let rates = solve_rates(&dg, 0).unwrap();
    let perf = Performance::new(&dg, rates, &domain).unwrap();
    (trg, dg, perf)
}

#[test]
fn reachability_graph_is_finite_and_live() {
    let a = abp(&simple::Params::paper());
    let (trg, _, _) = perf_of(&a.net);
    assert!(
        trg.terminal_states().is_empty(),
        "ABP must be deadlock-free"
    );
    // two mirrored protocol halves plus duplicate paths
    assert!(
        trg.num_states() > 18,
        "strictly richer than the simple protocol"
    );
    assert!(
        trg.num_states() < 200,
        "but still small: {}",
        trg.num_states()
    );
    // every reachable marking is 1-safe
    for s in trg.state_ids() {
        assert!(trg.state(s).marking().is_safe());
    }
}

#[test]
fn bits_alternate_symmetrically() {
    let a = abp(&simple::Params::paper());
    let (_, dg, perf) = perf_of(&a.net);
    let g0 = perf.throughput(&dg, a.deliveries[0]);
    let g1 = perf.throughput(&dg, a.deliveries[1]);
    assert_eq!(g0, g1, "bit-0 and bit-1 deliveries alternate one-for-one");
    let d0 = perf.throughput(&dg, a.duplicates[0]);
    let d1 = perf.throughput(&dg, a.duplicates[1]);
    assert_eq!(d0, d1);
}

#[test]
fn goodput_matches_simple_protocol_delivery_rate() {
    // The ABP per-message machinery is identical to the simple protocol;
    // the goodput of each bit is half the simple protocol's
    // *acknowledged-message* rate... more precisely, total first-time
    // deliveries (bit 0 + bit 1) should equal the simple protocol's
    // acknowledged throughput: every acknowledged message corresponds to
    // exactly one first-time delivery.
    let a = abp(&simple::Params::paper());
    let (_, dg, perf) = perf_of(&a.net);
    let goodput = perf.throughput(&dg, a.deliveries[0]) + perf.throughput(&dg, a.deliveries[1]);

    let proto = simple::paper();
    let (_, sdg, sperf) = perf_of(&proto.net);
    let simple_acked = sperf.throughput(&sdg, proto.t[6]);
    assert_eq!(goodput, simple_acked);
}

#[test]
fn duplicates_appear_exactly_at_the_ack_loss_rate() {
    // A duplicate delivery happens iff an ACK was lost: duplicate rate /
    // first-time rate = p_ack_loss / (1 − p_ack_loss)… in this protocol a
    // duplicate may itself be lost, so compare against the analytic
    // ratio rather than a closed guess: dup rate = deliveries × ack_loss
    // ÷ (1 − packet_loss_effect)… keep it empirical: analytic ratio from
    // the decision graph must match a long simulation.
    let a = abp(&simple::Params::paper());
    let (_, dg, perf) = perf_of(&a.net);
    let analytic_dup =
        perf.throughput(&dg, a.duplicates[0]) + perf.throughput(&dg, a.duplicates[1]);
    let analytic_good =
        perf.throughput(&dg, a.deliveries[0]) + perf.throughput(&dg, a.deliveries[1]);
    let analytic_ratio = (analytic_dup / analytic_good).to_f64();

    let stats = simulate(
        &a.net,
        &SimOptions {
            seed: 11,
            max_events: 2_000_000,
            warmup: Rational::from_int(10_000),
            ..SimOptions::default()
        },
    )
    .unwrap();
    let dup = (stats.completions(a.duplicates[0]) + stats.completions(a.duplicates[1])) as f64;
    let good = (stats.completions(a.deliveries[0]) + stats.completions(a.deliveries[1])) as f64;
    let empirical_ratio = dup / good;
    assert!(
        (empirical_ratio - analytic_ratio).abs() < 0.01,
        "duplicate ratio: simulated {empirical_ratio:.4} vs analytic {analytic_ratio:.4}"
    );
}

#[test]
fn abp_simulation_converges_to_analytic_goodput() {
    let a = abp(&simple::Params::paper());
    let (_, dg, perf) = perf_of(&a.net);
    let analytic =
        (perf.throughput(&dg, a.deliveries[0]) + perf.throughput(&dg, a.deliveries[1])).to_f64();
    let stats = simulate(
        &a.net,
        &SimOptions {
            seed: 21,
            max_events: 2_000_000,
            warmup: Rational::from_int(10_000),
            ..SimOptions::default()
        },
    )
    .unwrap();
    let empirical = stats.throughput(a.deliveries[0]) + stats.throughput(a.deliveries[1]);
    let rel = (empirical - analytic).abs() / analytic;
    assert!(
        rel < 0.02,
        "simulated {empirical:.6} vs analytic {analytic:.6}"
    );
}
