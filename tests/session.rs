//! Acceptance tests for the Session redesign at the service surface:
//!
//! * `POST /v1` runs many analyses against one shared session and its
//!   sub-bodies are byte-identical to the legacy endpoints (and share
//!   their cache lines);
//! * a `/sweep` or `/optimize` following `/analyze` on the same net
//!   reuses the session's artifacts, observable through the `/stats`
//!   per-stage `artifact_*` counters;
//! * `tpn batch` with several kinds parses each file once and shares
//!   the session across kinds.

use std::process::Command;

use timed_petri::service::{RequestKind, Service, ServiceConfig};

mod common;
use common::{artifact_counter, fig1_text, fixture_dir, http, json_counter, start_server};

/// The spec members themselves — nested under `"spec"` for `/v1`,
/// spliced top-level (next to `"net"`) for the legacy endpoints.
const SWEEP_MEMBERS: &str = r#""targets":["throughput:t7"],"sweep":[{"symbol":"E(t3)","from":"300","to":"2050","steps":8}]"#;
const OPTIMIZE_MEMBERS: &str =
    r#""target":"throughput:t7","box":[{"symbol":"E(t3)","from":"300","to":"2050"}]"#;

#[test]
fn v1_envelope_matches_legacy_endpoints_and_shares_one_session() {
    let (handle, addr) = start_server();
    let net = fig1_text();
    let escaped = timed_petri::service::json::escape(&net);

    let envelope = format!(
        r#"{{"net":{escaped},"requests":[
            {{"kind":"analyze"}},
            {{"kind":"graph"}},
            {{"kind":"correctness"}},
            {{"kind":"simulate","events":20000,"seed":7}},
            {{"kind":"sweep","spec":{{{SWEEP_MEMBERS}}}}},
            {{"kind":"optimize","spec":{{{OPTIMIZE_MEMBERS}}}}}
        ]}}"#
    );
    let (status, body) = http(addr, "POST", "/v1", &envelope);
    assert_eq!(status, 200, "{body}");
    assert!(
        body.starts_with(r#"{"kind":"v1","net":"simple-protocol","digest":""#),
        "{body}"
    );

    // Every sub-request succeeded and its body is embedded verbatim —
    // byte-identical to what the legacy endpoint serves.
    for kind in [
        "analyze",
        "graph",
        "correctness",
        "simulate",
        "sweep",
        "optimize",
    ] {
        assert!(
            body.contains(&format!(r#"{{"kind":"{kind}","status":200,"body":{{"#)),
            "{kind} entry in {body}"
        );
    }
    let (_, legacy_analyze) = http(addr, "POST", "/analyze", &net);
    assert!(
        body.contains(&legacy_analyze.to_string()),
        "the /v1 analyze body embeds the legacy bytes"
    );

    // One session, shared: the numeric TRG was built once for
    // analyze+graph+correctness, the lift once for sweep+optimize
    // (same axis), and the compiled program once (same target shape).
    let (_, stats) = http(addr, "GET", "/stats", "");
    assert_eq!(
        artifact_counter(&stats, "trg", "artifact_builds"),
        1,
        "{stats}"
    );
    assert_eq!(
        artifact_counter(&stats, "lifted", "artifact_builds"),
        1,
        "{stats}"
    );
    assert_eq!(
        artifact_counter(&stats, "compiled", "artifact_builds"),
        1,
        "{stats}"
    );
    assert!(
        artifact_counter(&stats, "trg", "artifact_hits") >= 2,
        "graph+correctness hit the memoized TRG: {stats}"
    );
    // The follow-up legacy /analyze was a body-tier cache hit on the
    // line the /v1 sub-request populated.
    assert!(json_counter(&stats, "hits") >= 1, "{stats}");
    assert_eq!(json_counter(&stats, "v1_envelopes"), 1, "{stats}");
    handle.shutdown();
}

#[test]
fn v1_sub_request_failures_do_not_fail_siblings() {
    let (handle, addr) = start_server();
    // A net that deadlocks: analyze fails (422), invariants still works.
    let envelope = r#"{"net":"net d\nplace a init 1\nplace b\ntrans t in a out b firing 1",
        "requests":[{"kind":"analyze"},{"kind":"invariants"}]}"#;
    let (status, body) = http(addr, "POST", "/v1", envelope);
    assert_eq!(status, 200, "{body}");
    assert!(
        body.contains(r#"{"kind":"analyze","status":422,"body":{"code":"analysis","message":""#),
        "{body}"
    );
    assert!(
        body.contains(r#"{"kind":"invariants","status":200,"body":{"kind":"invariants""#),
        "{body}"
    );
    handle.shutdown();
}

#[test]
fn v1_envelope_errors_are_one_400() {
    let (handle, addr) = start_server();
    for (body, why) in [
        ("not json", "malformed JSON"),
        (r#"{"requests":[{"kind":"analyze"}]}"#, "missing net"),
        (r#"{"net":"net x","requests":[]}"#, "empty requests"),
        (
            r#"{"net":"net x","requests":[{"kind":"frobnicate"}]}"#,
            "unknown kind",
        ),
        (
            r#"{"net":"not a net","requests":[{"kind":"analyze"}]}"#,
            "unparseable net",
        ),
    ] {
        let (status, reply) = http(addr, "POST", "/v1", body);
        assert_eq!(status, 400, "{why}: {reply}");
        assert!(reply.starts_with(r#"{"code":""#), "{why}: {reply}");
        assert!(reply.contains(r#""message":""#), "{why}: {reply}");
    }
    // wrong method
    let (status, _) = http(addr, "GET", "/v1", "");
    assert_eq!(status, 405);
    handle.shutdown();
}

#[test]
fn sweep_after_analyze_reuses_session_artifacts() {
    // In-process: the same two-tier path the HTTP front end uses.
    let svc = Service::new(ServiceConfig::default());
    let net = fig1_text();
    let escaped = timed_petri::service::json::escape(&net);

    let (status, _) = svc.respond(RequestKind::Analyze, &net);
    assert_eq!(status, 200);
    let counters = svc.sessions().counters();
    assert_eq!(
        counters.snapshot(timed_petri::session::Stage::Trg).builds,
        1
    );

    // A sweep of the same net: a *different* cache key (different
    // kind), but the same session — the lift is built once here…
    let sweep_body = format!(r#"{{"net":{escaped},{SWEEP_MEMBERS}}}"#);
    let (status, _) = svc.respond_sweep(&sweep_body);
    assert_eq!(status, 200);
    let lifted = counters.snapshot(timed_petri::session::Stage::Lifted);
    assert_eq!((lifted.builds, lifted.misses), (1, 1));

    // …and the optimize over the same axis and target reuses both the
    // lift and the compiled program: no new builds at all.
    let optimize_body = format!(r#"{{"net":{escaped},{OPTIMIZE_MEMBERS}}}"#);
    let (status, _) = svc.respond_optimize(&optimize_body);
    assert_eq!(status, 200);
    let lifted = counters.snapshot(timed_petri::session::Stage::Lifted);
    assert_eq!(lifted.builds, 1, "optimize reused the sweep's lift");
    let compiled = counters.snapshot(timed_petri::session::Stage::Compiled);
    assert_eq!(
        (compiled.builds, compiled.hits),
        (1, 1),
        "optimize reused the sweep's compiled program"
    );

    // The session tier recorded one miss (analyze) and two hits.
    let sessions = svc.sessions().stats();
    assert_eq!((sessions.misses, sessions.hits), (1, 2), "{sessions:?}");
}

#[test]
fn stats_document_carries_per_stage_artifact_counters() {
    let svc = Service::new(ServiceConfig::default());
    let (_, _) = svc.respond(RequestKind::Graph, &fig1_text());
    let stats = svc.stats_json();
    for stage in [
        "trg",
        "decision_graph",
        "rates",
        "performance",
        "lifted",
        "compiled",
    ] {
        for which in ["artifact_hits", "artifact_misses", "artifact_builds"] {
            let _ = artifact_counter(&stats, stage, which); // panics if absent
        }
    }
    assert_eq!(
        artifact_counter(&stats, "trg", "artifact_builds"),
        1,
        "{stats}"
    );
    assert_eq!(
        artifact_counter(&stats, "rates", "artifact_builds"),
        0,
        "{stats}"
    );
    assert!(stats.contains(r#""sessions":{"entries":1"#), "{stats}");
}

#[test]
fn batch_shares_one_session_across_kinds() {
    // Three kinds over the one-fixture directory: three lines, and the
    // underlying net was parsed + derived once (asserted indirectly:
    // all three lines carry the same digest and the batch succeeds).
    let out = Command::new(env!("CARGO_BIN_EXE_tpn"))
        .args(["batch", &fixture_dir(), "analyze", "graph", "correctness"])
        .output()
        .expect("tpn batch runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 3, "one line per kind:\n{stdout}");
    for (line, kind) in lines.iter().zip(["analyze", "graph", "correctness"]) {
        assert!(line.contains(r#""file":"fig1.tpn""#), "{line}");
        assert!(line.contains(&format!(r#""kind":"{kind}""#)), "{line}");
    }
    // single-kind invocation is unchanged
    let out = Command::new(env!("CARGO_BIN_EXE_tpn"))
        .args(["batch", &fixture_dir(), "correctness"])
        .output()
        .unwrap();
    assert_eq!(
        String::from_utf8(out.stdout).unwrap().lines().count(),
        1,
        "legacy single-kind behaviour preserved"
    );
}
