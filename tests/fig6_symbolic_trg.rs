//! E4 — Figure 6: the *symbolic* timed reachability graph built under
//! the paper's constraints (1)–(4), with `E(t3)` and all firing times as
//! symbols. Same 18-state shape as the numeric graph, with symbolic
//! RET/RFT entries such as `E(t3) − F(t4) − F(t6)`.

use timed_petri::prelude::*;
use timed_petri::protocols::simple;
use tpn_net::symbols;

#[test]
fn symbolic_graph_has_figure_4_shape() {
    let (proto, cs) = simple::symbolic();
    let domain = SymbolicDomain::new(&proto.net, cs);
    let trg = build_trg(&proto.net, &domain, &TrgOptions::default()).unwrap();
    assert_eq!(
        trg.num_states(),
        18,
        "Figure 6 mirrors Figure 4's 18 states"
    );
    assert_eq!(trg.decision_states().len(), 2);
    assert_eq!(trg.num_edges(), 20);
    assert!(trg.terminal_states().is_empty());
}

#[test]
fn symbolic_timeout_residues() {
    // Figure 6b: RET(t3) takes the symbolic values E(t3),
    // E(t3) − F(t4), E(t3) − F(t5), E(t3) − F(t4) − F(t6),
    // E(t3) − F(t4) − F(t6) − F(t8), E(t3) − F(t4) − F(t6) − F(t9).
    let (proto, cs) = simple::symbolic();
    let domain = SymbolicDomain::new(&proto.net, cs);
    let trg = build_trg(&proto.net, &domain, &TrgOptions::default()).unwrap();
    let t3 = proto.t[2];
    let e3 = LinExpr::symbol(symbols::enabling("t3"));
    let f = |n: &str| LinExpr::symbol(symbols::firing(n));
    let mut residues: Vec<LinExpr> = trg
        .state_ids()
        .filter_map(|s| trg.state(s).ret(t3).cloned())
        .collect();
    residues.sort();
    residues.dedup();
    for want in [
        e3.clone(),
        e3.clone() - f("t4"),
        e3.clone() - f("t5"),
        e3.clone() - f("t4") - f("t6"),
        e3.clone() - f("t4") - f("t6") - f("t8"),
        e3.clone() - f("t4") - f("t6") - f("t9"),
    ] {
        assert!(residues.contains(&want), "missing RET(t3) residue {want}");
    }
}

#[test]
fn missing_constraint_reports_the_undecidable_pair() {
    // Drop constraint (1) (timeout > round trip): state 4 of the paper
    // can no longer order E(t3) against F(t4), and construction must
    // fail with exactly that pair — the paper's "an automated tool could
    // prompt designers for timing constraints at the necessary points".
    let (proto, _) = simple::symbolic();
    let mut weak = ConstraintSet::new();
    // keep only (3) and (4)
    let f = |n: &str| LinExpr::symbol(symbols::firing(n));
    weak.assume_eq(f("t5"), f("t4"));
    weak.assume_eq(f("t9"), f("t8"));
    let domain = SymbolicDomain::new(&proto.net, weak);
    let err = build_trg(&proto.net, &domain, &TrgOptions::default()).unwrap_err();
    match err {
        tpn_reach::ReachError::AmbiguousComparison { left, right, .. } => {
            let pair = format!("{left} / {right}");
            assert!(
                pair.contains("E(t3)"),
                "ambiguity should involve the timeout: {pair}"
            );
            assert!(
                pair.contains("F(t4)") || pair.contains("F(t5)"),
                "ambiguity should involve a medium delay: {pair}"
            );
        }
        other => panic!("expected AmbiguousComparison, got {other:?}"),
    }
}

#[test]
fn symbolic_probabilities_match_figure_6a() {
    // "Probability for 3→4 = f4/(f4+f5)" etc.
    let (proto, cs) = simple::symbolic();
    let domain = SymbolicDomain::new(&proto.net, cs);
    let trg = build_trg(&proto.net, &domain, &TrgOptions::default()).unwrap();
    let f4 = Poly::symbol(symbols::frequency("t4"));
    let f5 = Poly::symbol(symbols::frequency("t5"));
    let f8 = Poly::symbol(symbols::frequency("t8"));
    let f9 = Poly::symbol(symbols::frequency("t9"));
    let mut seen = Vec::new();
    for d in trg.decision_states() {
        for e in trg.edges_from(d) {
            seen.push(e.prob.clone());
        }
    }
    for want in [
        RatFn::new(f4.clone(), &f4 + &f5),
        RatFn::new(f5.clone(), &f4 + &f5),
        RatFn::new(f8.clone(), &f8 + &f9),
        RatFn::new(f9.clone(), &f8 + &f9),
    ] {
        assert!(seen.contains(&want), "missing branching probability {want}");
    }
}

#[test]
fn numeric_instantiation_agrees_with_numeric_graph() {
    // Substituting the Figure-1b values into every symbolic edge delay
    // must reproduce the numeric graph's delay multiset exactly.
    let (proto, cs) = simple::symbolic();
    let domain = SymbolicDomain::new(&proto.net, cs);
    let strg = build_trg(&proto.net, &domain, &TrgOptions::default()).unwrap();
    let nproto = simple::paper();
    let ntrg = build_trg(&nproto.net, &NumericDomain::new(), &TrgOptions::default()).unwrap();
    let a = simple::paper_assignment();
    let mut sym_delays: Vec<Rational> = strg
        .all_edges()
        .map(|e| e.delay.eval(&a).expect("total assignment"))
        .collect();
    let mut num_delays: Vec<Rational> = ntrg.all_edges().map(|e| e.delay).collect();
    sym_delays.sort();
    num_delays.sort();
    assert_eq!(sym_delays, num_delays);
}
