//! E7 — the paper's closing result: the symbolic protocol throughput
//!
//! ```text
//! T = r2 / Σᵢ wᵢ
//! ```
//!
//! which, substituting a 5% loss probability for both packets and
//! acknowledgements, simplifies to (paper, end of §4)
//!
//! ```text
//!                         18.05
//! T = ─────────────────────────────────────────────────────────────
//!     1.95·(E(t3)+F(t3)) + 20·F(t2) + 18.05·(F(t1)+F(t4)+F(t6)+F(t7)+F(t8))
//! ```
//!
//! and with the Figure-1b times evaluates to 18.05/6329.22 ≈ 0.002852
//! messages per millisecond (≈ 2.85 msg/s, mean cycle ≈ 350.65 ms).

use timed_petri::prelude::*;
use timed_petri::protocols::simple;
use tpn_net::symbols;

/// The exact expected numeric throughput: 18.05/6329.22 = 1805/632922.
fn expected_numeric() -> Rational {
    Rational::new(1805, 632922)
}

#[test]
fn numeric_throughput_matches_the_paper() {
    let proto = simple::paper();
    let domain = NumericDomain::new();
    let trg = build_trg(&proto.net, &domain, &TrgOptions::default()).unwrap();
    let dg = DecisionGraph::from_trg(&trg, &domain).unwrap();
    let rates = solve_rates(&dg, 0).unwrap();
    let perf = Performance::new(&dg, rates, &domain).unwrap();
    let t7 = proto.t[6]; // successfully acknowledged message (paper: edge 2)
    assert_eq!(perf.throughput(&dg, t7), expected_numeric());
    // ≈ 2.852 messages/second
    let per_second = perf.throughput(&dg, t7).to_f64() * 1000.0;
    assert!((per_second - 2.85185).abs() < 1e-4, "{per_second}");
}

#[test]
fn symbolic_throughput_instantiates_to_the_numeric_value() {
    let (proto, cs) = simple::symbolic();
    let domain = SymbolicDomain::new(&proto.net, cs);
    let trg = build_trg(&proto.net, &domain, &TrgOptions::default()).unwrap();
    let dg = DecisionGraph::from_trg(&trg, &domain).unwrap();
    let rates = solve_rates(&dg, 0).unwrap();
    let perf = Performance::new(&dg, rates, &domain).unwrap();
    let t7 = proto.t[6];
    let expr = perf.throughput(&dg, t7);
    assert_eq!(
        expr.eval(&simple::paper_assignment()),
        Some(expected_numeric())
    );
}

#[test]
fn symbolic_throughput_simplifies_to_the_papers_closed_form() {
    // Substitute only the 5% loss frequencies, keeping every time
    // symbolic: the result must equal the paper's simplified expression
    //   18.05 / (1.95(E3+F3) + 20 F2 + 18.05(F1+F4+F6+F7+F8)).
    let (proto, cs) = simple::symbolic();
    let domain = SymbolicDomain::new(&proto.net, cs);
    let trg = build_trg(&proto.net, &domain, &TrgOptions::default()).unwrap();
    let dg = DecisionGraph::from_trg(&trg, &domain).unwrap();
    let rates = solve_rates(&dg, 0).unwrap();
    let perf = Performance::new(&dg, rates, &domain).unwrap();
    let t7 = proto.t[6];
    let expr = perf.throughput(&dg, t7);

    let mut freqs = Assignment::new();
    freqs.set(symbols::frequency("t4"), Rational::new(19, 20));
    freqs.set(symbols::frequency("t5"), Rational::new(1, 20));
    freqs.set(symbols::frequency("t8"), Rational::new(19, 20));
    freqs.set(symbols::frequency("t9"), Rational::new(1, 20));
    let simplified = expr.eval_partial(&freqs).unwrap();

    // Build the paper's formula exactly.
    let e3 = Poly::symbol(symbols::enabling("t3"));
    let f = |n: &str| Poly::symbol(symbols::firing(n));
    let c = |x: Rational| Poly::constant(x);
    let num = c(Rational::new(361, 20)); // 18.05
    let den = &(&c(Rational::new(39, 20)) * &(&e3 + &f("t3"))) // 1.95(E3+F3)
        + &(&(&c(Rational::from_int(20)) * &f("t2")) // 20 F2
            + &(&c(Rational::new(361, 20)) // 18.05(F1+F4+F6+F7+F8)
                * &(&(&(&f("t1") + &f("t4")) + &(&f("t6") + &f("t7"))) + &f("t8"))));
    let paper = RatFn::new(num, den);
    assert_eq!(simplified, paper, "closed-form throughput mismatch");
}

#[test]
fn mean_cycle_time_and_time_shares() {
    // Mean time per successfully acknowledged message: 1/T ≈ 350.65 ms.
    let proto = simple::paper();
    let domain = NumericDomain::new();
    let trg = build_trg(&proto.net, &domain, &TrgOptions::default()).unwrap();
    let dg = DecisionGraph::from_trg(&trg, &domain).unwrap();
    let rates = solve_rates(&dg, 0).unwrap();
    let perf = Performance::new(&dg, rates, &domain).unwrap();
    let t7 = proto.t[6];
    let t = perf.throughput(&dg, t7);
    let mean_ms = t.recip();
    assert_eq!(mean_ms, Rational::new(632922, 1805));
    assert_eq!(mean_ms.to_decimal_string(2), "350.65");
    // time shares over the four edges sum to 1
    let total: Rational = (0..dg.num_edges())
        .map(|e| perf.time_share(e).unwrap())
        .sum();
    assert_eq!(total, Rational::ONE);
}

#[test]
fn throughput_is_monotone_in_loss_rate() {
    // A systematic sweep the paper's expression implies: higher loss ⇒
    // strictly lower throughput.
    let mut last: Option<Rational> = None;
    for loss_pct in [0i64, 1, 5, 10, 20, 40] {
        let mut params = simple::Params::paper();
        params.packet_loss = Rational::new(loss_pct as i128, 100);
        params.ack_loss = params.packet_loss;
        let proto = simple::numeric(&params);
        let domain = NumericDomain::new();
        let trg = build_trg(&proto.net, &domain, &TrgOptions::default()).unwrap();
        let dg = DecisionGraph::from_trg(&trg, &domain).unwrap();
        let rates = solve_rates(&dg, 0).unwrap();
        let perf = Performance::new(&dg, rates, &domain).unwrap();
        let t = perf.throughput(&dg, proto.t[6]);
        if let Some(prev) = last {
            assert!(t < prev, "throughput must fall as loss rises");
        }
        last = Some(t);
    }
}
