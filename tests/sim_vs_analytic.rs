//! E8 — validation: long Monte-Carlo runs of the Figure-1 protocol must
//! converge to the analytically derived throughput (our independent
//! oracle for the whole derivation chain).

use timed_petri::prelude::*;
use timed_petri::protocols::simple;

fn analytic_throughput(params: &simple::Params) -> (simple::SimpleProtocol, f64) {
    let proto = simple::numeric(params);
    let domain = NumericDomain::new();
    let trg = build_trg(&proto.net, &domain, &TrgOptions::default()).unwrap();
    let dg = DecisionGraph::from_trg(&trg, &domain).unwrap();
    let rates = solve_rates(&dg, 0).unwrap();
    let perf = Performance::new(&dg, rates, &domain).unwrap();
    let t = perf.throughput(&dg, proto.t[6]).to_f64();
    (proto, t)
}

#[test]
fn paper_parameters_converge() {
    let (proto, analytic) = analytic_throughput(&simple::Params::paper());
    let stats = simulate(
        &proto.net,
        &SimOptions {
            seed: 7,
            max_events: 2_000_000,
            warmup: Rational::from_int(10_000),
            ..SimOptions::default()
        },
    )
    .unwrap();
    let t7 = proto.t[6];
    let empirical = stats.throughput(t7);
    let rel = (empirical - analytic).abs() / analytic;
    assert!(
        rel < 0.02,
        "simulated {empirical:.6} vs analytic {analytic:.6} (rel err {rel:.4})"
    );
}

#[test]
fn heavy_loss_converges() {
    let mut params = simple::Params::paper();
    params.packet_loss = Rational::new(3, 10);
    params.ack_loss = Rational::new(1, 4);
    let (proto, analytic) = analytic_throughput(&params);
    let stats = simulate(
        &proto.net,
        &SimOptions {
            seed: 99,
            max_events: 2_000_000,
            warmup: Rational::from_int(10_000),
            ..SimOptions::default()
        },
    )
    .unwrap();
    let empirical = stats.throughput(proto.t[6]);
    let rel = (empirical - analytic).abs() / analytic;
    assert!(
        rel < 0.03,
        "simulated {empirical:.6} vs analytic {analytic:.6} (rel err {rel:.4})"
    );
}

#[test]
fn duplicate_rate_matches_analysis() {
    // t6 fires once per *delivery* (r3), t7 once per *acknowledged*
    // message (r2 = 0.95·r3): the ratio of simulated counts must be the
    // ACK success probability.
    let proto = simple::paper();
    let stats = simulate(
        &proto.net,
        &SimOptions {
            seed: 3,
            max_events: 2_000_000,
            warmup: Rational::from_int(10_000),
            ..SimOptions::default()
        },
    )
    .unwrap();
    let t6 = proto.t[5];
    let t7 = proto.t[6];
    let ratio = stats.completions(t7) as f64 / stats.completions(t6) as f64;
    assert!((ratio - 0.95).abs() < 0.01, "ratio {ratio}");
}

#[test]
fn utilizations_converge_to_the_analytic_values() {
    // The fraction of time the sender spends awaiting an ACK and the
    // fraction of time the packet medium is busy, analytic vs simulated.
    let proto = simple::paper();
    let domain = NumericDomain::new();
    let trg = build_trg(&proto.net, &domain, &TrgOptions::default()).unwrap();
    let dg = DecisionGraph::from_trg(&trg, &domain).unwrap();
    let rates = solve_rates(&dg, 0).unwrap();
    let perf = Performance::new(&dg, rates, &domain).unwrap();

    let awaiting = proto.p[3];
    let t4 = proto.t[3];
    let analytic_awaiting = perf
        .place_utilization(&dg, &trg, &domain, awaiting)
        .to_f64();
    let analytic_t4 = perf.transition_utilization(&dg, &trg, &domain, t4).to_f64();

    let stats = simulate(
        &proto.net,
        &SimOptions {
            seed: 5,
            max_events: 2_000_000,
            warmup: Rational::from_int(10_000),
            ..SimOptions::default()
        },
    )
    .unwrap();
    let sim_awaiting = stats.place_utilization(awaiting);
    let sim_t4 = stats.transition_utilization(t4);
    assert!(
        (sim_awaiting - analytic_awaiting).abs() < 0.01,
        "awaiting_ack: sim {sim_awaiting:.4} vs analytic {analytic_awaiting:.4}"
    );
    assert!(
        (sim_t4 - analytic_t4).abs() < 0.01,
        "t4 busy: sim {sim_t4:.4} vs analytic {analytic_t4:.4}"
    );
}

#[test]
fn loss_free_protocol_is_fully_deterministic() {
    let mut params = simple::Params::paper();
    params.packet_loss = Rational::ZERO;
    params.ack_loss = Rational::ZERO;
    let (proto, analytic) = analytic_throughput(&params);
    // cycle = F2+F4+F6+F8+F7+F1 = 1+106.7+13.5+106.7+13.5+1 = 242.4
    assert!((analytic - 1.0 / 242.4).abs() < 1e-12);
    let stats = simulate(
        &proto.net,
        &SimOptions {
            max_time: Some(Rational::from_int(242_400)),
            max_events: 0,
            ..SimOptions::default()
        },
    )
    .unwrap();
    assert_eq!(stats.completions(proto.t[6]), 1000);
}
