//! Observability integration suite: the `/metrics` exposition, the
//! `/debug/requests` trace ring, the `/v1` `"trace"` flag, sampled
//! request logging, the `tpn stats` subcommand — and the golden-capture
//! guarantee that instrumenting the pipeline changed **no pre-existing
//! byte**: `tests/fixtures/golden/stats.json` was captured from the
//! pre-instrumentation daemon, and the same request sequence must
//! reproduce it exactly.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::Command;

use timed_petri::obs::validate::validate;
use timed_petri::service::{LogConfig, RequestKind, Service, ServiceConfig};

mod common;
use common::{fig1_text, fixture_dir, http, start_server};

fn golden(name: &str) -> String {
    let path = format!("{}/golden/{name}", fixture_dir());
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

/// The spec JSON plus a `"net"` member, assembled without re-encoding
/// the spec — exactly how the golden `/stats` fixture was captured.
fn with_net(spec: &str, net: &str) -> String {
    let trimmed = spec.trim_end();
    let without_brace = trimmed
        .strip_suffix('}')
        .expect("spec is a JSON object")
        .trim_end();
    format!(
        "{without_brace}, \"net\": {}}}",
        timed_petri::service::json::escape(net)
    )
}

/// Like `common::http`, but returning the raw head too (for
/// Content-Type assertions).
fn http_raw(addr: SocketAddr, method: &str, target: &str, body: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let request = format!(
        "{method} {target} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("receive");
    let status: u16 = response
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("status line in {response:?}"));
    let (head, payload) = response.split_once("\r\n\r\n").expect("head/body split");
    (status, head.to_string(), payload.to_string())
}

/// Replay the capture sequence the golden `/stats` fixture was made
/// with: two analyzes (miss + hit), a graph, a sweep, an optimize, and
/// a two-perturbation what-if (one re-time, one out-of-region reject).
fn replay_capture_sequence(addr: SocketAddr) {
    let net = fig1_text();
    let (s, _) = http(addr, "POST", "/analyze", &net);
    assert_eq!(s, 200);
    let (s, _) = http(addr, "POST", "/analyze", &net);
    assert_eq!(s, 200);
    let (s, _) = http(addr, "POST", "/graph", &net);
    assert_eq!(s, 200);
    let (s, body) = http(
        addr,
        "POST",
        "/sweep",
        &with_net(&golden("sweep_spec.json"), &net),
    );
    assert_eq!(s, 200, "{body}");
    let (s, body) = http(
        addr,
        "POST",
        "/optimize",
        &with_net(&golden("optimize_spec.json"), &net),
    );
    assert_eq!(s, 200, "{body}");
    let whatif = format!(
        "{{\"requests\":[\"analyze\"],\"perturbations\":[{{\"E(t3)\":\"500\"}},{{\"E(t3)\":\"100\"}}],\"net\":{}}}",
        timed_petri::service::json::escape(&net)
    );
    let (s, body) = http(addr, "POST", "/whatif", &whatif);
    assert_eq!(s, 200, "{body}");
    assert!(body.contains("\"status\":200"), "{body}");
    assert!(body.contains("out_of_region"), "{body}");
}

/// The tentpole's byte-compatibility contract: the `/stats` document
/// after the capture sequence is byte-identical to the one the
/// pre-instrumentation daemon produced for the same sequence.
#[test]
fn stats_document_matches_pre_instrumentation_bytes() {
    let (handle, addr) = start_server();
    replay_capture_sequence(addr);
    let (status, stats) = http(addr, "GET", "/stats", "");
    assert_eq!(status, 200);
    // PR 8 appends a `"process"` object as the document's LAST member;
    // every byte before it must still match the golden capture.
    let full = golden("stats.json");
    let prefix = full.strip_suffix('}').expect("golden is a JSON object");
    assert!(
        stats.starts_with(prefix),
        "/stats drifted from the pre-instrumentation bytes\n--- live ---\n{stats}\n--- golden prefix ---\n{prefix}"
    );
    let tail = &stats[prefix.len()..];
    assert!(
        tail.starts_with(",\"process\":{\"version\":"),
        "unexpected /stats tail: {tail}"
    );
    for key in [
        "\"start_time_ms\":",
        "\"uptime_seconds\":",
        "\"rss_bytes\":",
        "\"open_fds\":",
        "\"os_threads\":",
    ] {
        assert!(tail.contains(key), "missing {key} in {tail}");
    }
    assert!(tail.ends_with("}}"), "tail must close both objects: {tail}");
    handle.shutdown();
}

#[test]
fn metrics_document_validates_and_covers_every_stats_counter() {
    let (handle, addr) = start_server();
    replay_capture_sequence(addr);
    let (status, head, text) = http_raw(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(
        head.contains("Content-Type: text/plain; version=0.0.4; charset=utf-8"),
        "{head}"
    );
    validate(&text).unwrap_or_else(|e| panic!("{e}\n--- document ---\n{text}"));

    // Request counters carry endpoint and status labels.
    assert!(
        text.contains("tpn_requests_total{endpoint=\"analyze\",status=\"200\"} 2\n"),
        "{text}"
    );
    assert!(
        text.contains("tpn_requests_total{endpoint=\"whatif\",status=\"200\"} 1\n"),
        "{text}"
    );
    // Every /stats scalar has a tpn_* family (the golden capture fixes
    // their values, so assert exact samples).
    for expected in [
        "tpn_service_requests_total 6\n",
        "tpn_cache_hits_total 1\n",
        "tpn_cache_misses_total 7\n",
        "tpn_cache_computations_total 7\n",
        "tpn_sweeps_total 1\n",
        "tpn_sweep_compiles_total 1\n",
        "tpn_sweep_points_total 12\n",
        "tpn_optimizes_total 1\n",
        "tpn_optimize_certified_total 1\n",
        "tpn_whatifs_total 1\n",
        "tpn_whatif_perturbations_total 2\n",
        "tpn_whatif_retimes_total 1\n",
        "tpn_whatif_rejects_total 1\n",
        "tpn_v1_envelopes_total 0\n",
        "tpn_session_hits_total 5\n",
        "tpn_session_misses_total 3\n",
        "tpn_sessions 2\n",
        "tpn_threads 4\n",
        "tpn_queue_cap 64\n",
        "tpn_artifact_demands_total{stage=\"trg\",event=\"build\"} 1\n",
        "tpn_artifact_demands_total{stage=\"retimed\",event=\"build\"} 1\n",
    ] {
        assert!(text.contains(expected), "missing {expected:?} in:\n{text}");
    }

    // Latency histograms: the analyze endpoint saw 2 requests, and its
    // _count equals its +Inf bucket (the validator checks this too —
    // here we pin the actual count so p99 is derivable from buckets).
    assert!(
        text.contains("tpn_request_duration_seconds_count{endpoint=\"analyze\"} 2\n"),
        "{text}"
    );
    assert!(
        text.contains("tpn_request_duration_seconds_bucket{endpoint=\"analyze\",le=\"+Inf\"} 2\n"),
        "{text}"
    );
    // Stage build histograms render for all seven stages, with one
    // build sample per pipeline execution.
    assert!(
        text.contains("tpn_stage_build_seconds_count{stage=\"trg\"} 1\n"),
        "{text}"
    );
    assert!(
        text.contains("tpn_stage_build_seconds_count{stage=\"retimed\"} 1\n"),
        "{text}"
    );
    handle.shutdown();
}

#[test]
fn debug_requests_returns_recent_traces_with_pipeline_spans() {
    let (handle, addr) = start_server();
    let net = fig1_text();
    let (s, _) = http(addr, "POST", "/analyze", &net);
    assert_eq!(s, 200);
    let (s, _) = http(addr, "POST", "/analyze", &net);
    assert_eq!(s, 200);
    let (status, head, body) = http_raw(addr, "GET", "/debug/requests?n=2", "");
    assert_eq!(status, 200);
    assert!(
        head.contains("Content-Type: application/x-ndjson"),
        "{head}"
    );
    let lines: Vec<&str> = body.lines().collect();
    assert_eq!(lines.len(), 2, "{body}");
    for line in &lines {
        // Each line is one JSON document with the stable fields.
        let doc = timed_petri::service::Json::parse(line).expect("NDJSON line parses");
        assert_eq!(
            doc.get("endpoint").and_then(|j| j.as_str()),
            Some("analyze")
        );
        assert_eq!(
            doc.get("status").and_then(|j| j.as_num()),
            Some("200"),
            "{line}"
        );
        assert!(doc.get("spans").is_some(), "{line}");
    }
    // Most recent first: the second (cache-hit) request leads. Hits
    // carry the synthesized root and the parse span but *no* cache
    // span — a cache span means the cache had to work.
    assert!(lines[0].contains("\"name\":\"analyze\""), "{}", lines[0]);
    assert!(lines[0].contains("\"name\":\"parse\""), "{}", lines[0]);
    assert!(!lines[0].contains("\"name\":\"cache\""), "{}", lines[0]);
    let cold = lines[1];
    for span in [
        "analyze", "parse", "session", "cache", "render", "trg", "rates",
    ] {
        assert!(cold.contains(&format!("\"name\":\"{span}\"")), "{cold}");
    }
    // The ring also serves fewer than asked when less happened.
    let (status, body) = http(addr, "GET", "/debug/requests?n=1000", "");
    assert_eq!(status, 200);
    assert!(body.lines().count() >= 3, "{body}");
    handle.shutdown();
}

#[test]
fn v1_trace_flag_appends_spans_without_disturbing_untraced_bytes() {
    let service = Service::new(ServiceConfig::default());
    let net = fig1_text();
    let plain = format!(
        "{{\"net\":{},\"requests\":[{{\"kind\":\"analyze\"}}]}}",
        timed_petri::service::json::escape(&net)
    );
    let traced = format!(
        "{{\"net\":{},\"trace\":true,\"requests\":[{{\"kind\":\"analyze\"}}]}}",
        timed_petri::service::json::escape(&net)
    );
    let (s1, untraced_body) = service.respond_v1(&plain);
    assert_eq!(s1, 200);
    assert!(!untraced_body.contains("\"trace\""), "{untraced_body}");
    let (s2, traced_body) = service.respond_v1(&traced);
    assert_eq!(s2, 200);
    // The traced document is the untraced one plus a trailing "trace"
    // member — the flag may not perturb a single earlier byte.
    let prefix = &untraced_body[..untraced_body.len() - 1];
    assert!(traced_body.starts_with(prefix), "{traced_body}");
    assert!(traced_body.contains(",\"trace\":[{"), "{traced_body}");
    // The closed pipeline spans are there; the plain request already
    // warmed the cache, so the traced run is a hit and records no
    // cache span (spans mark work, not lookups).
    assert!(traced_body.contains("\"name\":\"parse\""), "{traced_body}");
    assert!(!traced_body.contains("\"name\":\"cache\""), "{traced_body}");
    assert!(traced_body.contains("\"depth\":"), "{traced_body}");

    // trace:false is accepted and byte-identical to the flag's absence.
    let off = format!(
        "{{\"net\":{},\"trace\":false,\"requests\":[{{\"kind\":\"analyze\"}}]}}",
        timed_petri::service::json::escape(&net)
    );
    let (s3, off_body) = service.respond_v1(&off);
    assert_eq!(s3, 200);
    assert_eq!(*off_body, *untraced_body);
}

#[test]
fn request_log_writes_sampled_ndjson_lines() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("tpn-test-log-{}.ndjson", std::process::id()));
    let path_str = path.to_str().expect("utf-8 temp path").to_string();
    let _ = std::fs::remove_file(&path);

    // Sample 1: every request logged.
    let config = ServiceConfig {
        log: Some(LogConfig {
            path: Some(path_str.clone()),
            sample: 1,
        }),
        ..ServiceConfig::default()
    };
    let service = Service::new(config);
    let net = fig1_text();
    let (s, _) = service.respond(RequestKind::Analyze, &net);
    assert_eq!(s, 200);
    let (s, _) = service.respond(RequestKind::Graph, &net);
    assert_eq!(s, 200);
    let logged = std::fs::read_to_string(&path).expect("log file written");
    let lines: Vec<&str> = logged.lines().collect();
    assert_eq!(lines.len(), 2, "{logged}");
    for (line, endpoint) in lines.iter().zip(["analyze", "graph"]) {
        let doc = timed_petri::service::Json::parse(line).expect("log line parses");
        assert_eq!(doc.get("endpoint").and_then(|j| j.as_str()), Some(endpoint));
        assert_eq!(doc.get("status").and_then(|j| j.as_num()), Some("200"));
        assert!(doc.get("ts_ms").is_some(), "{line}");
        assert!(doc.get("duration_ns").is_some(), "{line}");
        assert!(doc.get("bytes").is_some(), "{line}");
    }

    // Sample 3: only every third request reaches the file.
    let _ = std::fs::remove_file(&path);
    let config = ServiceConfig {
        log: Some(LogConfig {
            path: Some(path_str),
            sample: 3,
        }),
        ..ServiceConfig::default()
    };
    let service = Service::new(config);
    for _ in 0..6 {
        let (s, _) = service.respond(RequestKind::Analyze, &net);
        assert_eq!(s, 200);
    }
    let logged = std::fs::read_to_string(&path).expect("log file written");
    assert_eq!(logged.lines().count(), 2, "{logged}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn disabled_metrics_records_nothing_but_keeps_serving() {
    let config = ServiceConfig {
        metrics: false,
        ..ServiceConfig::default()
    };
    let service = Service::new(config);
    let net = fig1_text();
    let (s, _) = service.respond(RequestKind::Analyze, &net);
    assert_eq!(s, 200);
    assert!(!service.metrics().enabled());
    assert_eq!(
        service
            .metrics()
            .requests_total(timed_petri::service::Endpoint::Analyze, 200),
        0
    );
    assert!(service.debug_requests_text(16).is_empty());
    // The exposition stays well-formed (stage and /stats families still
    // render; request families are merely empty).
    let text = service.metrics_text();
    validate(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
    assert!(text.contains("tpn_service_requests_total 1\n"), "{text}");
    assert!(!text.contains("tpn_requests_total{"), "{text}");
}

#[test]
fn stats_cli_fetches_both_views_from_a_running_daemon() {
    let (handle, addr) = start_server();
    let net = fig1_text();
    let (s, _) = http(addr, "POST", "/analyze", &net);
    assert_eq!(s, 200);

    let table = Command::new(env!("CARGO_BIN_EXE_tpn"))
        .args(["stats", &addr.to_string()])
        .output()
        .expect("run tpn stats");
    assert!(
        table.status.success(),
        "{}",
        String::from_utf8_lossy(&table.stderr)
    );
    let out = String::from_utf8(table.stdout).expect("utf-8 table");
    for row in [
        "requests",
        "computations",
        "sessions.entries",
        "artifacts.trg.artifact_builds",
        "threads",
    ] {
        assert!(out.lines().any(|l| l.starts_with(row)), "{row} in:\n{out}");
    }

    let raw = Command::new(env!("CARGO_BIN_EXE_tpn"))
        .args(["stats", &format!("http://{addr}"), "--metrics"])
        .output()
        .expect("run tpn stats --metrics");
    assert!(
        raw.status.success(),
        "{}",
        String::from_utf8_lossy(&raw.stderr)
    );
    let text = String::from_utf8(raw.stdout).expect("utf-8 exposition");
    validate(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
    assert!(
        text.contains("tpn_requests_total{endpoint=\"analyze\",status=\"200\"} 1\n"),
        "{text}"
    );
    handle.shutdown();
}

#[test]
fn legacy_routes_keep_their_content_type_and_new_routes_declare_theirs() {
    let (handle, addr) = start_server();
    let net = fig1_text();
    let (status, head, _) = http_raw(addr, "POST", "/analyze", &net);
    assert_eq!(status, 200);
    assert!(head.contains("Content-Type: application/json"), "{head}");
    let (status, head, _) = http_raw(addr, "GET", "/stats", "");
    assert_eq!(status, 200);
    assert!(head.contains("Content-Type: application/json"), "{head}");
    // Method misuse of the new routes is a JSON 405, like the old ones.
    let (status, head, body) = http_raw(addr, "POST", "/metrics", "");
    assert_eq!(status, 405, "{body}");
    assert!(head.contains("Content-Type: application/json"), "{head}");
    let (status, _, body) = http_raw(addr, "GET", "/debug/requests?n=bogus", "");
    assert_eq!(status, 400, "{body}");
    handle.shutdown();
}
