//! Acceptance suite for the incremental what-if surface: `POST
//! /whatif`, the `/v1` `whatif` request kind, and `tpn whatif` — one
//! base net, a batch of timing perturbations, every analysis answered
//! from one shared symbolic lift.
//!
//! The load-bearing property throughout is **byte-identity**: because
//! the whole pipeline is exact rational arithmetic, a re-timed body
//! must equal, byte for byte, what a cold analysis of the perturbed
//! net would produce.

mod common;

use common::{fig1_text, http, json_counter, start_server};

use timed_petri::net::TimingAssignment;
use timed_petri::prelude::*;
use timed_petri::service::{run_with_session, WhatifSpec};
use tpn_service::Json;

fn fig1_net() -> TimedPetriNet {
    timed_petri::net::parse_tpn(&fig1_text()).unwrap()
}

fn whatif_body(perturbations: &str) -> String {
    format!(
        r#"{{"net":{},"perturbations":{perturbations}}}"#,
        timed_petri::service::json::escape(&fig1_text())
    )
}

#[test]
fn whatif_envelope_over_http() {
    let (handle, addr) = start_server();
    let (status, body) = http(
        addr,
        "POST",
        "/whatif",
        &whatif_body(r#"[{"E(t3)":"500"},{"E(t3)":"2000"}]"#),
    );
    assert_eq!(status, 200, "{body}");
    let net = fig1_net();
    assert!(
        body.starts_with(r#"{"kind":"whatif","net":"simple-protocol""#),
        "{body}"
    );
    assert!(
        body.contains(&format!(
            r#""structural_digest":"{}""#,
            net.structural_digest().to_hex()
        )),
        "{body}"
    );
    assert!(
        body.contains(&format!(r#""base_digest":"{}""#, net.digest().to_hex())),
        "{body}"
    );
    assert!(body.contains(r#""requests":["analyze"]"#), "{body}");
    // Two entries, each echoing its delta and carrying the perturbed
    // net's full digest + timing hash.
    assert!(
        body.contains(r#"{"perturbation":{"E(t3)":"500"},"status":200,"body":{"digest":""#),
        "{body}"
    );
    assert!(
        body.contains(r#"{"perturbation":{"E(t3)":"2000"},"status":200,"body":{"digest":""#),
        "{body}"
    );
    let perturbed = net
        .with_timing(&TimingAssignment::new().with("E(t3)", Rational::from_int(500)))
        .unwrap();
    assert!(
        body.contains(&format!(r#""digest":"{}""#, perturbed.digest().to_hex())),
        "{body}"
    );
    assert!(
        body.contains(&format!(r#""timing":"{}""#, perturbed.timing().hash_hex())),
        "{body}"
    );
    handle.shutdown();
}

#[test]
fn whatif_bodies_are_byte_identical_to_cold_analyses() {
    let svc = Service::new(ServiceConfig::default());
    let spec = WhatifSpec::from_json(
        &Json::parse(
            r#"{"requests":["analyze","correctness"],
                "perturbations":[{"E(t3)":"500"},{"E(t3)":"750","F(t6)":"27/2"}]}"#,
        )
        .unwrap(),
    )
    .unwrap();
    let envelope = svc.respond_whatif_spec(fig1_net(), &spec);
    for delta in &spec.perturbations {
        let perturbed = fig1_net().with_timing(delta).unwrap();
        let cold = Session::new(perturbed, svc.config().session_options());
        for kind in [RequestKind::Analyze, RequestKind::Correctness] {
            let cold_body = run_with_session(&cold, kind).unwrap();
            assert!(
                envelope.contains(cold_body.as_str()),
                "re-timed {} body for {delta} is not byte-identical to the cold body",
                kind.name()
            );
        }
    }
}

#[test]
fn whatif_failures_are_isolated_per_perturbation() {
    let (handle, addr) = start_server();
    let (status, body) = http(
        addr,
        "POST",
        "/whatif",
        // valid · unknown attribute · outside the lift's validity
        // region (E(t3)=100 flips fig1's timeout/ACK race)
        &whatif_body(r#"[{"E(t3)":"500"},{"E(nope)":"1"},{"E(t3)":"100"}]"#),
    );
    assert_eq!(
        status, 200,
        "the envelope succeeds; entries fail alone: {body}"
    );
    assert!(
        body.contains(r#"{"perturbation":{"E(t3)":"500"},"status":200,"#),
        "{body}"
    );
    assert!(
        body.contains(r#"{"perturbation":{"E(nope)":"1"},"status":400,"error":{"code":"bad_request","message":""#),
        "{body}"
    );
    assert!(
        body.contains(r#"{"perturbation":{"E(t3)":"100"},"status":422,"error":{"code":"out_of_region","message":""#),
        "{body}"
    );
    // Spec-shaped problems are a single structured 400.
    let (status, body) = http(addr, "POST", "/whatif", &whatif_body("[]"));
    assert_eq!(status, 400, "{body}");
    assert!(
        body.starts_with(r#"{"code":"bad_request","message":""#),
        "{body}"
    );
    handle.shutdown();
}

#[test]
fn whatif_entries_are_cached_across_batches() {
    let svc = Service::new(ServiceConfig::default());
    let spec = |text: &str| WhatifSpec::from_json(&Json::parse(text).unwrap()).unwrap();
    let first = spec(r#"{"perturbations":[{"E(t3)":"500"},{"E(t3)":"750"}]}"#);
    let a = svc.respond_whatif_spec(fig1_net(), &first);
    let b = svc.respond_whatif_spec(fig1_net(), &first);
    assert_eq!(a, b, "a repeated batch must be byte-identical");
    let stats = svc.stats_json();
    assert!(stats.contains(r#""whatifs":2"#), "{stats}");
    assert!(stats.contains(r#""whatif_perturbations":4"#), "{stats}");
    assert!(stats.contains(r#""whatif_hits":2"#), "{stats}");
    assert!(stats.contains(r#""whatif_retimes":2"#), "{stats}");
    assert!(stats.contains(r#""whatif_rejects":0"#), "{stats}");
    // A different batch sharing one timing point hits that entry: the
    // cache key is (structural digest, timing, requests), not the batch.
    let second = spec(r#"{"perturbations":[{"E(t3)":"750"},{"E(t3)":"1250"}]}"#);
    svc.respond_whatif_spec(fig1_net(), &second);
    let stats = svc.stats_json();
    assert!(stats.contains(r#""whatif_hits":3"#), "{stats}");
    assert!(stats.contains(r#""whatif_retimes":3"#), "{stats}");
}

#[test]
fn whatif_shares_cache_lines_with_plain_analyses() {
    // An /analyze of the perturbed net after a what-if over the base
    // net is a body-tier cache hit: the entry's inner analyses are
    // cached under the perturbed net's full (digest, kind) key.
    let svc = Service::new(ServiceConfig::default());
    let spec =
        WhatifSpec::from_json(&Json::parse(r#"{"perturbations":[{"E(t3)":"500"}]}"#).unwrap())
            .unwrap();
    svc.respond_whatif_spec(fig1_net(), &spec);
    let hits_before = svc.cache().stats().hits;
    let perturbed = fig1_net()
        .with_timing(&TimingAssignment::new().with("E(t3)", Rational::from_int(500)))
        .unwrap();
    let (status, _) = svc.respond(RequestKind::Analyze, &format!("{perturbed}"));
    assert_eq!(status, 200);
    assert_eq!(svc.cache().stats().hits, hits_before + 1);
    // ... and the session tier holds the re-timed session under the
    // perturbed digest, so no pipeline stage re-ran either.
    assert!(svc.sessions().stats().hits >= 1);
}

#[test]
fn v1_whatif_kind_matches_post_whatif() {
    let (handle, addr) = start_server();
    let perturbations = r#"[{"E(t3)":"500"},{"E(t3)":"100"}]"#;
    let spec = format!(r#"{{"perturbations":{perturbations}}}"#);
    let (status, standalone) = http(addr, "POST", "/whatif", &whatif_body(perturbations));
    assert_eq!(status, 200, "{standalone}");
    let envelope = format!(
        r#"{{"net":{},"requests":[{{"kind":"whatif","spec":{spec}}}]}}"#,
        timed_petri::service::json::escape(&fig1_text())
    );
    let (status, v1) = http(addr, "POST", "/v1", &envelope);
    assert_eq!(status, 200, "{v1}");
    assert!(
        v1.contains(&format!(
            r#"{{"kind":"whatif","status":200,"body":{standalone}}}"#
        )),
        "the /v1 whatif entry must wrap the exact POST /whatif body\n{v1}"
    );
    // /stats reports the what-if surface.
    let (_, stats) = http(addr, "GET", "/stats", "");
    assert_eq!(json_counter(&stats, "whatifs"), 2);
    assert_eq!(json_counter(&stats, "whatif_perturbations"), 4);
    assert_eq!(json_counter(&stats, "whatif_rejects"), 2);
    handle.shutdown();
}

#[test]
fn whatif_cli_is_byte_identical_to_the_server() {
    let (handle, addr) = start_server();
    let spec = r#"{"requests":["analyze","invariants"],"perturbations":[{"E(t3)":"500"},{"F(t4)":"1067/5"}]}"#;
    let with_net = format!(
        r#"{{"net":{},"requests":["analyze","invariants"],"perturbations":[{{"E(t3)":"500"}},{{"F(t4)":"1067/5"}}]}}"#,
        timed_petri::service::json::escape(&fig1_text())
    );
    let (status, server_body) = http(addr, "POST", "/whatif", &with_net);
    assert_eq!(status, 200, "{server_body}");
    handle.shutdown();

    let dir = std::env::temp_dir().join(format!("tpn-whatif-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let spec_path = dir.join("spec.json");
    std::fs::write(&spec_path, spec).unwrap();
    let net_path = format!("{}/fig1.tpn", common::fixture_dir());
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_tpn"))
        .arg("whatif")
        .arg(&net_path)
        .arg(&spec_path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        format!("{server_body}\n"),
        "tpn whatif must print the exact server body"
    );
    std::fs::remove_dir_all(&dir).ok();
}
