//! E6 — Figure 8: the symbolic decision graph, its traversal rates and
//! edge weights. With the traversal rate of edge 3 (the packet-delivery
//! edge 3→11) normalised to 1, the paper derives
//!
//! ```text
//! r1 = f5/f4,   r2 = f8/(f8+f9),   r3 = 1,   r4 = f9/(f8+f9)
//! ```
//!
//! and the symbolic delays
//!
//! ```text
//! d1 = E3+F3+F2,  d2 = F8+F7+F1+F2,  d3 = F4+F6,  d4 = E3−F4−F6+F3+F2.
//! ```

use timed_petri::prelude::*;
use timed_petri::protocols::simple;
use tpn_net::symbols;
use tpn_reach::StateId;

struct Fig8 {
    dg: DecisionGraph<SymbolicDomain>,
    domain: SymbolicDomain,
    /// paper edge order [e1, e2, e3, e4]
    e: [usize; 4],
}

fn build() -> Fig8 {
    let (proto, cs) = simple::symbolic();
    let domain = SymbolicDomain::new(&proto.net, cs);
    let trg = build_trg(&proto.net, &domain, &TrgOptions::default()).unwrap();
    let dg = DecisionGraph::from_trg(&trg, &domain).unwrap();
    let [_, _, _, t4, t5, _, _, t8, t9] = proto.t;
    let find = |t| -> (StateId, usize) {
        for n in 0..dg.num_nodes() {
            if let Some(i) = dg.edge_firing_first(dg.nodes()[n], t) {
                return (dg.nodes()[n], i);
            }
        }
        panic!("edge not found");
    };
    let (node3, e3) = find(t4);
    let (node11, e2) = find(t8);
    let e1 = dg.edge_firing_first(node3, t5).unwrap();
    let e4 = dg.edge_firing_first(node11, t9).unwrap();
    Fig8 {
        dg,
        domain,
        e: [e1, e2, e3, e4],
    }
}

fn f(n: &str) -> LinExpr {
    LinExpr::symbol(symbols::firing(n))
}

fn freq(n: &str) -> Poly {
    Poly::symbol(symbols::frequency(n))
}

#[test]
fn symbolic_delays_match_figure_8() {
    let fig = build();
    let [e1, e2, e3, e4] = fig.e;
    let e3sym = LinExpr::symbol(symbols::enabling("t3"));
    let edges = fig.dg.edges();
    // d1 = F5 + (E3−F5) + F3 + F2 — the F5 terms cancel symbolically
    assert_eq!(edges[e1].delay, e3sym.clone() + &f("t3") + &f("t2"));
    assert_eq!(edges[e2].delay, f("t8") + &f("t7") + &f("t1") + &f("t2"));
    assert_eq!(edges[e3].delay, f("t4") + &f("t6"));
    assert_eq!(
        edges[e4].delay,
        e3sym - f("t4") - f("t6") + f("t3") + f("t2")
    );
}

#[test]
fn traversal_rates_match_figure_8() {
    let fig = build();
    let [e1, e2, e3, e4] = fig.e;
    let rates = solve_rates(&fig.dg, e3).unwrap();
    assert!(rates.rate(e3).is_one());
    assert_eq!(*rates.rate(e1), RatFn::new(freq("t5"), freq("t4")));
    assert_eq!(
        *rates.rate(e2),
        RatFn::new(freq("t8"), &freq("t8") + &freq("t9"))
    );
    assert_eq!(
        *rates.rate(e4),
        RatFn::new(freq("t9"), &freq("t8") + &freq("t9"))
    );
}

#[test]
fn rates_satisfy_the_flow_equations_symbolically() {
    let fig = build();
    let rates = solve_rates(&fig.dg, fig.e[2]).unwrap();
    for (ei, e) in fig.dg.edges().iter().enumerate() {
        let inflow = fig
            .dg
            .edges_into(e.from)
            .into_iter()
            .fold(RatFn::zero(), |acc, i| acc + rates.rate(i).clone());
        assert_eq!(*rates.rate(ei), e.prob.clone() * inflow, "edge {ei}");
    }
}

#[test]
fn weights_evaluate_to_figure_5_at_paper_values() {
    let fig = build();
    let [e1, e2, e3, e4] = fig.e;
    let rates = solve_rates(&fig.dg, e3).unwrap();
    let perf = Performance::new(&fig.dg, rates, &fig.domain).unwrap();
    let a = simple::paper_assignment();
    // w1 = (f5/f4)(E3+F3+F2) → (1/19)·1002
    let w1 = perf.weights()[e1].eval(&a).unwrap();
    assert_eq!(w1, Rational::new(1002, 19));
    // w3 = 1·120.2
    assert_eq!(
        perf.weights()[e3].eval(&a).unwrap(),
        "120.2".parse().unwrap()
    );
    // w2 = 0.95·122.2, w4 = 0.05·881.8
    assert_eq!(
        perf.weights()[e2].eval(&a).unwrap(),
        "122.2".parse::<Rational>().unwrap() * Rational::new(19, 20)
    );
    assert_eq!(
        perf.weights()[e4].eval(&a).unwrap(),
        "881.8".parse::<Rational>().unwrap() * Rational::new(1, 20)
    );
}
