//! Integration tests for the `tpn` command-line driver: every analysis
//! subcommand is exercised against a `.tpn` fixture of the paper's
//! Figure-1 protocol and its stdout is checked against the paper's
//! numbers (18 reachable states, ≈2.85 messages/second throughput).

use std::process::{Command, Output};

fn fixture() -> String {
    format!("{}/tests/fixtures/fig1.tpn", env!("CARGO_MANIFEST_DIR"))
}

fn tpn(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_tpn"))
        .args(args)
        .output()
        .expect("tpn binary runs")
}

fn stdout_of(args: &[&str]) -> String {
    let out = tpn(args);
    assert!(
        out.status.success(),
        "tpn {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("tpn prints UTF-8")
}

#[test]
fn show_prints_net_statistics() {
    let out = stdout_of(&["show", &fixture()]);
    assert!(
        out.contains("simple-protocol"),
        "net name in output:\n{out}"
    );
    assert!(
        out.contains(
            "8 places, 9 transitions, 20 arcs, 6 conflict sets (3 non-trivial), 2 initial tokens"
        ),
        "stats line in output:\n{out}"
    );
}

#[test]
fn graph_reports_the_papers_18_states() {
    let out = stdout_of(&["graph", &fixture()]);
    let first = out.lines().next().unwrap_or_default();
    assert!(
        first.starts_with("18 states"),
        "the paper's Figure 4 has 18 states, got: {first}"
    );
    // the state table and the DOT rendering both follow
    assert!(out.contains("s17"), "all 18 states tabulated:\n{out}");
    assert!(out.contains("digraph trg"));
}

#[test]
fn analyze_reproduces_the_papers_throughput() {
    let out = stdout_of(&["analyze", &fixture(), "t7"]);
    assert!(out.contains("decision graph:"));
    assert!(out.contains("rates and weights"));
    // §4: ≈ 2.8518 successfully acknowledged messages per second, i.e.
    // 0.0028518 per millisecond, printed to six decimals.
    let t7 = out
        .lines()
        .find(|l| l.trim_start().starts_with("t7"))
        .expect("throughput line for t7");
    assert!(t7.contains("0.002852"), "paper throughput, got: {t7}");
}

#[test]
fn simulate_runs_reproducibly() {
    let out = stdout_of(&["simulate", &fixture(), "20000", "7"]);
    assert!(
        out.contains("20000 events"),
        "event budget respected:\n{out}"
    );
    // identical seed → identical run
    assert_eq!(out, stdout_of(&["simulate", &fixture(), "20000", "7"]));
    // the sender's send and ACK-receipt transitions both progressed
    for t in ["t2", "t7"] {
        let line = out
            .lines()
            .find(|l| l.trim_start().starts_with(t))
            .expect("per-transition stats line");
        assert!(
            !line.contains("completed        0"),
            "{t} progressed: {line}"
        );
    }
}

#[test]
fn correctness_and_invariants_report() {
    let out = stdout_of(&["correctness", &fixture()]);
    assert!(out.contains("verdict:"), "correctness verdict:\n{out}");
    let out = stdout_of(&["invariants", &fixture()]);
    assert!(out.contains("P-semiflows"));
    assert!(out.contains("T-semiflows"));
}

#[test]
fn dot_renders_the_net() {
    let out = stdout_of(&["dot", &fixture()]);
    assert!(out.contains("digraph"));
    assert!(out.contains("t4"));
}

#[test]
fn bad_usage_fails_cleanly() {
    assert!(!tpn(&[]).status.success());
    assert!(!tpn(&["frobnicate", &fixture()]).status.success());
    assert!(!tpn(&["show", "/nonexistent/net.tpn"]).status.success());
}

#[test]
fn version_flag() {
    let out = stdout_of(&["--version"]);
    assert!(out.starts_with("tpn "), "{out}");
    assert_eq!(out, stdout_of(&["-V"]));
}

#[test]
fn global_help_lists_every_command() {
    let out = stdout_of(&["--help"]);
    for cmd in [
        "show",
        "dot",
        "graph",
        "analyze",
        "correctness",
        "invariants",
        "simulate",
        "serve",
        "batch",
    ] {
        assert!(out.contains(cmd), "{cmd} listed in:\n{out}");
    }
    assert_eq!(out, stdout_of(&["help"]));
}

#[test]
fn help_text_matches_the_shared_simulate_defaults() {
    // The defaults live in tpn-service (DEFAULT_SIM_EVENTS/SEED) and
    // the help summary hardcodes the rendered values; this pins them
    // together so changing the constants cannot silently leave stale
    // documentation behind.
    use timed_petri::service::{DEFAULT_SIM_EVENTS, DEFAULT_SIM_SEED};
    let out = stdout_of(&["help", "simulate"]);
    let expected = format!("defaults: {DEFAULT_SIM_EVENTS} events, seed 0x{DEFAULT_SIM_SEED:X}");
    assert!(out.contains(&expected), "{expected:?} in:\n{out}");
}

#[test]
fn per_command_usage_messages() {
    // `tpn help <cmd>` and `tpn <cmd> --help` print that command's usage
    let out = stdout_of(&["help", "simulate"]);
    assert!(
        out.contains("tpn simulate <net.tpn> [EVENTS [SEED]]"),
        "{out}"
    );
    assert_eq!(out, stdout_of(&["simulate", "--help"]));
    // a bad invocation fails with the *per-command* usage, not the
    // global one
    let out = tpn(&["analyze"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("tpn analyze <net.tpn> [TRANSITION..]"),
        "{err}"
    );
    assert!(
        !err.contains("tpn show <net.tpn>"),
        "global table not dumped: {err}"
    );
    // unknown help topics fail
    assert!(!tpn(&["help", "frobnicate"]).status.success());
}

#[test]
fn batch_emits_one_json_line_per_file() {
    let dir = format!("{}/tests/fixtures", env!("CARGO_MANIFEST_DIR"));
    let out = stdout_of(&["batch", &dir, "correctness"]);
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 1, "one fixture, one line:\n{out}");
    assert!(lines[0].contains(r#""file":"fig1.tpn""#), "{out}");
    assert!(lines[0].contains(r#""kind":"correctness""#), "{out}");
    assert!(lines[0].contains(r#""digest":""#), "{out}");
    // bad directory and bad kind fail cleanly
    assert!(!tpn(&["batch", "/nonexistent-dir"]).status.success());
    assert!(!tpn(&["batch", &dir, "frobnicate"]).status.success());
}

#[test]
fn show_prints_the_content_digest() {
    let out = stdout_of(&["show", &fixture()]);
    let line = out
        .lines()
        .find(|l| l.starts_with("digest "))
        .expect("digest line");
    assert_eq!(line.len(), "digest ".len() + 32, "{line}");
}
