//! Differential tests for the epoll serving tier (`crates/aio` +
//! `aio_server`): the threaded listener is the oracle — both front
//! ends sit on the same shared HTTP parser and the same
//! `Service`/route paths, so deterministic endpoints must come back
//! **byte-identical** across the two. On top of that, the epoll-only
//! behaviours: keep-alive, pipelining, chunked streaming, slow-client
//! deadlines, the connection cap, and graceful drain.
//!
//! Every test gates at runtime on `IoMode::epoll_supported()` so the
//! suite stays green on builds without the `aio-epoll` feature (CI's
//! `--no-default-features` check) and on non-Linux hosts.

mod common;

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use common::{fig1_text, start_server_with};
use timed_petri::aio::http1::{Response, ResponseParser};
use timed_petri::obs::validate::validate;
use timed_petri::service::{AioConfig, IoMode, ServerHandle, Service, ServiceConfig};

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/golden")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// The sweep spec fixture with the net text embedded in-body, the
/// shape `POST /sweep` takes (same splice as `tests/metrics.rs`).
fn sweep_body() -> String {
    let spec = fixture("sweep_spec.json");
    let without_brace = spec
        .trim_end()
        .strip_suffix('}')
        .unwrap()
        .trim_end()
        .to_string();
    format!(
        "{without_brace}, \"net\": {}}}",
        timed_petri::service::json::escape(&fig1_text())
    )
}

fn epoll_server(aio: AioConfig) -> (ServerHandle, SocketAddr, Arc<Service>) {
    start_server_with(ServiceConfig {
        io: IoMode::Epoll,
        aio,
        ..ServiceConfig::default()
    })
}

/// One `Connection: close` exchange, returning the **raw response
/// bytes** (status line, headers, body) — the byte-identity probe.
fn raw_close_exchange(addr: SocketAddr, request: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(request).expect("send");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read to EOF");
    raw
}

fn close_request(method: &str, target: &str, body: &str) -> Vec<u8> {
    format!(
        "{method} {target} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// A blocking keep-alive client over the shared response parser.
struct KeepAlive {
    stream: TcpStream,
    parser: ResponseParser,
}

impl KeepAlive {
    fn connect(addr: SocketAddr) -> KeepAlive {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        KeepAlive {
            stream,
            parser: ResponseParser::new(),
        }
    }

    fn send(&mut self, method: &str, target: &str, body: &str) {
        let req = format!(
            "{method} {target} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        self.stream.write_all(req.as_bytes()).expect("send");
    }

    fn send_raw(&mut self, bytes: &[u8]) {
        self.stream.write_all(bytes).expect("send raw");
    }

    fn read_response(&mut self) -> Response {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match self.parser.poll().expect("parse response") {
                Some(resp) if resp.status / 100 == 1 => continue,
                Some(resp) => return resp,
                None => {}
            }
            let n = self.stream.read(&mut chunk).expect("read");
            assert!(n > 0, "connection closed mid-response");
            self.parser.feed(&chunk[..n]);
        }
    }
}

/// Wait (bounded) for the reactor's open-connection gauge to settle
/// at `want` — client-side socket drops reach the server a beat later.
fn await_open(service: &Service, want: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if service.connections().scalars().open == want {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "open gauge stuck at {} (want {want})",
            service.connections().scalars().open
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

// ---------------------------------------------------------------------
// Differential: epoll vs threaded byte identity
// ---------------------------------------------------------------------

#[test]
fn epoll_serves_goldens_byte_identical_to_threaded() {
    if !IoMode::epoll_supported() {
        return;
    }
    let (threaded, taddr, _) = start_server_with(ServiceConfig::default());
    let (epoll, eaddr, _) = epoll_server(AioConfig::default());

    let fig1 = fig1_text();
    let exchanges: Vec<Vec<u8>> = vec![
        close_request("POST", "/analyze", &fig1),
        close_request("POST", "/graph", &fig1),
        close_request("POST", "/correctness", &fig1),
        close_request("POST", "/invariants", &fig1),
        close_request("POST", "/sweep", &sweep_body()),
        close_request("POST", "/sweep", &fixture("sweep_spec.json")),
        close_request("POST", "/analyze", "not a petri net"),
        close_request("GET", "/no/such/route", ""),
        // Parser-level rejections share error strings via the common
        // parser module, so even malformed input must match bytewise.
        b"BOGUS\r\n\r\n".to_vec(),
        b"GET /analyze HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 7\r\nConnection: close\r\n\r\nabcd".to_vec(),
    ];
    for request in &exchanges {
        let from_threaded = raw_close_exchange(taddr, request);
        let from_epoll = raw_close_exchange(eaddr, request);
        assert_eq!(
            from_threaded,
            from_epoll,
            "listener divergence for request:\n{}\nthreaded:\n{}\nepoll:\n{}",
            String::from_utf8_lossy(request),
            String::from_utf8_lossy(&from_threaded),
            String::from_utf8_lossy(&from_epoll),
        );
    }

    threaded.shutdown();
    epoll.shutdown();
}

// ---------------------------------------------------------------------
// Keep-alive and pipelining
// ---------------------------------------------------------------------

#[test]
fn keep_alive_pipelined_requests_share_one_connection() {
    if !IoMode::epoll_supported() {
        return;
    }
    let (handle, addr, service) = epoll_server(AioConfig::default());

    let mut client = KeepAlive::connect(addr);
    // Two requests in a single write: the parser must peel them off
    // the same buffer and the responses must come back in order.
    let fig1 = fig1_text();
    let mut pipelined = Vec::new();
    pipelined.extend_from_slice(
        &format!(
            "POST /analyze HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{fig1}",
            fig1.len()
        )
        .into_bytes(),
    );
    pipelined.extend_from_slice(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
    client.send_raw(&pipelined);

    let first = client.read_response();
    assert_eq!(first.status, 200);
    assert!(!first.close, "keep-alive response must not close");
    assert!(
        String::from_utf8_lossy(&first.body).contains("\"kind\":\"analyze\""),
        "responses out of order: first must be the analyze reply"
    );

    let second = client.read_response();
    assert_eq!(second.status, 200);
    assert!(!second.close);

    // The connection is still usable afterwards — proof nothing closed.
    client.send("GET", "/healthz", "");
    assert_eq!(client.read_response().status, 200);

    assert_eq!(service.connections().scalars().accepted, 1);
    drop(client);
    handle.shutdown();
}

#[test]
fn max_requests_per_conn_sends_connection_close() {
    if !IoMode::epoll_supported() {
        return;
    }
    let (handle, addr, _) = epoll_server(AioConfig {
        max_requests_per_conn: 2,
        ..AioConfig::default()
    });

    let mut client = KeepAlive::connect(addr);
    client.send("GET", "/healthz", "");
    let first = client.read_response();
    assert!(!first.close, "first response still under the cap");

    client.send("GET", "/healthz", "");
    let second = client.read_response();
    assert!(second.close, "request cap must force Connection: close");

    // And the server actually hangs up.
    let mut rest = Vec::new();
    client.stream.read_to_end(&mut rest).expect("EOF after cap");
    assert!(rest.is_empty());
    handle.shutdown();
}

// ---------------------------------------------------------------------
// Streaming writes
// ---------------------------------------------------------------------

#[test]
fn streamed_sweep_reassembles_to_the_threaded_body() {
    if !IoMode::epoll_supported() {
        return;
    }
    // Force the chunked path: the golden sweep body (~2 KB) is far
    // above a 256-byte threshold, and a 64-byte frame size forces many
    // partial-write round trips through the bounded out-buffer.
    let (epoll, eaddr, _) = epoll_server(AioConfig {
        stream_threshold: 256,
        write_chunk: 64,
        ..AioConfig::default()
    });
    let (threaded, taddr, _) = start_server_with(ServiceConfig::default());

    let spec = sweep_body();
    let mut client = KeepAlive::connect(eaddr);
    client.send("POST", "/sweep", &spec);
    let streamed = client.read_response();
    assert_eq!(streamed.status, 200);
    assert!(streamed.chunked, "body over threshold must stream chunked");
    assert!(!streamed.close, "streaming must not cost keep-alive");

    let raw = raw_close_exchange(taddr, &close_request("POST", "/sweep", &spec));
    let text = String::from_utf8(raw).unwrap();
    let oracle_body = &text[text.find("\r\n\r\n").unwrap() + 4..];
    assert_eq!(
        String::from_utf8(streamed.body).unwrap(),
        oracle_body,
        "de-chunked stream must reassemble to the threaded body"
    );

    // The same connection serves a follow-up request after streaming.
    client.send("GET", "/healthz", "");
    assert_eq!(client.read_response().status, 200);

    threaded.shutdown();
    epoll.shutdown();
}

// ---------------------------------------------------------------------
// Admission control and deadlines
// ---------------------------------------------------------------------

#[test]
fn slow_loris_is_cut_by_the_read_deadline() {
    if !IoMode::epoll_supported() {
        return;
    }
    let (handle, addr, service) = epoll_server(AioConfig {
        read_deadline_ms: 200,
        ..AioConfig::default()
    });

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // A request that never finishes: partial request line, then silence.
    stream.write_all(b"GET /anal").expect("partial send");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read");
    let text = String::from_utf8_lossy(&raw);
    assert!(
        text.starts_with("HTTP/1.1 400 "),
        "slow client must get 400, got:\n{text}"
    );
    assert!(text.contains("request read deadline exceeded"), "{text}");
    assert!(service.connections().scalars().timeouts >= 1);
    handle.shutdown();
}

#[test]
fn connection_cap_rejects_overflow_with_503() {
    if !IoMode::epoll_supported() {
        return;
    }
    let (handle, addr, service) = epoll_server(AioConfig {
        max_connections: 2,
        ..AioConfig::default()
    });

    // Fill the cap with two live keep-alive connections; completing a
    // request on each proves both are registered with the reactor.
    let mut first = KeepAlive::connect(addr);
    first.send("GET", "/healthz", "");
    assert_eq!(first.read_response().status, 200);
    let mut second = KeepAlive::connect(addr);
    second.send("GET", "/healthz", "");
    assert_eq!(second.read_response().status, 200);

    // The third is turned away at accept, before any request bytes.
    let mut overflow = TcpStream::connect(addr).expect("connect");
    overflow
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut raw = Vec::new();
    overflow.read_to_end(&mut raw).expect("read");
    let text = String::from_utf8_lossy(&raw);
    assert!(text.starts_with("HTTP/1.1 503 "), "{text}");
    assert!(text.contains("connection limit reached"), "{text}");
    let scalars = service.connections().scalars();
    assert_eq!(scalars.rejected, 1);
    assert_eq!(scalars.accepted, 2, "rejects must not count as accepts");

    // Freeing a slot readmits new connections.
    drop(first);
    await_open(&service, 1);
    let mut third = KeepAlive::connect(addr);
    third.send("GET", "/healthz", "");
    assert_eq!(third.read_response().status, 200);
    handle.shutdown();
}

#[test]
fn shutdown_drains_idle_connections() {
    if !IoMode::epoll_supported() {
        return;
    }
    let (handle, addr, service) = epoll_server(AioConfig::default());

    let mut idle = KeepAlive::connect(addr);
    idle.send("GET", "/healthz", "");
    assert_eq!(idle.read_response().status, 200);

    handle.shutdown();
    let scalars = service.connections().scalars();
    assert_eq!(scalars.open, 0, "drain must close every connection");
    assert!(scalars.drained >= 1, "idle connection counts as drained");

    // The client observes a clean EOF, not a mid-response cut.
    let mut rest = Vec::new();
    idle.stream.read_to_end(&mut rest).expect("EOF at drain");
    assert!(rest.is_empty());
}

// ---------------------------------------------------------------------
// Observability
// ---------------------------------------------------------------------

#[test]
fn connection_stats_surface_on_stats_and_metrics() {
    if !IoMode::epoll_supported() {
        return;
    }
    let (handle, addr, _) = epoll_server(AioConfig::default());

    let mut client = KeepAlive::connect(addr);
    client.send("GET", "/healthz", "");
    assert_eq!(client.read_response().status, 200);

    client.send("GET", "/stats", "");
    let stats = client.read_response();
    let stats_body = String::from_utf8(stats.body).unwrap();
    assert!(
        stats_body.contains("\"connections\":{\"open\":"),
        "{stats_body}"
    );
    assert!(stats_body.contains("\"accepted\":1"), "{stats_body}");

    client.send("GET", "/metrics", "");
    let metrics = client.read_response();
    let text = String::from_utf8(metrics.body).unwrap();
    validate(&text).unwrap_or_else(|e| panic!("{e}\n--- document ---\n{text}"));
    for family in [
        "tpn_connections_open",
        "tpn_connections_accepted_total",
        "tpn_connections_rejected_total",
        "tpn_connection_timeouts_total",
        "tpn_connections_drained_total",
        "tpn_connection_lifetime_seconds_bucket",
    ] {
        assert!(text.contains(family), "missing {family} in:\n{text}");
    }
    handle.shutdown();
}

// ---------------------------------------------------------------------
// Loadgen smoke (the CI gate: zero drops, clean drain)
// ---------------------------------------------------------------------

#[test]
fn loadgen_smoke_512_connections_zero_drops_clean_drain() {
    if !IoMode::epoll_supported() {
        return;
    }
    #[cfg(target_os = "linux")]
    {
        use tpn_bench::loadgen::{self, LoadConfig, RequestSpec};

        let (handle, addr, service) = epoll_server(AioConfig::default());
        let cfg = LoadConfig {
            connections: 512,
            requests: 2048,
            keep_alive: true,
            // `/slo` is unconditionally 200; `/healthz` flips to 503
            // when the burn-rate engine fires, which load can cause.
            mix: vec![RequestSpec::new("GET", "/slo", "")],
            deadline: Duration::from_secs(120),
        };
        let report = loadgen::run(addr, &cfg).expect("loadgen run");
        assert_eq!(report.errors, 0, "no request may be dropped: {report:?}");
        assert_eq!(report.ok, 2048, "every request answered 200: {report:?}");

        // All 512 sockets drop with the loadgen; the reactor must reap
        // every one — the open gauge returns to zero before shutdown.
        await_open(&service, 0);
        let scalars = service.connections().scalars();
        assert!(scalars.accepted >= 512, "scalars: {scalars:?}");
        assert_eq!(scalars.rejected, 0, "scalars: {scalars:?}");
        handle.shutdown();
        assert_eq!(service.connections().scalars().open, 0);
    }
}
