//! Shared helpers for the loopback integration suites (`service`,
//! `sweep`, `optimize`, `session`, `legacy_shim`): the raw HTTP/1.1
//! client, server bootstrap, fixture loading and flat-JSON counter
//! extraction. Each suite compiles its own copy (`mod common;`), so
//! unused items are expected per suite.
#![allow(dead_code)]

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

use timed_petri::service::{spawn, ServerHandle, Service, ServiceConfig};

/// The integration fixtures directory (`tests/fixtures`).
pub fn fixture_dir() -> String {
    format!("{}/tests/fixtures", env!("CARGO_MANIFEST_DIR"))
}

/// The paper's Figure-1 `.tpn` text.
pub fn fig1_text() -> String {
    std::fs::read_to_string(format!("{}/fig1.tpn", fixture_dir())).expect("fixture readable")
}

/// A default-config server on an ephemeral loopback port.
pub fn start_server() -> (ServerHandle, SocketAddr) {
    let (handle, addr, _) = start_server_with(ServiceConfig::default());
    (handle, addr)
}

/// Like [`start_server`] but with a caller-built config, also handing
/// back the shared [`Service`] so tests can drive in-process hooks
/// (e.g. manual retention-ring ticks via `Service::sample_now`).
pub fn start_server_with(config: ServiceConfig) -> (ServerHandle, SocketAddr, Arc<Service>) {
    let service = Arc::new(Service::new(config));
    let handle = spawn(Arc::clone(&service), "127.0.0.1:0").expect("bind ephemeral port");
    let addr = handle.addr();
    (handle, addr, service)
}

/// A minimal HTTP/1.1 client: one request, one `Connection: close`
/// response. Returns (status, body).
pub fn http(addr: SocketAddr, method: &str, target: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let request = format!(
        "{method} {target} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("receive");
    let status: u16 = response
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("status line in {response:?}"));
    let payload = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, payload)
}

/// Pull an unsigned counter out of a flat JSON document (first match).
pub fn json_counter(doc: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let rest = &doc[doc.find(&pat).unwrap_or_else(|| panic!("{key} in {doc}")) + pat.len()..];
    rest.chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("numeric counter")
}

/// Pull one stage's artifact counter out of the `/stats` document.
pub fn artifact_counter(stats: &str, stage: &str, which: &str) -> u64 {
    let pat = format!("\"{stage}\":{{");
    let start = stats
        .find(&pat)
        .unwrap_or_else(|| panic!("{stage} in {stats}"));
    let section = &stats[start..stats[start..].find('}').map(|e| start + e).unwrap()];
    json_counter(section, which)
}
