//! Correctness-side results (the paper's conclusion: timed reachability
//! graphs carry correctness proofs too): invariants, deadlock freedom,
//! safeness, liveness and reversibility of both protocol models — and
//! the *failure* modes when the protocol is mis-configured.

use timed_petri::prelude::*;
use timed_petri::protocols::{abp::abp, simple};
use tpn_net::invariant;

#[test]
fn simple_protocol_is_correct() {
    let proto = simple::paper();
    let trg = build_trg(&proto.net, &NumericDomain::new(), &TrgOptions::default()).unwrap();
    let report = tpn_reach::analyze(&trg, &proto.net);
    assert!(report.is_correct(), "{}", report.describe(&proto.net));
    assert_eq!(report.bound, 1);
}

#[test]
fn abp_is_correct() {
    let a = abp(&simple::Params::paper());
    let trg = build_trg(&a.net, &NumericDomain::new(), &TrgOptions::default()).unwrap();
    let report = tpn_reach::analyze(&trg, &a.net);
    assert!(report.is_correct(), "{}", report.describe(&a.net));
}

#[test]
fn protocol_t_semiflows_are_the_three_cycles() {
    // {t2,t3,t5} (packet lost), {t1,t2,t4,t6,t7,t8} (success),
    // {t2,t3,t4,t6,t9} (ack lost) — exactly the three cycles the
    // decision graph's edges compose.
    let proto = simple::paper();
    let flows = invariant::t_semiflows(&proto.net);
    let mut supports: Vec<Vec<String>> = flows
        .iter()
        .map(|f| {
            invariant::t_semiflow_transitions(f)
                .into_iter()
                .map(|t| proto.net.transition(t).name().to_string())
                .collect()
        })
        .collect();
    supports.sort();
    let mut expect = vec![
        vec!["t2", "t3", "t5"],
        vec!["t1", "t2", "t4", "t6", "t7", "t8"],
        vec!["t2", "t3", "t4", "t6", "t9"],
    ];
    for e in &mut expect {
        e.sort();
    }
    let mut expect: Vec<Vec<String>> = expect
        .into_iter()
        .map(|v| v.into_iter().map(String::from).collect())
        .collect();
    expect.sort();
    assert_eq!(supports, expect);
    for f in &flows {
        assert!(invariant::is_t_semiflow(&proto.net, &f.weights));
    }
}

#[test]
fn sender_state_machine_is_conserved() {
    // P-semiflow: sender_ready + awaiting_ack + ack_accepted = 1 — the
    // sender is always in exactly one of its three states.
    let proto = simple::paper();
    let flows = invariant::p_semiflows(&proto.net);
    let sender_flow = flows
        .iter()
        .find(|f| f.weights[proto.p[0].index()] != 0)
        .expect("sender invariant exists");
    assert_eq!(invariant::conserved_quantity(&proto.net, sender_flow), 1);
    let support = sender_flow.support();
    assert_eq!(support.len(), 3);
    // verify the invariant holds in every reachable state
    let trg = build_trg(&proto.net, &NumericDomain::new(), &TrgOptions::default()).unwrap();
    for s in trg.state_ids() {
        let m = trg.state(s).marking();
        let total = sender_flow
            .weighted_sum((0..m.num_places()).map(|p| m.tokens(tpn_net::PlaceId::from_index(p))));
        // Tokens can be "in flight" inside a firing transition, so the
        // weighted sum is ≤ 1 pointwise and returns to 1 whenever the
        // sender-side transitions are idle.
        assert!(total <= 1, "invariant violated at {s}");
    }
}

#[test]
fn too_short_timeout_breaks_the_protocol() {
    // Violating constraint (1): timeout < round-trip. The sender times
    // out while the packet/ACK is still in flight, retransmits, and a
    // second token enters the medium: the conflict-set restriction
    // breaks (or the net becomes unsafe). The engine must refuse rather
    // than silently produce wrong numbers.
    let mut params = simple::Params::paper();
    params.timeout = Rational::from_int(100); // < 226.9 round trip
    let proto = simple::numeric(&params);
    let result = build_trg(&proto.net, &NumericDomain::new(), &TrgOptions::default());
    match result {
        Err(tpn_reach::ReachError::MultipleFiring { .. }) => {}
        Ok(trg) => {
            // If exploration succeeds the graph must reveal the damage:
            // some reachable marking is no longer 1-safe.
            let report = tpn_reach::analyze(&trg, &proto.net);
            assert!(
                !report.unsafe_states.is_empty() || !report.is_correct(),
                "short timeout must be detectably wrong"
            );
        }
        Err(e) => panic!("unexpected error {e}"),
    }
}

#[test]
fn symbolic_and_numeric_correctness_agree() {
    let (sproto, cs) = simple::symbolic();
    let sdomain = SymbolicDomain::new(&sproto.net, cs);
    let strg = build_trg(&sproto.net, &sdomain, &TrgOptions::default()).unwrap();
    let sreport = tpn_reach::analyze(&strg, &sproto.net);
    assert!(sreport.is_correct(), "{}", sreport.describe(&sproto.net));

    let nproto = simple::paper();
    let ntrg = build_trg(&nproto.net, &NumericDomain::new(), &TrgOptions::default()).unwrap();
    let nreport = tpn_reach::analyze(&ntrg, &nproto.net);
    assert_eq!(sreport.bound, nreport.bound);
    assert_eq!(sreport.deadlocks.len(), nreport.deadlocks.len());
    assert_eq!(
        sreport.dead_transitions.len(),
        nreport.dead_transitions.len()
    );
}
