//! E1 — Figure 1: structural reproduction of the protocol net and its
//! enabling/firing-time table (Figure 1b).

use timed_petri::prelude::*;
use timed_petri::protocols::simple;

fn r(s: &str) -> Rational {
    s.parse().unwrap()
}

#[test]
fn figure_1b_time_table() {
    let proto = simple::paper();
    let expect: [(&str, &str, &str); 9] = [
        ("t1", "0", "1"),
        ("t2", "0", "1"),
        ("t3", "1000", "1"),
        ("t4", "0", "106.7"),
        ("t5", "0", "106.7"),
        ("t6", "0", "13.5"),
        ("t7", "0", "13.5"),
        ("t8", "0", "106.7"),
        ("t9", "0", "106.7"),
    ];
    for (name, e, f) in expect {
        let t = proto.net.transition_by_name(name).unwrap();
        let tr = proto.net.transition(t);
        assert_eq!(tr.enabling().known(), Some(&r(e)), "E({name})");
        assert_eq!(tr.firing().known(), Some(&r(f)), "F({name})");
    }
}

#[test]
fn three_conflict_sets_with_paper_frequencies() {
    let proto = simple::paper();
    let w = |name: &str| {
        let t = proto.net.transition_by_name(name).unwrap();
        *proto.net.transition(t).frequency().weight().unwrap()
    };
    // 1. {t4: 0.95, t5: 0.05} — 5% packet loss
    assert_eq!(w("t4"), r("0.95"));
    assert_eq!(w("t5"), r("0.05"));
    // 2. {t3: 0, t7: 1} — ACK receipt has priority over the timeout
    assert_eq!(w("t3"), r("0"));
    assert_eq!(w("t7"), r("1"));
    // 3. {t8: 0.95, t9: 0.05} — 5% ACK loss
    assert_eq!(w("t8"), r("0.95"));
    assert_eq!(w("t9"), r("0.05"));
}

#[test]
fn dot_export_is_complete() {
    let proto = simple::paper();
    let dot = tpn_net::to_dot(&proto.net);
    for t in 1..=9 {
        assert!(dot.contains(&format!("\"t{t}\"")), "missing t{t} in DOT");
    }
    for p in [
        "sender_ready",
        "packet_in_medium",
        "packet_delivered",
        "awaiting_ack",
        "ack_accepted",
        "ack_delivered",
        "ack_in_medium",
        "receiver_ready",
    ] {
        assert!(dot.contains(&format!("\"{p}\"")), "missing {p} in DOT");
    }
}

#[test]
fn tpn_roundtrip_preserves_analysis() {
    // Export the paper net through the .tpn text format, re-parse it and
    // verify the full analysis is unchanged — the formats are part of
    // the public interface.
    let proto = simple::paper();
    let text = proto.net.to_string();
    let reparsed = tpn_net::parse_tpn(&text).unwrap();
    let domain = NumericDomain::new();
    let trg1 = build_trg(&proto.net, &domain, &TrgOptions::default()).unwrap();
    let trg2 = build_trg(&reparsed, &domain, &TrgOptions::default()).unwrap();
    assert_eq!(trg1.num_states(), trg2.num_states());
    assert_eq!(trg1.num_edges(), trg2.num_edges());
    let dg1 = DecisionGraph::from_trg(&trg1, &domain).unwrap();
    let dg2 = DecisionGraph::from_trg(&trg2, &domain).unwrap();
    assert_eq!(dg1.num_edges(), dg2.num_edges());
    let t7a = proto.net.transition_by_name("t7").unwrap();
    let t7b = reparsed.transition_by_name("t7").unwrap();
    let p1 = Performance::new(&dg1, solve_rates(&dg1, 0).unwrap(), &domain).unwrap();
    let p2 = Performance::new(&dg2, solve_rates(&dg2, 0).unwrap(), &domain).unwrap();
    assert_eq!(p1.throughput(&dg1, t7a), p2.throughput(&dg2, t7b));
}
