//! Legacy-route shim equivalence: after the Session redesign, every
//! pre-redesign endpoint must keep serving **byte-identical** bodies.
//!
//! The files under `tests/fixtures/golden/` were captured from the
//! pre-Session daemon (PR 4 head) running against the Figure-1 fixture
//! — response bodies of every legacy endpoint, the canonical
//! sweep/optimize specs they used, and the two error shapes. This
//! suite replays the same requests against the current server (real
//! loopback HTTP), the in-process API and the CLI, and compares bytes.

use std::process::Command;

mod common;
use common::{fig1_text, fixture_dir, http, start_server};

fn golden(name: &str) -> String {
    let path = format!("{}/golden/{name}", fixture_dir());
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

/// The spec JSON plus a `"net"` member, assembled without re-encoding
/// the spec (the goldens were captured exactly this way).
fn with_net(spec: &str, net: &str) -> String {
    let trimmed = spec.trim_end();
    let without_brace = trimmed
        .strip_suffix('}')
        .expect("spec is a JSON object")
        .trim_end();
    format!(
        "{without_brace}, \"net\": {}}}",
        timed_petri::service::json::escape(net)
    )
}

#[test]
fn analysis_endpoints_match_pre_redesign_bytes() {
    let (handle, addr) = start_server();
    let net = fig1_text();
    for (target, golden_name) in [
        ("/analyze", "analyze.json"),
        ("/graph", "graph.json"),
        ("/correctness", "correctness.json"),
        ("/invariants", "invariants.json"),
        ("/simulate?events=20000&seed=7", "simulate_20000_7.json"),
    ] {
        let (status, body) = http(addr, "POST", target, &net);
        assert_eq!(status, 200, "{target}: {body}");
        assert_eq!(
            body,
            golden(golden_name),
            "{target} drifted from the pre-redesign bytes"
        );
    }
    handle.shutdown();
}

#[test]
fn sweep_and_optimize_endpoints_match_pre_redesign_bytes() {
    let (handle, addr) = start_server();
    let net = fig1_text();
    for (target, spec_name, golden_name) in [
        ("/sweep", "sweep_spec.json", "sweep.json"),
        ("/optimize", "optimize_spec.json", "optimize.json"),
    ] {
        let body = with_net(&golden(spec_name), &net);
        let (status, reply) = http(addr, "POST", target, &body);
        assert_eq!(status, 200, "{target}: {reply}");
        assert_eq!(
            reply,
            golden(golden_name),
            "{target} drifted from the pre-redesign bytes"
        );
    }
    handle.shutdown();
}

#[test]
fn error_bodies_match_pre_redesign_bytes() {
    let (handle, addr) = start_server();
    // .tpn parse failure: 400 with the parser's message
    let (status, body) = http(addr, "POST", "/analyze", "this is not a net");
    assert_eq!(status, 400);
    assert_eq!(body, golden("error_parse.json"));
    // parses but deadlocks: 422 with the analysis message
    let dead = "net d\nplace a init 1\nplace b\ntrans t in a out b firing 1";
    let (status, body) = http(addr, "POST", "/analyze", dead);
    assert_eq!(status, 422);
    assert_eq!(body, golden("error_analysis.json"));
    handle.shutdown();
}

#[test]
fn in_process_run_matches_pre_redesign_bytes() {
    use timed_petri::service::{run, RequestKind};
    let net = timed_petri::net::parse_tpn(&fig1_text()).unwrap();
    assert_eq!(
        run(&net, RequestKind::Analyze).unwrap(),
        golden("analyze.json")
    );
    assert_eq!(run(&net, RequestKind::Graph).unwrap(), golden("graph.json"));
    assert_eq!(
        run(
            &net,
            RequestKind::Simulate {
                events: 20000,
                seed: 7
            }
        )
        .unwrap(),
        golden("simulate_20000_7.json")
    );
}

#[test]
fn cli_sweep_and_optimize_match_pre_redesign_bytes() {
    let fig1 = format!("{}/fig1.tpn", fixture_dir());
    for (cmd, spec_name, golden_name) in [
        ("sweep", "sweep_spec.json", "sweep.json"),
        ("optimize", "optimize_spec.json", "optimize.json"),
    ] {
        let spec_path = format!("{}/golden/{spec_name}", fixture_dir());
        let out = Command::new(env!("CARGO_BIN_EXE_tpn"))
            .args([cmd, &fig1, &spec_path])
            .output()
            .expect("tpn runs");
        assert!(
            out.status.success(),
            "tpn {cmd}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8(out.stdout).unwrap();
        assert_eq!(
            stdout.trim_end(),
            golden(golden_name),
            "tpn {cmd} drifted from the pre-redesign bytes"
        );
    }
}
