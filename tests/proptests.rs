//! Cross-crate property tests: the three engines (numeric reachability,
//! symbolic reachability, discrete-event simulation) must agree with
//! each other on randomly generated models.

use proptest::prelude::*;
use timed_petri::prelude::*;
use timed_petri::protocols::{families, simple};
use tpn_reach::EdgeKind;

/// Random stage times for a ring of 1..6 stages.
fn cycle_times() -> impl Strategy<Value = Vec<Rational>> {
    proptest::collection::vec((1i128..=50, 1i128..=4), 1..6)
        .prop_map(|v| v.into_iter().map(|(n, d)| Rational::new(n, d)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cycle_total_time_is_the_sum_of_stages(times in cycle_times()) {
        let net = families::cycle(&times);
        let domain = NumericDomain::new();
        let trg = build_trg(&net, &domain, &TrgOptions::default()).unwrap();
        let dg = DecisionGraph::from_trg(&trg, &domain).unwrap();
        prop_assert_eq!(dg.num_edges(), 1);
        let total: Rational = times.iter().copied().sum();
        prop_assert_eq!(&dg.edges()[0].delay, &total);
        // throughput of stage 0 is 1/total
        let rates = solve_rates(&dg, 0).unwrap();
        let perf = Performance::new(&dg, rates, &domain).unwrap();
        let t0 = net.transition_by_name("advance0").unwrap();
        prop_assert_eq!(perf.throughput(&dg, t0), total.recip());
    }

    #[test]
    fn simulator_matches_analysis_exactly_on_deterministic_rings(times in cycle_times()) {
        let net = families::cycle(&times);
        let total: Rational = times.iter().copied().sum();
        let horizon = total * Rational::from_int(25);
        let stats = simulate(
            &net,
            &SimOptions { max_time: Some(horizon), max_events: 0, ..SimOptions::default() },
        ).unwrap();
        let t0 = net.transition_by_name("advance0").unwrap();
        prop_assert_eq!(stats.completions(t0), 25);
    }

    #[test]
    fn symbolic_instantiation_reproduces_numeric_trg(times in cycle_times()) {
        // Build the same ring with unknown times + equality constraints
        // pinning them to the sampled values; the symbolic TRG must have
        // the same shape and instantiate to the same delays.
        let numeric_net = families::cycle(&times);
        let mut b = NetBuilder::new("symring");
        let places: Vec<_> = (0..times.len())
            .map(|i| b.place(&format!("s{i}"), u32::from(i == 0)))
            .collect();
        for i in 0..times.len() {
            let next = (i + 1) % times.len();
            b.transition(&format!("advance{i}"))
                .input(places[i])
                .output(places[next])
                .firing_unknown()
                .add();
        }
        let sym_net = b.build().unwrap();
        let mut cs = ConstraintSet::new();
        let mut at = Assignment::new();
        for (i, t) in times.iter().enumerate() {
            let s = tpn_net::symbols::firing(&format!("advance{i}"));
            cs.assume_eq(LinExpr::symbol(s), LinExpr::constant(*t));
            at.set(s, *t);
        }
        let sdomain = SymbolicDomain::new(&sym_net, cs);
        let strg = build_trg(&sym_net, &sdomain, &TrgOptions::default()).unwrap();
        let ntrg = build_trg(&numeric_net, &NumericDomain::new(), &TrgOptions::default()).unwrap();
        prop_assert_eq!(strg.num_states(), ntrg.num_states());
        prop_assert_eq!(strg.num_edges(), ntrg.num_edges());
        let mut sdelays: Vec<Rational> = strg
            .all_edges()
            .map(|e| e.delay.eval(&at).unwrap())
            .collect();
        let mut ndelays: Vec<Rational> = ntrg.all_edges().map(|e| e.delay).collect();
        sdelays.sort();
        ndelays.sort();
        prop_assert_eq!(sdelays, ndelays);
    }

    #[test]
    fn lossy_chain_rates_are_a_probability_flow(
        hops in 1usize..5,
        loss_num in 1i128..=9,
    ) {
        let loss = Rational::new(loss_num, 10);
        let (net, arrive) = families::lossy_chain(hops, loss, Rational::from_int(2));
        let domain = NumericDomain::new();
        let trg = build_trg(&net, &domain, &TrgOptions::default()).unwrap();
        let dg = DecisionGraph::from_trg(&trg, &domain).unwrap();
        let rates = solve_rates(&dg, 0).unwrap();
        // the defining fixed point holds everywhere
        for (ei, e) in dg.edges().iter().enumerate() {
            let inflow: Rational = dg.edges_into(e.from).iter().map(|&i| *rates.rate(i)).sum();
            prop_assert_eq!(*rates.rate(ei), e.prob * inflow);
        }
        // analytic success probability per attempt: (1-loss)^hops; the
        // arrive edge's rate relative to the hop-0 inflow must match.
        let perf = Performance::new(&dg, rates, &domain).unwrap();
        let hop0 = net.transition_by_name("hop0").unwrap();
        let drop0 = net.transition_by_name("drop0").unwrap();
        let arrive_rate = perf.throughput(&dg, arrive);
        let attempt_rate = perf.throughput(&dg, hop0) + perf.throughput(&dg, drop0);
        let success = (Rational::ONE - loss).pow(hops as i32);
        prop_assert_eq!(arrive_rate / attempt_rate, success);
    }

    #[test]
    fn fork_join_cycle_time_is_max_branch(n in 1usize..6) {
        // fork (1) + max branch (n) + join (1)
        let net = families::fork_join(n);
        let domain = NumericDomain::new();
        let trg = build_trg(&net, &domain, &TrgOptions::default()).unwrap();
        let dg = DecisionGraph::from_trg(&trg, &domain).unwrap();
        prop_assert_eq!(dg.num_edges(), 1);
        let expect = Rational::from_int(1 + n as i128 + 1);
        prop_assert_eq!(&dg.edges()[0].delay, &expect);
        // all elapse steps in the TRG are positive
        for e in trg.all_edges() {
            if e.kind == EdgeKind::Elapse {
                prop_assert!(e.delay.is_positive());
            }
        }
    }

    #[test]
    fn protocol_throughput_expression_is_valid_across_parameters(
        timeout in 230i128..3000,
        packet in 1i128..=100,
        ack in 1i128..=100,
        handling in 1i128..=20,
        loss_pct in 0i128..=60,
    ) {
        // Instantiate the *symbolically derived* throughput at random
        // parameters satisfying constraint (1) and compare with a fresh
        // numeric analysis at the same parameters: the expression is
        // valid for every admissible assignment, not just Figure 1b.
        let params = simple::Params {
            timeout: Rational::from_int(timeout.max(packet + ack + handling + 1)),
            sender_step: Rational::ONE,
            packet_time: Rational::from_int(packet),
            ack_handling: Rational::from_int(handling),
            ack_time: Rational::from_int(ack),
            packet_loss: Rational::new(loss_pct, 100),
            ack_loss: Rational::new(loss_pct, 100),
        };
        prop_assume!(params.satisfies_timeout_constraint());

        // numeric analysis
        let proto = simple::numeric(&params);
        let domain = NumericDomain::new();
        let trg = build_trg(&proto.net, &domain, &TrgOptions::default()).unwrap();
        let dg = DecisionGraph::from_trg(&trg, &domain).unwrap();
        let rates = solve_rates(&dg, 0).unwrap();
        let perf = Performance::new(&dg, rates, &domain).unwrap();
        let numeric_t = perf.throughput(&dg, proto.t[6]);

        // symbolic expression, derived once, instantiated here
        let (sproto, cs) = simple::symbolic();
        let sdomain = SymbolicDomain::new(&sproto.net, cs);
        let strg = build_trg(&sproto.net, &sdomain, &TrgOptions::default()).unwrap();
        let sdg = DecisionGraph::from_trg(&strg, &sdomain).unwrap();
        let srates = solve_rates(&sdg, 0).unwrap();
        let sperf = Performance::new(&sdg, srates, &sdomain).unwrap();
        let expr = sperf.throughput(&sdg, sproto.t[6]);

        let sym = tpn_net::symbols::enabling;
        let symf = tpn_net::symbols::firing;
        let symq = tpn_net::symbols::frequency;
        let mut at = Assignment::new();
        at.set(sym("t3"), params.timeout);
        at.set(symf("t1"), params.sender_step);
        at.set(symf("t2"), params.sender_step);
        at.set(symf("t3"), params.sender_step);
        at.set(symf("t4"), params.packet_time);
        at.set(symf("t5"), params.packet_time);
        at.set(symf("t6"), params.ack_handling);
        at.set(symf("t7"), params.ack_handling);
        at.set(symf("t8"), params.ack_time);
        at.set(symf("t9"), params.ack_time);
        at.set(symq("t4"), Rational::ONE - params.packet_loss);
        at.set(symq("t5"), params.packet_loss);
        at.set(symq("t8"), Rational::ONE - params.ack_loss);
        at.set(symq("t9"), params.ack_loss);
        prop_assert_eq!(expr.eval(&at), Some(numeric_t));
    }
}

/// One shared base session over the paper's Figure-1 protocol. The
/// full symbolic lift is memoized inside the session, so every
/// re-timing case below substitutes through the same skeleton — which
/// is exactly the code path `POST /whatif` exercises.
fn fig1_base() -> &'static Session {
    static BASE: std::sync::OnceLock<Session> = std::sync::OnceLock::new();
    BASE.get_or_init(|| Session::new(simple::paper().net, SessionOptions::new()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn retimed_ring_sessions_are_byte_identical_to_cold_ones(
        pairs in proptest::collection::vec(
            ((1i128..=50, 1i128..=4), (1i128..=50, 1i128..=4)), 1..6)
    ) {
        use timed_petri::service::run_with_session;
        let times: Vec<Rational> =
            pairs.iter().map(|((n, d), _)| Rational::new(*n, *d)).collect();
        let retimes: Vec<Rational> =
            pairs.iter().map(|(_, (n, d))| Rational::new(*n, *d)).collect();
        let base = Session::new(families::cycle(&times), SessionOptions::new());
        let mut delta = TimingAssignment::new();
        for (i, t) in retimes.iter().enumerate() {
            delta.set(format!("F(advance{i})"), *t);
        }
        // A 1-token ring has no timing races, so every positive
        // retiming stays inside the lift's validity region.
        let retimed = base.retimed(&delta).unwrap();
        let cold = Session::new(
            base.net().with_timing(&delta).unwrap(),
            SessionOptions::new(),
        );
        prop_assert_eq!(retimed.net().digest(), cold.net().digest());
        for kind in [
            RequestKind::Analyze,
            RequestKind::Graph,
            RequestKind::Correctness,
            RequestKind::Invariants,
        ] {
            prop_assert_eq!(
                run_with_session(&retimed, kind).unwrap(),
                run_with_session(&cold, kind).unwrap(),
                "kind {}",
                kind.name()
            );
        }
    }

    #[test]
    fn retimed_protocol_timeouts_match_cold_sessions(timeout in 250i128..=5000) {
        use timed_petri::service::run_with_session;
        let base = fig1_base();
        let delta = TimingAssignment::new().with("E(t3)", Rational::from_int(timeout));
        let retimed = base.retimed(&delta).unwrap();
        let cold = Session::new(
            base.net().with_timing(&delta).unwrap(),
            SessionOptions::new(),
        );
        prop_assert_eq!(retimed.net().digest(), cold.net().digest());
        prop_assert_eq!(
            run_with_session(&retimed, RequestKind::Analyze).unwrap(),
            run_with_session(&cold, RequestKind::Analyze).unwrap()
        );
    }

    #[test]
    fn out_of_region_retimings_are_rejected_with_a_structured_error(
        timeout in 1i128..=200
    ) {
        // Below the ACK round trip the timeout/ACK race resolves the
        // other way: the memoized lift's validity region excludes the
        // point and the rejection must say so (not a parse or pipeline
        // failure — the distinction drives the 400-vs-422 mapping).
        let delta = TimingAssignment::new().with("E(t3)", Rational::from_int(timeout));
        match fig1_base().retimed(&delta) {
            Err(RetimeError::OutOfRegion(m)) => prop_assert!(!m.is_empty()),
            other => prop_assert!(
                false,
                "expected OutOfRegion, got {:?}",
                other.map(|_| "a session")
            ),
        }
    }
}
