//! Acceptance suite for the retention/SLO layer (PR 8): the
//! `/metrics/history` document must reconstruct request rates and
//! windowed quantiles from the retention ring to match client-side
//! measurement; the graded `/healthz` must transition
//! `ok → degraded → ok` (and ride 503 when unhealthy) as injected
//! latency burns an objective's budget, with the offending trace
//! captured in `/debug/slow`; `GET /slo` publishes the policy; and
//! the `tpn top` / `tpn stats --watch` dashboards render it all.

use std::process::Command;
use std::time::{Duration, Instant};

use timed_petri::obs::{Objective, BUCKET_BOUNDS_NS};
use timed_petri::service::{Endpoint, Json, ServiceConfig, SloConfig};

mod common;
use common::{fig1_text, http, start_server, start_server_with};

/// A config whose retention ring is driven manually (no sampler
/// thread): deterministic frame timelines for the tests below.
fn manual_sampling() -> ServiceConfig {
    ServiceConfig {
        sample_interval_ms: 0,
        ..ServiceConfig::default()
    }
}

/// The histogram bucket a latency falls in — quantiles interpolate
/// inside one bucket, so "within one bucket" is the resolution at
/// which server-side and client-side measurements can be compared.
fn bucket_index(ns: u64) -> usize {
    BUCKET_BOUNDS_NS.partition_point(|&bound| bound < ns)
}

/// A numeric column of the history document as `f64`s (nulls → None).
fn column(doc: &Json, endpoint: &str, key: &str) -> Vec<Option<f64>> {
    doc.get("endpoints")
        .and_then(|e| e.get(endpoint))
        .and_then(|e| e.get(key))
        .and_then(|c| c.as_arr())
        .unwrap_or_else(|| panic!("endpoints.{endpoint}.{key} missing"))
        .iter()
        .map(|v| v.as_num().and_then(|n| n.parse().ok()))
        .collect()
}

/// Acceptance: rates and quantiles served by `/metrics/history` are
/// reconstructed from ring deltas, and they match what the client
/// measured — exactly for request counts (`req_s × dt_s` sums back to
/// the number of requests sent), within one histogram bucket for the
/// windowed p99.
#[test]
fn history_reconstructs_rates_and_windowed_p99() {
    let (handle, addr, service) = start_server_with(manual_sampling());
    let net = fig1_text();
    service.sample_now(); // baseline frame

    for _ in 0..20 {
        let (s, _) = http(addr, "POST", "/analyze", &net);
        assert_eq!(s, 200);
    }
    // /simulate runs long enough (one cold million-event run) that
    // loopback overhead cannot move the client-side p99 more than a
    // neighbouring bucket from the server-side histogram.
    let mut client_ns: Vec<u64> = Vec::new();
    for _ in 0..5 {
        let started = Instant::now();
        let (s, _) = http(addr, "POST", "/simulate", &net);
        assert_eq!(s, 200);
        client_ns.push(started.elapsed().as_nanos() as u64);
    }
    // The decimator keeps frames at least one step apart — space the
    // second frame a full second from the baseline.
    std::thread::sleep(Duration::from_millis(1_050));
    service.sample_now(); // frame holding all the traffic

    let (s, body) = http(addr, "GET", "/metrics/history?window=300&step=1", "");
    assert_eq!(s, 200, "{body}");
    let doc = Json::parse(&body).expect("history parses");
    let dt_s: Vec<f64> = doc
        .get("dt_s")
        .and_then(|d| d.as_arr())
        .expect("dt_s")
        .iter()
        .map(|v| v.as_num().unwrap().parse().unwrap())
        .collect();
    assert!(!dt_s.is_empty(), "{body}");

    // req/s × interval length reconstructs the exact request counts.
    for (endpoint, sent) in [("analyze", 20.0), ("simulate", 5.0)] {
        let total: f64 = column(&doc, endpoint, "req_s")
            .iter()
            .zip(&dt_s)
            .map(|(r, dt)| r.unwrap_or(0.0) * dt)
            .sum();
        assert!(
            (total - sent).abs() < 0.01,
            "{endpoint}: reconstructed {total}, sent {sent}\n{body}"
        );
    }

    // Windowed p99 vs the client's own p99 (max of 5 samples): the
    // same request dominates both, so they land within one bucket.
    let server_p99 = column(&doc, "simulate", "p99_ns")
        .iter()
        .rev()
        .flatten()
        .next()
        .copied()
        .unwrap_or_else(|| panic!("no simulate p99 in {body}"));
    client_ns.sort_unstable();
    let client_p99 = *client_ns.last().unwrap();
    let (sb, cb) = (bucket_index(server_p99 as u64), bucket_index(client_p99));
    assert!(
        cb >= sb && cb - sb <= 1,
        "server p99 {server_p99}ns (bucket {sb}) vs client p99 {client_p99}ns (bucket {cb})"
    );
    handle.shutdown();
}

/// Acceptance: injecting latency past an endpoint's objective turns
/// `/healthz` from `ok` to `degraded` (burn thresholds configured so
/// it cannot reach `unhealthy`), the offending trace lands in
/// `/debug/slow` with its threshold and digest, and once the burn
/// windows move past the bad period health returns to `ok` — with the
/// byte-stable pre-SLO body.
#[test]
fn healthz_degrades_and_recovers_with_injected_latency() {
    let mut config = manual_sampling();
    config.slo = SloConfig {
        fast_window_s: 1,
        slow_window_s: 1,
        degraded_burn: 0.5,
        unhealthy_burn: 1e12,
        ..SloConfig::default()
    };
    // A 1ns latency objective: every /analyze is over budget.
    config.slo.overrides.push((
        Endpoint::Analyze,
        Some(Objective {
            latency_ns: 1,
            latency_target: 0.99,
            error_target: 0.01,
        }),
    ));
    let (handle, addr, service) = start_server_with(config);
    service.sample_now();

    let (s, body) = http(addr, "GET", "/healthz", "");
    assert_eq!((s, body.as_str()), (200, r#"{"status":"ok"}"#));

    let (s, _) = http(addr, "POST", "/analyze", &fig1_text());
    assert_eq!(s, 200);
    let (s, body) = http(addr, "GET", "/healthz", "");
    assert_eq!(s, 200, "degraded is not an outage: {body}");
    assert!(body.contains(r#""status":"degraded""#), "{body}");
    assert!(body.contains(r#""endpoint":"analyze""#), "{body}");
    assert!(body.contains(r#""dimension":"latency""#), "{body}");
    assert!(body.contains(r#""fast_burn":"#), "{body}");

    // The watchdog captured the offending request with its threshold
    // and the net digest it was annotated with.
    let (s, slow) = http(addr, "GET", "/debug/slow", "");
    assert_eq!(s, 200);
    assert!(slow.contains(r#""endpoint":"analyze""#), "{slow}");
    assert!(slow.contains(r#""threshold_ns":1"#), "{slow}");
    assert!(slow.contains(r#""digest":""#), "{slow}");
    assert!(slow.contains(r#""spans":"#), "{slow}");

    // A post-incident frame plus one window length of quiet: both
    // burn windows now start after the slow request, health recovers.
    service.sample_now();
    std::thread::sleep(Duration::from_millis(1_100));
    let (s, body) = http(addr, "GET", "/healthz", "");
    assert_eq!((s, body.as_str()), (200, r#"{"status":"ok"}"#));
    handle.shutdown();
}

/// With the default burn thresholds a total budget blowout (every
/// request over the objective) breaches both windows at once:
/// `unhealthy`, riding HTTP 503 so load balancers can act unparsed.
#[test]
fn healthz_unhealthy_rides_503() {
    let mut config = manual_sampling();
    config.slo.overrides.push((
        Endpoint::Analyze,
        Some(Objective {
            latency_ns: 1,
            latency_target: 0.99,
            error_target: 0.01,
        }),
    ));
    let (handle, addr, service) = start_server_with(config);
    service.sample_now();
    let (s, _) = http(addr, "POST", "/analyze", &fig1_text());
    assert_eq!(s, 200);
    let (s, body) = http(addr, "GET", "/healthz", "");
    assert_eq!(s, 503, "{body}");
    assert!(body.contains(r#""status":"unhealthy""#), "{body}");
    handle.shutdown();
}

/// `GET /slo` publishes the policy and per-endpoint objectives with
/// their current windowed burns.
#[test]
fn slo_document_lists_policy_and_objectives() {
    let (handle, addr) = start_server();
    let (s, body) = http(addr, "GET", "/slo", "");
    assert_eq!(s, 200);
    for expected in [
        r#""status":"ok""#,
        r#""fast_window_s":300"#,
        r#""slow_window_s":3600"#,
        r#""degraded_burn":6"#,
        r#""unhealthy_burn":14.4"#,
        r#""endpoint":"analyze""#,
        r#""latency_ms":250"#,
        r#""latency_target":0.99"#,
        r#""error_target":0.01"#,
        r#""latency_burn":"#,
        r#""error_burn":"#,
    ] {
        assert!(body.contains(expected), "missing {expected} in {body}");
    }
    // Every objective carries both windows.
    assert!(body.contains(r#""fast":{"requests":"#), "{body}");
    assert!(body.contains(r#""slow":{"requests":"#), "{body}");
    handle.shutdown();
}

/// `/metrics/history` document shape over a live server, plus the
/// parameter validation contract: window in 1..=86400, step in
/// 1..=window, at most 2000 intervals, numeric values only.
#[test]
fn history_document_shape_and_param_validation() {
    let (handle, addr, service) = start_server_with(manual_sampling());
    service.sample_now();
    let (s, _) = http(addr, "POST", "/analyze", &fig1_text());
    assert_eq!(s, 200);
    service.sample_now();

    let (s, body) = http(addr, "GET", "/metrics/history", "");
    assert_eq!(s, 200, "{body}");
    let doc = Json::parse(&body).expect("history parses");
    for key in [
        "now_ms",
        "window_s",
        "step_s",
        "samples",
        "t_ms",
        "dt_s",
        "service",
        "process",
        "endpoints",
    ] {
        assert!(doc.get(key).is_some(), "missing {key} in {body}");
    }
    // Defaults: 5-minute window at 5s steps.
    assert!(body.contains(r#""window_s":300"#), "{body}");
    assert!(body.contains(r#""step_s":5"#), "{body}");
    let service_cols = doc.get("service").unwrap();
    assert!(service_cols.get("req_s").is_some(), "{body}");
    assert!(service_cols.get("cache_hit_ratio").is_some(), "{body}");
    let process = doc.get("process").unwrap();
    for key in ["rss_bytes", "open_fds", "threads"] {
        assert!(process.get(key).is_some(), "missing process.{key}");
    }

    for bad in [
        "/metrics/history?window=0",
        "/metrics/history?window=90000",
        "/metrics/history?window=10&step=20",
        "/metrics/history?window=10&step=0",
        "/metrics/history?window=86400&step=1",
        "/metrics/history?window=abc",
        "/metrics/history?step=xyz",
    ] {
        let (s, body) = http(addr, "GET", bad, "");
        assert_eq!(s, 400, "{bad} should be rejected: {body}");
    }
    handle.shutdown();
}

/// `tpn top --ticks 1` renders one dashboard frame: headline
/// sparklines plus an aligned per-endpoint table fed by
/// `/metrics/history` and `/slo`.
#[test]
fn tpn_top_renders_one_dashboard_frame() {
    let (handle, addr, service) = start_server_with(manual_sampling());
    service.sample_now();
    let (s, _) = http(addr, "POST", "/analyze", &fig1_text());
    assert_eq!(s, 200);
    std::thread::sleep(Duration::from_millis(1_050));
    service.sample_now();

    let out = Command::new(env!("CARGO_BIN_EXE_tpn"))
        .args([
            "top",
            &addr.to_string(),
            "--ticks",
            "1",
            "--window",
            "60",
            "--interval",
            "1",
        ])
        .output()
        .expect("tpn top runs");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{text}\n{:?}", out);
    assert!(text.contains("tpn top —"), "{text}");
    assert!(text.contains("status ok"), "{text}");
    assert!(text.contains("req/s"), "{text}");
    assert!(text.contains("cache hit"), "{text}");
    assert!(text.contains("rss"), "{text}");
    // The endpoint table names the analyze traffic with its quantiles
    // and burn columns.
    assert!(text.contains("endpoint"), "{text}");
    assert!(text.contains("analyze"), "{text}");
    assert!(text.contains("p99"), "{text}");
    assert!(text.contains("fast"), "{text}");
    // Piped output carries no ANSI clear codes.
    assert!(!text.contains('\u{1b}'), "{text}");
    handle.shutdown();
}

/// `tpn stats --watch N --ticks K` shares the redraw loop: K frames
/// of the aligned counter table on one process run.
#[test]
fn tpn_stats_watch_redraws_frames() {
    let (handle, addr) = start_server();
    let (s, _) = http(addr, "POST", "/analyze", &fig1_text());
    assert_eq!(s, 200);

    let out = Command::new(env!("CARGO_BIN_EXE_tpn"))
        .args(["stats", &addr.to_string(), "--watch", "1", "--ticks", "2"])
        .output()
        .expect("tpn stats --watch runs");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{text}\n{:?}", out);
    // Two frames → the per-frame keys render exactly twice.
    assert_eq!(text.matches("process.version").count(), 2, "{text}");
    assert_eq!(text.matches("process.uptime_seconds").count(), 2, "{text}");
    assert!(!text.contains('\u{1b}'), "{text}");
    handle.shutdown();
}
