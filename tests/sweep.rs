//! Acceptance tests for the parameter-sweep subsystem on the paper's
//! Figure-1 protocol:
//!
//! * a ≥1000-point grid over the symbolic throughput expression where
//!   the compiled `f64` backend matches exact evaluation to 1e-9
//!   relative error at every point;
//! * the daemon's `POST /sweep` response is byte-identical to the
//!   `tpn sweep` CLI output for the same net and spec (two different
//!   processes — this also pins down that compilation order does not
//!   depend on symbol interning order);
//! * `/stats` exposes the sweep counters, and a repeated sweep is a
//!   cache hit with no recompilation.

use std::process::Command;
use std::sync::Arc;

use timed_petri::prelude::*;
use timed_petri::service::{json, spawn, Json, Service, ServiceConfig, SweepSpec};
use tpn_net::symbols;

mod common;
use common::{fig1_text, http, json_counter};

/// The spec used throughout: 251 timeout values (300..2050 in steps
/// of 7, so the paper's E(t3)=1000 is on the grid) × 4 packet-loss
/// weights = 1004 grid points over the t7 throughput.
fn spec_text(backend: &str) -> String {
    format!(
        r#"{{"targets":["throughput:t7"],"sweep":[{{"symbol":"E(t3)","from":"300","to":"2050","steps":251}},{{"symbol":"f(t5)","values":["1/100","1/20","1/10","1/5"]}}],"backend":"{backend}"}}"#
    )
}

fn parse_spec(backend: &str) -> SweepSpec {
    SweepSpec::from_json(&Json::parse(&spec_text(backend)).unwrap()).unwrap()
}

/// Pull `(coordinates, values)` out of a response document.
fn rows_of(body: &str) -> Vec<(Vec<Rational>, Vec<Json>)> {
    let doc = Json::parse(body).expect("response is valid JSON");
    doc.get("rows")
        .and_then(Json::as_arr)
        .expect("rows array")
        .iter()
        .map(|row| {
            let pair = row.as_arr().expect("row is [coords, values]");
            let coords = pair[0]
                .as_arr()
                .unwrap()
                .iter()
                .map(|c| c.as_str().unwrap().parse::<Rational>().unwrap())
                .collect();
            (coords, pair[1].as_arr().unwrap().to_vec())
        })
        .collect()
}

#[test]
fn f64_backend_matches_exact_to_1e9_on_a_1000_point_grid() {
    let net = tpn_net::parse_tpn(&fig1_text()).unwrap();
    let (fast_body, fast_points) = timed_petri::service::sweep_json(
        &timed_petri::session::Session::new(
            net.clone(),
            timed_petri::session::SessionOptions::new()
                .threads(4)
                .max_points(1_000_000),
        ),
        &parse_spec("f64"),
    )
    .unwrap();
    let (exact_body, _) = timed_petri::service::sweep_json(
        &timed_petri::session::Session::new(
            net.clone(),
            timed_petri::session::SessionOptions::new()
                .threads(4)
                .max_points(1_000_000),
        ),
        &parse_spec("exact"),
    )
    .unwrap();
    assert_eq!(fast_points, 1004, "acceptance requires a ≥1000-point grid");
    let fast = rows_of(&fast_body);
    let exact = rows_of(&exact_body);
    assert_eq!(fast.len(), 1004);
    assert_eq!(exact.len(), 1004);
    for ((fc, fv), (ec, ev)) in fast.iter().zip(&exact) {
        assert_eq!(fc, ec, "same grid in both backends");
        let approx: f64 = fv[0].as_num().expect("f64 value").parse().unwrap();
        let truth = ev[0]
            .as_str()
            .expect("exact value")
            .parse::<Rational>()
            .unwrap()
            .to_f64();
        assert!(
            (approx - truth).abs() <= 1e-9 * truth.abs(),
            "at {fc:?}: {approx} vs {truth}"
        );
    }
}

#[test]
fn exact_rows_agree_with_the_symbolic_expression() {
    // Independent ground truth: derive the lifted throughput expression
    // directly and evaluate it with RatFn::eval at a few grid points.
    let net = tpn_net::parse_tpn(&fig1_text()).unwrap();
    let e3 = symbols::enabling("t3");
    let f5 = symbols::frequency("t5");
    let domain = LiftedDomain::new(&net, &[e3, f5]).unwrap();
    let trg = build_trg(&net, &domain, &TrgOptions::default()).unwrap();
    let dg = DecisionGraph::from_trg(&trg, &domain).unwrap();
    let rates = solve_rates(&dg, 0).unwrap();
    let perf = Performance::new(&dg, rates, &domain).unwrap();
    let t7 = net.transition_by_name("t7").unwrap();
    let expr = perf.export_expr(&dg, &trg, &domain, ExprTarget::Throughput(t7));

    let (exact_body, _) = timed_petri::service::sweep_json(
        &timed_petri::session::Session::new(
            net.clone(),
            timed_petri::session::SessionOptions::new()
                .threads(2)
                .max_points(1_000_000),
        ),
        &parse_spec("exact"),
    )
    .unwrap();
    let rows = rows_of(&exact_body);
    for (coords, values) in rows.iter().step_by(97) {
        let at = Assignment::new().with(e3, coords[0]).with(f5, coords[1]);
        let want = expr.eval(&at).expect("expression defined on the grid");
        let got = values[0].as_str().unwrap().parse::<Rational>().unwrap();
        assert_eq!(got, want, "at {coords:?}");
    }
    // At the paper's own operating point the throughput must be the
    // paper's number (E(t3)=1000 is on the grid; f(t5)=1/20 is too).
    let paper = rows
        .iter()
        .find(|(c, _)| c[0] == Rational::from_int(1000) && c[1] == Rational::new(1, 20))
        .expect("paper point on the grid");
    assert_eq!(
        paper.1[0].as_str().unwrap().parse::<Rational>().unwrap(),
        Rational::new(1805, 632922),
        "18.05/6329.22 messages per millisecond"
    );
}

#[test]
fn server_sweep_is_byte_identical_to_cli_and_counted_in_stats() {
    let service = Arc::new(Service::new(ServiceConfig::default()));
    let handle = spawn(service, "127.0.0.1:0").expect("bind ephemeral port");
    let addr = handle.addr();

    // POST /sweep: the spec object plus the net text in-body.
    let net_text = fig1_text();
    let mut body = spec_text("f64");
    body.insert_str(1, &format!("\"net\":{},", json::escape(&net_text)));
    let (status, server_out) = http(addr, "POST", "/sweep", &body);
    assert_eq!(status, 200, "{server_out}");
    assert!(
        server_out.contains(r#""points":1004"#),
        "{}",
        &server_out[..200.min(server_out.len())]
    );
    // The recorded validity region mentions the timeout symbol: the
    // derivation froze comparisons involving E(t3).
    assert!(server_out.contains(r#""region":["#), "{server_out}");
    assert!(server_out.contains("E(t3)"), "region names the timeout");

    // The same spec through the CLI binary (a different process with a
    // different symbol-interning history) must print the same bytes.
    let spec_path =
        std::env::temp_dir().join(format!("tpn_sweep_spec_{}.json", std::process::id()));
    std::fs::write(&spec_path, spec_text("f64")).unwrap();
    let fixture = format!("{}/tests/fixtures/fig1.tpn", env!("CARGO_MANIFEST_DIR"));
    let out = Command::new(env!("CARGO_BIN_EXE_tpn"))
        .args(["sweep", &fixture, spec_path.to_str().unwrap()])
        .output()
        .expect("tpn binary runs");
    std::fs::remove_file(&spec_path).ok();
    assert!(
        out.status.success(),
        "tpn sweep failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let cli_out = String::from_utf8(out.stdout).unwrap();
    assert_eq!(
        cli_out.trim_end_matches('\n'),
        server_out,
        "server and CLI sweep output must be byte-identical"
    );

    // Counters: one sweep evaluated, 1000 points; the repeat is a hit.
    let (_, stats) = http(addr, "GET", "/stats", "");
    assert_eq!(json_counter(&stats, "sweeps"), 1, "{stats}");
    assert_eq!(json_counter(&stats, "sweep_compiles"), 1, "{stats}");
    assert_eq!(json_counter(&stats, "sweep_points"), 1004, "{stats}");
    assert_eq!(json_counter(&stats, "sweep_hits"), 0, "{stats}");
    let (status, again) = http(addr, "POST", "/sweep", &body);
    assert_eq!(status, 200);
    assert_eq!(again, server_out, "cache hit must be byte-identical");
    let (_, stats) = http(addr, "GET", "/stats", "");
    assert_eq!(json_counter(&stats, "sweeps"), 2, "{stats}");
    assert_eq!(json_counter(&stats, "sweep_compiles"), 1, "{stats}");
    assert_eq!(json_counter(&stats, "sweep_hits"), 1, "{stats}");

    handle.shutdown();
}

#[test]
fn rows_carry_an_exact_in_region_flag() {
    // Sweep the timeout *across* the paper's constraint (1) boundary
    // (E(t3) > 226.9 ms): rows at 100/150/200 are outside the frozen
    // region (the graph would change shape there), 250/300 inside.
    let net = tpn_net::parse_tpn(&fig1_text()).unwrap();
    let spec = SweepSpec::from_json(
        &Json::parse(
            r#"{"targets":["throughput:t7"],"sweep":[{"symbol":"E(t3)","from":"100","to":"300","steps":5}]}"#,
        )
        .unwrap(),
    )
    .unwrap();
    let (body, points) = timed_petri::service::sweep_json(
        &timed_petri::session::Session::new(
            net.clone(),
            timed_petri::session::SessionOptions::new()
                .threads(2)
                .max_points(1000),
        ),
        &spec,
    )
    .unwrap();
    assert_eq!(points, 5);
    let doc = Json::parse(&body).unwrap();
    let rows = doc.get("rows").and_then(Json::as_arr).unwrap();
    let mut flags = Vec::new();
    for row in rows {
        let row = row.as_arr().unwrap();
        assert_eq!(row.len(), 3, "rows are [[coords],[values],in_region]");
        let coord = row[0].as_arr().unwrap()[0].as_str().unwrap().to_string();
        let flag = match &row[2] {
            Json::Bool(b) => *b,
            other => panic!("in_region must be a bool, got {other:?}"),
        };
        flags.push((coord, flag));
    }
    assert_eq!(
        flags,
        vec![
            ("100".to_string(), false),
            ("150".to_string(), false),
            ("200".to_string(), false),
            ("250".to_string(), true),
            ("300".to_string(), true),
        ],
        "{body}"
    );
    // The flag is consistent with checking the rendered region by hand:
    // every strict constraint of the region holds at 250 and 300 only.
    let region = doc.get("region").and_then(Json::as_arr).unwrap();
    assert!(
        !region.is_empty(),
        "lifting the timeout records comparisons"
    );
}

#[test]
fn sweep_errors_map_to_statuses() {
    let service = Arc::new(Service::new(ServiceConfig {
        max_sweep_points: 100,
        ..ServiceConfig::default()
    }));
    let handle = spawn(service, "127.0.0.1:0").expect("bind");
    let addr = handle.addr();
    // no net member
    let (status, body) = http(addr, "POST", "/sweep", &spec_text("f64"));
    assert_eq!(status, 400, "{body}");
    // net text does not parse
    let mut bad_net = spec_text("f64");
    bad_net.insert_str(1, "\"net\":\"not a net\",");
    let (status, body) = http(addr, "POST", "/sweep", &bad_net);
    assert_eq!(status, 400);
    assert!(body.contains("parse error"), "{body}");
    // grid over the configured cap
    let mut over = spec_text("f64");
    over.insert_str(1, &format!("\"net\":{},", json::escape(&fig1_text())));
    let (status, body) = http(addr, "POST", "/sweep", &over);
    assert_eq!(status, 400);
    assert!(body.contains("1004 points"), "{body}");
    // wrong method
    let (status, _) = http(addr, "GET", "/sweep", "");
    assert_eq!(status, 405);
    handle.shutdown();
}
