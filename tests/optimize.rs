//! Acceptance tests for the parameter-synthesis subsystem on the
//! paper's Figure-1 protocol:
//!
//! * `tpn optimize` / `POST /optimize` find the timeout that maximises
//!   the t7 throughput with an **exact certificate** (the derivative's
//!   sign is certified on the whole feasible interval), and the answer
//!   matches a 10 000-point sweep argmax to within one grid cell;
//! * the `f64` refiner run on the same problem agrees with the exact
//!   engine within tolerance;
//! * the daemon's `POST /optimize` response is byte-identical to the
//!   `tpn optimize` CLI output (two different processes), a repeat is
//!   a cache hit, and `/stats` exposes the optimize counters.

use std::process::Command;
use std::sync::Arc;

use timed_petri::prelude::*;
use timed_petri::service::{
    json, optimize_json, spawn, Json, OptimizeSpec, Service, ServiceConfig,
};
use tpn_net::symbols;

mod common;
use common::{fig1_text, http, json_counter};

/// The spec used throughout: maximise the acknowledged-message
/// throughput over the timeout E(t3) ∈ [300, 2050].
fn spec_text() -> String {
    r#"{"target":"throughput:t7","goal":"max","box":[{"symbol":"E(t3)","from":"300","to":"2050"}]}"#
        .to_string()
}

fn parse_spec() -> OptimizeSpec {
    OptimizeSpec::from_json(&Json::parse(&spec_text()).unwrap()).unwrap()
}

/// Derive the lifted t7-throughput closed form and the validity region
/// directly — the independent ground truth the endpoints must match.
fn fig1_objective() -> (RatFn, Vec<tpn_symbolic::Constraint>, Symbol) {
    let net = tpn_net::parse_tpn(&fig1_text()).unwrap();
    let e3 = symbols::enabling("t3");
    let domain = LiftedDomain::new(&net, &[e3]).unwrap();
    let trg = build_trg(&net, &domain, &TrgOptions::default()).unwrap();
    let dg = DecisionGraph::from_trg(&trg, &domain).unwrap();
    let rates = solve_rates(&dg, 0).unwrap();
    let perf = Performance::new(&dg, rates, &domain).unwrap();
    let t7 = net.transition_by_name("t7").unwrap();
    let expr = perf.export_expr(&dg, &trg, &domain, ExprTarget::Throughput(t7));
    (expr, domain.region_constraints(), e3)
}

#[test]
fn fig1_timeout_optimum_is_certified_and_matches_a_10k_sweep_argmax() {
    let net = tpn_net::parse_tpn(&fig1_text()).unwrap();
    let (body, certified) = optimize_json(
        &timed_petri::session::Session::new(
            net.clone(),
            timed_petri::session::SessionOptions::new()
                .threads(4)
                .max_points(1_000_000),
        ),
        &parse_spec(),
    )
    .unwrap();
    assert!(certified, "{body}");
    let doc = Json::parse(&body).unwrap();
    assert_eq!(doc.get("certified"), Some(&Json::Bool(true)));
    assert_eq!(
        doc.get("engine").and_then(Json::as_str),
        Some("exact-univariate")
    );
    // The throughput is strictly decreasing in the timeout across the
    // whole feasible interval, so the certified optimum is the box's
    // lower edge with a negative-derivative boundary certificate.
    let point = doc.get("point").unwrap();
    let x_opt: Rational = point
        .get("E(t3)")
        .and_then(Json::as_str)
        .unwrap()
        .parse()
        .unwrap();
    assert_eq!(x_opt, Rational::from_int(300));
    let cert = doc.get("certificate").unwrap();
    assert_eq!(cert.get("kind").and_then(Json::as_str), Some("boundary"));
    assert_eq!(cert.get("end").and_then(Json::as_str), Some("lower"));
    assert_eq!(
        cert.get("derivative_sign").and_then(Json::as_num),
        Some("-1"),
        "{body}"
    );
    // The region names the paper's constraint (1): timeout > 226.9 ms.
    assert!(body.contains("-2269/10 + E(t3) > 0"), "{body}");

    // Exact objective value at the optimum, cross-checked against the
    // independently derived closed form.
    let value: Rational = doc
        .get("value")
        .and_then(Json::as_str)
        .unwrap()
        .parse()
        .unwrap();
    let (expr, _, e3) = fig1_objective();
    let at = Assignment::new().with(e3, x_opt);
    assert_eq!(expr.eval(&at), Some(value));

    // A 10 000-point exhaustive sweep over the same interval must
    // agree to within one grid cell (here: exactly, the argmax is the
    // shared lower endpoint).
    let spec = timed_petri::service::SweepSpec::from_json(
        &Json::parse(
            r#"{"targets":["throughput:t7"],"sweep":[{"symbol":"E(t3)","from":"300","to":"2050","steps":10000}]}"#,
        )
        .unwrap(),
    )
    .unwrap();
    let (sweep_body, points) = timed_petri::service::sweep_json(
        &timed_petri::session::Session::new(
            net.clone(),
            timed_petri::session::SessionOptions::new()
                .threads(4)
                .max_points(1_000_000),
        ),
        &spec,
    )
    .unwrap();
    assert_eq!(points, 10_000);
    let sweep_doc = Json::parse(&sweep_body).unwrap();
    let rows = sweep_doc.get("rows").and_then(Json::as_arr).unwrap();
    let mut best: Option<(Rational, f64)> = None;
    for row in rows {
        let row = row.as_arr().unwrap();
        let coord: Rational = row[0].as_arr().unwrap()[0]
            .as_str()
            .unwrap()
            .parse()
            .unwrap();
        let Some(v) = row[1].as_arr().unwrap()[0]
            .as_num()
            .and_then(|n| n.parse::<f64>().ok())
        else {
            continue;
        };
        if best.as_ref().is_none_or(|(_, b)| v > *b) {
            best = Some((coord, v));
        }
    }
    let (argmax, grid_best) = best.expect("sweep has defined rows");
    let cell = Rational::new(2050 - 300, 9999);
    let gap = if argmax > x_opt {
        argmax - x_opt
    } else {
        x_opt - argmax
    };
    assert!(gap <= cell, "argmax {argmax} vs certified {x_opt}");
    // And the certified exact value dominates the grid's best.
    assert!(
        value.to_f64() >= grid_best - 1e-12,
        "{value} vs {grid_best}"
    );
}

#[test]
fn f64_refiner_agrees_with_the_exact_engine_within_tolerance() {
    let (expr, region, e3) = fig1_objective();
    let axes = [(e3, Rational::from_int(300), Rational::from_int(2050))];
    let exact = timed_petri::opt::optimize_univariate(
        &expr,
        e3,
        Rational::from_int(300),
        Rational::from_int(2050),
        &region,
        OptGoal::Maximize,
        Rational::new(1, 1 << 20),
    )
    .unwrap();
    assert!(exact.certified());
    let refined = timed_petri::opt::optimize_multivariate(
        &expr,
        &axes,
        &region,
        OptGoal::Maximize,
        &OptOptions::default(),
    )
    .unwrap();
    assert!(!refined.certified(), "the refiner never claims a proof");
    // Same point (the boundary is a seed-grid point, so the refiner
    // lands on it exactly) and matching values within f64 tolerance.
    let dx = (refined.point[0].1.to_f64() - exact.point[0].1.to_f64()).abs();
    assert!(dx <= 1e-9, "{dx}");
    let dv = (refined.value_f64 - exact.value_f64).abs();
    assert!(dv <= 1e-12 * exact.value_f64.abs().max(1.0), "{dv}");
}

#[test]
fn server_optimize_is_byte_identical_to_cli_and_counted_in_stats() {
    let service = Arc::new(Service::new(ServiceConfig::default()));
    let handle = spawn(service, "127.0.0.1:0").expect("bind ephemeral port");
    let addr = handle.addr();

    // POST /optimize: the spec object plus the net text in-body.
    let net_text = fig1_text();
    let mut body = spec_text();
    body.insert_str(1, &format!("\"net\":{},", json::escape(&net_text)));
    let (status, server_out) = http(addr, "POST", "/optimize", &body);
    assert_eq!(status, 200, "{server_out}");
    assert!(server_out.contains(r#""certified":true"#), "{server_out}");

    // The same spec through the CLI binary (a different process with a
    // different symbol-interning history) must print the same bytes.
    let spec_path = std::env::temp_dir().join(format!("tpn_opt_spec_{}.json", std::process::id()));
    std::fs::write(&spec_path, spec_text()).unwrap();
    let fixture = format!("{}/tests/fixtures/fig1.tpn", env!("CARGO_MANIFEST_DIR"));
    let out = Command::new(env!("CARGO_BIN_EXE_tpn"))
        .args(["optimize", &fixture, spec_path.to_str().unwrap()])
        .output()
        .expect("tpn binary runs");
    std::fs::remove_file(&spec_path).ok();
    assert!(
        out.status.success(),
        "tpn optimize failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let cli_out = String::from_utf8(out.stdout).unwrap();
    assert_eq!(
        cli_out.trim_end_matches('\n'),
        server_out,
        "server and CLI optimize output must be byte-identical"
    );

    // Counters: one solve (certified); the repeat is a cache hit.
    let (_, stats) = http(addr, "GET", "/stats", "");
    assert_eq!(json_counter(&stats, "optimizes"), 1, "{stats}");
    assert_eq!(json_counter(&stats, "optimize_solves"), 1, "{stats}");
    assert_eq!(json_counter(&stats, "optimize_certified"), 1, "{stats}");
    assert_eq!(json_counter(&stats, "optimize_hits"), 0, "{stats}");
    let (status, again) = http(addr, "POST", "/optimize", &body);
    assert_eq!(status, 200);
    assert_eq!(again, server_out, "cache hit must be byte-identical");
    let (_, stats) = http(addr, "GET", "/stats", "");
    assert_eq!(json_counter(&stats, "optimizes"), 2, "{stats}");
    assert_eq!(json_counter(&stats, "optimize_solves"), 1, "{stats}");
    assert_eq!(json_counter(&stats, "optimize_hits"), 1, "{stats}");

    handle.shutdown();
}

#[test]
fn optimize_errors_map_to_statuses() {
    let service = Arc::new(Service::new(ServiceConfig::default()));
    let handle = spawn(service, "127.0.0.1:0").expect("bind");
    let addr = handle.addr();
    // no net member
    let (status, body) = http(addr, "POST", "/optimize", &spec_text());
    assert_eq!(status, 400, "{body}");
    // net text does not parse
    let mut bad_net = spec_text();
    bad_net.insert_str(1, "\"net\":\"not a net\",");
    let (status, body) = http(addr, "POST", "/optimize", &bad_net);
    assert_eq!(status, 400);
    assert!(body.contains("parse error"), "{body}");
    // unknown box symbol names the culprit
    let mut unknown =
        r#"{"target":"throughput:t7","box":[{"symbol":"E(zz)","from":"1","to":"2"}]}"#.to_string();
    unknown.insert_str(1, &format!("\"net\":{},", json::escape(&fig1_text())));
    let (status, body) = http(addr, "POST", "/optimize", &unknown);
    assert_eq!(status, 400);
    assert!(body.contains("E(zz)"), "{body}");
    // wrong method
    let (status, _) = http(addr, "GET", "/optimize", "");
    assert_eq!(status, 405);
    handle.shutdown();
}
