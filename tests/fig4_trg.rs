//! E2 — Figure 4: the numeric timed reachability graph of the simple
//! protocol, built from the Figure-1b times. The paper reports 18
//! states; we additionally pin the edge delays and the two decision
//! nodes, and cross-check characteristic RET values from Figure 4b
//! (893.3, 879.8, 773.1).

use timed_petri::prelude::*;
use timed_petri::protocols::simple;
use tpn_reach::EdgeKind;

fn r(s: &str) -> Rational {
    s.parse().unwrap()
}

#[test]
fn eighteen_states_two_decisions() {
    let proto = simple::paper();
    let trg = build_trg(&proto.net, &NumericDomain::new(), &TrgOptions::default()).unwrap();
    assert_eq!(trg.num_states(), 18, "paper Figure 4 has 18 states");
    assert_eq!(
        trg.decision_states().len(),
        2,
        "states 3 and 11 of the paper"
    );
    assert!(
        trg.terminal_states().is_empty(),
        "the protocol never deadlocks"
    );
    // 18 states, each non-decision state has 1 successor, the two
    // decision states have 2: 16 + 4 = 20 edges.
    assert_eq!(trg.num_edges(), 20);
}

#[test]
fn edge_delays_match_figure_4a() {
    let proto = simple::paper();
    let trg = build_trg(&proto.net, &NumericDomain::new(), &TrgOptions::default()).unwrap();
    // Collect the multiset of non-zero elapse delays.
    let mut delays: Vec<Rational> = trg
        .all_edges()
        .filter(|e| e.kind == EdgeKind::Elapse)
        .map(|e| e.delay)
        .collect();
    delays.sort();
    let expect: Vec<Rational> = [
        "1", "1", "1", // t2, t3, t1 completions (both loss paths share the t3 state)
        "13.5", "13.5", // t6, t7
        "106.7", "106.7", "106.7", "106.7", // t4, t5, t8, t9
        "773.1", // residual timeout after ACK loss
        "893.3", // residual timeout after packet loss
    ]
    .iter()
    .map(|s| r(s))
    .collect();
    let mut expect = expect;
    expect.sort();
    assert_eq!(delays, expect, "Figure 4a delay multiset");
}

#[test]
fn characteristic_timeout_residues_present() {
    // Figure 4b shows RET(t3) values 1000, 893.3, 879.8, 773.1.
    let proto = simple::paper();
    let trg = build_trg(&proto.net, &NumericDomain::new(), &TrgOptions::default()).unwrap();
    let t3 = proto.t[2];
    let mut residues: Vec<Rational> = trg
        .state_ids()
        .filter_map(|s| trg.state(s).ret(t3).copied())
        .collect();
    residues.sort();
    residues.dedup();
    for want in ["773.1", "879.8", "893.3", "1000"] {
        assert!(
            residues.contains(&r(want)),
            "expected RET(t3) residue {want} in {residues:?}"
        );
    }
}

#[test]
fn decision_probabilities_are_five_percent_splits() {
    let proto = simple::paper();
    let trg = build_trg(&proto.net, &NumericDomain::new(), &TrgOptions::default()).unwrap();
    for d in trg.decision_states() {
        let es = trg.edges_from(d);
        assert_eq!(es.len(), 2);
        let mut probs: Vec<Rational> = es.iter().map(|e| e.prob).collect();
        probs.sort();
        assert_eq!(probs, vec![r("0.05"), r("0.95")]);
    }
}

#[test]
fn timeout_never_fires_when_ack_is_present() {
    // Conflict set 2 {t3: 0, t7: 1}: whenever both are firable the ACK
    // receipt must win. In the whole graph t3 begins firing only on the
    // loss paths.
    let proto = simple::paper();
    let trg = build_trg(&proto.net, &NumericDomain::new(), &TrgOptions::default()).unwrap();
    let t3 = proto.t[2];
    let t7 = proto.t[6];
    for e in trg.all_edges() {
        if e.fired.contains(&t3) {
            // t3 fires only from states where p6 (ack delivered) is empty
            let src = trg.state(e.from);
            assert_eq!(
                src.marking().tokens(proto.p[5]),
                0,
                "t3 fired despite delivered ACK"
            );
            assert!(!e.fired.contains(&t7));
        }
    }
}

#[test]
fn safeness_of_reachable_markings() {
    // The paper's restriction relies on 1-safeness of this net; verify
    // every reachable marking is safe.
    let proto = simple::paper();
    let trg = build_trg(&proto.net, &NumericDomain::new(), &TrgOptions::default()).unwrap();
    for s in trg.state_ids() {
        assert!(trg.state(s).marking().is_safe(), "unsafe marking at {s}");
    }
}
