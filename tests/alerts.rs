//! Acceptance suite for the alerting engine (PR 9): declarative rules
//! evaluated at sampler cadence over the retention ring must fire and
//! resolve through the hysteresis state machine, publish their state
//! through `GET /alerts` (deterministically — identical engine state
//! renders identical bytes), notify a webhook with NDJSON transitions
//! without ever blocking the sampler or the request path, honor
//! silences, and surface `tpn_alerts_*` families in `/metrics`. Also
//! covers this PR's satellites: the `/metrics/history` `series=`
//! filter, the `/debug/{requests,slow}` `n` cap, and the `tpn alerts`
//! subcommand.

use std::io::{Read, Write};
use std::net::TcpListener;
use std::process::Command;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use timed_petri::obs::validate::validate;
use timed_petri::service::{AlertsConfig, Json, ServiceConfig};

mod common;
use common::{fig1_text, http, start_server, start_server_with};

/// A config whose retention ring (and so the alert evaluator) is
/// driven manually via `Service::sample_now` — deterministic tick
/// timelines for the tests below.
fn manual_sampling() -> ServiceConfig {
    ServiceConfig {
        sample_interval_ms: 0,
        ..ServiceConfig::default()
    }
}

/// An alerting policy with one always-fireable rule: the windowed
/// analyze p50 over a 1s window against a sub-nanosecond threshold.
/// Any analyze traffic inside the window fires it on the next tick
/// (`for_s` 0); a tick whose window holds no traffic resolves it
/// (`resolve_s` 0 — the quantile of an empty window is NaN, which
/// satisfies no comparison).
fn trip_wire(webhook: Option<(u16, u32)>) -> AlertsConfig {
    let hook = match webhook {
        Some((port, retries)) => format!(
            r#""webhook": {{"url": "http://127.0.0.1:{port}/hook", "retries": {retries}}},"#
        ),
        None => String::new(),
    };
    AlertsConfig::from_json(&format!(
        r#"{{"defaults": false, {hook}
            "rules": [{{"name": "analyze_slow", "signal": "quantile",
                        "series": "analyze", "q": 0.5, "threshold_ms": 0.000001,
                        "window_s": 1, "severity": "page"}}]}}"#
    ))
    .expect("trip-wire config parses")
}

/// A loopback webhook sink: accepts each POST, records its NDJSON
/// body, and answers 200. Returns the port and the received lines.
fn webhook_sink() -> (u16, Arc<Mutex<Vec<String>>>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind sink");
    let port = listener.local_addr().expect("sink addr").port();
    let lines = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&lines);
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { break };
            let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
            let mut buf = Vec::new();
            let mut chunk = [0u8; 1024];
            // Read the head, then exactly Content-Length body bytes
            // (the notifier holds its end open awaiting our status).
            let body = loop {
                match stream.read(&mut chunk) {
                    Ok(0) | Err(_) => break None,
                    Ok(n) => buf.extend_from_slice(&chunk[..n]),
                }
                let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") else {
                    continue;
                };
                let head = String::from_utf8_lossy(&buf[..head_end]).to_lowercase();
                let len: usize = head
                    .lines()
                    .find_map(|l| l.strip_prefix("content-length:"))
                    .and_then(|v| v.trim().parse().ok())
                    .unwrap_or(0);
                if buf.len() >= head_end + 4 + len {
                    break Some(
                        String::from_utf8_lossy(&buf[head_end + 4..head_end + 4 + len])
                            .into_owned(),
                    );
                }
            };
            if let Some(body) = body {
                for line in body.lines().filter(|l| !l.is_empty()) {
                    sink.lock().expect("sink lock").push(line.to_string());
                }
            }
            let _ = stream
                .write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 0\r\nConnection: close\r\n\r\n");
        }
    });
    (port, lines)
}

/// Poll until `pred` holds or the deadline passes.
fn eventually(what: &str, mut pred: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !pred() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Acceptance: a rule fires after its condition holds, resolves once
/// the window goes quiet, the `/alerts` document tracks every phase
/// with its transition history, and the webhook receives one NDJSON
/// line per transition (counted as sent in `/metrics`).
#[test]
fn alert_fires_resolves_and_notifies_webhook() {
    let (port, received) = webhook_sink();
    let mut config = manual_sampling();
    config.alerts = trip_wire(Some((port, 3)));
    let (handle, addr, service) = start_server_with(config);

    service.sample_now(); // baseline: idle window, rule inactive
    let (s, body) = http(addr, "GET", "/alerts", "");
    assert_eq!(s, 200, "{body}");
    assert!(body.contains(r#""rules":["analyze_slow"]"#), "{body}");
    assert!(body.contains(r#""severity":["page"]"#), "{body}");
    assert!(body.contains(r#""state":["inactive"]"#), "{body}");
    assert!(
        body.contains(r#""value":[null]"#),
        "idle quantile is null: {body}"
    );
    assert!(body.contains(r#""history":[]"#), "{body}");

    // Identical engine state renders identical bytes: the document is
    // a pure function of the evaluator's frame clock, not the wall.
    let (_, again) = http(addr, "GET", "/alerts", "");
    assert_eq!(body, again, "alerts document must be deterministic");

    let (s, _) = http(addr, "POST", "/analyze", &fig1_text());
    assert_eq!(s, 200);
    std::thread::sleep(Duration::from_millis(1_050));
    service.sample_now(); // window holds the analyze latency → firing
    let (s, body) = http(addr, "GET", "/alerts", "");
    assert_eq!(s, 200);
    assert!(body.contains(r#""firing":1"#), "{body}");
    assert!(body.contains(r#""state":["firing"]"#), "{body}");
    assert!(body.contains(r#""event":"firing""#), "{body}");

    // The next tick's window starts after the traffic: quantile of an
    // empty delta is NaN, no comparison holds, the rule resolves.
    std::thread::sleep(Duration::from_millis(1_100));
    service.sample_now();
    let (s, body) = http(addr, "GET", "/alerts", "");
    assert_eq!(s, 200);
    assert!(body.contains(r#""firing":0"#), "{body}");
    assert!(body.contains(r#""state":["inactive"]"#), "{body}");
    assert!(body.contains(r#""event":"resolved""#), "{body}");

    // Both transitions arrive at the webhook as NDJSON objects.
    eventually("webhook transitions", || {
        let lines = received.lock().expect("sink lock");
        lines.iter().any(|l| l.contains(r#""event":"firing""#))
            && lines.iter().any(|l| l.contains(r#""event":"resolved""#))
    });
    let lines = received.lock().expect("sink lock").clone();
    let firing = lines
        .iter()
        .find(|l| l.contains(r#""event":"firing""#))
        .expect("firing line");
    let doc = Json::parse(firing).expect("notification line parses");
    assert_eq!(doc.get("rule").and_then(Json::as_str), Some("analyze_slow"));
    assert_eq!(doc.get("severity").and_then(Json::as_str), Some("page"));
    assert!(
        doc.get("ts_ms").is_some() && doc.get("threshold").is_some(),
        "{firing}"
    );

    eventually("sent counter", || {
        let (_, text) = http(addr, "GET", "/metrics", "");
        text.lines().any(|l| {
            l.starts_with(r#"tpn_alert_notifications_total{result="sent"}"#) && !l.ends_with(" 0")
        })
    });
    handle.shutdown();
}

/// A dead webhook endpoint (connection refused) must cost nothing but
/// a failure counter: the sampler tick and the serving path stay fast
/// because notification I/O lives entirely on the notifier thread.
#[test]
fn dead_webhook_never_blocks_sampling_or_serving() {
    // Bind-then-drop: a loopback port with nothing listening.
    let port = TcpListener::bind("127.0.0.1:0")
        .expect("probe port")
        .local_addr()
        .expect("probe addr")
        .port();
    let mut config = manual_sampling();
    config.alerts = trip_wire(Some((port, 0)));
    let (handle, addr, service) = start_server_with(config);

    service.sample_now();
    let (s, _) = http(addr, "POST", "/analyze", &fig1_text());
    assert_eq!(s, 200);
    std::thread::sleep(Duration::from_millis(1_050));

    let tick = Instant::now();
    service.sample_now(); // fires → enqueues toward the dead endpoint
    assert!(
        tick.elapsed() < Duration::from_millis(500),
        "sampler tick blocked on webhook I/O: {:?}",
        tick.elapsed()
    );
    let serve = Instant::now();
    for _ in 0..5 {
        let (s, _) = http(addr, "GET", "/healthz", "");
        assert_eq!(s, 200);
    }
    assert!(
        serve.elapsed() < Duration::from_secs(2),
        "request path degraded by webhook failures: {:?}",
        serve.elapsed()
    );
    eventually("failed counter", || {
        let (_, text) = http(addr, "GET", "/metrics", "");
        text.lines().any(|l| {
            l.starts_with(r#"tpn_alert_notifications_total{result="failed"}"#) && !l.ends_with(" 0")
        })
    });
    handle.shutdown(); // dropping the notifier joins its worker promptly
}

/// Silences: validation of the `POST /alerts/silence` contract, the
/// `silenced` column of `/alerts`, and suppression — a silenced rule
/// still records transitions in the history but notifies nothing.
#[test]
fn silences_suppress_notifications_but_keep_history() {
    let (port, received) = webhook_sink();
    let mut config = manual_sampling();
    config.alerts = trip_wire(Some((port, 3)));
    let (handle, addr, service) = start_server_with(config);
    service.sample_now();

    for (bad, why) in [
        ("not json", "malformed body"),
        (r#"{"rule": "nope", "ttl_s": 60}"#, "unknown rule"),
        (r#"{"rule": "analyze_slow", "ttl_s": 0}"#, "zero TTL"),
        (
            r#"{"rule": "analyze_slow", "ttl_s": 90000}"#,
            "TTL over a day",
        ),
        (r#"{"ttl_s": 60}"#, "missing rule"),
    ] {
        let (s, body) = http(addr, "POST", "/alerts/silence", bad);
        assert_eq!(s, 400, "{why} should be rejected: {body}");
        assert!(body.contains("\"error\""), "{body}");
    }

    let (s, body) = http(
        addr,
        "POST",
        "/alerts/silence",
        r#"{"rule": "analyze_slow", "ttl_s": 600, "comment": "maintenance"}"#,
    );
    assert_eq!(s, 200, "{body}");
    assert!(body.contains(r#""id":1"#), "{body}");
    assert!(body.contains(r#""rule":"analyze_slow""#), "{body}");

    let (s, _) = http(addr, "POST", "/analyze", &fig1_text());
    assert_eq!(s, 200);
    std::thread::sleep(Duration::from_millis(1_050));
    service.sample_now(); // fires — but silenced

    let (s, body) = http(addr, "GET", "/alerts", "");
    assert_eq!(s, 200);
    assert!(body.contains(r#""state":["firing"]"#), "{body}");
    assert!(body.contains(r#""silenced":[true]"#), "{body}");
    assert!(
        body.contains(r#""event":"firing""#),
        "history still records: {body}"
    );
    assert!(body.contains(r#""comment":"maintenance""#), "{body}");

    // Nothing reaches the webhook, and nothing was even queued.
    std::thread::sleep(Duration::from_millis(600));
    assert!(
        received.lock().expect("sink lock").is_empty(),
        "silenced transition was notified"
    );
    let (_, text) = http(addr, "GET", "/metrics", "");
    for family in ["sent", "dropped", "failed"] {
        let line = format!(r#"tpn_alert_notifications_total{{result="{family}"}} 0"#);
        assert!(text.contains(&line), "missing {line} in\n{text}");
    }
    handle.shutdown();
}

/// Golden exposition contract for the alert families: the `/metrics`
/// document stays validator-clean with `tpn_alerts_firing`,
/// `tpn_alerts_pending` and all three `tpn_alert_notifications_total`
/// results rendered in a fixed order regardless of activity.
#[test]
fn metrics_carries_alert_families_in_canonical_order() {
    let (handle, addr, service) = start_server_with(manual_sampling());
    service.sample_now();
    let (_, text) = http(addr, "GET", "/metrics", "");
    validate(&text).unwrap_or_else(|e| panic!("{e}\n--- document ---\n{text}"));
    let expected = [
        "# TYPE tpn_alerts_firing gauge",
        "tpn_alerts_firing 0",
        "# TYPE tpn_alerts_pending gauge",
        "tpn_alerts_pending 0",
        "# TYPE tpn_alert_notifications_total counter",
        r#"tpn_alert_notifications_total{result="sent"} 0"#,
        r#"tpn_alert_notifications_total{result="dropped"} 0"#,
        r#"tpn_alert_notifications_total{result="failed"} 0"#,
    ];
    let mut at = 0;
    for needle in expected {
        let found = text[at..]
            .find(needle)
            .unwrap_or_else(|| panic!("{needle} missing or out of order in\n{text}"));
        at += found + needle.len();
    }
    handle.shutdown();
}

/// The default policy derives one burn-rate rule per SLO objective, so
/// a plain server already serves a populated rule table.
#[test]
fn default_rules_cover_every_slo_objective() {
    let (handle, addr) = start_server();
    let (s, body) = http(addr, "GET", "/alerts", "");
    assert_eq!(s, 200);
    let doc = Json::parse(&body).expect("alerts document parses");
    let rules = doc.get("rules").and_then(|r| r.as_arr()).expect("rules");
    assert!(rules.len() >= 9, "{body}");
    let names: Vec<&str> = rules.iter().filter_map(Json::as_str).collect();
    assert!(names.contains(&"slo_burn:analyze"), "{names:?}");
    assert!(names.contains(&"slo_burn:v1"), "{names:?}");
    // Columnar arrays stay parallel to the rule list.
    for column in [
        "severity",
        "state",
        "since_ms",
        "value",
        "threshold",
        "silenced",
    ] {
        let col = doc.get(column).and_then(|c| c.as_arr()).expect(column);
        assert_eq!(col.len(), rules.len(), "{column} not parallel in {body}");
    }
    handle.shutdown();
}

/// Satellite: `/metrics/history` accepts a `series=` name filter that
/// prunes every unselected leaf column, and rejects unknown names with
/// the known set in the message.
#[test]
fn history_series_filter_selects_columns() {
    let (handle, addr, service) = start_server_with(manual_sampling());
    service.sample_now();
    let (s, _) = http(addr, "POST", "/analyze", &fig1_text());
    assert_eq!(s, 200);
    std::thread::sleep(Duration::from_millis(1_050));
    service.sample_now();

    let (s, body) = http(
        addr,
        "GET",
        "/metrics/history?window=300&step=1&series=req_s,p99_ns",
        "",
    );
    assert_eq!(s, 200, "{body}");
    let doc = Json::parse(&body).expect("filtered history parses");
    assert!(
        doc.get("service").and_then(|s| s.get("req_s")).is_some(),
        "{body}"
    );
    assert!(
        doc.get("service")
            .and_then(|s| s.get("cache_hit_ratio"))
            .is_none(),
        "cache_hit_ratio not filtered out: {body}"
    );
    assert!(
        doc.get("process")
            .and_then(|p| p.get("rss_bytes"))
            .is_none(),
        "rss_bytes not filtered out: {body}"
    );
    let analyze = doc
        .get("endpoints")
        .and_then(|e| e.get("analyze"))
        .expect("analyze");
    assert!(analyze.get("p99_ns").is_some(), "{body}");
    assert!(analyze.get("p50_ns").is_none(), "{body}");
    // Unfiltered documents keep every column.
    let (_, full) = http(addr, "GET", "/metrics/history?window=300&step=1", "");
    let full = Json::parse(&full).expect("full history parses");
    assert!(full
        .get("service")
        .and_then(|s| s.get("cache_hit_ratio"))
        .is_some());

    let (s, body) = http(addr, "GET", "/metrics/history?series=req_s,nope", "");
    assert_eq!(s, 400, "{body}");
    assert!(body.contains("nope"), "{body}");
    assert!(body.contains("req_s") && body.contains("p99_ns"), "{body}");
    handle.shutdown();
}

/// Satellite: `/debug/requests` and `/debug/slow` cap `n` at their
/// ring capacities instead of allocating for absurd requests.
#[test]
fn debug_rings_cap_requested_depth() {
    let (handle, addr) = start_server();
    let (s, _) = http(addr, "POST", "/analyze", &fig1_text());
    assert_eq!(s, 200);
    for (target, cap) in [
        ("/debug/requests?n=18446744073709551615", 256),
        ("/debug/slow?n=18446744073709551615", 64),
    ] {
        let (s, body) = http(addr, "GET", target, "");
        assert_eq!(s, 200, "{target}: {body}");
        assert!(
            body.lines().count() <= cap,
            "{target} returned more than its ring holds"
        );
    }
    handle.shutdown();
}

/// `/alerts` is GET-only and `/alerts/silence` POST-only — both are
/// known paths, so the wrong method is 405, not 404.
#[test]
fn alerts_routes_reject_wrong_methods() {
    let (handle, addr) = start_server();
    let (s, body) = http(addr, "POST", "/alerts", "{}");
    assert_eq!(s, 405, "{body}");
    let (s, body) = http(addr, "GET", "/alerts/silence", "");
    assert_eq!(s, 405, "{body}");
    handle.shutdown();
}

/// `tpn alerts <addr>` renders one aligned frame of the rule table
/// from `/alerts` — and the `tpn top` banner appears once something
/// fires.
#[test]
fn tpn_alerts_cli_renders_rule_table() {
    let mut config = manual_sampling();
    config.alerts = trip_wire(None);
    let (handle, addr, service) = start_server_with(config);
    service.sample_now();
    let (s, _) = http(addr, "POST", "/analyze", &fig1_text());
    assert_eq!(s, 200);
    std::thread::sleep(Duration::from_millis(1_050));
    service.sample_now(); // firing

    let out = Command::new(env!("CARGO_BIN_EXE_tpn"))
        .args(["alerts", &addr.to_string()])
        .output()
        .expect("tpn alerts runs");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{text}\n{:?}", out);
    assert!(text.contains("tpn alerts —"), "{text}");
    assert!(text.contains("1 firing"), "{text}");
    assert!(text.contains("analyze_slow"), "{text}");
    assert!(text.contains("page"), "{text}");
    assert!(text.contains("firing"), "{text}");
    assert!(text.contains("recent transitions"), "{text}");
    assert!(!text.contains('\u{1b}'), "{text}");

    let out = Command::new(env!("CARGO_BIN_EXE_tpn"))
        .args([
            "top",
            &addr.to_string(),
            "--ticks",
            "1",
            "--window",
            "60",
            "--interval",
            "1",
        ])
        .output()
        .expect("tpn top runs");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{text}\n{:?}", out);
    assert!(text.contains("ALERTS: 1 firing — analyze_slow"), "{text}");
    handle.shutdown();
}

/// `tpn serve --alerts <file>` loads the policy (bad files fail fast
/// with the offending path) and announces the new endpoints.
#[test]
fn serve_flag_loads_alerts_config() {
    let dir = std::env::temp_dir().join(format!("tpn-alerts-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let bad = dir.join("bad.json");
    std::fs::write(&bad, r#"{"history": 0}"#).expect("write bad config");
    let out = Command::new(env!("CARGO_BIN_EXE_tpn"))
        .args(["serve", "127.0.0.1:0", "--alerts", bad.to_str().unwrap()])
        .output()
        .expect("tpn serve runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("bad.json") && err.contains("history"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}
