//! Fixed-capacity time-series retention: a seqlock ring of counter /
//! gauge / histogram frames.
//!
//! A [`SeriesRing`] holds the last `capacity` [`Frame`]s a sampler
//! pushed, each a point-in-time copy of every counter, gauge and
//! histogram the owner cares about (named by a [`SeriesSchema`] fixed
//! at construction). Writers are serialized by a `Mutex` the readers
//! never touch; readers are lock-free via a per-slot sequence number
//! (odd while a write is in flight — the classic seqlock). Slot
//! payloads are flat `AtomicU64` words allocated once at construction,
//! so a racing read can observe a stale or torn *frame* (detected and
//! retried via the sequence number) but never a torn *word* and never
//! freed memory.
//!
//! Derived rates come from frame-to-frame deltas
//! ([`Frame::counter_delta`], [`Frame::hist_delta`]), which saturate
//! at zero: a reset or wrapped counter yields a zero delta, never a
//! negative rate (property-tested in `tests/series_props.rs`).

use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::hist::{HistogramSnapshot, NUM_BUCKETS};

/// Column names of a ring's frames, fixed at construction. The ring
/// itself only cares about the lengths; the names make the stored data
/// self-describing for renderers.
#[derive(Debug, Clone, Default)]
pub struct SeriesSchema {
    /// Monotone counters (deltas between frames are meaningful).
    pub counters: Vec<String>,
    /// Point-in-time gauges (deltas are not meaningful).
    pub gauges: Vec<String>,
    /// Histogram columns, one [`HistogramSnapshot`] per frame each.
    pub hists: Vec<String>,
}

impl SeriesSchema {
    /// Index of a counter column by name.
    pub fn counter_index(&self, name: &str) -> Option<usize> {
        self.counters.iter().position(|c| c == name)
    }

    /// Index of a gauge column by name.
    pub fn gauge_index(&self, name: &str) -> Option<usize> {
        self.gauges.iter().position(|g| g == name)
    }

    /// Index of a histogram column by name.
    pub fn hist_index(&self, name: &str) -> Option<usize> {
        self.hists.iter().position(|h| h == name)
    }

    /// `u64` words one frame occupies in the ring: timestamp, the
    /// counters, the gauges (bit-cast `f64`), and each histogram's
    /// buckets plus sum.
    fn row_words(&self) -> usize {
        1 + self.counters.len() + self.gauges.len() + self.hists.len() * (NUM_BUCKETS + 1)
    }
}

/// One sampled frame: everything the owner's sampler read at one
/// instant, shaped by the ring's [`SeriesSchema`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Frame {
    /// Sample time, milliseconds since the Unix epoch.
    pub unix_ms: u64,
    /// Counter values, aligned with `schema.counters`.
    pub counters: Vec<u64>,
    /// Gauge values, aligned with `schema.gauges`.
    pub gauges: Vec<f64>,
    /// Histogram snapshots, aligned with `schema.hists`.
    pub hists: Vec<HistogramSnapshot>,
}

impl Frame {
    /// Counter increase since `earlier`, saturating at zero so a
    /// counter reset can never produce a negative rate.
    pub fn counter_delta(&self, earlier: &Frame, i: usize) -> u64 {
        self.counters[i].saturating_sub(earlier.counters[i])
    }

    /// Histogram activity since `earlier` (bucket-wise saturating
    /// subtraction): the windowed snapshot quantiles are estimated
    /// from.
    pub fn hist_delta(&self, earlier: &Frame, i: usize) -> HistogramSnapshot {
        self.hists[i].delta(&earlier.hists[i])
    }
}

/// A lock-free-to-read, fixed-capacity ring of [`Frame`]s.
#[derive(Debug)]
pub struct SeriesRing {
    schema: SeriesSchema,
    capacity: usize,
    row_words: usize,
    /// `capacity * row_words` flat payload words.
    words: Box<[AtomicU64]>,
    /// Per-slot seqlock counters: odd while that slot is being written.
    seqs: Box<[AtomicU64]>,
    /// Frames ever pushed; `head % capacity` is the next slot to write.
    head: AtomicU64,
    /// Serializes writers. Readers never take it.
    writer: Mutex<()>,
}

impl SeriesRing {
    /// An empty ring retaining up to `capacity` frames of `schema`'s
    /// shape. All slot storage is allocated here, once.
    pub fn new(schema: SeriesSchema, capacity: usize) -> SeriesRing {
        let capacity = capacity.max(1);
        let row_words = schema.row_words();
        let words = (0..capacity * row_words)
            .map(|_| AtomicU64::new(0))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let seqs = (0..capacity)
            .map(|_| AtomicU64::new(0))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        SeriesRing {
            schema,
            capacity,
            row_words,
            words,
            seqs,
            head: AtomicU64::new(0),
            writer: Mutex::new(()),
        }
    }

    /// The column layout frames must match.
    pub fn schema(&self) -> &SeriesSchema {
        &self.schema
    }

    /// Maximum retained frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Frames currently retained (saturates at capacity).
    pub fn len(&self) -> usize {
        (self.head.load(Ordering::Acquire) as usize).min(self.capacity)
    }

    /// True until the first push.
    pub fn is_empty(&self) -> bool {
        self.head.load(Ordering::Acquire) == 0
    }

    /// Append one frame, evicting the oldest once full. Panics if the
    /// frame's shape disagrees with the schema — that is a programming
    /// error, not a runtime condition.
    pub fn push(&self, frame: &Frame) {
        assert_eq!(
            frame.counters.len(),
            self.schema.counters.len(),
            "counter column mismatch"
        );
        assert_eq!(
            frame.gauges.len(),
            self.schema.gauges.len(),
            "gauge column mismatch"
        );
        assert_eq!(
            frame.hists.len(),
            self.schema.hists.len(),
            "histogram column mismatch"
        );
        let _guard = self.writer.lock().unwrap();
        let head = self.head.load(Ordering::Relaxed);
        let slot = (head as usize) % self.capacity;
        let seq = &self.seqs[slot];
        let s = seq.load(Ordering::Relaxed);
        seq.store(s.wrapping_add(1), Ordering::Relaxed); // odd: write in flight
        fence(Ordering::Release);
        let row = &self.words[slot * self.row_words..(slot + 1) * self.row_words];
        let mut w = 0;
        let mut put = |v: u64| {
            row[w].store(v, Ordering::Relaxed);
            w += 1;
        };
        put(frame.unix_ms);
        for &c in &frame.counters {
            put(c);
        }
        for &g in &frame.gauges {
            put(g.to_bits());
        }
        for h in &frame.hists {
            for &c in &h.counts {
                put(c);
            }
            put(h.sum_ns);
        }
        debug_assert_eq!(w, self.row_words);
        seq.store(s.wrapping_add(2), Ordering::Release); // even: write done
        self.head.store(head + 1, Ordering::Release);
    }

    /// Read slot `slot` if a consistent copy can be taken within a few
    /// retries (a slot being concurrently rewritten is skipped).
    fn read_slot(&self, slot: usize) -> Option<Frame> {
        let seq = &self.seqs[slot];
        let row = &self.words[slot * self.row_words..(slot + 1) * self.row_words];
        for _ in 0..8 {
            let s1 = seq.load(Ordering::Acquire);
            if s1 % 2 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let copy: Vec<u64> = row.iter().map(|wrd| wrd.load(Ordering::Relaxed)).collect();
            fence(Ordering::Acquire);
            if seq.load(Ordering::Relaxed) != s1 {
                continue; // torn: the writer lapped us mid-copy
            }
            let mut r = copy.into_iter();
            let mut take = || r.next().expect("row layout mismatch");
            let unix_ms = take();
            let counters = (0..self.schema.counters.len()).map(|_| take()).collect();
            let gauges = (0..self.schema.gauges.len())
                .map(|_| f64::from_bits(take()))
                .collect();
            let hists = (0..self.schema.hists.len())
                .map(|_| {
                    let mut snap = HistogramSnapshot::default();
                    for c in snap.counts.iter_mut() {
                        *c = take();
                    }
                    snap.sum_ns = take();
                    snap
                })
                .collect();
            return Some(Frame {
                unix_ms,
                counters,
                gauges,
                hists,
            });
        }
        None
    }

    /// Every retained frame, oldest first. Slots the writer was
    /// rewriting throughout the read are skipped; the result is sorted
    /// by timestamp so a reader lapped mid-scan still sees a monotone
    /// series.
    pub fn frames(&self) -> Vec<Frame> {
        let head = self.head.load(Ordering::Acquire);
        let n = (head as usize).min(self.capacity);
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let abs = head as usize - n + i;
            if let Some(f) = self.read_slot(abs % self.capacity) {
                out.push(f);
            }
        }
        out.sort_by_key(|f| f.unix_ms);
        out
    }

    /// The most recently pushed frame, if any.
    pub fn latest(&self) -> Option<Frame> {
        let head = self.head.load(Ordering::Acquire);
        if head == 0 {
            return None;
        }
        self.read_slot((head as usize - 1) % self.capacity)
    }

    /// The newest retained frame sampled at or before `unix_ms` — the
    /// window-start frame for "trailing W seconds" queries. Falls back
    /// to the oldest retained frame when the requested instant predates
    /// retention; `None` only on an empty ring.
    pub fn at_or_before(&self, unix_ms: u64) -> Option<Frame> {
        let frames = self.frames();
        frames
            .iter()
            .rev()
            .find(|f| f.unix_ms <= unix_ms)
            .or_else(|| frames.first())
            .cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> SeriesSchema {
        SeriesSchema {
            counters: vec!["requests".into(), "errors".into()],
            gauges: vec!["rss".into()],
            hists: vec!["latency".into()],
        }
    }

    fn frame(ts: u64, requests: u64, errors: u64, rss: f64, ns: &[u64]) -> Frame {
        let h = crate::hist::Histogram::new();
        for &v in ns {
            h.record_ns(v);
        }
        Frame {
            unix_ms: ts,
            counters: vec![requests, errors],
            gauges: vec![rss],
            hists: vec![h.snapshot()],
        }
    }

    #[test]
    fn round_trips_a_frame() {
        let ring = SeriesRing::new(schema(), 4);
        assert!(ring.is_empty());
        assert_eq!(ring.latest(), None);
        let f = frame(1_000, 7, 1, 4096.0, &[500, 3_000]);
        ring.push(&f);
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.latest().unwrap(), f);
        assert_eq!(ring.frames(), vec![f]);
    }

    #[test]
    fn evicts_oldest_when_full() {
        let ring = SeriesRing::new(schema(), 3);
        for i in 0..5u64 {
            ring.push(&frame(i * 1_000, i, 0, 0.0, &[]));
        }
        let frames = ring.frames();
        assert_eq!(ring.len(), 3);
        assert_eq!(
            frames.iter().map(|f| f.unix_ms).collect::<Vec<_>>(),
            vec![2_000, 3_000, 4_000]
        );
    }

    #[test]
    fn at_or_before_picks_the_window_start() {
        let ring = SeriesRing::new(schema(), 8);
        for i in 0..4u64 {
            ring.push(&frame(1_000 + i * 1_000, i, 0, 0.0, &[]));
        }
        assert_eq!(ring.at_or_before(2_500).unwrap().unix_ms, 2_000);
        assert_eq!(ring.at_or_before(4_000).unwrap().unix_ms, 4_000);
        // Before retention: oldest frame, not None.
        assert_eq!(ring.at_or_before(10).unwrap().unix_ms, 1_000);
        assert_eq!(SeriesRing::new(schema(), 8).at_or_before(10), None);
    }

    #[test]
    fn deltas_saturate_instead_of_going_negative() {
        let newer = frame(2_000, 5, 0, 0.0, &[500]);
        let older = frame(1_000, 9, 0, 0.0, &[500, 500]);
        assert_eq!(newer.counter_delta(&older, 0), 0);
        assert_eq!(newer.hist_delta(&older, 0).count(), 0);
        assert_eq!(older.counter_delta(&newer, 0), 4);
    }

    #[test]
    #[should_panic(expected = "counter column mismatch")]
    fn shape_mismatch_panics() {
        let ring = SeriesRing::new(schema(), 2);
        ring.push(&Frame::default());
    }

    #[test]
    fn concurrent_reads_never_tear() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let ring = Arc::new(SeriesRing::new(schema(), 4));
        let stop = Arc::new(AtomicBool::new(false));
        let reader = {
            let (ring, stop) = (ring.clone(), stop.clone());
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    for f in ring.frames() {
                        // Writer keeps both counters equal: any torn
                        // read would surface as a mismatch.
                        assert_eq!(f.counters[0], f.counters[1], "torn frame at {}", f.unix_ms);
                    }
                }
            })
        };
        for i in 0..20_000u64 {
            ring.push(&frame(i, i, i, i as f64, &[]));
        }
        stop.store(true, Ordering::Relaxed);
        reader.join().unwrap();
    }
}
