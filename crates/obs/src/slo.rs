//! Service-level-objective arithmetic: objectives, windowed
//! compliance and multi-window burn rates.
//!
//! An [`Objective`] states what "good" means for one endpoint: a
//! latency bound a target fraction of requests must meet, and a
//! ceiling on the error fraction. Compliance over a trailing window
//! is computed from histogram / counter *deltas* (see
//! [`crate::series`]), so the judgment tracks recent behaviour rather
//! than the since-boot average.
//!
//! The burn rate is the Google SRE workbook quantity: how fast the
//! window consumed its error budget, where `1.0` means exactly
//! on-budget. Alert policy combines a fast and a slow window — the
//! fast window makes the signal responsive, the slow window keeps
//! one spike from paging — and is applied by the service layer; this
//! module only supplies the arithmetic.

use crate::hist::{HistogramSnapshot, BUCKET_BOUNDS_NS, NUM_BUCKETS};

/// What "good" means for one endpoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Objective {
    /// Latency bound, nanoseconds. Judged at histogram-bucket
    /// granularity: the effective bound is the smallest bucket bound
    /// at or above this value (see [`effective_latency_bound_ns`]).
    pub latency_ns: u64,
    /// Fraction of requests that must meet the latency bound
    /// (e.g. `0.99`).
    pub latency_target: f64,
    /// Maximum tolerable error fraction (e.g. `0.001`).
    pub error_target: f64,
}

impl Objective {
    /// The latency error budget: the tolerable fraction of requests
    /// slower than the bound.
    pub fn latency_budget(&self) -> f64 {
        (1.0 - self.latency_target).max(f64::MIN_POSITIVE)
    }
}

/// The smallest histogram bucket bound at or above `latency_ns` — the
/// bound the objective is actually judged against, since bucket
/// counters cannot separate samples inside one bucket. `None` when
/// the request exceeds the last finite bound (only the `+Inf` bucket
/// would be "bad", which the ladder cannot distinguish from merely
/// slow).
pub fn effective_latency_bound_ns(latency_ns: u64) -> Option<u64> {
    BUCKET_BOUNDS_NS.iter().copied().find(|&b| b >= latency_ns)
}

/// How many samples in `snap` exceeded the latency bound, at bucket
/// granularity (the bound is first snapped up via
/// [`effective_latency_bound_ns`]).
pub fn bad_latency_count(snap: &HistogramSnapshot, latency_ns: u64) -> u64 {
    let i = BUCKET_BOUNDS_NS.partition_point(|&b| b < latency_ns);
    if i >= NUM_BUCKETS - 1 {
        // Bound beyond the ladder: nothing measurable is "bad".
        return 0;
    }
    let cum = snap.cumulative();
    snap.count() - cum[i]
}

/// Budget burn rate of one window: `(bad/total) / budget`. `1.0`
/// means the window consumed its budget exactly; `0` on an idle
/// window (no traffic burns no budget).
pub fn burn_rate(bad: u64, total: u64, budget: f64) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let fraction = bad as f64 / total as f64;
    fraction / budget.max(f64::MIN_POSITIVE)
}

/// Windowed compliance of one endpoint against one objective.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WindowBurn {
    /// Requests observed in the window.
    pub total: u64,
    /// Requests slower than the (bucket-snapped) latency bound.
    pub slow: u64,
    /// Errored requests in the window.
    pub errors: u64,
    /// Latency-budget burn rate.
    pub latency_burn: f64,
    /// Error-budget burn rate.
    pub error_burn: f64,
}

impl WindowBurn {
    /// Evaluate one window: `hist_delta` and `errors` must cover the
    /// same trailing interval (both deltas of the same frame pair).
    pub fn evaluate(
        objective: &Objective,
        hist_delta: &HistogramSnapshot,
        errors: u64,
    ) -> WindowBurn {
        let total = hist_delta.count();
        let slow = bad_latency_count(hist_delta, objective.latency_ns);
        let errors = errors.min(total);
        WindowBurn {
            total,
            slow,
            errors,
            latency_burn: burn_rate(slow, total, objective.latency_budget()),
            error_burn: burn_rate(errors, total, objective.error_target.max(f64::MIN_POSITIVE)),
        }
    }

    /// The worse of the two burn rates — the number alert thresholds
    /// compare against.
    pub fn worst_burn(&self) -> f64 {
        self.latency_burn.max(self.error_burn)
    }
}

/// Health grade a multi-window burn policy produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Health {
    /// Every objective within budget.
    Ok,
    /// At least one window of one objective burning past the
    /// threshold — worth a look, still serving.
    Degraded,
    /// Fast and slow windows both burning past the threshold: the
    /// budget is being consumed at page-worthy speed.
    Unhealthy,
}

impl Health {
    /// Lower-case wire label (`ok|degraded|unhealthy`).
    pub fn as_str(&self) -> &'static str {
        match self {
            Health::Ok => "ok",
            Health::Degraded => "degraded",
            Health::Unhealthy => "unhealthy",
        }
    }

    /// Grade one objective from its fast- and slow-window burns.
    /// `degraded_burn ≤ unhealthy_burn` is the caller's contract.
    pub fn grade(
        fast: &WindowBurn,
        slow: &WindowBurn,
        degraded_burn: f64,
        unhealthy_burn: f64,
    ) -> Health {
        let f = fast.worst_burn();
        let s = slow.worst_burn();
        if f >= unhealthy_burn && s >= unhealthy_burn {
            Health::Unhealthy
        } else if f >= degraded_burn || s >= degraded_burn {
            Health::Degraded
        } else {
            Health::Ok
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    fn objective() -> Objective {
        Objective {
            latency_ns: 250_000_000, // 250ms, an exact bucket bound
            latency_target: 0.99,
            error_target: 0.01,
        }
    }

    fn snap(ns: &[u64]) -> HistogramSnapshot {
        let h = Histogram::new();
        for &v in ns {
            h.record_ns(v);
        }
        h.snapshot()
    }

    #[test]
    fn latency_bound_snaps_up_to_a_bucket() {
        assert_eq!(effective_latency_bound_ns(250_000_000), Some(250_000_000));
        assert_eq!(effective_latency_bound_ns(200_000_000), Some(250_000_000));
        assert_eq!(effective_latency_bound_ns(10_000_000_001), None);
    }

    #[test]
    fn bad_latency_counts_samples_past_the_bound() {
        let s = snap(&[1_000, 100_000_000, 250_000_000, 300_000_000, 20_000_000_000]);
        // 250ms is inclusive; 300ms and 20s are past it.
        assert_eq!(bad_latency_count(&s, 250_000_000), 2);
        // A bound past the ladder judges nothing bad.
        assert_eq!(bad_latency_count(&s, 20_000_000_000), 0);
    }

    #[test]
    fn burn_of_exactly_budget_is_one() {
        // 1 bad in 100 against a 1% budget burns at exactly 1.0.
        assert_eq!(burn_rate(1, 100, 0.01), 1.0);
        assert_eq!(burn_rate(0, 0, 0.01), 0.0);
        assert!(burn_rate(50, 100, 0.01) > 14.4);
    }

    #[test]
    fn window_burn_combines_latency_and_errors() {
        let obj = objective();
        let mut ns = vec![1_000u64; 99];
        ns.push(1_000_000_000); // one slow request in 100
        let w = WindowBurn::evaluate(&obj, &snap(&ns), 0);
        assert_eq!((w.total, w.slow, w.errors), (100, 1, 0));
        assert!((w.latency_burn - 1.0).abs() < 1e-9, "{}", w.latency_burn);
        assert_eq!(w.error_burn, 0.0);
        assert_eq!(w.worst_burn(), w.latency_burn);
    }

    #[test]
    fn grade_requires_both_windows_for_unhealthy() {
        let hot = WindowBurn {
            latency_burn: 20.0,
            ..WindowBurn::default()
        };
        let cool = WindowBurn::default();
        assert_eq!(Health::grade(&hot, &hot, 6.0, 14.4), Health::Unhealthy);
        assert_eq!(Health::grade(&hot, &cool, 6.0, 14.4), Health::Degraded);
        assert_eq!(Health::grade(&cool, &hot, 6.0, 14.4), Health::Degraded);
        assert_eq!(Health::grade(&cool, &cool, 6.0, 14.4), Health::Ok);
    }
}
