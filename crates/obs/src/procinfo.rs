//! Process-level gauges read from `/proc/self` (Linux).
//!
//! Sampling is best-effort: on a non-Linux host, or if any `/proc`
//! file is unreadable, the affected gauge reads zero rather than
//! failing — retention must never take the server down. Each sample
//! is three small file reads plus one directory scan, cheap enough
//! for a once-per-interval sampler but not for a per-request path.

/// One sample of the process's resource gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProcessGauges {
    /// Resident set size, bytes (`/proc/self/statm` field 2 × page size).
    pub rss_bytes: u64,
    /// Open file descriptors (entries of `/proc/self/fd`, including
    /// the descriptor the scan itself holds).
    pub open_fds: u64,
    /// OS threads (`Threads:` in `/proc/self/status`).
    pub threads: u64,
}

/// Page size assumed when converting `statm` pages to bytes. `statm`
/// reports pages and std exposes no `sysconf`; 4 KiB is the page size
/// on every x86-64 and default aarch64 Linux this workspace targets.
const PAGE_SIZE: u64 = 4096;

/// Sample the current process. Unreadable sources contribute zeros.
pub fn sample() -> ProcessGauges {
    ProcessGauges {
        rss_bytes: statm_rss_pages().unwrap_or(0) * PAGE_SIZE,
        open_fds: count_fds().unwrap_or(0),
        threads: status_threads().unwrap_or(0),
    }
}

fn statm_rss_pages() -> Option<u64> {
    let text = std::fs::read_to_string("/proc/self/statm").ok()?;
    text.split_whitespace().nth(1)?.parse().ok()
}

fn count_fds() -> Option<u64> {
    let dir = std::fs::read_dir("/proc/self/fd").ok()?;
    Some(dir.filter(|e| e.is_ok()).count() as u64)
}

fn status_threads() -> Option<u64> {
    let text = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = text.lines().find(|l| l.starts_with("Threads:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_reports_plausible_linux_gauges() {
        let g = sample();
        if cfg!(target_os = "linux") {
            assert!(g.rss_bytes > 0, "a running process has resident memory");
            assert!(g.open_fds > 0, "stdio alone keeps descriptors open");
            assert!(g.threads >= 1, "at least the sampling thread exists");
        }
    }

    #[test]
    fn repeated_samples_are_stable_in_scale() {
        let a = sample();
        let b = sample();
        if a.rss_bytes > 0 {
            // RSS should not swing by an order of magnitude between
            // two immediate samples.
            assert!(b.rss_bytes > a.rss_bytes / 10);
            assert!(b.rss_bytes < a.rss_bytes.saturating_mul(10));
        }
    }
}
