//! A hand-rolled Prometheus text-exposition checker.
//!
//! The build environment has no registry access, so there is no
//! official parser to test `/metrics` output against; this module is
//! the test-side stand-in. [`validate`] parses a whole exposition
//! document and enforces the rules a real scraper relies on:
//!
//! * every sample's family carries `# HELP` and `# TYPE` lines, both
//!   **before** the first sample and at most once;
//! * metric and label names match the Prometheus grammar, label
//!   values use only the three escapes (`\\`, `\"`, `\n`);
//! * sample values parse (decimal, `+Inf`, `-Inf`, `NaN`) and no
//!   series (name + label set) appears twice;
//! * histogram families consist only of `_bucket`/`_sum`/`_count`
//!   samples; per label set the `le` bounds strictly increase, the
//!   cumulative counts never decrease, the final bucket is `+Inf`
//!   and equals the `_count` sample, and a `_sum` sample exists.
//!
//! It is a validator, not a full scraper: it checks shape, not
//! semantics, and rejects features this workspace never emits
//! (timestamps, `summary` quantiles).

use std::collections::{BTreeMap, HashMap, HashSet};

/// One parsed sample line.
#[derive(Debug)]
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
    line: usize,
}

#[derive(Debug, Default)]
struct Family {
    help: Option<usize>,
    kind: Option<(String, usize)>,
    samples: Vec<usize>,
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn parse_value(token: &str) -> Option<f64> {
    match token {
        "+Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        t => t.parse().ok(),
    }
}

/// Parse one sample line: `name[{labels}] value`.
fn parse_sample(line: &str, line_no: usize) -> Result<Sample, String> {
    let err = |m: String| format!("line {line_no}: {m}");
    let (name_part, rest) = match line.find('{') {
        None => {
            let mut it = line.splitn(2, ' ');
            let name = it.next().unwrap_or_default().to_string();
            let rest = it
                .next()
                .ok_or_else(|| err("sample line has no value".into()))?;
            return finish_sample(name, Vec::new(), rest, line_no);
        }
        Some(pos) => (&line[..pos], &line[pos + 1..]),
    };
    let name = name_part.to_string();
    // Walk the label block respecting escapes inside quoted values.
    let mut labels = Vec::new();
    let mut chars = rest.char_indices();
    loop {
        // Label name up to '='.
        let mut label = String::new();
        let mut closed = false;
        for (_, c) in chars.by_ref() {
            match c {
                '=' => break,
                '}' if label.is_empty() => {
                    closed = true;
                    break;
                }
                c => label.push(c),
            }
        }
        if closed {
            break;
        }
        match chars.next() {
            Some((_, '"')) => {}
            _ => return Err(err(format!("label {label:?} value must be quoted"))),
        }
        let mut value = String::new();
        let mut terminated = false;
        while let Some((_, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    Some((_, 'n')) => value.push('\n'),
                    other => {
                        return Err(err(format!(
                            "bad escape {:?} in label {label:?}",
                            other.map(|(_, c)| c)
                        )))
                    }
                },
                '"' => {
                    terminated = true;
                    break;
                }
                c => value.push(c),
            }
        }
        if !terminated {
            return Err(err(format!("unterminated value of label {label:?}")));
        }
        labels.push((label, value));
        match chars.next() {
            Some((_, ',')) => continue,
            Some((_, '}')) => break,
            _ => {
                return Err(err(
                    "label list must continue with ',' or close with '}'".into()
                ))
            }
        }
    }
    let rest_idx = chars
        .next()
        .map(|(i, c)| {
            if c == ' ' {
                Ok(i + 1)
            } else {
                Err(err(format!("expected a space after '}}', got {c:?}")))
            }
        })
        .transpose()?
        .ok_or_else(|| err("sample line has no value".into()))?;
    finish_sample(name, labels, &rest[rest_idx..], line_no)
}

fn finish_sample(
    name: String,
    labels: Vec<(String, String)>,
    value_part: &str,
    line_no: usize,
) -> Result<Sample, String> {
    let err = |m: String| format!("line {line_no}: {m}");
    if !valid_metric_name(&name) {
        return Err(err(format!("bad metric name {name:?}")));
    }
    for (label, _) in &labels {
        if !valid_label_name(label) {
            return Err(err(format!("bad label name {label:?}")));
        }
    }
    let mut tokens = value_part.split(' ').filter(|t| !t.is_empty());
    let value_token = tokens
        .next()
        .ok_or_else(|| err("sample line has no value".into()))?;
    if tokens.next().is_some() {
        return Err(err(
            "trailing tokens after the value (timestamps are not emitted)".into(),
        ));
    }
    let value =
        parse_value(value_token).ok_or_else(|| err(format!("bad sample value {value_token:?}")))?;
    Ok(Sample {
        name,
        labels,
        value,
        line: line_no,
    })
}

/// The family a sample belongs to: its own name, or the base name when
/// it is a `_bucket`/`_sum`/`_count` member of a declared histogram.
fn family_of<'a>(name: &'a str, histograms: &HashSet<String>) -> &'a str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if histograms.contains(base) {
                return base;
            }
        }
    }
    name
}

/// A canonical series key: name plus sorted labels.
fn series_key(s: &Sample) -> String {
    let mut labels: Vec<&(String, String)> = s.labels.iter().collect();
    labels.sort();
    let mut key = s.name.clone();
    for (k, v) in labels {
        key.push('\u{1}');
        key.push_str(k);
        key.push('\u{2}');
        key.push_str(v);
    }
    key
}

/// Validate a whole text-exposition document. Returns the first
/// violation as a message naming the offending line.
pub fn validate(text: &str) -> Result<(), String> {
    let mut families: BTreeMap<String, Family> = BTreeMap::new();
    let mut histograms: HashSet<String> = HashSet::new();
    let mut samples: Vec<Sample> = Vec::new();
    let mut seen_series: HashSet<String> = HashSet::new();

    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, _help) = rest
                .split_once(' ')
                .ok_or_else(|| format!("line {line_no}: HELP without text"))?;
            let fam = families.entry(name.to_string()).or_default();
            if fam.help.is_some() {
                return Err(format!("line {line_no}: duplicate HELP for {name}"));
            }
            if !fam.samples.is_empty() {
                return Err(format!("line {line_no}: HELP for {name} after its samples"));
            }
            fam.help = Some(line_no);
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest
                .split_once(' ')
                .ok_or_else(|| format!("line {line_no}: TYPE without a kind"))?;
            if !matches!(
                kind,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err(format!("line {line_no}: unknown TYPE {kind:?}"));
            }
            let fam = families.entry(name.to_string()).or_default();
            if fam.kind.is_some() {
                return Err(format!("line {line_no}: duplicate TYPE for {name}"));
            }
            if !fam.samples.is_empty() {
                return Err(format!("line {line_no}: TYPE for {name} after its samples"));
            }
            fam.kind = Some((kind.to_string(), line_no));
            if kind == "histogram" {
                histograms.insert(name.to_string());
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // plain comment
        }
        let sample = parse_sample(line, line_no)?;
        let key = series_key(&sample);
        if !seen_series.insert(key) {
            return Err(format!(
                "line {line_no}: duplicate series {} with identical labels",
                sample.name
            ));
        }
        let family = family_of(&sample.name, &histograms).to_string();
        let fam = families.entry(family.clone()).or_default();
        if fam.help.is_none() || fam.kind.is_none() {
            return Err(format!(
                "line {line_no}: sample {} before HELP/TYPE of family {family}",
                sample.name
            ));
        }
        if let Some((kind, _)) = &fam.kind {
            match kind.as_str() {
                "histogram"
                    if !["_bucket", "_sum", "_count"]
                        .iter()
                        .any(|s| sample.name == format!("{family}{s}")) =>
                {
                    return Err(format!(
                        "line {line_no}: {} is not a histogram member of {family}",
                        sample.name
                    ));
                }
                "counter" if !(sample.value >= 0.0 && sample.value.is_finite()) => {
                    return Err(format!(
                        "line {line_no}: counter {} value {} is not a finite non-negative number",
                        sample.name, sample.value
                    ));
                }
                _ => {}
            }
        }
        fam.samples.push(samples.len());
        samples.push(sample);
    }

    // Per-family histogram shape checks.
    for name in &histograms {
        let Some(fam) = families.get(name) else {
            continue;
        };
        // Group this family's samples by their labels sans `le`:
        // `(le, cumulative count, line)` buckets, the `_count` value,
        // and whether a `_sum` was seen.
        type HistGroup = (Vec<(f64, u64, usize)>, Option<u64>, bool);
        let mut groups: HashMap<String, HistGroup> = HashMap::new();
        for &idx in &fam.samples {
            let s = &samples[idx];
            let mut labels: Vec<&(String, String)> =
                s.labels.iter().filter(|(k, _)| k != "le").collect();
            labels.sort();
            let group_key = labels
                .iter()
                .map(|(k, v)| format!("{k}\u{1}{v}"))
                .collect::<Vec<_>>()
                .join("\u{2}");
            let entry = groups.entry(group_key).or_default();
            if s.name == format!("{name}_bucket") {
                let le = s
                    .labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .map(|(_, v)| v.as_str())
                    .ok_or_else(|| format!("line {}: _bucket sample without le", s.line))?;
                let le = parse_value(le)
                    .ok_or_else(|| format!("line {}: bad le value {le:?}", s.line))?;
                if s.value < 0.0 || s.value.fract() != 0.0 || !s.value.is_finite() {
                    return Err(format!(
                        "line {}: bucket count {} is not a non-negative integer",
                        s.line, s.value
                    ));
                }
                entry.0.push((le, s.value as u64, s.line));
            } else if s.name == format!("{name}_count") {
                entry.1 = Some(s.value as u64);
            } else {
                entry.2 = true; // _sum
            }
        }
        for (buckets, count, has_sum) in groups.values() {
            if buckets.is_empty() {
                return Err(format!(
                    "histogram {name}: a label set has no _bucket samples"
                ));
            }
            for pair in buckets.windows(2) {
                let ((le_a, n_a, _), (le_b, n_b, line)) = (pair[0], pair[1]);
                if le_b <= le_a {
                    return Err(format!(
                        "line {line}: histogram {name} le bounds not strictly increasing"
                    ));
                }
                if n_b < n_a {
                    return Err(format!(
                        "line {line}: histogram {name} bucket counts decrease ({n_a} → {n_b})"
                    ));
                }
            }
            let (last_le, last_n, last_line) = *buckets.last().unwrap();
            if last_le != f64::INFINITY {
                return Err(format!(
                    "line {last_line}: histogram {name} is missing the +Inf bucket"
                ));
            }
            match count {
                None => {
                    return Err(format!(
                        "histogram {name}: a label set has no _count sample"
                    ))
                }
                Some(count) if *count != last_n => {
                    return Err(format!(
                        "histogram {name}: +Inf bucket {last_n} != _count {count}"
                    ))
                }
                Some(_) => {}
            }
            if !has_sum {
                return Err(format!("histogram {name}: a label set has no _sum sample"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "\
# HELP tpn_requests_total Requests served.
# TYPE tpn_requests_total counter
tpn_requests_total{endpoint=\"analyze\",status=\"200\"} 3
tpn_requests_total{endpoint=\"graph\",status=\"200\"} 1
# HELP tpn_d_seconds Request durations.
# TYPE tpn_d_seconds histogram
tpn_d_seconds_bucket{le=\"0.001\"} 1
tpn_d_seconds_bucket{le=\"0.01\"} 4
tpn_d_seconds_bucket{le=\"+Inf\"} 4
tpn_d_seconds_sum 0.0123
tpn_d_seconds_count 4
# HELP tpn_up Uptime.
# TYPE tpn_up gauge
tpn_up 12.5
";

    #[test]
    fn accepts_a_well_formed_document() {
        validate(GOOD).unwrap();
    }

    #[test]
    fn rejects_samples_before_help_or_type() {
        let doc = "tpn_x_total 1\n";
        assert!(validate(doc).unwrap_err().contains("before HELP/TYPE"));
        let doc = "# HELP tpn_x_total x\ntpn_x_total 1\n";
        assert!(validate(doc).unwrap_err().contains("before HELP/TYPE"));
    }

    #[test]
    fn rejects_duplicate_series() {
        let doc = "# HELP m x\n# TYPE m counter\nm{a=\"1\"} 1\nm{a=\"1\"} 2\n";
        assert!(validate(doc).unwrap_err().contains("duplicate series"));
    }

    #[test]
    fn rejects_missing_inf_bucket() {
        let doc = "# HELP h x\n# TYPE h histogram\n\
                   h_bucket{le=\"0.1\"} 1\nh_sum 0.05\nh_count 1\n";
        assert!(validate(doc).unwrap_err().contains("+Inf"));
    }

    #[test]
    fn rejects_decreasing_bucket_counts() {
        let doc = "# HELP h x\n# TYPE h histogram\n\
                   h_bucket{le=\"0.1\"} 3\nh_bucket{le=\"+Inf\"} 2\nh_sum 0.1\nh_count 2\n";
        assert!(validate(doc).unwrap_err().contains("decrease"));
    }

    #[test]
    fn rejects_inf_bucket_count_mismatch() {
        let doc = "# HELP h x\n# TYPE h histogram\n\
                   h_bucket{le=\"0.1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 0.1\nh_count 3\n";
        assert!(validate(doc).unwrap_err().contains("!= _count"));
    }

    #[test]
    fn rejects_non_monotone_le_bounds() {
        let doc = "# HELP h x\n# TYPE h histogram\n\
                   h_bucket{le=\"0.2\"} 1\nh_bucket{le=\"0.1\"} 1\n\
                   h_bucket{le=\"+Inf\"} 1\nh_sum 0.1\nh_count 1\n";
        assert!(validate(doc).unwrap_err().contains("strictly increasing"));
    }

    #[test]
    fn rejects_bad_names_values_and_escapes() {
        for (doc, what) in [
            ("# HELP 9m x\n# TYPE 9m counter\n9m 1\n", "bad metric name"),
            (
                "# HELP m x\n# TYPE m counter\nm{9l=\"v\"} 1\n",
                "bad label name",
            ),
            ("# HELP m x\n# TYPE m counter\nm one\n", "bad sample value"),
            (
                "# HELP m x\n# TYPE m counter\nm{l=\"v\\q\"} 1\n",
                "bad escape",
            ),
            ("# HELP m x\n# TYPE m counter\nm 1 1700000000\n", "trailing"),
            ("# HELP m x\n# TYPE m counter\nm -1\n", "non-negative"),
            (
                "# HELP m x\n# TYPE m counter\n# TYPE m counter\nm 1\n",
                "duplicate TYPE",
            ),
        ] {
            let err = validate(doc).unwrap_err();
            assert!(err.contains(what), "{doc:?}: {err}");
        }
    }

    #[test]
    fn parses_escaped_label_values() {
        let doc = "# HELP m x\n# TYPE m counter\nm{l=\"a\\\\b\\\"c\\nd\"} 1\n";
        validate(doc).unwrap();
    }

    #[test]
    fn histogram_members_must_belong() {
        let doc = "# HELP h x\n# TYPE h histogram\nh_other 1\n";
        // `h_other` is not _bucket/_sum/_count of h: it is its own
        // family, and that family has no HELP/TYPE.
        assert!(validate(doc).unwrap_err().contains("before HELP/TYPE"));
        let doc = "# HELP h x\n# TYPE h histogram\nh 1\n";
        assert!(validate(doc)
            .unwrap_err()
            .contains("not a histogram member"));
    }
}
