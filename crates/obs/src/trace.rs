//! Per-request span trees through a thread-local collector.
//!
//! The server's request loop brackets each request with
//! [`begin`]/[`end`]; instrumented code in between opens named
//! [`span`]s (RAII guards) that record their depth, start offset and
//! duration. Spans are stored **preorder** — parent before children —
//! so the flat `Vec<Span>` the collector returns reproduces the call
//! tree via the `depth` field without any pointer chasing.
//!
//! The design constraint is the inactive cost: every instrumented
//! callsite runs on the hot path whether or not anyone is tracing, so
//! [`span`] when no collection is active is one thread-local borrow
//! and a `None` check — no allocation, no clock read. Guards are
//! deliberately `!Send`: a span must close on the thread that opened
//! it, which is also what pins a collection to one request on one
//! worker thread.
//!
//! [`begin`] refuses to nest (returns `false` if this thread is
//! already collecting): the outermost request wrapper owns the
//! collection, and inner instrumented entry points — e.g. an analysis
//! served inside a `/v1` envelope — contribute spans to it instead of
//! starting their own.

use crate::clock;
use std::cell::RefCell;
use std::marker::PhantomData;

/// One closed span of a request's trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// The instrumented operation ("parse", "cache", "trg", …). Static
    /// so opening a span never allocates.
    pub name: &'static str,
    /// Nesting depth below the collection root (the root span itself
    /// is depth 1).
    pub depth: u32,
    /// Offset of the span's open from [`begin`], in nanoseconds.
    pub start_ns: u64,
    /// Wall-clock duration from open to guard drop, in nanoseconds.
    pub duration_ns: u64,
}

/// Spans one collection retains at most — a safety cap so a
/// pathological request (say a 64-analysis `/v1` envelope over a
/// cold net) cannot grow an unbounded trace. Further spans are
/// silently dropped; their children keep the parent's depth.
const MAX_SPANS: usize = 512;

/// Sentinel duration marking a span that is still open.
const OPEN: u64 = u64::MAX;

/// Identity annotation slots a collection carries (see [`annotate`]).
pub const ANNOTATION_SLOTS: usize = 2;

struct Collector {
    epoch_ns: u64,
    depth: u32,
    spans: Vec<Span>,
    /// First-writer-wins identity annotations (domain-agnostic u128
    /// values — the service layer stores net digests and spec hashes).
    /// Living inside the collector, an annotation costs one
    /// thread-local access and is cleared for free by [`end`].
    annotations: [Option<u128>; ANNOTATION_SLOTS],
}

#[derive(Default)]
struct Tracer {
    active: Option<Collector>,
    /// A spare span buffer — refilled by [`end_with`] (which never
    /// gives the buffer up) or [`recycle`], so in steady state a
    /// request's collection allocates nothing.
    spare: Vec<Span>,
}

thread_local! {
    static TRACER: RefCell<Tracer> = const {
        RefCell::new(Tracer {
            active: None,
            spare: Vec::new(),
        })
    };
}

#[inline]
fn start(epoch_ns: u64, depth: u32) -> bool {
    TRACER.with(|t| {
        let mut t = t.borrow_mut();
        if t.active.is_some() {
            return false;
        }
        let mut spans = std::mem::take(&mut t.spare);
        if spans.capacity() == 0 {
            spans = Vec::with_capacity(16);
        }
        t.active = Some(Collector {
            epoch_ns,
            depth,
            spans,
            annotations: [None; ANNOTATION_SLOTS],
        });
        true
    })
}

/// Start collecting spans on this thread. Returns `false` (and leaves
/// the active collection untouched) if one is already running — the
/// caller then must not call [`end`].
#[inline]
pub fn begin() -> bool {
    start(clock::now_ns(), 0)
}

/// Like [`begin`], but for a wrapper that times the whole collection
/// itself and carries that measurement out of band (a request header
/// with endpoint, status and duration): `epoch_ns` (a
/// [`clock::now_ns`] reading the caller already took) becomes the
/// collection epoch, and depth 1 is reserved for that implicit root —
/// every spanned callsite in between records at depth ≥ 2, exactly as
/// under a real root guard. No root span is stored; renderers
/// synthesize it from the out-of-band measurement.
#[inline]
pub fn begin_rooted(epoch_ns: u64) -> bool {
    start(epoch_ns, 1)
}

/// Hand a span buffer back for the next [`begin`] on this thread to
/// reuse — called with the spans of the trace evicted from a full
/// ring. No-op for buffers that never grew.
#[inline]
pub fn recycle(mut spans: Vec<Span>) {
    if spans.capacity() == 0 {
        return;
    }
    spans.clear();
    TRACER.with(|t| t.borrow_mut().spare = spans);
}

/// Whether this thread is currently collecting.
pub fn active() -> bool {
    TRACER.with(|t| t.borrow().active.is_some())
}

/// Attach an identity annotation to this thread's active collection
/// (no-op when none is — the unobserved path pays one thread-local
/// read). First writer per slot wins: a `/whatif` re-timing resolves
/// many inner digests, but the request is about the net it started
/// with. Panics on `slot >= ANNOTATION_SLOTS`.
#[inline]
pub fn annotate(slot: usize, value: u128) {
    TRACER.with(|t| {
        if let Some(collector) = t.borrow_mut().active.as_mut() {
            if collector.annotations[slot].is_none() {
                collector.annotations[slot] = Some(value);
            }
        }
    });
}

/// Finish this thread's collection and return its spans (preorder).
/// Spans still open at this point are dropped. `None` if no collection
/// was active.
#[inline]
pub fn end() -> Option<Vec<Span>> {
    end_annotated().map(|(spans, _)| spans)
}

/// Like [`end`], but also returning the [`annotate`] slots.
#[inline]
pub fn end_annotated() -> Option<(Vec<Span>, [Option<u128>; ANNOTATION_SLOTS])> {
    TRACER
        .with(|t| t.borrow_mut().active.take())
        .map(|collector| {
            let mut spans = collector.spans;
            spans.retain(|s| s.duration_ns != OPEN);
            (spans, collector.annotations)
        })
}

/// Finish this thread's collection and hand the closed spans
/// (preorder) plus the [`annotate`] slots to `f` by reference,
/// keeping the span buffer: it returns to this thread's spare slot
/// the moment `f` returns. Against [`end_annotated`] +
/// [`recycle`], the consumer copies the spans it wants to keep and
/// the buffer never travels — one thread-local access fewer per
/// request, and the allocation stays put instead of rotating through
/// the consumer's storage. `f` runs inside the collector borrow and
/// must not call back into this module. Returns `None` (without
/// calling `f`) if no collection was active.
#[inline]
pub fn end_with<R>(f: impl FnOnce(&[Span], &[Option<u128>; ANNOTATION_SLOTS]) -> R) -> Option<R> {
    TRACER.with(|t| {
        let mut t = t.borrow_mut();
        let mut collector = t.active.take()?;
        collector.spans.retain(|s| s.duration_ns != OPEN);
        let result = f(&collector.spans, &collector.annotations);
        collector.spans.clear();
        t.spare = collector.spans;
        Some(result)
    })
}

/// The spans closed **so far** in this thread's active collection —
/// for callers that render a trace mid-request (the `/v1` `"trace"`
/// flag renders before its own root span closes). Empty when no
/// collection is active.
pub fn snapshot() -> Vec<Span> {
    TRACER.with(|t| match t.borrow().active.as_ref() {
        None => Vec::new(),
        Some(collector) => collector
            .spans
            .iter()
            .filter(|s| s.duration_ns != OPEN)
            .cloned()
            .collect(),
    })
}

/// Open a named span. The returned guard closes it on drop; when no
/// collection is active the guard is inert and the call is nearly
/// free.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    open(name, true)
}

/// Open a named span pinned to the collection epoch (`start_ns` 0)
/// without reading the clock — for work that *begins* a request, like
/// the body parse every handler starts with, where the open provably
/// coincides with the request's own start. Closing the guard records
/// the duration from the epoch as usual.
#[inline]
pub fn span_epoch(name: &'static str) -> SpanGuard {
    open(name, false)
}

#[inline]
fn open(name: &'static str, read_clock: bool) -> SpanGuard {
    let slot = TRACER.with(|t| {
        let mut t = t.borrow_mut();
        let collector = t.active.as_mut()?;
        if collector.spans.len() >= MAX_SPANS {
            return None;
        }
        collector.depth += 1;
        let start_ns = if read_clock {
            clock::now_ns().saturating_sub(collector.epoch_ns)
        } else {
            0
        };
        collector.spans.push(Span {
            name,
            depth: collector.depth,
            start_ns,
            duration_ns: OPEN,
        });
        Some(collector.spans.len() - 1)
    });
    SpanGuard {
        slot,
        _not_send: PhantomData,
    }
}

/// RAII guard of one open span; closes it (records the duration and
/// pops the depth) on drop.
#[must_use = "a span closes when its guard drops; binding to _ closes it immediately"]
pub struct SpanGuard {
    /// Index into the collector's span vector, `None` when the guard
    /// is inert (no active collection, or the span cap was hit).
    slot: Option<usize>,
    /// Spans must close on the thread that opened them.
    _not_send: PhantomData<*const ()>,
}

impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        let Some(slot) = self.slot else { return };
        TRACER.with(|t| {
            let mut t = t.borrow_mut();
            // The collection may have ended while this guard was open
            // (misuse tolerated: the span is simply lost).
            let Some(collector) = t.active.as_mut() else {
                return;
            };
            let now = clock::now_ns().saturating_sub(collector.epoch_ns);
            if let Some(span) = collector.spans.get_mut(slot) {
                if span.duration_ns == OPEN {
                    span.duration_ns = now.saturating_sub(span.start_ns);
                }
            }
            collector.depth = collector.depth.saturating_sub(1);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_preorder_with_depths() {
        assert!(begin());
        {
            let _root = span("root");
            {
                let _child = span("child");
                let _grandchild = span("grandchild");
            }
            let _sibling = span("sibling");
        }
        let spans = end().unwrap();
        let shape: Vec<(&str, u32)> = spans.iter().map(|s| (s.name, s.depth)).collect();
        assert_eq!(
            shape,
            [("root", 1), ("child", 2), ("grandchild", 3), ("sibling", 2)]
        );
        assert!(spans.iter().all(|s| s.duration_ns != OPEN));
        // A parent opens no later than its children.
        assert!(spans[0].start_ns <= spans[1].start_ns);
    }

    #[test]
    fn begin_refuses_to_nest() {
        assert!(begin());
        assert!(!begin());
        let _ = end();
        assert!(begin());
        let _ = end();
    }

    #[test]
    fn inactive_spans_are_inert() {
        assert!(!active());
        let guard = span("ignored");
        assert!(guard.slot.is_none());
        drop(guard);
        assert_eq!(end(), None);
    }

    #[test]
    fn snapshot_sees_closed_spans_only() {
        assert!(begin());
        let open = span("open");
        {
            let _done = span("done");
        }
        let snap = snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].name, "done");
        drop(open);
        assert_eq!(end().unwrap().len(), 2);
    }

    #[test]
    fn begin_rooted_reserves_depth_one_for_the_implicit_root() {
        assert!(begin_rooted(clock::now_ns()));
        assert!(!begin()); // still refuses to nest
        {
            let _child = span("child");
            let _grandchild = span("grandchild");
        }
        let spans = end().unwrap();
        let shape: Vec<(&str, u32)> = spans.iter().map(|s| (s.name, s.depth)).collect();
        assert_eq!(shape, [("child", 2), ("grandchild", 3)]);
    }

    #[test]
    fn span_epoch_pins_the_start_to_the_collection_epoch() {
        assert!(begin());
        {
            let _first = span_epoch("first");
        }
        let spans = end().unwrap();
        assert_eq!(spans[0].start_ns, 0);
        assert!(spans[0].duration_ns != OPEN);
    }

    #[test]
    fn recycled_buffers_are_reused_by_the_next_collection() {
        recycle(Vec::with_capacity(64));
        assert!(begin());
        {
            let _s = span("s");
        }
        let spans = end().unwrap();
        assert!(spans.capacity() >= 64, "capacity {}", spans.capacity());
        recycle(Vec::new()); // zero-capacity hand-back is a no-op
        assert!(begin());
        let _ = end();
    }

    #[test]
    fn span_cap_bounds_the_collection() {
        assert!(begin());
        let guards: Vec<SpanGuard> = (0..MAX_SPANS + 10).map(|_| span("s")).collect();
        drop(guards);
        assert_eq!(end().unwrap().len(), MAX_SPANS);
    }

    #[test]
    fn end_with_borrows_spans_and_keeps_the_buffer() {
        assert!(begin());
        {
            let _s = span("s");
        }
        let _leaked = std::mem::ManuallyDrop::new(span("open — dropped"));
        annotate(1, 9);
        let names = end_with(|spans, annotations| {
            assert_eq!(annotations, &[None, Some(9)]);
            spans.iter().map(|s| s.name).collect::<Vec<_>>()
        });
        assert_eq!(names, Some(vec!["s"]));
        // The buffer stayed with this thread: the next collection
        // reuses it without a fresh allocation.
        assert!(begin());
        let spans = end().unwrap();
        assert!(spans.capacity() >= 2, "capacity {}", spans.capacity());
        // Inactive: f is not called.
        assert_eq!(
            end_with(|_, _| unreachable!("no active collection")),
            None::<()>
        );
    }

    #[test]
    fn annotations_are_first_writer_wins_and_returned_by_end() {
        annotate(0, 7); // inactive: dropped
        assert!(begin());
        annotate(0, 1);
        annotate(0, 2);
        annotate(1, 3);
        let (_, annotations) = end_annotated().unwrap();
        assert_eq!(annotations, [Some(1), Some(3)]);
        // A fresh collection starts clean.
        assert!(begin());
        assert_eq!(end_annotated().unwrap().1, [None, None]);
    }

    #[test]
    fn still_open_spans_are_dropped_by_end() {
        assert!(begin());
        let _leaked = std::mem::ManuallyDrop::new(span("never closed"));
        {
            let _ok = span("closed");
        }
        let spans = end().unwrap();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "closed");
    }
}
