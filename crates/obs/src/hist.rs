//! Lock-free fixed-bucket latency histograms.
//!
//! A [`Histogram`] is a fixed array of relaxed [`AtomicU64`] bucket
//! counters over an exponential ladder of nanosecond bounds
//! ([`BUCKET_BOUNDS_NS`]: 1µs → 10s in a 1/2.5/5 pattern, plus a
//! `+Inf` overflow bucket) and an atomic running sum. Recording is one
//! bounds lookup plus two `fetch_add`s — cheap enough to sit on every
//! request and every pipeline-stage build.
//!
//! [`HistogramSnapshot`] is the plain-integer copy a renderer works
//! from: snapshots [`merge`](HistogramSnapshot::merge) exactly
//! (bucket-wise addition — merging per-thread or per-shard recorders
//! equals one shared recorder) and estimate quantiles by linear
//! interpolation inside the selected bucket, the same estimate
//! Prometheus' `histogram_quantile` computes from the exported
//! buckets. Estimates are bounded by the true sample's bucket: p99
//! from a snapshot always lands inside the bucket that holds the true
//! 99th-percentile sample (property-tested in `tests/hist_props.rs`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Inclusive upper bounds (`le`) of the finite buckets, in
/// nanoseconds: a 1 / 2.5 / 5 ladder from 1µs to 10s. Wide enough for
/// a parse-only cache hit (~µs) and a cold million-state TRG build
/// (~s) on one scale.
pub const BUCKET_BOUNDS_NS: [u64; 22] = [
    1_000,
    2_500,
    5_000,
    10_000,
    25_000,
    50_000,
    100_000,
    250_000,
    500_000,
    1_000_000,
    2_500_000,
    5_000_000,
    10_000_000,
    25_000_000,
    50_000_000,
    100_000_000,
    250_000_000,
    500_000_000,
    1_000_000_000,
    2_500_000_000,
    5_000_000_000,
    10_000_000_000,
];

/// Total bucket count: every finite bound plus the `+Inf` overflow.
pub const NUM_BUCKETS: usize = BUCKET_BOUNDS_NS.len() + 1;

/// A lock-free latency histogram. All methods take `&self`; recording
/// uses relaxed atomics only (counters feed observability, not control
/// flow).
#[derive(Debug, Default)]
pub struct Histogram {
    /// Per-bucket (non-cumulative) sample counts; index
    /// [`NUM_BUCKETS`]` - 1` is the `+Inf` overflow bucket.
    buckets: [AtomicU64; NUM_BUCKETS],
    /// Sum of every recorded duration, in nanoseconds.
    sum_ns: AtomicU64,
}

impl Histogram {
    /// A fresh all-zero histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one duration.
    #[inline]
    pub fn record(&self, d: Duration) {
        self.record_ns(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Record one duration given in nanoseconds.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        // First bucket whose inclusive bound admits `ns`; past the last
        // finite bound this lands on the +Inf bucket.
        let i = BUCKET_BOUNDS_NS.partition_point(|&bound| bound < ns);
        self.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// A plain-integer copy of the current counters. Taken bucket by
    /// bucket with relaxed loads: a snapshot racing recorders may miss
    /// in-flight increments but never tears an individual counter.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = [0u64; NUM_BUCKETS];
        for (c, b) in counts.iter_mut().zip(&self.buckets) {
            *c = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            counts,
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`]'s counters — the value
/// renderers, mergers and quantile estimators work from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Per-bucket (non-cumulative) counts, aligned with
    /// [`BUCKET_BOUNDS_NS`]; the final entry is the `+Inf` bucket.
    pub counts: [u64; NUM_BUCKETS],
    /// Sum of every recorded duration, in nanoseconds.
    pub sum_ns: u64,
}

impl HistogramSnapshot {
    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Add another snapshot's counts into this one. Because buckets
    /// share fixed bounds, merging N recorders' snapshots equals the
    /// snapshot of one recorder that saw all samples.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum_ns += other.sum_ns;
    }

    /// The activity between `earlier` and this snapshot: bucket-wise
    /// saturating subtraction. For two snapshots of one recorder the
    /// delta equals the snapshot of exactly the samples recorded in
    /// between; if the recorder was reset (earlier > later) the delta
    /// saturates at zero rather than wrapping — windowed rates derived
    /// from deltas can never go negative.
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::default();
        for (o, (a, b)) in out
            .counts
            .iter_mut()
            .zip(self.counts.iter().zip(&earlier.counts))
        {
            *o = a.saturating_sub(*b);
        }
        out.sum_ns = self.sum_ns.saturating_sub(earlier.sum_ns);
        out
    }

    /// Cumulative counts, aligned with [`BUCKET_BOUNDS_NS`] — exactly
    /// the `_bucket` series of the Prometheus exposition (the final
    /// entry equals [`count`](HistogramSnapshot::count)).
    pub fn cumulative(&self) -> [u64; NUM_BUCKETS] {
        let mut cum = self.counts;
        for i in 1..NUM_BUCKETS {
            cum[i] += cum[i - 1];
        }
        cum
    }

    /// Estimate the `q`-quantile (`0 ≤ q ≤ 1`) in nanoseconds by
    /// linear interpolation inside the bucket holding the quantile
    /// rank — the estimate `histogram_quantile` would compute from the
    /// exported buckets. `None` on an empty snapshot. Samples in the
    /// `+Inf` bucket degrade to the last finite bound.
    pub fn quantile_ns(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = q.clamp(0.0, 1.0) * total as f64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            let before = cum;
            cum += c;
            if c > 0 && cum as f64 >= target {
                let last = BUCKET_BOUNDS_NS.len() - 1;
                if i > last {
                    // +Inf bucket: no upper bound to interpolate to.
                    return Some(BUCKET_BOUNDS_NS[last] as f64);
                }
                let lower = if i == 0 {
                    0.0
                } else {
                    BUCKET_BOUNDS_NS[i - 1] as f64
                };
                let upper = BUCKET_BOUNDS_NS[i] as f64;
                let frac = ((target - before as f64) / c as f64).clamp(0.0, 1.0);
                return Some(lower + (upper - lower) * frac);
            }
        }
        // Unreachable for total > 0, but degrade gracefully.
        Some(BUCKET_BOUNDS_NS[BUCKET_BOUNDS_NS.len() - 1] as f64)
    }

    /// The median estimate, in nanoseconds (`None` when empty).
    pub fn p50_ns(&self) -> Option<f64> {
        self.quantile_ns(0.50)
    }

    /// The 90th-percentile estimate, in nanoseconds (`None` when empty).
    pub fn p90_ns(&self) -> Option<f64> {
        self.quantile_ns(0.90)
    }

    /// The 99th-percentile estimate, in nanoseconds (`None` when empty).
    pub fn p99_ns(&self) -> Option<f64> {
        self.quantile_ns(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_are_strictly_increasing() {
        assert!(BUCKET_BOUNDS_NS.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn records_land_in_their_bucket() {
        let h = Histogram::new();
        h.record_ns(0); // below the first bound
        h.record_ns(1_000); // exactly on a bound: le is inclusive
        h.record_ns(1_001); // just past it
        h.record_ns(10_000_000_001); // past the last bound: +Inf
        let s = h.snapshot();
        assert_eq!(s.counts[0], 2);
        assert_eq!(s.counts[1], 1);
        assert_eq!(s.counts[NUM_BUCKETS - 1], 1);
        assert_eq!(s.count(), 4);
        assert_eq!(s.sum_ns, 10_000_001_002 + 1_000);
    }

    #[test]
    fn record_duration_saturates() {
        let h = Histogram::new();
        h.record(Duration::from_secs(u64::MAX)); // > u64::MAX nanoseconds
        let s = h.snapshot();
        assert_eq!(s.counts[NUM_BUCKETS - 1], 1);
        assert_eq!(s.sum_ns, u64::MAX);
    }

    #[test]
    fn cumulative_ends_at_count() {
        let h = Histogram::new();
        for ns in [500, 3_000, 3_000, 70_000, 20_000_000_000] {
            h.record_ns(ns);
        }
        let s = h.snapshot();
        let cum = s.cumulative();
        assert_eq!(cum[NUM_BUCKETS - 1], s.count());
        assert!(cum.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn quantiles_interpolate_within_the_bucket() {
        let h = Histogram::new();
        // 100 samples uniformly inside the (1ms, 2.5ms] bucket.
        for i in 0..100 {
            h.record_ns(1_000_001 + i);
        }
        let s = h.snapshot();
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            let est = s.quantile_ns(q).unwrap();
            assert!(
                (1_000_000.0..=2_500_000.0).contains(&est),
                "q={q} estimate {est} outside the recorded bucket"
            );
        }
        // All mass in one bucket: the quantile position scales linearly.
        assert!(s.quantile_ns(0.5).unwrap() < s.quantile_ns(0.99).unwrap());
    }

    #[test]
    fn quantile_of_empty_is_none() {
        assert_eq!(Histogram::new().snapshot().quantile_ns(0.99), None);
    }

    #[test]
    fn quantile_of_overflow_degrades_to_last_bound() {
        let h = Histogram::new();
        h.record_ns(u64::MAX);
        let est = h.snapshot().quantile_ns(0.99).unwrap();
        assert_eq!(est, *BUCKET_BOUNDS_NS.last().unwrap() as f64);
    }
}
