//! Prometheus text-exposition rendering (format 0.0.4).
//!
//! [`Renderer`] is a small append-only builder: one
//! [`header`](Renderer::header) per metric family (`# HELP` + `# TYPE`)
//! followed by its samples. Output is **deterministic**: labels render
//! in caller order, histogram buckets in bound order, and nothing is
//! reordered or deduplicated behind the caller's back — so a fixed
//! counter state renders byte-identically, which is what lets tests
//! treat `/metrics` output like a golden document. Well-formedness is
//! the caller's job, checked in tests by [`crate::validate`].
//!
//! Value formatting never uses scientific notation (Rust's `{}` for
//! `f64` is the shortest round-trip decimal form), and bucket bounds
//! render as exact decimal **seconds** (`le="0.0000025"`), the unit
//! Prometheus histograms conventionally carry.

use std::fmt::Write;

use crate::hist::{HistogramSnapshot, BUCKET_BOUNDS_NS};

/// Escape a `# HELP` text: backslashes and newlines.
fn escape_help(out: &mut String, text: &str) {
    for ch in text.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Escape a label value: backslashes, double quotes and newlines.
fn escape_label(out: &mut String, text: &str) {
    for ch in text.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// A nanosecond quantity as exact decimal seconds (`2_500_000` →
/// `"0.0025"`). All of [`BUCKET_BOUNDS_NS`] round-trip exactly through
/// `f64` (each is `1|25|5 × 10^k` with few significant bits), so the
/// shortest display form is the exact value.
pub fn seconds(ns: u64) -> String {
    format!("{}", ns as f64 / 1e9)
}

/// An append-only Prometheus text-exposition builder.
#[derive(Debug, Default)]
pub struct Renderer {
    out: String,
}

impl Renderer {
    /// An empty document.
    pub fn new() -> Renderer {
        Renderer::default()
    }

    /// Open a metric family: `# HELP` and `# TYPE` lines. `kind` is
    /// `"counter"`, `"gauge"` or `"histogram"`.
    pub fn header(&mut self, name: &str, help: &str, kind: &str) {
        self.out.push_str("# HELP ");
        self.out.push_str(name);
        self.out.push(' ');
        escape_help(&mut self.out, help);
        self.out.push('\n');
        self.out.push_str("# TYPE ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(kind);
        self.out.push('\n');
    }

    fn name_and_labels(&mut self, name: &str, labels: &[(&str, &str)]) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                self.out.push_str(k);
                self.out.push_str("=\"");
                escape_label(&mut self.out, v);
                self.out.push('"');
            }
            self.out.push('}');
        }
        self.out.push(' ');
    }

    /// One integer-valued sample line.
    pub fn sample_u64(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.name_and_labels(name, labels);
        let _ = writeln!(self.out, "{value}");
    }

    /// One float-valued sample line (shortest round-trip decimal, no
    /// scientific notation).
    pub fn sample_f64(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.name_and_labels(name, labels);
        let _ = writeln!(self.out, "{value}");
    }

    /// A full histogram family member for one label set: cumulative
    /// `_bucket` lines (bounds as exact decimal seconds, then `+Inf`),
    /// `_sum` (seconds) and `_count`. `labels` are the series labels
    /// *without* `le`; the `le` label is appended last.
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)], snap: &HistogramSnapshot) {
        let cum = snap.cumulative();
        let bucket = format!("{name}_bucket");
        for (i, &bound) in BUCKET_BOUNDS_NS.iter().enumerate() {
            let le = seconds(bound);
            let mut with_le: Vec<(&str, &str)> = labels.to_vec();
            with_le.push(("le", &le));
            self.sample_u64(&bucket, &with_le, cum[i]);
        }
        let mut with_le: Vec<(&str, &str)> = labels.to_vec();
        with_le.push(("le", "+Inf"));
        self.sample_u64(&bucket, &with_le, cum[cum.len() - 1]);
        self.sample_f64(&format!("{name}_sum"), labels, snap.sum_ns as f64 / 1e9);
        self.sample_u64(&format!("{name}_count"), labels, snap.count());
    }

    /// The assembled document.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    #[test]
    fn bounds_render_as_exact_decimal_seconds() {
        assert_eq!(seconds(1_000), "0.000001");
        assert_eq!(seconds(2_500), "0.0000025");
        assert_eq!(seconds(1_000_000), "0.001");
        assert_eq!(seconds(2_500_000_000), "2.5");
        assert_eq!(seconds(10_000_000_000), "10");
    }

    #[test]
    fn renders_headers_and_samples() {
        let mut r = Renderer::new();
        r.header("tpn_requests_total", "Requests by endpoint.", "counter");
        r.sample_u64(
            "tpn_requests_total",
            &[("endpoint", "analyze"), ("status", "200")],
            3,
        );
        let text = r.finish();
        assert_eq!(
            text,
            "# HELP tpn_requests_total Requests by endpoint.\n\
             # TYPE tpn_requests_total counter\n\
             tpn_requests_total{endpoint=\"analyze\",status=\"200\"} 3\n"
        );
    }

    #[test]
    fn escapes_label_values_and_help() {
        let mut r = Renderer::new();
        r.header("m", "line\nbreak \\ slash", "gauge");
        r.sample_u64("m", &[("l", "quote\" back\\ nl\n")], 1);
        let text = r.finish();
        assert!(
            text.contains("# HELP m line\\nbreak \\\\ slash\n"),
            "{text}"
        );
        assert!(
            text.contains("m{l=\"quote\\\" back\\\\ nl\\n\"} 1\n"),
            "{text}"
        );
    }

    #[test]
    fn histogram_renders_cumulative_buckets_and_inf() {
        let h = Histogram::new();
        h.record_ns(500); // le 0.000001
        h.record_ns(500);
        h.record_ns(2_000_000); // le 0.0025
        let mut r = Renderer::new();
        r.header("d", "durations", "histogram");
        r.histogram("d", &[("endpoint", "analyze")], &h.snapshot());
        let text = r.finish();
        assert!(
            text.contains("d_bucket{endpoint=\"analyze\",le=\"0.000001\"} 2\n"),
            "{text}"
        );
        assert!(
            text.contains("d_bucket{endpoint=\"analyze\",le=\"0.0025\"} 3\n"),
            "{text}"
        );
        assert!(
            text.contains("d_bucket{endpoint=\"analyze\",le=\"+Inf\"} 3\n"),
            "{text}"
        );
        assert!(
            text.contains("d_sum{endpoint=\"analyze\"} 0.002001\n"),
            "{text}"
        );
        assert!(text.contains("d_count{endpoint=\"analyze\"} 3\n"), "{text}");
        crate::validate::validate(&text).unwrap();
    }
}
