//! `tpn-obs` — observability primitives for the timed-petri workspace.
//!
//! Std-only and allocation-light: nothing here may slow down the paths
//! it observes. Four independent pieces, composed by `tpn-session` and
//! `tpn-service`:
//!
//! | module | contents |
//! |---|---|
//! | [`clock`] | calibrated-TSC fast monotonic clock (`Instant` fallback), shared by every timing site |
//! | [`hist`] | lock-free fixed-bucket latency histograms with mergeable snapshots and quantile estimation |
//! | [`trace`] | per-request span trees collected through a thread-local, zero-cost when inactive |
//! | [`expo`] | Prometheus text-exposition rendering (format 0.0.4) with deterministic ordering |
//! | [`validate`] | a hand-rolled exposition-format checker, used by tests against live `/metrics` output |
//! | [`log`] | sampled NDJSON request logging behind a `Mutex`'d writer |
//! | [`series`] | seqlock time-series ring retaining counter/gauge/histogram frames for trailing-window rates |
//! | [`slo`] | objectives, windowed compliance and multi-window burn-rate arithmetic (Google SRE style) |
//! | [`alert`] | declarative threshold/burn-rate rules over a [`series`] ring, hysteresis state machine, bounded event history |
//! | [`procinfo`] | best-effort `/proc/self` process gauges (RSS, open fds, threads) |
//!
//! Design constraints, in order:
//!
//! 1. **Recording must be cheap and lock-free.** [`hist::Histogram`]
//!    is a fixed array of relaxed atomics (one `fetch_add` per
//!    record); [`trace`] touches only a thread-local and is a no-op
//!    when no collection is active.
//! 2. **Rendering is cold** and may allocate freely; it reads relaxed
//!    snapshots, so a scrape racing a record may be off by in-flight
//!    increments but is always internally well-formed.
//! 3. **Deterministic output.** [`expo::Renderer`] emits labels in
//!    caller order and histogram buckets in bound order, so a given
//!    state renders byte-identically — the property the golden-style
//!    exposition tests rely on.

pub mod alert;
pub mod clock;
pub mod expo;
pub mod hist;
pub mod log;
pub mod procinfo;
pub mod series;
pub mod slo;
pub mod trace;
pub mod validate;

pub use alert::{
    AlertEngine, AlertEvent, AlertRule, AlertState, Cmp, RuleStatus, Signal, Transition,
};
pub use expo::Renderer;
pub use hist::{Histogram, HistogramSnapshot, BUCKET_BOUNDS_NS, NUM_BUCKETS};
pub use log::RequestLog;
pub use procinfo::ProcessGauges;
pub use series::{Frame, SeriesRing, SeriesSchema};
pub use slo::{Health, Objective, WindowBurn};
pub use trace::Span;

/// Milliseconds since the Unix epoch — the timestamp every trace ring
/// entry and log line carries. Derived from the fast clock against a
/// base sampled once; see [`clock::unix_ms`].
pub fn unix_ms() -> u64 {
    clock::unix_ms()
}
