//! Rule-driven alerting over a retention ring: declarative threshold
//! rules, a per-rule hysteresis state machine and a bounded event
//! history.
//!
//! An [`AlertRule`] names a [`Signal`] — a number reconstructed from
//! [`SeriesRing`] frames (counter rate,
//! gauge, histogram quantile, or an SLO burn rate reusing
//! [`crate::slo`] math) — and a comparison against a threshold. The
//! [`AlertEngine`] evaluates every rule once per pushed frame and
//! drives each through `inactive → pending → firing → resolved`:
//!
//! * a rule only **fires** after its condition has held continuously
//!   for `for_s` seconds (the `for`-duration hysteresis), and
//! * a firing rule only **resolves** after the condition has been
//!   continuously false for `resolve_s` seconds (resolve debounce),
//!
//! so an input oscillating around the threshold cannot flap
//! (property-tested in `tests/alert_props.rs`). Every timestamp the
//! machine consumes comes from the frames themselves, never a wall
//! clock, so replaying the same frames yields byte-identical
//! transitions. Firing/resolved transitions are appended to a bounded
//! history ring the owner can render or forward to a notifier.

use std::collections::VecDeque;

use crate::series::{Frame, SeriesRing};
use crate::slo::{Objective, WindowBurn};

/// Comparison an [`AlertRule`] applies between signal and threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// Signal strictly above threshold.
    Gt,
    /// Signal at or above threshold.
    Ge,
    /// Signal strictly below threshold.
    Lt,
    /// Signal at or below threshold.
    Le,
}

impl Cmp {
    /// Wire spelling (`>`, `>=`, `<`, `<=`).
    pub fn as_str(&self) -> &'static str {
        match self {
            Cmp::Gt => ">",
            Cmp::Ge => ">=",
            Cmp::Lt => "<",
            Cmp::Le => "<=",
        }
    }

    /// Parse the wire spelling.
    pub fn by_name(s: &str) -> Option<Cmp> {
        match s {
            ">" => Some(Cmp::Gt),
            ">=" => Some(Cmp::Ge),
            "<" => Some(Cmp::Lt),
            "<=" => Some(Cmp::Le),
            _ => None,
        }
    }

    /// Whether `value cmp threshold` holds. A NaN value never
    /// satisfies any comparison — an unevaluable signal (idle window,
    /// empty ring column) cannot trip an alert.
    pub fn holds(&self, value: f64, threshold: f64) -> bool {
        match self {
            Cmp::Gt => value > threshold,
            Cmp::Ge => value >= threshold,
            Cmp::Lt => value < threshold,
            Cmp::Le => value <= threshold,
        }
    }
}

/// The number a rule watches, reconstructed from ring frames each
/// tick. Window-based signals compare the newest frame against the
/// frame `window_s` before it (via
/// [`SeriesRing::at_or_before`](crate::series::SeriesRing::at_or_before)),
/// falling back to the since-boot totals in the newest frame while
/// the ring is still empty.
#[derive(Debug, Clone, PartialEq)]
pub enum Signal {
    /// Per-second increase of counter column `column` over the window.
    /// NaN when the window has zero width.
    CounterRate {
        /// Index into the schema's counters.
        column: usize,
    },
    /// Latest value of gauge column `column` (windowless).
    Gauge {
        /// Index into the schema's gauges.
        column: usize,
    },
    /// Quantile `q` (in nanoseconds) of histogram column `column`'s
    /// activity over the window. NaN when the window saw no samples.
    QuantileNs {
        /// Index into the schema's hists.
        column: usize,
        /// Quantile in `(0, 1)`, e.g. `0.99`.
        q: f64,
    },
    /// Worst SLO budget burn rate of histogram `hist` (latency) and
    /// counter `errors` over the window, per [`WindowBurn`]. Zero on
    /// an idle window.
    BurnRate {
        /// Latency histogram column index.
        hist: usize,
        /// Error counter column index.
        errors: usize,
        /// The objective judged against.
        objective: Objective,
    },
}

impl Signal {
    /// Evaluate against the newest frame `now` and the window-start
    /// frame `start` (`None` while the ring is empty; the since-boot
    /// totals in `now` are then the window).
    fn value(&self, now: &Frame, start: Option<&Frame>) -> f64 {
        match *self {
            Signal::CounterRate { column } => {
                let (delta, dt_ms) = match start {
                    Some(s) => (now.counter_delta(s, column), now.unix_ms - s.unix_ms),
                    None => (now.counters[column], now.unix_ms),
                };
                if dt_ms == 0 {
                    return f64::NAN;
                }
                delta as f64 / (dt_ms as f64 / 1_000.0)
            }
            Signal::Gauge { column } => now.gauges[column],
            Signal::QuantileNs { column, q } => {
                let snap = match start {
                    Some(s) => now.hist_delta(s, column),
                    None => now.hists[column],
                };
                snap.quantile_ns(q).unwrap_or(f64::NAN)
            }
            Signal::BurnRate {
                hist,
                errors,
                ref objective,
            } => {
                let (snap, errs) = match start {
                    Some(s) => (now.hist_delta(s, hist), now.counter_delta(s, errors)),
                    None => (now.hists[hist], now.counters[errors]),
                };
                WindowBurn::evaluate(objective, &snap, errs).worst_burn()
            }
        }
    }
}

/// One declarative alert rule.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertRule {
    /// Unique rule name, the identity events and silences key on.
    pub name: String,
    /// Free-form severity label (`warn`, `page`, ...), forwarded to
    /// notifications verbatim.
    pub severity: String,
    /// The watched number.
    pub signal: Signal,
    /// Comparison between signal and threshold.
    pub cmp: Cmp,
    /// Threshold the signal is compared against.
    pub threshold: f64,
    /// Trailing window, seconds, for window-based signals.
    pub window_s: u64,
    /// The condition must hold continuously this long before the rule
    /// fires (`0` fires on the first true evaluation).
    pub for_s: u64,
    /// The condition must be continuously false this long before a
    /// firing rule resolves (`0` resolves on the first false one).
    pub resolve_s: u64,
}

/// Where a rule currently sits in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertState {
    /// Condition false (or never evaluated).
    Inactive,
    /// Condition true but not yet for `for_s` — waiting out the
    /// hysteresis.
    Pending,
    /// Fired and not yet resolved.
    Firing,
}

impl AlertState {
    /// Lower-case wire label.
    pub fn as_str(&self) -> &'static str {
        match self {
            AlertState::Inactive => "inactive",
            AlertState::Pending => "pending",
            AlertState::Firing => "firing",
        }
    }
}

/// The two transitions worth notifying about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// Pending → firing: the condition held for `for_s`.
    Firing,
    /// Firing → inactive: the condition stayed false for `resolve_s`.
    Resolved,
}

impl Transition {
    /// Lower-case wire label.
    pub fn as_str(&self) -> &'static str {
        match self {
            Transition::Firing => "firing",
            Transition::Resolved => "resolved",
        }
    }
}

/// One recorded transition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlertEvent {
    /// Monotone sequence number, unique per engine.
    pub seq: u64,
    /// Frame timestamp of the tick that produced the transition.
    pub unix_ms: u64,
    /// Index of the rule (into [`AlertEngine::rules`]).
    pub rule: usize,
    /// Which transition happened.
    pub transition: Transition,
    /// Signal value at the transition tick.
    pub value: f64,
}

/// Per-rule live status, for rendering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuleStatus {
    /// Current lifecycle state.
    pub state: AlertState,
    /// Frame timestamp the current state was entered at (`0` before
    /// the first evaluation).
    pub since_ms: u64,
    /// Most recently evaluated signal value (NaN before the first
    /// evaluation or when unevaluable).
    pub value: f64,
}

/// Internal per-rule bookkeeping.
#[derive(Debug, Clone, Copy)]
struct RuleSlot {
    state: AlertState,
    since_ms: u64,
    /// While firing: the frame timestamp the condition first went
    /// false at, `u64::MAX` while it still holds.
    ok_since_ms: u64,
    value: f64,
}

/// The evaluator: owns the rules, their states and the transition
/// history. Single-threaded by design — the owner serializes ticks
/// (the service wraps it in a `Mutex` and ticks from its sampler).
#[derive(Debug)]
pub struct AlertEngine {
    rules: Vec<AlertRule>,
    slots: Vec<RuleSlot>,
    history: VecDeque<AlertEvent>,
    history_cap: usize,
    next_seq: u64,
    last_tick_ms: u64,
}

impl AlertEngine {
    /// A fresh engine over `rules`, retaining up to `history_cap`
    /// transition events (oldest evicted first).
    pub fn new(rules: Vec<AlertRule>, history_cap: usize) -> AlertEngine {
        let slots = rules
            .iter()
            .map(|_| RuleSlot {
                state: AlertState::Inactive,
                since_ms: 0,
                ok_since_ms: u64::MAX,
                value: f64::NAN,
            })
            .collect();
        AlertEngine {
            rules,
            slots,
            history: VecDeque::new(),
            history_cap: history_cap.max(1),
            next_seq: 0,
            last_tick_ms: 0,
        }
    }

    /// The rules, in evaluation (and rendering) order.
    pub fn rules(&self) -> &[AlertRule] {
        &self.rules
    }

    /// Live status of rule `i`.
    pub fn status(&self, i: usize) -> RuleStatus {
        let s = &self.slots[i];
        RuleStatus {
            state: s.state,
            since_ms: s.since_ms,
            value: s.value,
        }
    }

    /// Live status of every rule, in rule order.
    pub fn statuses(&self) -> Vec<RuleStatus> {
        (0..self.rules.len()).map(|i| self.status(i)).collect()
    }

    /// Recorded transitions, oldest first.
    pub fn history(&self) -> impl Iterator<Item = &AlertEvent> {
        self.history.iter()
    }

    /// Rules currently firing.
    pub fn firing_count(&self) -> u64 {
        self.slots
            .iter()
            .filter(|s| s.state == AlertState::Firing)
            .count() as u64
    }

    /// Rules currently pending.
    pub fn pending_count(&self) -> u64 {
        self.slots
            .iter()
            .filter(|s| s.state == AlertState::Pending)
            .count() as u64
    }

    /// Frame timestamp of the last tick (`0` before the first).
    pub fn last_tick_ms(&self) -> u64 {
        self.last_tick_ms
    }

    /// Evaluate every rule against the newest frame `now` (which the
    /// caller has already pushed into `ring`), returning the
    /// transitions this tick produced, in rule order. All state-machine
    /// time comes from frame timestamps, so replaying identical frames
    /// reproduces identical events.
    pub fn tick(&mut self, ring: &SeriesRing, now: &Frame) -> Vec<AlertEvent> {
        // Pass 1: signal values. Window-start lookups are memoized per
        // distinct window so N rules over one window clone one frame.
        let mut starts: Vec<(u64, Option<Frame>)> = Vec::new();
        let values: Vec<f64> = self
            .rules
            .iter()
            .map(|r| {
                let start = match r.signal {
                    Signal::Gauge { .. } => None,
                    _ => {
                        let t = now.unix_ms.saturating_sub(r.window_s.saturating_mul(1_000));
                        match starts.iter().find(|(w, _)| *w == t) {
                            Some((_, f)) => f.clone(),
                            None => {
                                let f = ring.at_or_before(t);
                                starts.push((t, f.clone()));
                                f
                            }
                        }
                    }
                };
                r.signal.value(now, start.as_ref())
            })
            .collect();

        // Pass 2: state machine.
        let ts = now.unix_ms;
        let mut events = Vec::new();
        for (i, (rule, value)) in self.rules.iter().zip(values).enumerate() {
            let slot = &mut self.slots[i];
            slot.value = value;
            let cond = rule.cmp.holds(value, rule.threshold);
            match slot.state {
                AlertState::Inactive => {
                    if cond {
                        slot.state = AlertState::Pending;
                        slot.since_ms = ts;
                        // for_s == 0: fire on the first true tick.
                        if rule.for_s == 0 {
                            slot.state = AlertState::Firing;
                            slot.ok_since_ms = u64::MAX;
                            events.push(AlertEvent {
                                seq: self.next_seq,
                                unix_ms: ts,
                                rule: i,
                                transition: Transition::Firing,
                                value,
                            });
                            self.next_seq += 1;
                        }
                    }
                }
                AlertState::Pending => {
                    if !cond {
                        slot.state = AlertState::Inactive;
                        slot.since_ms = ts;
                    } else if ts.saturating_sub(slot.since_ms) >= rule.for_s * 1_000 {
                        slot.state = AlertState::Firing;
                        slot.since_ms = ts;
                        slot.ok_since_ms = u64::MAX;
                        events.push(AlertEvent {
                            seq: self.next_seq,
                            unix_ms: ts,
                            rule: i,
                            transition: Transition::Firing,
                            value,
                        });
                        self.next_seq += 1;
                    }
                }
                AlertState::Firing => {
                    if cond {
                        slot.ok_since_ms = u64::MAX;
                    } else {
                        if slot.ok_since_ms == u64::MAX {
                            slot.ok_since_ms = ts;
                        }
                        if ts.saturating_sub(slot.ok_since_ms) >= rule.resolve_s * 1_000 {
                            slot.state = AlertState::Inactive;
                            slot.since_ms = ts;
                            slot.ok_since_ms = u64::MAX;
                            events.push(AlertEvent {
                                seq: self.next_seq,
                                unix_ms: ts,
                                rule: i,
                                transition: Transition::Resolved,
                                value,
                            });
                            self.next_seq += 1;
                        }
                    }
                }
            }
        }
        for &e in &events {
            if self.history.len() == self.history_cap {
                self.history.pop_front();
            }
            self.history.push_back(e);
        }
        self.last_tick_ms = ts;
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::SeriesSchema;

    fn schema() -> SeriesSchema {
        SeriesSchema {
            counters: vec!["requests".into(), "errors".into()],
            gauges: vec!["rss".into()],
            hists: vec!["latency".into()],
        }
    }

    fn frame(ts: u64, requests: u64, errors: u64, rss: f64, ns: &[u64]) -> Frame {
        let h = crate::hist::Histogram::new();
        for &v in ns {
            h.record_ns(v);
        }
        Frame {
            unix_ms: ts,
            counters: vec![requests, errors],
            gauges: vec![rss],
            hists: vec![h.snapshot()],
        }
    }

    fn gauge_rule(for_s: u64, resolve_s: u64) -> AlertRule {
        AlertRule {
            name: "rss_high".into(),
            severity: "warn".into(),
            signal: Signal::Gauge { column: 0 },
            cmp: Cmp::Ge,
            threshold: 100.0,
            window_s: 60,
            for_s,
            resolve_s,
        }
    }

    /// Drive `engine` with one gauge frame per second; `rss[i]` is the
    /// gauge at `(i+1) * 1000` ms. Returns all events.
    fn drive(engine: &mut AlertEngine, ring: &SeriesRing, rss: &[f64]) -> Vec<AlertEvent> {
        let mut out = Vec::new();
        for (i, &v) in rss.iter().enumerate() {
            let f = frame((i as u64 + 1) * 1_000, 0, 0, v, &[]);
            ring.push(&f);
            out.extend(engine.tick(ring, &f));
        }
        out
    }

    #[test]
    fn cmp_never_holds_on_nan() {
        for cmp in [Cmp::Gt, Cmp::Ge, Cmp::Lt, Cmp::Le] {
            assert!(!cmp.holds(f64::NAN, 0.0));
        }
        assert!(Cmp::Ge.holds(1.0, 1.0));
        assert!(!Cmp::Gt.holds(1.0, 1.0));
    }

    #[test]
    fn fires_only_after_for_duration_and_resolves_after_debounce() {
        let ring = SeriesRing::new(schema(), 16);
        let mut engine = AlertEngine::new(vec![gauge_rule(2, 2)], 16);
        // True at t=1s..6s: pending at 1s, fires at 3s (held 2s).
        // False from 7s: resolves at 9s (false for 2s).
        let events = drive(
            &mut engine,
            &ring,
            &[150.0, 150.0, 150.0, 150.0, 150.0, 150.0, 0.0, 0.0, 0.0],
        );
        assert_eq!(events.len(), 2);
        assert_eq!(
            (events[0].transition, events[0].unix_ms),
            (Transition::Firing, 3_000)
        );
        assert_eq!(
            (events[1].transition, events[1].unix_ms),
            (Transition::Resolved, 9_000)
        );
        assert_eq!(engine.status(0).state, AlertState::Inactive);
    }

    #[test]
    fn oscillation_inside_hysteresis_never_flaps() {
        let ring = SeriesRing::new(schema(), 64);
        let mut engine = AlertEngine::new(vec![gauge_rule(3, 3)], 16);
        // Alternates every second: no 4-tick run of either phase, so
        // the rule never fires at all.
        let wave: Vec<f64> = (0..30)
            .map(|i| if i % 2 == 0 { 150.0 } else { 0.0 })
            .collect();
        let events = drive(&mut engine, &ring, &wave);
        assert!(events.is_empty(), "flapped: {events:?}");
    }

    #[test]
    fn firing_rule_rides_out_short_recoveries() {
        let ring = SeriesRing::new(schema(), 64);
        let mut engine = AlertEngine::new(vec![gauge_rule(0, 3)], 16);
        // Fires immediately; single-tick dips must not resolve it.
        let trace = [150.0, 0.0, 150.0, 0.0, 150.0, 0.0, 0.0, 0.0, 0.0];
        let events = drive(&mut engine, &ring, &trace);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].transition, Transition::Firing);
        assert_eq!(
            (events[1].transition, events[1].unix_ms),
            (Transition::Resolved, 9_000)
        );
    }

    #[test]
    fn pending_resets_on_first_false_tick() {
        let ring = SeriesRing::new(schema(), 64);
        let mut engine = AlertEngine::new(vec![gauge_rule(5, 0)], 16);
        let trace = [150.0, 150.0, 0.0, 150.0, 150.0, 0.0];
        let events = drive(&mut engine, &ring, &trace);
        assert!(events.is_empty());
        assert_eq!(engine.status(0).state, AlertState::Inactive);
    }

    #[test]
    fn counter_rate_and_quantile_signals() {
        let ring = SeriesRing::new(schema(), 16);
        let rules = vec![
            AlertRule {
                name: "req_rate".into(),
                severity: "warn".into(),
                signal: Signal::CounterRate { column: 0 },
                cmp: Cmp::Ge,
                threshold: 5.0,
                window_s: 10,
                for_s: 0,
                resolve_s: 0,
            },
            AlertRule {
                name: "p99_slow".into(),
                severity: "page".into(),
                signal: Signal::QuantileNs { column: 0, q: 0.99 },
                cmp: Cmp::Gt,
                threshold: 1e9,
                window_s: 10,
                for_s: 0,
                resolve_s: 0,
            },
        ];
        let mut engine = AlertEngine::new(rules, 16);
        let f1 = frame(1_000, 0, 0, 0.0, &[]);
        ring.push(&f1);
        assert!(engine.tick(&ring, &f1).is_empty());
        // 60 requests in 6 seconds = 10/s ≥ 5; p99 ~ 2s > 1s.
        let f2 = frame(7_000, 60, 0, 0.0, &[2_000_000_000]);
        ring.push(&f2);
        let events = engine.tick(&ring, &f2);
        assert_eq!(events.len(), 2);
        assert!(engine.status(0).value >= 5.0);
        assert!(engine.status(1).value > 1e9);
    }

    #[test]
    fn burn_rate_signal_reuses_slo_math() {
        let ring = SeriesRing::new(schema(), 16);
        let rule = AlertRule {
            name: "burn".into(),
            severity: "page".into(),
            signal: Signal::BurnRate {
                hist: 0,
                errors: 1,
                objective: Objective {
                    latency_ns: 250_000_000,
                    latency_target: 0.99,
                    error_target: 0.01,
                },
            },
            cmp: Cmp::Ge,
            threshold: 6.0,
            window_s: 10,
            for_s: 0,
            resolve_s: 0,
        };
        let mut engine = AlertEngine::new(vec![rule], 16);
        let f1 = frame(1_000, 0, 0, 0.0, &[]);
        ring.push(&f1);
        engine.tick(&ring, &f1);
        // All 10 requests slow: burn = 1.0/0.01 = 100 ≥ 6.
        let f2 = frame(2_000, 10, 0, 0.0, &[1_000_000_000; 10]);
        ring.push(&f2);
        let events = engine.tick(&ring, &f2);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].transition, Transition::Firing);
        assert!(engine.status(0).value >= 99.0);
    }

    #[test]
    fn history_is_bounded() {
        let ring = SeriesRing::new(schema(), 128);
        let mut engine = AlertEngine::new(vec![gauge_rule(0, 0)], 4);
        // Each on/off pair is one fire + one resolve.
        let wave: Vec<f64> = (0..20)
            .map(|i| if i % 2 == 0 { 150.0 } else { 0.0 })
            .collect();
        drive(&mut engine, &ring, &wave);
        let hist: Vec<_> = engine.history().collect();
        assert_eq!(hist.len(), 4);
        // Oldest first, consecutive seqs, and only the newest events.
        for w in hist.windows(2) {
            assert_eq!(w[1].seq, w[0].seq + 1);
        }
        assert_eq!(hist.last().unwrap().seq, engine.next_seq - 1);
    }

    #[test]
    fn replay_is_deterministic() {
        let trace: Vec<f64> = (0..40)
            .map(|i| if (i / 3) % 2 == 0 { 150.0 } else { 0.0 })
            .collect();
        let run = || {
            let ring = SeriesRing::new(schema(), 64);
            let mut engine = AlertEngine::new(vec![gauge_rule(2, 2)], 32);
            let events = drive(&mut engine, &ring, &trace);
            (events, engine.statuses())
        };
        assert_eq!(run(), run());
    }
}
