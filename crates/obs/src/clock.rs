//! A fast monotonic nanosecond clock for request instrumentation.
//!
//! [`std::time::Instant`] is correct but not cheap: on the hosts this
//! service targets a `clock_gettime` through the vDSO costs ~25–40 ns,
//! and a traced request reads the clock eight-plus times (request
//! start/end plus every span open/close). [`now_ns`] cuts that to a
//! `RDTSC` plus one fixed-point multiply (~6–17 ns) when the CPU
//! advertises an invariant timestamp counter, and falls back to
//! `Instant` everywhere else — same contract either way:
//!
//! - nanoseconds since an arbitrary process-local epoch;
//! - monotonic within a thread (durations use `saturating_sub`, so a
//!   cross-core TSC wobble of a few cycles can only round to zero,
//!   never wrap).
//!
//! The TSC backend is used only on x86_64 Linux after `/proc/cpuinfo`
//! confirms both `constant_tsc` (rate does not vary with frequency
//! scaling) and `nonstop_tsc` (keeps counting in deep sleep states).
//! The cycles→ns scale is calibrated once per process against
//! `Instant` over a ~2 ms spin — a relative error below 0.1%, well
//! under what µs-bucketed histograms resolve. Call [`calibrate`] at
//! service startup to keep that spin out of the first request.

use std::sync::OnceLock;
use std::time::{Duration, Instant, SystemTime};

/// Fixed-point fractional bits of the cycles→ns multiplier.
const SHIFT: u32 = 24;

enum Backend {
    /// `ns = ((rdtsc - base) * mult) >> SHIFT`.
    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    Tsc {
        base: u64,
        mult: u64,
    },
    Instant {
        epoch: Instant,
    },
}

static BACKEND: OnceLock<Backend> = OnceLock::new();

/// `(unix_ms, now_ns)` sampled together once, so [`unix_ms`] never
/// touches `SystemTime` again.
static UNIX_BASE: OnceLock<(u64, u64)> = OnceLock::new();

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
#[inline]
fn rdtsc() -> u64 {
    // SAFETY: RDTSC reads the CPU timestamp counter; it has no memory
    // or validity preconditions.
    unsafe { std::arch::x86_64::_rdtsc() }
}

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
fn tsc_is_invariant() -> bool {
    std::fs::read_to_string("/proc/cpuinfo")
        .map(|info| info.contains("constant_tsc") && info.contains("nonstop_tsc"))
        .unwrap_or(false)
}

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
fn calibrate_tsc() -> Option<Backend> {
    let t0 = Instant::now();
    let c0 = rdtsc();
    while t0.elapsed() < Duration::from_millis(2) {
        std::hint::spin_loop();
    }
    let c1 = rdtsc();
    let ns = t0.elapsed().as_nanos() as u64;
    let cycles = c1.wrapping_sub(c0);
    if cycles == 0 {
        return None;
    }
    let mult = ((ns as u128) << SHIFT) / cycles as u128;
    u64::try_from(mult)
        .ok()
        .filter(|&m| m > 0)
        .map(|mult| Backend::Tsc { base: c0, mult })
}

#[inline]
fn backend() -> &'static Backend {
    BACKEND.get_or_init(|| {
        #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
        if tsc_is_invariant() {
            if let Some(tsc) = calibrate_tsc() {
                return tsc;
            }
        }
        Backend::Instant {
            epoch: Instant::now(),
        }
    })
}

/// Nanoseconds since an arbitrary (per-process) epoch.
#[inline]
pub fn now_ns() -> u64 {
    match backend() {
        #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
        Backend::Tsc { base, mult } => {
            let cycles = rdtsc().wrapping_sub(*base);
            ((cycles as u128 * *mult as u128) >> SHIFT) as u64
        }
        Backend::Instant { epoch } => epoch.elapsed().as_nanos() as u64,
    }
}

/// Force backend selection (and the ~2 ms TSC calibration spin) now
/// rather than inside the first timed request. Idempotent.
pub fn calibrate() {
    let _ = backend();
}

/// Milliseconds since the Unix epoch, derived from [`now_ns`] against
/// a base sampled once — no `SystemTime` read per call. Saturates to
/// the base if the monotonic clock has not advanced.
pub fn unix_ms() -> u64 {
    unix_ms_at(now_ns())
}

/// [`unix_ms`] for a [`now_ns`] reading the caller already took —
/// spares the request path a clock read when it has one in hand.
#[inline]
pub fn unix_ms_at(now_ns_reading: u64) -> u64 {
    let (base_ms, base_ns) = *UNIX_BASE.get_or_init(|| {
        let ms = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        (ms, now_ns())
    });
    base_ms.saturating_add(now_ns_reading.saturating_sub(base_ns) / 1_000_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_ns_is_monotonic() {
        let mut last = now_ns();
        for _ in 0..10_000 {
            let t = now_ns();
            assert!(t >= last, "clock went backwards: {last} -> {t}");
            last = t;
        }
    }

    #[test]
    fn now_ns_tracks_wall_time() {
        calibrate();
        let wall = Instant::now();
        let t0 = now_ns();
        std::thread::sleep(Duration::from_millis(50));
        let fast = now_ns().saturating_sub(t0) as f64;
        let slow = wall.elapsed().as_nanos() as f64;
        // Generous bound: shared CI hosts jitter, but a mis-calibrated
        // multiplier would be off by an integer-ish factor.
        let ratio = fast / slow;
        assert!((0.75..=1.25).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn unix_ms_agrees_with_system_time() {
        let ours = unix_ms();
        let system = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .unwrap()
            .as_millis() as u64;
        assert!(ours.abs_diff(system) < 2_000, "ours {ours} system {system}");
    }
}
