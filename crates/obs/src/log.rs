//! Sampled NDJSON request logging.
//!
//! One [`RequestLog`] serialises request records as single-line JSON
//! documents (one per line — NDJSON) to any `Write + Send` sink,
//! behind a `Mutex` so concurrent workers never interleave bytes
//! within a line. Sampling is an atomic modulo counter: `sample = N`
//! writes every Nth record (deterministically by arrival order, not
//! randomly), so a hot endpoint can be logged at 1-in-1000 without
//! measurable cost — skipped records never take the lock.
//!
//! Line shape (stable field order):
//!
//! ```json
//! {"ts_ms":1754650000000,"endpoint":"analyze","status":200,"duration_ns":52100,"bytes":812}
//! ```

use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A sampled NDJSON request logger over an arbitrary sink.
pub struct RequestLog {
    sink: Mutex<Box<dyn Write + Send>>,
    /// Write every `sample`-th record (1 = every record).
    sample: u64,
    seq: AtomicU64,
}

impl std::fmt::Debug for RequestLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RequestLog")
            .field("sample", &self.sample)
            .field("seq", &self.seq.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// Escape a string for a JSON string literal — endpoint names are
/// static identifiers today, but the logger does not rely on that.
fn escape_into(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

impl RequestLog {
    /// A logger over an arbitrary sink. `sample` 0 is treated as 1.
    pub fn new(sink: Box<dyn Write + Send>, sample: u64) -> RequestLog {
        RequestLog {
            sink: Mutex::new(sink),
            sample: sample.max(1),
            seq: AtomicU64::new(0),
        }
    }

    /// A logger appending to the file at `path` (created if absent).
    pub fn file(path: &str, sample: u64) -> std::io::Result<RequestLog> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(RequestLog::new(Box::new(file), sample))
    }

    /// A logger writing to standard error.
    pub fn stderr(sample: u64) -> RequestLog {
        RequestLog::new(Box::new(std::io::stderr()), sample)
    }

    /// Record one served request. Returns whether the record was
    /// written (i.e. selected by sampling); write errors are ignored —
    /// logging must never fail a request.
    pub fn record(&self, endpoint: &str, status: u16, duration_ns: u64, bytes: usize) -> bool {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        if seq % self.sample != 0 {
            return false;
        }
        let mut line = String::with_capacity(96);
        line.push_str("{\"ts_ms\":");
        line.push_str(&crate::unix_ms().to_string());
        line.push_str(",\"endpoint\":\"");
        escape_into(&mut line, endpoint);
        line.push_str("\",\"status\":");
        line.push_str(&status.to_string());
        line.push_str(",\"duration_ns\":");
        line.push_str(&duration_ns.to_string());
        line.push_str(",\"bytes\":");
        line.push_str(&bytes.to_string());
        line.push_str("}\n");
        let mut sink = self.sink.lock().expect("log sink lock");
        let _ = sink.write_all(line.as_bytes());
        let _ = sink.flush();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    /// A `Write` sink the test can read back.
    #[derive(Clone, Default)]
    struct Shared(Arc<StdMutex<Vec<u8>>>);

    impl Write for Shared {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn writes_one_json_line_per_record() {
        let sink = Shared::default();
        let log = RequestLog::new(Box::new(sink.clone()), 1);
        assert!(log.record("analyze", 200, 52_100, 812));
        assert!(log.record("sweep", 422, 1_000, 40));
        let text = String::from_utf8(sink.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(
            lines[0].contains("\"endpoint\":\"analyze\"")
                && lines[0].contains("\"status\":200")
                && lines[0].contains("\"duration_ns\":52100")
                && lines[0].contains("\"bytes\":812"),
            "{}",
            lines[0]
        );
        assert!(lines[1].contains("\"status\":422"), "{}", lines[1]);
    }

    #[test]
    fn sampling_writes_every_nth_record() {
        let sink = Shared::default();
        let log = RequestLog::new(Box::new(sink.clone()), 3);
        let written: usize = (0..9)
            .map(|_| log.record("analyze", 200, 1, 1) as usize)
            .sum();
        assert_eq!(written, 3); // records 0, 3, 6
        let text = String::from_utf8(sink.0.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 3);
    }

    #[test]
    fn escapes_hostile_endpoint_names() {
        let sink = Shared::default();
        let log = RequestLog::new(Box::new(sink.clone()), 1);
        log.record("a\"b\\c\nd", 200, 1, 1);
        let text = String::from_utf8(sink.0.lock().unwrap().clone()).unwrap();
        assert!(text.contains(r#""endpoint":"a\"b\\c\nd""#), "{text}");
    }

    #[test]
    fn sample_zero_means_every_record() {
        let sink = Shared::default();
        let log = RequestLog::new(Box::new(sink.clone()), 0);
        assert!(log.record("analyze", 200, 1, 1));
        assert!(log.record("analyze", 200, 1, 1));
    }
}
