//! Property tests for the alert engine's hysteresis state machine:
//! agreement with an independent run-length reference model (which
//! implies no flapping inside the `for`/`resolve` windows), rule-order
//! independence, and tick-for-tick determinism.

use proptest::prelude::*;
use tpn_obs::alert::{AlertEngine, AlertRule, AlertState, Cmp, Signal};
use tpn_obs::series::{Frame, SeriesRing, SeriesSchema};

fn schema() -> SeriesSchema {
    SeriesSchema {
        counters: vec![],
        gauges: vec!["load".into()],
        hists: vec![],
    }
}

fn gauge_rule(name: &str, for_s: u64, resolve_s: u64) -> AlertRule {
    AlertRule {
        name: name.into(),
        severity: "warn".into(),
        signal: Signal::Gauge { column: 0 },
        cmp: Cmp::Gt,
        threshold: 0.5,
        window_s: 60,
        for_s,
        resolve_s,
    }
}

/// Drive an engine over one boolean condition sequence at a strict
/// 1-second cadence (tick i lands at `(i + 1) * 1000` ms), returning
/// the observed state after every tick.
fn drive(engine: &mut AlertEngine, condition: &[bool]) -> Vec<AlertState> {
    let ring = SeriesRing::new(schema(), condition.len().max(1));
    let mut states = Vec::with_capacity(condition.len());
    for (i, &hot) in condition.iter().enumerate() {
        let frame = Frame {
            unix_ms: (i as u64 + 1) * 1_000,
            counters: vec![],
            gauges: vec![if hot { 1.0 } else { 0.0 }],
            hists: vec![],
        };
        ring.push(&frame);
        engine.tick(&ring, &frame);
        states.push(engine.status(0).state);
    }
    states
}

/// An independent reference model of the hysteresis contract, written
/// directly over run lengths: fire after the condition has held for
/// `for_s + 1` consecutive 1-second ticks (`for_s = 0` fires on the
/// first true tick), resolve after `resolve_s + 1` consecutive false
/// ticks, and reset a pending run on the first false tick.
fn reference(condition: &[bool], for_s: u64, resolve_s: u64) -> Vec<AlertState> {
    let mut states = Vec::with_capacity(condition.len());
    let mut state = AlertState::Inactive;
    let mut true_run = 0u64;
    let mut false_run = 0u64;
    for &hot in condition {
        if hot {
            true_run += 1;
            false_run = 0;
        } else {
            false_run += 1;
            true_run = 0;
        }
        state = match state {
            AlertState::Firing => {
                if false_run > resolve_s {
                    AlertState::Inactive
                } else {
                    AlertState::Firing
                }
            }
            _ => {
                if true_run > for_s {
                    AlertState::Firing
                } else if hot {
                    AlertState::Pending
                } else {
                    AlertState::Inactive
                }
            }
        };
        states.push(state);
    }
    states
}

proptest! {
    /// Over any oscillation pattern, the engine's state sequence equals
    /// the run-length reference model — which means recoveries shorter
    /// than the resolve debounce never un-fire the alert and spikes
    /// shorter than the `for` duration never fire it. No flapping
    /// inside the hysteresis windows, by construction.
    #[test]
    fn state_sequence_matches_run_length_model(
        condition in proptest::collection::vec(any::<bool>(), 1..60),
        for_s in 0u64..5,
        resolve_s in 0u64..5,
    ) {
        let mut engine = AlertEngine::new(vec![gauge_rule("hot", for_s, resolve_s)], 256);
        let got = drive(&mut engine, &condition);
        prop_assert_eq!(got, reference(&condition, for_s, resolve_s));
    }

    /// The number of firing transitions is bounded by the number of
    /// maximal true-runs long enough to satisfy the `for` duration —
    /// an oscillation that never holds the threshold long enough
    /// produces zero events.
    #[test]
    fn firing_transitions_bounded_by_qualifying_runs(
        condition in proptest::collection::vec(any::<bool>(), 1..60),
        for_s in 0u64..5,
    ) {
        let mut engine = AlertEngine::new(vec![gauge_rule("hot", for_s, 0)], 256);
        drive(&mut engine, &condition);
        let qualifying = condition
            .split(|&hot| !hot)
            .filter(|run| run.len() as u64 > for_s)
            .count();
        let fired = engine
            .history()
            .filter(|e| e.transition == tpn_obs::alert::Transition::Firing)
            .count();
        prop_assert!(fired <= qualifying, "{fired} firings from {qualifying} runs");
    }

    /// Rule evaluation is order-independent: rotating the rule list
    /// changes nothing about any individual rule's state sequence or
    /// event history (matched up by rule name).
    #[test]
    fn evaluation_is_rule_order_independent(
        condition in proptest::collection::vec(any::<bool>(), 1..40),
        rotate in 0usize..3,
    ) {
        let rules = vec![
            gauge_rule("fast", 0, 0),
            gauge_rule("slow", 2, 1),
            gauge_rule("stubborn", 1, 3),
        ];
        let mut rotated = rules.clone();
        rotated.rotate_left(rotate % rules.len());

        let mut a = AlertEngine::new(rules, 256);
        let mut b = AlertEngine::new(rotated, 256);
        let ring_a = SeriesRing::new(schema(), condition.len());
        let ring_b = SeriesRing::new(schema(), condition.len());
        for (i, &hot) in condition.iter().enumerate() {
            let frame = Frame {
                unix_ms: (i as u64 + 1) * 1_000,
                counters: vec![],
                gauges: vec![if hot { 1.0 } else { 0.0 }],
                hists: vec![],
            };
            ring_a.push(&frame);
            ring_b.push(&frame);
            a.tick(&ring_a, &frame);
            b.tick(&ring_b, &frame);
        }
        for (i, rule) in a.rules().iter().enumerate() {
            let j = b.rules().iter().position(|r| r.name == rule.name).unwrap();
            let sa = a.status(i);
            let sb = b.status(j);
            prop_assert_eq!(sa.state, sb.state);
            prop_assert_eq!(sa.since_ms, sb.since_ms);
            let ha: Vec<_> = a
                .history()
                .filter(|e| e.rule == i)
                .map(|e| (e.unix_ms, e.transition))
                .collect();
            let hb: Vec<_> = b
                .history()
                .filter(|e| e.rule == j)
                .map(|e| (e.unix_ms, e.transition))
                .collect();
            prop_assert_eq!(ha, hb);
        }
    }

    /// Two engines fed the same synthetic frames agree tick for tick —
    /// states, values and full event histories are identical, because
    /// every state-machine clock reads the frame timestamp rather than
    /// the wall.
    #[test]
    fn evaluation_is_deterministic(
        condition in proptest::collection::vec(any::<bool>(), 1..40),
        for_s in 0u64..4,
        resolve_s in 0u64..4,
    ) {
        let rules = vec![gauge_rule("hot", for_s, resolve_s)];
        let mut a = AlertEngine::new(rules.clone(), 64);
        let mut b = AlertEngine::new(rules, 64);
        let sa = drive(&mut a, &condition);
        let sb = drive(&mut b, &condition);
        prop_assert_eq!(sa, sb);
        let ha: Vec<_> = a
            .history()
            .map(|e| (e.seq, e.unix_ms, e.rule, e.transition))
            .collect();
        let hb: Vec<_> = b
            .history()
            .map(|e| (e.seq, e.unix_ms, e.rule, e.transition))
            .collect();
        prop_assert_eq!(ha, hb);
    }
}
