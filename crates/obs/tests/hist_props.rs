//! Property tests for the histogram: merge equivalence, quantile
//! bucket containment, and concurrent recording without sample loss.

use proptest::prelude::*;
use tpn_obs::hist::{Histogram, HistogramSnapshot, BUCKET_BOUNDS_NS, NUM_BUCKETS};

/// The bucket index a nanosecond value lands in (reference
/// implementation, independent of the recorder's).
fn bucket_of(ns: u64) -> usize {
    BUCKET_BOUNDS_NS
        .iter()
        .position(|&bound| ns <= bound)
        .unwrap_or(NUM_BUCKETS - 1)
}

fn record_all(samples: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &ns in samples {
        h.record_ns(ns);
    }
    h.snapshot()
}

proptest! {
    /// Merging the snapshots of two independent recorders equals one
    /// recorder that saw both sample streams.
    #[test]
    fn merged_snapshots_equal_single_recorder(
        a in proptest::collection::vec(0u64..20_000_000_000, 0..200),
        b in proptest::collection::vec(0u64..20_000_000_000, 0..200),
    ) {
        let mut merged = record_all(&a);
        merged.merge(&record_all(&b));
        let mut combined = a.clone();
        combined.extend_from_slice(&b);
        prop_assert_eq!(merged, record_all(&combined));
    }

    /// A quantile estimate always lands inside the bucket that holds
    /// the true quantile sample (the estimator can do no better than
    /// bucket resolution, and must do no worse). Samples stay below
    /// the last finite bound so the true sample never falls in +Inf,
    /// whose estimate intentionally degrades.
    #[test]
    fn quantile_estimate_lands_in_the_true_samples_bucket(
        samples in proptest::collection::vec(0u64..10_000_000_000, 1..300),
        q_millis in 0u64..=1000,
    ) {
        let q = q_millis as f64 / 1000.0;
        let snap = record_all(&samples);
        let mut samples = samples;
        let est = snap.quantile_ns(q).unwrap();
        // The true q-quantile sample: the one at cumulative rank
        // ceil(q * n) (clamped to [1, n]), i.e. the first sample whose
        // cumulative count reaches the target — the same rank rule the
        // estimator applies to buckets.
        samples.sort_unstable();
        let n = samples.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        let truth = samples[rank - 1];
        let b = bucket_of(truth);
        let lower = if b == 0 { 0 } else { BUCKET_BOUNDS_NS[b - 1] };
        let upper = BUCKET_BOUNDS_NS[b];
        prop_assert!(
            est >= lower as f64 && est <= upper as f64,
            "q={} estimate {} outside bucket ({}, {}] of true sample {}",
            q, est, lower, upper, truth
        );
    }

    /// The running sum and total count are exact, whatever the stream.
    #[test]
    fn count_and_sum_are_exact(
        samples in proptest::collection::vec(0u64..1_000_000_000, 0..300),
    ) {
        let snap = record_all(&samples);
        prop_assert_eq!(snap.count(), samples.len() as u64);
        prop_assert_eq!(snap.sum_ns, samples.iter().sum::<u64>());
        let cum = snap.cumulative();
        prop_assert_eq!(cum[NUM_BUCKETS - 1], snap.count());
    }

    /// The renderer's histogram output for any snapshot passes the
    /// exposition validator — the two halves of the crate agree on the
    /// format.
    #[test]
    fn rendered_histograms_validate(
        samples in proptest::collection::vec(0u64..20_000_000_000, 0..100),
    ) {
        let snap = record_all(&samples);
        let mut r = tpn_obs::Renderer::new();
        r.header("tpn_x_seconds", "prop", "histogram");
        r.histogram("tpn_x_seconds", &[("endpoint", "analyze")], &snap);
        let text = r.finish();
        prop_assert!(tpn_obs::validate::validate(&text).is_ok(), "{}", text);
    }
}

/// Concurrent recording from N threads loses no samples: the shared
/// histogram's totals equal the per-thread sums.
#[test]
fn concurrent_recording_loses_nothing() {
    use std::sync::Arc;

    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 25_000;
    let h = Arc::new(Histogram::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let h = Arc::clone(&h);
            std::thread::spawn(move || {
                // A spread of magnitudes crossing many bucket bounds.
                for i in 0..PER_THREAD {
                    h.record_ns((i * 7919 + t) % 3_000_000);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    let snap = h.snapshot();
    assert_eq!(snap.count(), THREADS * PER_THREAD);
    let expected_sum: u64 = (0..THREADS)
        .flat_map(|t| (0..PER_THREAD).map(move |i| (i * 7919 + t) % 3_000_000))
        .sum();
    assert_eq!(snap.sum_ns, expected_sum);
}
