//! Property tests for the time-series ring: delta reconstruction,
//! windowed-histogram equivalence, and wrap-around non-negativity.

use proptest::prelude::*;
use tpn_obs::hist::Histogram;
use tpn_obs::series::{Frame, SeriesRing, SeriesSchema};

fn schema() -> SeriesSchema {
    SeriesSchema {
        counters: vec!["requests".into()],
        gauges: vec!["rss".into()],
        hists: vec!["latency".into()],
    }
}

/// A sampler over one live counter + histogram: records the given
/// samples, then pushes a frame of the current totals.
struct Sampler {
    hist: Histogram,
    requests: u64,
    next_ms: u64,
    ring: SeriesRing,
}

impl Sampler {
    fn new(capacity: usize) -> Sampler {
        Sampler {
            hist: Histogram::new(),
            requests: 0,
            next_ms: 1_000,
            ring: SeriesRing::new(schema(), capacity),
        }
    }

    fn tick(&mut self, samples: &[u64]) {
        for &ns in samples {
            self.hist.record_ns(ns);
            self.requests += 1;
        }
        self.ring.push(&Frame {
            unix_ms: self.next_ms,
            counters: vec![self.requests],
            gauges: vec![self.requests as f64],
            hists: vec![self.hist.snapshot()],
        });
        self.next_ms += 1_000;
    }
}

proptest! {
    /// Counter deltas between any two retained frames equal the
    /// direct per-tick counts summed over the interval — pushing
    /// through the ring loses nothing.
    #[test]
    fn delta_reconstruction_equals_direct_counts(
        ticks in proptest::collection::vec(
            proptest::collection::vec(0u64..20_000_000_000, 0..10), 1..20),
    ) {
        let mut s = Sampler::new(64); // capacity > ticks: nothing evicted
        for t in &ticks {
            s.tick(t);
        }
        let frames = s.ring.frames();
        prop_assert_eq!(frames.len(), ticks.len());
        for i in 0..frames.len() {
            for j in i..frames.len() {
                let direct: u64 = ticks[i + 1..=j].iter().map(|t| t.len() as u64).sum();
                prop_assert_eq!(frames[j].counter_delta(&frames[i], 0), direct);
            }
        }
    }

    /// The windowed histogram (delta of the window-end frame against
    /// the pre-window frame) equals a fresh recorder that saw exactly
    /// the window's samples — "full history minus pre-window history".
    #[test]
    fn windowed_hist_delta_equals_window_only_recorder(
        ticks in proptest::collection::vec(
            proptest::collection::vec(0u64..20_000_000_000, 0..10), 2..20),
        window_choice in 0usize..100,
    ) {
        let mut s = Sampler::new(64);
        for t in &ticks {
            s.tick(t);
        }
        let frames = s.ring.frames();
        let start = window_choice % (frames.len() - 1); // pre-window frame
        let windowed = frames.last().unwrap().hist_delta(&frames[start], 0);
        let direct = Histogram::new();
        for t in &ticks[start + 1..] {
            for &ns in t {
                direct.record_ns(ns);
            }
        }
        prop_assert_eq!(windowed, direct.snapshot());
    }

    /// However often the ring wraps, rates derived from retained
    /// frames are never negative: counters are non-decreasing across
    /// retained frames and every delta (in either direction, e.g.
    /// after a counter reset) saturates at zero.
    #[test]
    fn wrap_around_never_yields_negative_rates(
        ticks in proptest::collection::vec(
            proptest::collection::vec(0u64..20_000_000_000, 0..5), 1..40),
        capacity in 1usize..8,
    ) {
        let mut s = Sampler::new(capacity);
        for t in &ticks {
            s.tick(t);
        }
        let frames = s.ring.frames();
        prop_assert_eq!(frames.len(), ticks.len().min(capacity));
        for pair in frames.windows(2) {
            prop_assert!(pair[1].unix_ms > pair[0].unix_ms);
            prop_assert!(pair[1].counters[0] >= pair[0].counters[0]);
            // Forward delta is the real increment; the (nonsensical)
            // backward delta still saturates rather than wrapping.
            let _ = pair[1].counter_delta(&pair[0], 0);
            prop_assert_eq!(pair[0].counter_delta(&pair[1], 0), 0);
            prop_assert!(pair[0].hist_delta(&pair[1], 0).count() == 0);
        }
    }
}
