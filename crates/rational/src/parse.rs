//! Parsing of rational literals.
//!
//! Accepted forms (optionally signed, optional surrounding whitespace):
//!
//! * integers: `"42"`, `"-7"`
//! * fractions: `"1067/10"`, `"-3/4"`
//! * decimals: `"106.7"`, `"-0.05"`, `".5"`
//!
//! These are exactly the literal forms that appear in `.tpn` net files
//! and in the paper's tables.

use crate::error::ParseRationalError;
use crate::Rational;

fn err(input: &str, reason: &'static str) -> ParseRationalError {
    ParseRationalError {
        input: input.to_string(),
        reason,
    }
}

/// Parse a rational literal. See the module docs for the grammar.
pub fn parse_rational(input: &str) -> Result<Rational, ParseRationalError> {
    let s = input.trim();
    if s.is_empty() {
        return Err(err(input, "empty string"));
    }
    if let Some((n, d)) = s.split_once('/') {
        let num: i128 = n
            .trim()
            .parse()
            .map_err(|_| err(input, "invalid numerator"))?;
        let den: i128 = d
            .trim()
            .parse()
            .map_err(|_| err(input, "invalid denominator"))?;
        return Rational::checked_new(num, den).map_err(|_| err(input, "zero denominator"));
    }
    if let Some((ip, fp)) = s.split_once('.') {
        let (neg, ip) = match ip.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, ip.strip_prefix('+').unwrap_or(ip)),
        };
        if fp.is_empty() {
            return Err(err(input, "missing fractional digits"));
        }
        if !fp.bytes().all(|b| b.is_ascii_digit()) {
            return Err(err(input, "invalid fractional digits"));
        }
        if !ip.is_empty() && !ip.bytes().all(|b| b.is_ascii_digit()) {
            return Err(err(input, "invalid integer digits"));
        }
        if fp.len() > 30 {
            return Err(err(input, "too many fractional digits"));
        }
        let int_part: i128 = if ip.is_empty() {
            0
        } else {
            ip.parse()
                .map_err(|_| err(input, "integer part out of range"))?
        };
        let frac_part: i128 = fp
            .parse()
            .map_err(|_| err(input, "fractional part out of range"))?;
        let mut scale: i128 = 1;
        for _ in 0..fp.len() {
            scale = scale
                .checked_mul(10)
                .ok_or_else(|| err(input, "fractional part out of range"))?;
        }
        let num = int_part
            .checked_mul(scale)
            .and_then(|v| v.checked_add(frac_part))
            .ok_or_else(|| err(input, "value out of range"))?;
        let signed = if neg { -num } else { num };
        return Rational::checked_new(signed, scale).map_err(|_| err(input, "value out of range"));
    }
    let n: i128 = s.parse().map_err(|_| err(input, "invalid integer"))?;
    Ok(Rational::from_int(n))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Rational {
        parse_rational(s).unwrap()
    }

    #[test]
    fn integers() {
        assert_eq!(p("42"), Rational::from_int(42));
        assert_eq!(p("-7"), Rational::from_int(-7));
        assert_eq!(p("  13 "), Rational::from_int(13));
        assert_eq!(p("0"), Rational::ZERO);
    }

    #[test]
    fn fractions() {
        assert_eq!(p("1067/10"), Rational::new(1067, 10));
        assert_eq!(p("-3/4"), Rational::new(-3, 4));
        assert_eq!(p("3/-4"), Rational::new(-3, 4));
        assert_eq!(p("6/4"), Rational::new(3, 2));
        assert_eq!(p(" 1 / 2 "), Rational::new(1, 2));
    }

    #[test]
    fn decimals() {
        assert_eq!(p("106.7"), Rational::new(1067, 10));
        assert_eq!(p("-0.05"), Rational::new(-1, 20));
        assert_eq!(p("0.95"), Rational::new(19, 20));
        assert_eq!(p(".5"), Rational::new(1, 2));
        assert_eq!(p("-.5"), Rational::new(-1, 2));
        assert_eq!(p("13.5"), Rational::new(27, 2));
        assert_eq!(p("1000.0"), Rational::from_int(1000));
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "", "  ", "abc", "1.2.3", "1/0", "1/", "/2", "1.", "1e3", "--2", "1.x",
        ] {
            assert!(parse_rational(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn error_carries_context() {
        let e = parse_rational("1/0").unwrap_err();
        assert_eq!(e.input(), "1/0");
        assert!(e.to_string().contains("1/0"));
        assert!(!e.reason().is_empty());
    }
}
