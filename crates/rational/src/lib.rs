//! Exact rational arithmetic for timed Petri net analysis.
//!
//! The analysis in Razouk's paper (SIGCOMM 1984) manipulates *exact* time
//! delays such as `106.7` ms and *exact* branching probabilities such as
//! `f4 / (f4 + f5)`. Floating point cannot represent these without drift,
//! and drift breaks the reachability-graph construction (two states whose
//! remaining-time vectors differ by an ulp would be treated as distinct).
//! Every quantity in this workspace is therefore an exact [`Rational`].
//!
//! The type is a reduced fraction over checked `i128`. All arithmetic is
//! overflow-checked: the inherent methods return [`Result`] and the
//! operator impls panic on overflow (which, with 128-bit intermediaries
//! and the magnitudes that occur in protocol models, does not happen in
//! practice — the checked API exists for the solver layers that iterate).

mod error;
mod parse;
mod rational;

pub use error::{ArithmeticError, ParseRationalError};
pub use rational::Rational;

/// Greatest common divisor of two `i128`s (always non-negative).
///
/// `gcd(0, 0) == 0` by convention.
pub fn gcd(a: i128, b: i128) -> i128 {
    // `unsigned_abs` avoids overflow on `i128::MIN`.
    let mut ua = a.unsigned_abs();
    let mut ub = b.unsigned_abs();
    while ub != 0 {
        let r = ua % ub;
        ua = ub;
        ub = r;
    }
    // The gcd of two i128s fits in i128 unless both inputs were i128::MIN
    // (gcd 2^127). We saturate instead of panicking: callers normalise
    // immediately after and surface an ArithmeticError there.
    if ua > i128::MAX as u128 {
        i128::MAX
    } else {
        ua as i128
    }
}

/// Least common multiple, checked.
pub fn lcm(a: i128, b: i128) -> Option<i128> {
    if a == 0 || b == 0 {
        return Some(0);
    }
    let g = gcd(a, b);
    (a / g).checked_mul(b)?.checked_abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(0, 7), 7);
        assert_eq!(gcd(7, 0), 7);
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(-12, 18), 6);
        assert_eq!(gcd(12, -18), 6);
        assert_eq!(gcd(-12, -18), 6);
        assert_eq!(gcd(1, 1), 1);
        assert_eq!(gcd(17, 13), 1);
    }

    #[test]
    fn gcd_extreme() {
        assert_eq!(gcd(i128::MIN, i128::MIN), i128::MAX); // saturated
        assert_eq!(gcd(i128::MIN, 1), 1);
        assert_eq!(gcd(i128::MAX, i128::MAX), i128::MAX);
    }

    #[test]
    fn lcm_basics() {
        assert_eq!(lcm(4, 6), Some(12));
        assert_eq!(lcm(0, 5), Some(0));
        assert_eq!(lcm(-4, 6), Some(12));
        assert_eq!(lcm(i128::MAX, i128::MAX - 1), None); // overflow
    }
}
