//! The [`Rational`] number type.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

use crate::error::ArithmeticError;
use crate::gcd;

/// An exact rational number: a reduced fraction `num / den` with
/// `den > 0` and `gcd(num, den) == 1`.
///
/// `Rational` is the workspace-wide scalar: time delays, probabilities,
/// polynomial coefficients and matrix entries are all `Rational`.
///
/// # Examples
///
/// ```
/// use tpn_rational::Rational;
///
/// let t: Rational = "106.7".parse().unwrap();
/// assert_eq!(t, Rational::new(1067, 10));
/// assert_eq!((t + t).to_string(), "1067/5");
/// assert_eq!(t.to_decimal_string(1), "106.7");
/// ```
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Rational {
    num: i128,
    den: i128, // invariant: den > 0, gcd(num, den) == 1
}

impl Rational {
    /// Zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// One.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Construct a rational from a numerator and denominator.
    ///
    /// # Panics
    /// Panics if `den == 0`. Use [`Rational::checked_new`] for a fallible
    /// constructor.
    pub fn new(num: i128, den: i128) -> Rational {
        Rational::checked_new(num, den).expect("Rational::new: invalid fraction")
    }

    /// Construct a rational, reporting failure instead of panicking.
    pub fn checked_new(num: i128, den: i128) -> Result<Rational, ArithmeticError> {
        if den == 0 {
            return Err(ArithmeticError::DivisionByZero);
        }
        if num == 0 {
            return Ok(Rational::ZERO);
        }
        let g = gcd(num, den);
        let mut num = num / g;
        let mut den = den / g;
        if den < 0 {
            num = num.checked_neg().ok_or(ArithmeticError::Overflow)?;
            den = den.checked_neg().ok_or(ArithmeticError::Overflow)?;
        }
        Ok(Rational { num, den })
    }

    /// Construct a rational equal to an integer.
    pub const fn from_int(n: i128) -> Rational {
        Rational { num: n, den: 1 }
    }

    /// The reduced numerator (sign-carrying).
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// The reduced denominator (always positive).
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// `true` iff this value is zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// `true` iff this value is one.
    pub fn is_one(&self) -> bool {
        self.num == 1 && self.den == 1
    }

    /// `true` iff this value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num > 0
    }

    /// `true` iff this value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num < 0
    }

    /// `true` iff the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// Sign of the value: `-1`, `0` or `1`.
    pub fn signum(&self) -> i32 {
        match self.num.cmp(&0) {
            Ordering::Less => -1,
            Ordering::Equal => 0,
            Ordering::Greater => 1,
        }
    }

    /// Absolute value.
    pub fn abs(&self) -> Rational {
        Rational {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Checked addition.
    pub fn checked_add(&self, other: &Rational) -> Result<Rational, ArithmeticError> {
        // a/b + c/d = (a*(l/b) + c*(l/d)) / l  with l = lcm(b, d);
        // going through the lcm keeps intermediates small.
        let g = gcd(self.den, other.den);
        let db = self.den / g;
        let dd = other.den / g;
        let l = db.checked_mul(other.den).ok_or(ArithmeticError::Overflow)?;
        let lhs = self.num.checked_mul(dd).ok_or(ArithmeticError::Overflow)?;
        let rhs = other.num.checked_mul(db).ok_or(ArithmeticError::Overflow)?;
        let num = lhs.checked_add(rhs).ok_or(ArithmeticError::Overflow)?;
        Rational::checked_new(num, l)
    }

    /// Checked subtraction.
    pub fn checked_sub(&self, other: &Rational) -> Result<Rational, ArithmeticError> {
        self.checked_add(&other.checked_neg()?)
    }

    /// Checked negation.
    pub fn checked_neg(&self) -> Result<Rational, ArithmeticError> {
        Ok(Rational {
            num: self.num.checked_neg().ok_or(ArithmeticError::Overflow)?,
            den: self.den,
        })
    }

    /// Checked multiplication.
    pub fn checked_mul(&self, other: &Rational) -> Result<Rational, ArithmeticError> {
        // Cross-cancel before multiplying to keep intermediates small.
        let g1 = gcd(self.num, other.den);
        let g2 = gcd(other.num, self.den);
        let num = (self.num / g1)
            .checked_mul(other.num / g2)
            .ok_or(ArithmeticError::Overflow)?;
        let den = (self.den / g2)
            .checked_mul(other.den / g1)
            .ok_or(ArithmeticError::Overflow)?;
        Rational::checked_new(num, den)
    }

    /// Checked division.
    pub fn checked_div(&self, other: &Rational) -> Result<Rational, ArithmeticError> {
        self.checked_mul(&other.checked_recip()?)
    }

    /// Checked reciprocal.
    pub fn checked_recip(&self) -> Result<Rational, ArithmeticError> {
        if self.num == 0 {
            return Err(ArithmeticError::DivisionByZero);
        }
        Rational::checked_new(self.den, self.num)
    }

    /// Reciprocal.
    ///
    /// # Panics
    /// Panics if the value is zero.
    pub fn recip(&self) -> Rational {
        self.checked_recip().expect("Rational::recip of zero")
    }

    /// Integer power (negative exponents take the reciprocal).
    pub fn checked_pow(&self, exp: i32) -> Result<Rational, ArithmeticError> {
        if exp == 0 {
            return Ok(Rational::ONE);
        }
        let base = if exp < 0 {
            self.checked_recip()?
        } else {
            *self
        };
        let mut acc = Rational::ONE;
        for _ in 0..exp.unsigned_abs() {
            acc = acc.checked_mul(&base)?;
        }
        Ok(acc)
    }

    /// Integer power. Panics on overflow or `0^negative`.
    pub fn pow(&self, exp: i32) -> Rational {
        self.checked_pow(exp).expect("Rational::pow overflow")
    }

    /// The largest integer `<= self`.
    pub fn floor(&self) -> i128 {
        if self.num >= 0 {
            self.num / self.den
        } else {
            // Round toward negative infinity.
            (self.num - (self.den - 1)) / self.den
        }
    }

    /// The smallest integer `>= self`.
    pub fn ceil(&self) -> i128 {
        -((-*self).floor())
    }

    /// Smaller of two values.
    pub fn min(self, other: Rational) -> Rational {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Larger of two values.
    pub fn max(self, other: Rational) -> Rational {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Convert to `f64` (inexact for large components).
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Best rational approximation of an `f64` with denominator at most
    /// `max_den`, by continued fractions. Returns `None` for non-finite
    /// inputs.
    ///
    /// This is used at the simulator boundary, where measured statistics
    /// are floats; analytic code never goes through floats.
    pub fn from_f64_approx(x: f64, max_den: i128) -> Option<Rational> {
        if !x.is_finite() || max_den < 1 {
            return None;
        }
        let neg = x < 0.0;
        let mut x = x.abs();
        // Continued-fraction convergents p/q.
        let (mut p0, mut q0, mut p1, mut q1) = (0i128, 1i128, 1i128, 0i128);
        for _ in 0..64 {
            let a = x.floor();
            if a >= i128::MAX as f64 {
                return None;
            }
            let a_i = a as i128;
            let p2 = a_i.checked_mul(p1)?.checked_add(p0)?;
            let q2 = a_i.checked_mul(q1)?.checked_add(q0)?;
            if q2 > max_den {
                break;
            }
            p0 = p1;
            q0 = q1;
            p1 = p2;
            q1 = q2;
            let frac = x - a;
            if frac < 1e-15 {
                break;
            }
            x = 1.0 / frac;
        }
        if q1 == 0 {
            return None;
        }
        let r = Rational::checked_new(if neg { -p1 } else { p1 }, q1).ok()?;
        Some(r)
    }

    /// Render as a decimal string with `digits` fractional digits,
    /// rounding half away from zero. `1067/10` with 1 digit renders as
    /// `"106.7"`.
    pub fn to_decimal_string(&self, digits: u32) -> String {
        let mut scale: i128 = 1;
        for _ in 0..digits {
            scale = scale.saturating_mul(10);
        }
        // round(self * scale)
        let scaled_num = self.num.saturating_mul(scale);
        let half = self.den / 2;
        let rounded = if scaled_num >= 0 {
            (scaled_num + half) / self.den
        } else {
            (scaled_num - half) / self.den
        };
        let sign = if rounded < 0 { "-" } else { "" };
        let mag = rounded.unsigned_abs();
        let ip = mag / scale.unsigned_abs();
        let fp = mag % scale.unsigned_abs();
        if digits == 0 {
            format!("{sign}{ip}")
        } else {
            format!("{sign}{ip}.{fp:0width$}", width = digits as usize)
        }
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl Hash for Rational {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Invariant: reduced form is canonical, so field-wise hashing is
        // consistent with Eq.
        self.num.hash(state);
        self.den.hash(state);
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b ? c/d  <=>  a*d ? c*b   (b, d > 0).
        // i128 products of protocol-scale values do not overflow; fall back
        // to f64 comparison only in the (astronomically unlikely) overflow
        // case — and then refine by subtracting.
        match (
            self.num.checked_mul(other.den),
            other.num.checked_mul(self.den),
        ) {
            (Some(l), Some(r)) => l.cmp(&r),
            _ => {
                // Exact fallback: compare via checked_sub's sign if possible,
                // else compare floats (documented approximation of last resort).
                if let Ok(d) = self.checked_sub(other) {
                    return d.num.cmp(&0);
                }
                self.to_f64()
                    .partial_cmp(&other.to_f64())
                    .unwrap_or(Ordering::Equal)
            }
        }
    }
}

macro_rules! binop {
    ($trait:ident, $method:ident, $checked:ident, $assign_trait:ident, $assign_method:ident) => {
        impl $trait for Rational {
            type Output = Rational;
            fn $method(self, rhs: Rational) -> Rational {
                self.$checked(&rhs)
                    .expect(concat!("Rational::", stringify!($method), " overflow"))
            }
        }
        impl<'a> $trait<&'a Rational> for Rational {
            type Output = Rational;
            fn $method(self, rhs: &'a Rational) -> Rational {
                self.$checked(rhs)
                    .expect(concat!("Rational::", stringify!($method), " overflow"))
            }
        }
        impl<'a> $trait<Rational> for &'a Rational {
            type Output = Rational;
            fn $method(self, rhs: Rational) -> Rational {
                self.$checked(&rhs)
                    .expect(concat!("Rational::", stringify!($method), " overflow"))
            }
        }
        impl<'a, 'b> $trait<&'b Rational> for &'a Rational {
            type Output = Rational;
            fn $method(self, rhs: &'b Rational) -> Rational {
                self.$checked(rhs)
                    .expect(concat!("Rational::", stringify!($method), " overflow"))
            }
        }
        impl $assign_trait for Rational {
            fn $assign_method(&mut self, rhs: Rational) {
                *self = $trait::$method(*self, rhs);
            }
        }
    };
}

binop!(Add, add, checked_add, AddAssign, add_assign);
binop!(Sub, sub, checked_sub, SubAssign, sub_assign);
binop!(Mul, mul, checked_mul, MulAssign, mul_assign);
binop!(Div, div, checked_div, DivAssign, div_assign);

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        self.checked_neg().expect("Rational::neg overflow")
    }
}

impl Neg for &Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        self.checked_neg().expect("Rational::neg overflow")
    }
}

impl Sum for Rational {
    fn sum<I: Iterator<Item = Rational>>(iter: I) -> Rational {
        iter.fold(Rational::ZERO, |a, b| a + b)
    }
}

impl Product for Rational {
    fn product<I: Iterator<Item = Rational>>(iter: I) -> Rational {
        iter.fold(Rational::ONE, |a, b| a * b)
    }
}

macro_rules! from_int {
    ($($t:ty),*) => {
        $(
            impl From<$t> for Rational {
                fn from(n: $t) -> Rational {
                    Rational::from_int(n as i128)
                }
            }
        )*
    };
}

from_int!(i8, i16, i32, i64, i128, u8, u16, u32, u64);

impl FromStr for Rational {
    type Err = crate::ParseRationalError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        crate::parse::parse_rational(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn construction_normalises() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, -4), r(1, 2));
        assert_eq!(r(2, -4), r(-1, 2));
        assert_eq!(r(0, 5), Rational::ZERO);
        assert_eq!(r(7, 1).numer(), 7);
        assert_eq!(r(7, 1).denom(), 1);
    }

    #[test]
    #[should_panic(expected = "invalid fraction")]
    fn zero_denominator_panics() {
        let _ = Rational::new(1, 0);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(r(1, 2) + r(1, 3), r(5, 6));
        assert_eq!(r(1, 2) - r(1, 3), r(1, 6));
        assert_eq!(r(2, 3) * r(3, 4), r(1, 2));
        assert_eq!(r(1, 2) / r(1, 4), r(2, 1));
        assert_eq!(-r(1, 2), r(-1, 2));
        assert_eq!(r(1, 2).recip(), r(2, 1));
    }

    #[test]
    fn ordering() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(0, 1));
        assert!(r(7, 3) > r(2, 1));
        assert_eq!(r(3, 6).cmp(&r(1, 2)), Ordering::Equal);
        assert_eq!(r(1, 3).min(r(1, 2)), r(1, 3));
        assert_eq!(r(1, 3).max(r(1, 2)), r(1, 2));
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(r(7, 2).floor(), 3);
        assert_eq!(r(7, 2).ceil(), 4);
        assert_eq!(r(-7, 2).floor(), -4);
        assert_eq!(r(-7, 2).ceil(), -3);
        assert_eq!(r(4, 2).floor(), 2);
        assert_eq!(r(4, 2).ceil(), 2);
    }

    #[test]
    fn pow() {
        assert_eq!(r(2, 3).pow(2), r(4, 9));
        assert_eq!(r(2, 3).pow(0), Rational::ONE);
        assert_eq!(r(2, 3).pow(-1), r(3, 2));
        assert_eq!(r(2, 1).pow(-2), r(1, 4));
        assert!(Rational::ZERO.checked_pow(-1).is_err());
    }

    #[test]
    fn display() {
        assert_eq!(r(3, 1).to_string(), "3");
        assert_eq!(r(-3, 2).to_string(), "-3/2");
        assert_eq!(r(1067, 10).to_decimal_string(1), "106.7");
        assert_eq!(r(1067, 10).to_decimal_string(3), "106.700");
        assert_eq!(r(1, 3).to_decimal_string(4), "0.3333");
        assert_eq!(r(2, 3).to_decimal_string(2), "0.67");
        assert_eq!(r(-2, 3).to_decimal_string(2), "-0.67");
        assert_eq!(r(5, 2).to_decimal_string(0), "3"); // round half away
    }

    #[test]
    fn f64_roundtrip() {
        assert_eq!(r(1, 2).to_f64(), 0.5);
        assert_eq!(Rational::from_f64_approx(0.5, 1_000), Some(r(1, 2)));
        assert_eq!(Rational::from_f64_approx(106.7, 1_000), Some(r(1067, 10)));
        assert_eq!(Rational::from_f64_approx(-0.25, 1_000), Some(r(-1, 4)));
        assert_eq!(Rational::from_f64_approx(f64::NAN, 10), None);
        assert_eq!(Rational::from_f64_approx(f64::INFINITY, 10), None);
        // pi with small denominator: 22/7
        assert_eq!(
            Rational::from_f64_approx(std::f64::consts::PI, 10),
            Some(r(22, 7))
        );
    }

    #[test]
    fn sums_products() {
        let xs = [r(1, 2), r(1, 3), r(1, 6)];
        assert_eq!(xs.iter().copied().sum::<Rational>(), Rational::ONE);
        assert_eq!(xs.iter().copied().product::<Rational>(), r(1, 36));
    }

    #[test]
    fn checked_overflow_detected() {
        let big = Rational::from_int(i128::MAX);
        assert_eq!(
            big.checked_add(&Rational::ONE),
            Err(ArithmeticError::Overflow)
        );
        assert_eq!(big.checked_mul(&big), Err(ArithmeticError::Overflow));
    }

    #[test]
    fn signs_predicates() {
        assert!(r(1, 2).is_positive());
        assert!(r(-1, 2).is_negative());
        assert!(Rational::ZERO.is_zero());
        assert!(Rational::ONE.is_one());
        assert!(r(4, 2).is_integer());
        assert!(!r(1, 2).is_integer());
        assert_eq!(r(-5, 3).signum(), -1);
        assert_eq!(Rational::ZERO.signum(), 0);
        assert_eq!(r(5, 3).signum(), 1);
        assert_eq!(r(-5, 3).abs(), r(5, 3));
    }
}
