//! Error types for exact arithmetic.

use std::fmt;

/// An arithmetic operation could not be performed exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithmeticError {
    /// An intermediate value exceeded the `i128` range.
    Overflow,
    /// Division by zero (or reciprocal of zero).
    DivisionByZero,
}

impl fmt::Display for ArithmeticError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArithmeticError::Overflow => {
                write!(f, "arithmetic overflow in exact rational computation")
            }
            ArithmeticError::DivisionByZero => write!(f, "division by zero"),
        }
    }
}

impl std::error::Error for ArithmeticError {}

/// A string could not be parsed as a [`crate::Rational`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRationalError {
    pub(crate) input: String,
    pub(crate) reason: &'static str,
}

impl ParseRationalError {
    /// The offending input string.
    pub fn input(&self) -> &str {
        &self.input
    }

    /// Human-readable reason the parse failed.
    pub fn reason(&self) -> &str {
        self.reason
    }
}

impl fmt::Display for ParseRationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot parse {:?} as a rational: {}",
            self.input, self.reason
        )
    }
}

impl std::error::Error for ParseRationalError {}
