//! Property-based tests: `Rational` satisfies the field axioms (on the
//! subdomain where checked arithmetic succeeds) and parsing round-trips.

use proptest::prelude::*;
use tpn_rational::{gcd, Rational};

/// Small-component rationals so products of several of them stay well
/// within `i128` and the checked ops never fail.
fn small_rational() -> impl Strategy<Value = Rational> {
    (-1_000_000i128..=1_000_000, 1i128..=1_000_000).prop_map(|(n, d)| Rational::new(n, d))
}

proptest! {
    #[test]
    fn add_commutative(a in small_rational(), b in small_rational()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn add_associative(a in small_rational(), b in small_rational(), c in small_rational()) {
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn mul_commutative(a in small_rational(), b in small_rational()) {
        prop_assert_eq!(a * b, b * a);
    }

    #[test]
    fn mul_associative(a in small_rational(), b in small_rational(), c in small_rational()) {
        prop_assert_eq!((a * b) * c, a * (b * c));
    }

    #[test]
    fn distributive(a in small_rational(), b in small_rational(), c in small_rational()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn additive_inverse(a in small_rational()) {
        prop_assert_eq!(a + (-a), Rational::ZERO);
    }

    #[test]
    fn multiplicative_inverse(a in small_rational()) {
        prop_assume!(!a.is_zero());
        prop_assert_eq!(a * a.recip(), Rational::ONE);
    }

    #[test]
    fn sub_is_add_neg(a in small_rational(), b in small_rational()) {
        prop_assert_eq!(a - b, a + (-b));
    }

    #[test]
    fn normalised_invariants(a in small_rational()) {
        prop_assert!(a.denom() > 0);
        prop_assert_eq!(gcd(a.numer(), a.denom()), 1);
    }

    #[test]
    fn ordering_consistent_with_f64(a in small_rational(), b in small_rational()) {
        // f64 has 53 bits of mantissa; our components are ≤ 2^20, so the
        // float comparison is exact unless the values are equal.
        if a != b {
            prop_assert_eq!(a < b, a.to_f64() < b.to_f64());
        }
    }

    #[test]
    fn display_parse_roundtrip(a in small_rational()) {
        let s = a.to_string();
        let back: Rational = s.parse().unwrap();
        prop_assert_eq!(a, back);
    }

    #[test]
    fn floor_ceil_bracket(a in small_rational()) {
        let f = Rational::from_int(a.floor());
        let c = Rational::from_int(a.ceil());
        prop_assert!(f <= a && a <= c);
        prop_assert!(c - f <= Rational::ONE);
    }

    #[test]
    fn gcd_divides(a in -10_000i128..10_000, b in -10_000i128..10_000) {
        let g = gcd(a, b);
        if g != 0 {
            prop_assert_eq!(a % g, 0);
            prop_assert_eq!(b % g, 0);
        } else {
            prop_assert_eq!((a, b), (0, 0));
        }
    }

    #[test]
    fn decimal_string_close(a in small_rational()) {
        let s = a.to_decimal_string(6);
        let parsed: f64 = s.parse().unwrap();
        prop_assert!((parsed - a.to_f64()).abs() < 1e-5);
    }
}
