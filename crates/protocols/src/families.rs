//! Parametric net families for property tests and scaling benchmarks.

use tpn_net::{NetBuilder, TimedPetriNet, TransId};
use tpn_rational::Rational;

/// A ring of `n` stages: place `i` feeds transition `i` which feeds
/// place `(i+1) mod n`; stage `i` has firing time `times[i]`. One token
/// circulates, so the TRG is a `2n`-state cycle with total cycle time
/// `Σ times`.
pub fn cycle(times: &[Rational]) -> TimedPetriNet {
    assert!(!times.is_empty(), "cycle needs at least one stage");
    let mut b = NetBuilder::new("cycle");
    let places: Vec<_> = (0..times.len())
        .map(|i| b.place(&format!("s{i}"), u32::from(i == 0)))
        .collect();
    for (i, t) in times.iter().enumerate() {
        let next = (i + 1) % times.len();
        b.transition(&format!("advance{i}"))
            .input(places[i])
            .output(places[next])
            .firing(*t)
            .add();
    }
    b.build().expect("cycle net is structurally valid")
}

/// Fork/join: a fork transition spawns `n` parallel branches with firing
/// times `1, 2, …, n`; a join transition collects them and restarts.
/// Exercises the cross-product selector logic and multi-candidate
/// minimum resolution.
pub fn fork_join(n: usize) -> TimedPetriNet {
    assert!(n >= 1);
    let mut b = NetBuilder::new("fork-join");
    let start = b.place("start", 1);
    let branches: Vec<_> = (0..n).map(|i| b.place(&format!("branch{i}"), 0)).collect();
    let dones: Vec<_> = (0..n).map(|i| b.place(&format!("done{i}"), 0)).collect();
    let mut fork = b.transition("fork").input(start).firing_const(1);
    for p in &branches {
        fork = fork.output(*p);
    }
    fork.add();
    for i in 0..n {
        b.transition(&format!("work{i}"))
            .input(branches[i])
            .output(dones[i])
            .firing_const((i + 1) as i64)
            .add();
    }
    let mut join = b.transition("join").output(start).firing_const(1);
    for p in &dones {
        join = join.input(*p);
    }
    join.add();
    b.build().expect("fork-join net is structurally valid")
}

/// Bounded producer/consumer: the producer needs a free slot to emit an
/// item; the consumer returns the slot. `capacity` bounds the buffer, so
/// the TRG is finite with size linear in `capacity`.
pub fn producer_consumer(
    capacity: u32,
    produce_time: Rational,
    consume_time: Rational,
) -> TimedPetriNet {
    assert!(capacity >= 1);
    let mut b = NetBuilder::new("producer-consumer");
    let prod_ready = b.place("prod_ready", 1);
    let cons_ready = b.place("cons_ready", 1);
    let slots = b.place("slots", capacity);
    let items = b.place("items", 0);
    b.transition("produce")
        .input(prod_ready)
        .input(slots)
        .output(prod_ready)
        .output(items)
        .firing(produce_time)
        .add();
    b.transition("consume")
        .input(cons_ready)
        .input(items)
        .output(cons_ready)
        .output(slots)
        .firing(consume_time)
        .add();
    b.build()
        .expect("producer-consumer net is structurally valid")
}

/// A lossy multi-hop forwarding chain: a token must traverse `hops`
/// lossy hops; a loss at any hop sends it back to the start (immediate
/// retransmission). Every hop is a decision node, so the family sweeps
/// decision-graph size for the benchmarks. Returns the net and the final
/// "arrive" transition whose traversal rate is the chain's throughput
/// event.
pub fn lossy_chain(hops: usize, loss: Rational, hop_time: Rational) -> (TimedPetriNet, TransId) {
    assert!(hops >= 1);
    let mut b = NetBuilder::new("lossy-chain");
    let ats: Vec<_> = (0..=hops)
        .map(|i| b.place(&format!("at{i}"), u32::from(i == 0)))
        .collect();
    for i in 0..hops {
        b.transition(&format!("hop{i}"))
            .input(ats[i])
            .output(ats[i + 1])
            .firing(hop_time)
            .weight(Rational::ONE - loss)
            .add();
        b.transition(&format!("drop{i}"))
            .input(ats[i])
            .output(ats[0])
            .firing(hop_time)
            .weight(loss)
            .add();
    }
    let arrive = b
        .transition("arrive")
        .input(ats[hops])
        .output(ats[0])
        .firing(hop_time)
        .add();
    let net = b.build().expect("lossy chain net is structurally valid");
    (net, arrive)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128) -> Rational {
        Rational::from_int(n)
    }

    #[test]
    fn cycle_structure() {
        let net = cycle(&[r(1), r(2), r(3)]);
        assert_eq!(net.num_places(), 3);
        assert_eq!(net.num_transitions(), 3);
        assert_eq!(net.initial_marking().total_tokens(), 1);
        assert_eq!(net.stats().nontrivial_conflict_sets, 0);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn cycle_rejects_empty() {
        let _ = cycle(&[]);
    }

    #[test]
    fn fork_join_structure() {
        let net = fork_join(4);
        assert_eq!(net.num_transitions(), 6); // fork + 4 work + join
        assert_eq!(net.num_places(), 9);
    }

    #[test]
    fn producer_consumer_structure() {
        let net = producer_consumer(3, r(2), r(5));
        assert_eq!(net.initial_marking().total_tokens(), 5); // 2 ready + 3 slots
        assert_eq!(net.num_transitions(), 2);
    }

    #[test]
    fn lossy_chain_structure() {
        let (net, arrive) = lossy_chain(5, Rational::new(1, 10), r(2));
        assert_eq!(net.num_places(), 6);
        assert_eq!(net.num_transitions(), 11);
        assert_eq!(net.transition(arrive).name(), "arrive");
        assert_eq!(net.stats().nontrivial_conflict_sets, 5);
    }
}
