//! The net of the paper's Figure 2a, used in §1 to contrast Timed Petri
//! Nets with Merlin–Farber Time Petri Nets.
//!
//! The scenario: transition `t1` needs to stay enabled for 3 time units
//! before it must fire (`E(t1) = 3`, `F(t1) = 7`), but a token arriving
//! on a second place at time 2 makes a competing transition `t2`
//! immediately firable, absorbing the shared token and *disabling* `t1`
//! before its enabling time expires. Under Timed-Petri-Net semantics the
//! outcome is deterministic (`t2` wins); under Time-Petri-Net semantics
//! (Min/Max firing intervals) `t1`'s Min time alone would not prevent
//! the race. The regression test `fig2_semantics` pins the TPN reading.

use tpn_net::{NetBuilder, PlaceId, TimedPetriNet, TransId};

/// Figure-2a net plus ids.
#[derive(Debug, Clone)]
pub struct Fig2 {
    /// The net.
    pub net: TimedPetriNet,
    /// The slow, enabling-time-guarded transition (`E=3, F=7`).
    pub t1: TransId,
    /// The competing instant transition enabled by the arriving token.
    pub t2: TransId,
    /// The feeder transition that delivers the token at time 2.
    pub feeder: TransId,
    /// The shared input place of `t1` and `t2`.
    pub shared: PlaceId,
}

/// Build the Figure-2a scenario.
pub fn fig2() -> Fig2 {
    let mut b = NetBuilder::new("fig2a");
    let shared = b.place("P1", 1);
    let arriving = b.place("P2", 0);
    let src = b.place("P3", 1);
    let out1 = b.place("out_t1", 0);
    let out2 = b.place("out_t2", 0);
    let t1 = b
        .transition("t1")
        .input(shared)
        .output(out1)
        .enabling_const(3)
        .firing_const(7)
        .add();
    let t2 = b
        .transition("t2")
        .input(shared)
        .input(arriving)
        .output(out2)
        .firing_const(1)
        .add();
    let feeder = b
        .transition("feeder")
        .input(src)
        .output(arriving)
        .firing_const(2)
        .add();
    let net = b.build().expect("fig2 net is structurally valid");
    Fig2 {
        net,
        t1,
        t2,
        feeder,
        shared,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure() {
        let f = fig2();
        assert_eq!(f.net.num_transitions(), 3);
        // t1 and t2 conflict on the shared place
        assert_eq!(f.net.conflict_set_of(f.t1), f.net.conflict_set_of(f.t2));
        assert_ne!(f.net.conflict_set_of(f.t1), f.net.conflict_set_of(f.feeder));
    }
}
