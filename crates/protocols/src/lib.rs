//! Model zoo: the nets analysed in the paper plus parametric families
//! used by the test suite and the scaling benchmarks.
//!
//! * [`simple`] — the paper's Figure-1 protocol (unnumbered messages and
//!   acknowledgements, lossy medium, sender timeout), in numeric
//!   (Figure 1b times) and symbolic (constraints (1)–(4)) form;
//! * [`fig2`] — the small net of Figure 2a used to contrast Timed Petri
//!   Nets with Merlin–Farber Time Petri Nets;
//! * [`abp`] — the alternating-bit extension the paper sketches ("easily
//!   extended to be more robust by using alternating bits");
//! * [`families`] — parametric nets (cycles, fork/join, producer–
//!   consumer, lossy pipelines) for property tests and benches.

pub mod abp;
pub mod families;
pub mod fig2;
pub mod simple;
