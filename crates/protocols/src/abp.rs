//! The alternating-bit extension of the simple protocol.
//!
//! The paper notes its Figure-1 protocol "can be easily extended to be
//! more robust by using alternating bits for message and acknowledgement
//! sequencing". This module builds that extension: the sender stamps
//! each message with a sequence bit, the receiver acknowledges with the
//! same bit and flips its expectation, and duplicate messages (caused by
//! an acknowledgement loss followed by a timeout retransmission) are
//! detected and re-acknowledged without being delivered twice.
//!
//! Per bit `b ∈ {0, 1}` the net has a full copy of the Figure-1
//! machinery (send, lossy message medium, receive+ack, lossy ack
//! medium, ack receipt, timeout) plus the duplicate path
//! `recv_dup_b` — receiver holding `expect_{1−b}` re-acknowledges a
//! duplicate `msg_b` without flipping.

use tpn_net::{NetBuilder, TimedPetriNet, TransId};
use tpn_rational::Rational;

use crate::simple::Params;

/// The alternating-bit net plus the transitions measures care about.
#[derive(Debug, Clone)]
pub struct Abp {
    /// The validated net.
    pub net: TimedPetriNet,
    /// `recv_0` and `recv_1`: first-time deliveries (throughput events).
    pub deliveries: [TransId; 2],
    /// `recv_dup_0` and `recv_dup_1`: duplicate re-acknowledgements.
    pub duplicates: [TransId; 2],
    /// `timeout_0` and `timeout_1`.
    pub timeouts: [TransId; 2],
}

/// Build the alternating-bit protocol with the given parameters (use
/// [`Params::paper`] for the Figure-1b values).
pub fn abp(params: &Params) -> Abp {
    let mut b = NetBuilder::new("alternating-bit");
    // Global places.
    let expect = [b.place("expect_0", 1), b.place("expect_1", 0)];
    let sender_ready = [b.place("sender_ready_0", 1), b.place("sender_ready_1", 0)];
    // Per-bit places.
    let msg_medium = [b.place("msg0_in_medium", 0), b.place("msg1_in_medium", 0)];
    let msg_deliv = [b.place("msg0_delivered", 0), b.place("msg1_delivered", 0)];
    let awaiting = [b.place("awaiting_ack_0", 0), b.place("awaiting_ack_1", 0)];
    let ack_medium = [b.place("ack0_in_medium", 0), b.place("ack1_in_medium", 0)];
    let ack_deliv = [b.place("ack0_delivered", 0), b.place("ack1_delivered", 0)];
    let ack_ok = [b.place("ack0_accepted", 0), b.place("ack1_accepted", 0)];

    let mut deliveries = Vec::new();
    let mut duplicates = Vec::new();
    let mut timeouts = Vec::new();
    for bit in 0..2usize {
        let other = 1 - bit;
        b.transition(&format!("send_{bit}"))
            .input(sender_ready[bit])
            .output(msg_medium[bit])
            .output(awaiting[bit])
            .firing(params.sender_step)
            .add();
        timeouts.push(
            b.transition(&format!("timeout_{bit}"))
                .input(awaiting[bit])
                .output(sender_ready[bit])
                .enabling(params.timeout)
                .firing(params.sender_step)
                .weight(Rational::ZERO)
                .add(),
        );
        b.transition(&format!("xmit_msg_{bit}"))
            .input(msg_medium[bit])
            .output(msg_deliv[bit])
            .firing(params.packet_time)
            .weight(Rational::ONE - params.packet_loss)
            .add();
        b.transition(&format!("lose_msg_{bit}"))
            .input(msg_medium[bit])
            .firing(params.packet_time)
            .weight(params.packet_loss)
            .add();
        // First-time delivery: consume the expectation and flip it.
        deliveries.push(
            b.transition(&format!("recv_{bit}"))
                .input(msg_deliv[bit])
                .input(expect[bit])
                .output(ack_medium[bit])
                .output(expect[other])
                .firing(params.ack_handling)
                .add(),
        );
        // Duplicate: the receiver already flipped; re-acknowledge only.
        duplicates.push(
            b.transition(&format!("recv_dup_{bit}"))
                .input(msg_deliv[bit])
                .input(expect[other])
                .output(ack_medium[bit])
                .output(expect[other])
                .firing(params.ack_handling)
                .add(),
        );
        b.transition(&format!("xmit_ack_{bit}"))
            .input(ack_medium[bit])
            .output(ack_deliv[bit])
            .firing(params.ack_time)
            .weight(Rational::ONE - params.ack_loss)
            .add();
        b.transition(&format!("lose_ack_{bit}"))
            .input(ack_medium[bit])
            .firing(params.ack_time)
            .weight(params.ack_loss)
            .add();
        // ACK receipt beats the timeout (frequency-0 priority).
        b.transition(&format!("recv_ack_{bit}"))
            .input(awaiting[bit])
            .input(ack_deliv[bit])
            .output(ack_ok[bit])
            .firing(params.ack_handling)
            .add();
        // Advance to the other sequence bit.
        b.transition(&format!("next_{bit}"))
            .input(ack_ok[bit])
            .output(sender_ready[other])
            .firing(params.sender_step)
            .add();
    }
    let net = b.build().expect("abp net is structurally valid");
    Abp {
        net,
        deliveries: [deliveries[0], deliveries[1]],
        duplicates: [duplicates[0], duplicates[1]],
        timeouts: [timeouts[0], timeouts[1]],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure() {
        let a = abp(&Params::paper());
        assert_eq!(a.net.num_transitions(), 20);
        assert_eq!(a.net.num_places(), 16);
        assert!(a.net.is_fully_timed());
        // message media and ack media are conflict pairs
        let stats = a.net.stats();
        assert!(stats.nontrivial_conflict_sets >= 4, "{stats:?}");
        // per-bit: recv and recv_dup conflict (they share msg_delivered)
        assert_eq!(
            a.net.conflict_set_of(a.deliveries[0]),
            a.net.conflict_set_of(a.duplicates[0])
        );
    }

    #[test]
    fn initial_marking_has_bit_zero() {
        let a = abp(&Params::paper());
        let sr0 = a.net.place_by_name("sender_ready_0").unwrap();
        let e0 = a.net.place_by_name("expect_0").unwrap();
        assert_eq!(a.net.initial_marking().tokens(sr0), 1);
        assert_eq!(a.net.initial_marking().tokens(e0), 1);
        assert_eq!(a.net.initial_marking().total_tokens(), 2);
    }
}
