//! The paper's simple communication protocol (Figure 1).
//!
//! *"In this protocol the sender sends a packet (t₂) and waits for an
//! acknowledgement. A timeout (t₃) is used to recover from lost packets.
//! The receiver waits for a message and sends an acknowledgement
//! immediately (t₆). The medium can lose packets (t₅) and
//! acknowledgements (t₉)."*
//!
//! Reconstructed structure (places renumbered to match the marking
//! columns of the paper's Figure 4b):
//!
//! | Transition | Role | E | F (ms) | weight |
//! |---|---|---|---|---|
//! | `t1` | sender finishes processing the acknowledged exchange | 0 | 1 | 1 |
//! | `t2` | sender transmits a packet, arming the timeout | 0 | 1 | 1 |
//! | `t3` | sender timeout (priority-suppressed by `t7`) | 1000 | 1 | 0 |
//! | `t4` | medium delivers the packet | 0 | 106.7 | 0.95 |
//! | `t5` | medium loses the packet | 0 | 106.7 | 0.05 |
//! | `t6` | receiver accepts the packet and emits an ACK | 0 | 13.5 | 1 |
//! | `t7` | sender receives the ACK (disarms the timeout) | 0 | 13.5 | 1 |
//! | `t8` | medium delivers the ACK | 0 | 106.7 | 0.95 |
//! | `t9` | medium loses the ACK | 0 | 106.7 | 0.05 |
//!
//! Conflict sets: `{t4, t5}` (packet medium), `{t3, t7}` (timeout vs.
//! ACK receipt — `t3` has frequency 0, so the ACK wins whenever both are
//! firable), `{t8, t9}` (ACK medium).

use tpn_net::{symbols, NetBuilder, PlaceId, TimedPetriNet, TransId};
use tpn_rational::Rational;
use tpn_symbolic::{Assignment, ConstraintSet, LinExpr};

/// Exact timing/frequency parameters for the protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Params {
    /// Timeout enabling time `E(t3)` (paper: 1000 ms).
    pub timeout: Rational,
    /// Sender processing times `F(t1) = F(t2) = F(t3)` (paper: 1 ms).
    pub sender_step: Rational,
    /// Packet transmission/loss time `F(t4) = F(t5)` (paper: 106.7 ms).
    pub packet_time: Rational,
    /// Receiver/sender ACK handling time `F(t6) = F(t7)` (paper: 13.5 ms).
    pub ack_handling: Rational,
    /// ACK transmission/loss time `F(t8) = F(t9)` (paper: 106.7 ms).
    pub ack_time: Rational,
    /// Probability of losing a packet (paper: 0.05).
    pub packet_loss: Rational,
    /// Probability of losing an ACK (paper: 0.05).
    pub ack_loss: Rational,
}

impl Params {
    /// The paper's Figure-1b values.
    pub fn paper() -> Params {
        Params {
            timeout: Rational::from_int(1000),
            sender_step: Rational::ONE,
            packet_time: Rational::new(1067, 10),
            ack_handling: Rational::new(27, 2),
            ack_time: Rational::new(1067, 10),
            packet_loss: Rational::new(1, 20),
            ack_loss: Rational::new(1, 20),
        }
    }

    /// `true` iff the parameters satisfy the paper's constraint (1): the
    /// timeout exceeds the round-trip delay `F(t4)+F(t6)+F(t8)`.
    pub fn satisfies_timeout_constraint(&self) -> bool {
        self.timeout > self.packet_time + self.ack_handling + self.ack_time
    }
}

/// The protocol net plus the ids needed to interrogate it.
#[derive(Debug, Clone)]
pub struct SimpleProtocol {
    /// The validated net.
    pub net: TimedPetriNet,
    /// `t1` … `t9` in paper order (index 0 is `t1`).
    pub t: [TransId; 9],
    /// `p1` … `p8` in paper order (index 0 is `p1`).
    pub p: [PlaceId; 8],
}

/// Build the protocol with explicit numeric parameters.
pub fn numeric(params: &Params) -> SimpleProtocol {
    build(Spec::Numeric(params.clone()))
}

/// Build the protocol with the paper's Figure-1b values.
pub fn paper() -> SimpleProtocol {
    numeric(&Params::paper())
}

/// Build the *symbolic* protocol of Section 4: `E(t3)` and every firing
/// time are unknown symbols, the medium frequencies are unknown symbols,
/// and the returned constraint set contains the paper's constraints:
///
/// 1. `E(t3) > F(t4) + F(t6) + F(t8)` — the timeout exceeds the
///    round-trip delay;
/// 2. `E(t) = 0` for `t ≠ t3` — encoded structurally as known-zero
///    enabling times;
/// 3. `F(t5) = F(t4)` — losing a packet takes as long as delivering it;
/// 4. `F(t9) = F(t8)` — likewise for acknowledgements.
pub fn symbolic() -> (SimpleProtocol, ConstraintSet) {
    let proto = build(Spec::Symbolic);
    let e3 = LinExpr::symbol(symbols::enabling("t3"));
    let f4 = LinExpr::symbol(symbols::firing("t4"));
    let f5 = LinExpr::symbol(symbols::firing("t5"));
    let f6 = LinExpr::symbol(symbols::firing("t6"));
    let f8 = LinExpr::symbol(symbols::firing("t8"));
    let f9 = LinExpr::symbol(symbols::firing("t9"));
    let mut cs = ConstraintSet::new();
    // (1) timeout > round trip
    cs.assume_gt(e3, f4.clone() + &f6 + &f8);
    // (3), (4) loss takes exactly as long as success
    cs.assume_eq(f5, f4);
    cs.assume_eq(f9, f8);
    (proto, cs)
}

/// The Figure-1b values as an [`Assignment`] over the canonical symbols,
/// for instantiating symbolic results.
pub fn paper_assignment() -> Assignment {
    let p = Params::paper();
    let mut a = Assignment::new();
    a.set(symbols::enabling("t3"), p.timeout);
    a.set(symbols::firing("t1"), p.sender_step);
    a.set(symbols::firing("t2"), p.sender_step);
    a.set(symbols::firing("t3"), p.sender_step);
    a.set(symbols::firing("t4"), p.packet_time);
    a.set(symbols::firing("t5"), p.packet_time);
    a.set(symbols::firing("t6"), p.ack_handling);
    a.set(symbols::firing("t7"), p.ack_handling);
    a.set(symbols::firing("t8"), p.ack_time);
    a.set(symbols::firing("t9"), p.ack_time);
    // frequencies: 5% loss on both media, scaled as in the paper
    a.set(symbols::frequency("t4"), Rational::new(19, 20));
    a.set(symbols::frequency("t5"), Rational::new(1, 20));
    a.set(symbols::frequency("t8"), Rational::new(19, 20));
    a.set(symbols::frequency("t9"), Rational::new(1, 20));
    a
}

#[allow(clippy::large_enum_variant)] // short-lived builder input
enum Spec {
    Numeric(Params),
    Symbolic,
}

fn build(spec: Spec) -> SimpleProtocol {
    let mut b = NetBuilder::new("simple-protocol");
    // Places, numbered as in the paper's Figure 4b marking columns.
    let p1 = b.place("sender_ready", 1);
    let p2 = b.place("packet_in_medium", 0);
    let p3 = b.place("packet_delivered", 0);
    let p4 = b.place("awaiting_ack", 0);
    let p5 = b.place("ack_accepted", 0);
    let p6 = b.place("ack_delivered", 0);
    let p7 = b.place("ack_in_medium", 0);
    let p8 = b.place("receiver_ready", 1);

    let (t1, t2, t3, t4, t5, t6, t7, t8, t9);
    match spec {
        Spec::Numeric(params) => {
            t1 = b
                .transition("t1")
                .input(p5)
                .output(p1)
                .firing(params.sender_step)
                .add();
            t2 = b
                .transition("t2")
                .input(p1)
                .output(p2)
                .output(p4)
                .firing(params.sender_step)
                .add();
            t3 = b
                .transition("t3")
                .input(p4)
                .output(p1)
                .enabling(params.timeout)
                .firing(params.sender_step)
                .weight(Rational::ZERO)
                .add();
            t4 = b
                .transition("t4")
                .input(p2)
                .output(p3)
                .firing(params.packet_time)
                .weight(Rational::ONE - params.packet_loss)
                .add();
            t5 = b
                .transition("t5")
                .input(p2)
                .firing(params.packet_time)
                .weight(params.packet_loss)
                .add();
            t6 = b
                .transition("t6")
                .input(p3)
                .input(p8)
                .output(p7)
                .output(p8)
                .firing(params.ack_handling)
                .add();
            t7 = b
                .transition("t7")
                .input(p4)
                .input(p6)
                .output(p5)
                .firing(params.ack_handling)
                .add();
            t8 = b
                .transition("t8")
                .input(p7)
                .output(p6)
                .firing(params.ack_time)
                .weight(Rational::ONE - params.ack_loss)
                .add();
            t9 = b
                .transition("t9")
                .input(p7)
                .firing(params.ack_time)
                .weight(params.ack_loss)
                .add();
        }
        Spec::Symbolic => {
            t1 = b
                .transition("t1")
                .input(p5)
                .output(p1)
                .firing_unknown()
                .add();
            t2 = b
                .transition("t2")
                .input(p1)
                .output(p2)
                .output(p4)
                .firing_unknown()
                .add();
            t3 = b
                .transition("t3")
                .input(p4)
                .output(p1)
                .enabling_unknown()
                .firing_unknown()
                .weight(Rational::ZERO)
                .add();
            t4 = b
                .transition("t4")
                .input(p2)
                .output(p3)
                .firing_unknown()
                .weight_unknown()
                .add();
            t5 = b
                .transition("t5")
                .input(p2)
                .firing_unknown()
                .weight_unknown()
                .add();
            t6 = b
                .transition("t6")
                .input(p3)
                .input(p8)
                .output(p7)
                .output(p8)
                .firing_unknown()
                .add();
            t7 = b
                .transition("t7")
                .input(p4)
                .input(p6)
                .output(p5)
                .firing_unknown()
                .add();
            t8 = b
                .transition("t8")
                .input(p7)
                .output(p6)
                .firing_unknown()
                .weight_unknown()
                .add();
            t9 = b
                .transition("t9")
                .input(p7)
                .firing_unknown()
                .weight_unknown()
                .add();
        }
    }
    let net = b
        .build()
        .expect("simple protocol net is structurally valid");
    SimpleProtocol {
        net,
        t: [t1, t2, t3, t4, t5, t6, t7, t8, t9],
        p: [p1, p2, p3, p4, p5, p6, p7, p8],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_net_structure() {
        let sp = paper();
        assert_eq!(sp.net.num_places(), 8);
        assert_eq!(sp.net.num_transitions(), 9);
        // three non-trivial conflict sets, as in the paper
        let stats = sp.net.stats();
        assert_eq!(stats.nontrivial_conflict_sets, 3);
        assert_eq!(stats.conflict_sets, 6);
        // t4/t5 conflict; t3/t7 conflict; t8/t9 conflict
        assert_eq!(
            sp.net.conflict_set_of(sp.t[3]),
            sp.net.conflict_set_of(sp.t[4])
        );
        assert_eq!(
            sp.net.conflict_set_of(sp.t[2]),
            sp.net.conflict_set_of(sp.t[6])
        );
        assert_eq!(
            sp.net.conflict_set_of(sp.t[7]),
            sp.net.conflict_set_of(sp.t[8])
        );
        assert!(sp.net.is_fully_timed());
    }

    #[test]
    fn paper_params_satisfy_constraint_one() {
        let p = Params::paper();
        assert!(p.satisfies_timeout_constraint());
        // 1000 > 106.7 + 13.5 + 106.7 = 226.9
        assert_eq!(
            p.packet_time + p.ack_handling + p.ack_time,
            Rational::new(2269, 10)
        );
    }

    #[test]
    fn symbolic_net_and_constraints() {
        let (sp, cs) = symbolic();
        assert!(!sp.net.is_fully_timed());
        // constraint (1) present and satisfied by the paper values
        let a = paper_assignment();
        assert_eq!(cs.check(&a), Some(true));
        // violating the timeout constraint is detected
        let mut bad = paper_assignment();
        bad.set(symbols::enabling("t3"), Rational::from_int(100));
        assert_eq!(cs.check(&bad), Some(false));
    }

    #[test]
    fn initial_marking() {
        let sp = paper();
        let m = sp.net.initial_marking();
        assert_eq!(m.tokens(sp.p[0]), 1, "sender ready");
        assert_eq!(m.tokens(sp.p[7]), 1, "receiver ready");
        assert_eq!(m.total_tokens(), 2);
    }
}
