//! The Timed Petri Net model of Razouk's paper (§1).
//!
//! A Timed Petri Net is `Γ = (P, T, I, O, E, F, μ₀)`:
//!
//! * `P` — places, `T` — transitions;
//! * `I, O : T → bag(P)` — input and output *bags* (multisets of places);
//! * `E : T → ℝ≥0` — the **enabling time**: how long a transition must be
//!   *continuously enabled* before it becomes firable (used to model
//!   timeouts; `E = 0` for everything else);
//! * `F : T → ℝ≥0` — the **firing time**: when a transition becomes
//!   firable it *must* begin firing instantly, absorbing its input
//!   tokens; `F(t)` later, it finishes and deposits its output tokens;
//! * `μ₀` — the initial marking.
//!
//! Transitions whose input bags overlap are grouped into disjoint
//! **conflict sets**; each transition carries a *relative firing
//! frequency* used to resolve conflicts probabilistically (frequency 0
//! means "the others have priority"). This crate captures the model,
//! its structural validation, a builder, DOT export, and a small
//! line-oriented `.tpn` text format. The *dynamics* (reachability,
//! simulation) live in `tpn-reach` and `tpn-sim`.

mod bag;
mod builder;
mod digest;
mod dot;
mod emit;
mod error;
mod ids;
pub mod invariant;
mod marking;
mod net;
mod parse;
mod timing;
mod transition;

pub use bag::Bag;
pub use builder::{NetBuilder, TransitionBuilder};
pub use digest::NetDigest;
pub use dot::to_dot;
pub use error::NetError;
pub use ids::{ConflictSetId, PlaceId, TransId};
pub use marking::Marking;
pub use net::{ConflictSet, TimedPetriNet};
pub use parse::{parse_tpn, ParseError};
pub use timing::TimingAssignment;
pub use transition::{Frequency, TimeValue, Transition};

/// Canonical symbol names used by the symbolic layers for a transition's
/// enabling time, firing time and firing frequency.
pub mod symbols {
    use tpn_symbolic::Symbol;

    /// The enabling-time symbol `E(name)`.
    pub fn enabling(name: &str) -> Symbol {
        Symbol::intern(&format!("E({name})"))
    }

    /// The firing-time symbol `F(name)`.
    pub fn firing(name: &str) -> Symbol {
        Symbol::intern(&format!("F({name})"))
    }

    /// The firing-frequency symbol `f(name)`.
    pub fn frequency(name: &str) -> Symbol {
        Symbol::intern(&format!("f({name})"))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn canonical_names() {
            assert_eq!(super::enabling("t3").name(), "E(t3)");
            assert_eq!(super::firing("t4").name(), "F(t4)");
            assert_eq!(super::frequency("t4").name(), "f(t4)");
        }
    }
}
