//! Fluent construction of validated nets.

use std::collections::HashMap;

use tpn_rational::Rational;

use crate::{
    Bag, Frequency, Marking, NetError, PlaceId, TimeValue, TimedPetriNet, TransId, Transition,
};

/// Builder for a [`TimedPetriNet`].
///
/// # Examples
///
/// ```
/// use tpn_net::NetBuilder;
///
/// let mut b = NetBuilder::new("handshake");
/// let idle = b.place("idle", 1);
/// let busy = b.place("busy", 0);
/// b.transition("start").input(idle).output(busy).firing_const(2).add();
/// b.transition("finish").input(busy).output(idle).firing_const(3).add();
/// let net = b.build().unwrap();
/// assert_eq!(net.num_places(), 2);
/// assert_eq!(net.num_transitions(), 2);
/// ```
#[derive(Debug, Default)]
pub struct NetBuilder {
    name: String,
    place_names: Vec<String>,
    initial: Vec<u32>,
    transitions: Vec<Transition>,
}

impl NetBuilder {
    /// Start building a net with the given name.
    pub fn new(name: &str) -> NetBuilder {
        NetBuilder {
            name: name.to_string(),
            ..NetBuilder::default()
        }
    }

    /// Add a place with an initial token count, returning its id.
    pub fn place(&mut self, name: &str, initial_tokens: u32) -> PlaceId {
        let id = PlaceId::from_index(self.place_names.len());
        self.place_names.push(name.to_string());
        self.initial.push(initial_tokens);
        id
    }

    /// Start describing a transition. Call [`TransitionBuilder::add`] to
    /// attach it to the net.
    pub fn transition<'a>(&'a mut self, name: &str) -> TransitionBuilder<'a> {
        TransitionBuilder {
            net: self,
            trans: Transition {
                name: name.to_string(),
                input: Bag::new(),
                output: Bag::new(),
                enabling: TimeValue::zero(),
                firing: TimeValue::zero(),
                frequency: Frequency::one(),
            },
        }
    }

    /// Validate and build the net.
    pub fn build(self) -> Result<TimedPetriNet, NetError> {
        let mut place_index = HashMap::new();
        for (i, name) in self.place_names.iter().enumerate() {
            if place_index
                .insert(name.clone(), PlaceId::from_index(i))
                .is_some()
            {
                return Err(NetError::DuplicatePlace { name: name.clone() });
            }
        }
        let mut trans_index = HashMap::new();
        for (i, t) in self.transitions.iter().enumerate() {
            if trans_index
                .insert(t.name.clone(), TransId::from_index(i))
                .is_some()
            {
                return Err(NetError::DuplicateTransition {
                    name: t.name.clone(),
                });
            }
            if t.input.is_empty() {
                return Err(NetError::EmptyInputBag {
                    transition: t.name.clone(),
                });
            }
            if let Some(e) = t.enabling.known() {
                if e.is_negative() {
                    return Err(NetError::NegativeTime {
                        transition: t.name.clone(),
                        which: "enabling",
                    });
                }
            }
            if let Some(fi) = t.firing.known() {
                if fi.is_negative() {
                    return Err(NetError::NegativeTime {
                        transition: t.name.clone(),
                        which: "firing",
                    });
                }
            }
            if let Some(w) = t.frequency.weight() {
                if w.is_negative() {
                    return Err(NetError::NegativeFrequency {
                        transition: t.name.clone(),
                    });
                }
            }
        }
        let (conflict_sets, conflict_of) =
            TimedPetriNet::compute_conflict_sets(&self.transitions, self.place_names.len());
        Ok(TimedPetriNet {
            name: self.name,
            initial: Marking::from_vec(self.initial),
            place_names: self.place_names,
            transitions: self.transitions,
            conflict_sets,
            conflict_of,
            place_index,
            trans_index,
        })
    }
}

/// In-flight transition description; see [`NetBuilder::transition`].
#[derive(Debug)]
pub struct TransitionBuilder<'a> {
    net: &'a mut NetBuilder,
    trans: Transition,
}

impl<'a> TransitionBuilder<'a> {
    /// Add one occurrence of `p` to the input bag.
    pub fn input(mut self, p: PlaceId) -> Self {
        self.trans.input.insert(p, 1);
        self
    }

    /// Add `n` occurrences of `p` to the input bag.
    pub fn input_n(mut self, p: PlaceId, n: u32) -> Self {
        self.trans.input.insert(p, n);
        self
    }

    /// Add one occurrence of `p` to the output bag.
    pub fn output(mut self, p: PlaceId) -> Self {
        self.trans.output.insert(p, 1);
        self
    }

    /// Add `n` occurrences of `p` to the output bag.
    pub fn output_n(mut self, p: PlaceId, n: u32) -> Self {
        self.trans.output.insert(p, n);
        self
    }

    /// Set the enabling time to an exact value.
    pub fn enabling(mut self, e: Rational) -> Self {
        self.trans.enabling = TimeValue::Known(e);
        self
    }

    /// Set the enabling time to an integer constant (convenience).
    pub fn enabling_const(self, e: i64) -> Self {
        self.enabling(Rational::from_int(e as i128))
    }

    /// Mark the enabling time as unknown (symbolic).
    pub fn enabling_unknown(mut self) -> Self {
        self.trans.enabling = TimeValue::Unknown;
        self
    }

    /// Set the firing time to an exact value.
    pub fn firing(mut self, f: Rational) -> Self {
        self.trans.firing = TimeValue::Known(f);
        self
    }

    /// Set the firing time to an integer constant (convenience).
    pub fn firing_const(self, f: i64) -> Self {
        self.firing(Rational::from_int(f as i128))
    }

    /// Mark the firing time as unknown (symbolic).
    pub fn firing_unknown(mut self) -> Self {
        self.trans.firing = TimeValue::Unknown;
        self
    }

    /// Set the relative firing frequency.
    pub fn weight(mut self, w: Rational) -> Self {
        self.trans.frequency = Frequency::Weight(w);
        self
    }

    /// Set the frequency to an integer constant (convenience).
    pub fn weight_const(self, w: i64) -> Self {
        self.weight(Rational::from_int(w as i128))
    }

    /// Mark the frequency as unknown (symbolic).
    pub fn weight_unknown(mut self) -> Self {
        self.trans.frequency = Frequency::Unknown;
        self
    }

    /// Attach the transition to the net, returning its id.
    pub fn add(self) -> TransId {
        let id = TransId::from_index(self.net.transitions.len());
        self.net.transitions.push(self.trans);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_simple_net() {
        let mut b = NetBuilder::new("n");
        let a = b.place("a", 2);
        let c = b.place("c", 0);
        let t = b
            .transition("go")
            .input_n(a, 2)
            .output(c)
            .enabling_const(5)
            .firing(Rational::new(27, 2))
            .weight_const(3)
            .add();
        let net = b.build().unwrap();
        let tr = net.transition(t);
        assert_eq!(tr.input().count(a), 2);
        assert_eq!(tr.output().count(c), 1);
        assert_eq!(tr.enabling().known(), Some(&Rational::from_int(5)));
        assert_eq!(tr.firing().known(), Some(&Rational::new(27, 2)));
        assert_eq!(tr.frequency().weight(), Some(&Rational::from_int(3)));
        assert_eq!(net.initial_marking().tokens(a), 2);
    }

    #[test]
    fn duplicate_place_rejected() {
        let mut b = NetBuilder::new("n");
        b.place("a", 0);
        b.place("a", 0);
        let p = b.place("c", 1);
        b.transition("t").input(p).add();
        assert_eq!(
            b.build().unwrap_err(),
            NetError::DuplicatePlace { name: "a".into() }
        );
    }

    #[test]
    fn duplicate_transition_rejected() {
        let mut b = NetBuilder::new("n");
        let p = b.place("a", 1);
        b.transition("t").input(p).add();
        b.transition("t").input(p).add();
        assert_eq!(
            b.build().unwrap_err(),
            NetError::DuplicateTransition { name: "t".into() }
        );
    }

    #[test]
    fn empty_input_rejected() {
        let mut b = NetBuilder::new("n");
        let p = b.place("a", 0);
        b.transition("src").output(p).add();
        assert_eq!(
            b.build().unwrap_err(),
            NetError::EmptyInputBag {
                transition: "src".into()
            }
        );
    }

    #[test]
    fn negative_values_rejected() {
        let mut b = NetBuilder::new("n");
        let p = b.place("a", 1);
        b.transition("t")
            .input(p)
            .firing(Rational::from_int(-1))
            .add();
        assert!(matches!(
            b.build(),
            Err(NetError::NegativeTime {
                which: "firing",
                ..
            })
        ));

        let mut b2 = NetBuilder::new("n");
        let p2 = b2.place("a", 1);
        b2.transition("t")
            .input(p2)
            .enabling(Rational::from_int(-2))
            .add();
        assert!(matches!(
            b2.build(),
            Err(NetError::NegativeTime {
                which: "enabling",
                ..
            })
        ));

        let mut b3 = NetBuilder::new("n");
        let p3 = b3.place("a", 1);
        b3.transition("t")
            .input(p3)
            .weight(Rational::from_int(-1))
            .add();
        assert!(matches!(
            b3.build(),
            Err(NetError::NegativeFrequency { .. })
        ));
    }

    #[test]
    fn unknown_attributes_allowed() {
        let mut b = NetBuilder::new("n");
        let p = b.place("a", 1);
        b.transition("t")
            .input(p)
            .enabling_unknown()
            .firing_unknown()
            .weight_unknown()
            .add();
        let net = b.build().unwrap();
        assert!(!net.is_fully_timed());
    }
}
