//! Canonical content digests for nets.
//!
//! A [`NetDigest`] is a 128-bit fingerprint of everything that affects
//! a net's *behaviour*: its name, places (name and initial tokens),
//! arcs (with multiplicities), enabling/firing times and frequencies.
//! It is **independent of declaration order** — permuting the `place`
//! or `trans` directives of a `.tpn` file yields the same digest —
//! because every place is identified by name and the per-record hashes
//! are combined through a sorted fold rather than in sequence.
//!
//! The digest is the cache key of `tpn-service`'s content-addressed
//! analysis cache: two requests carrying textually different but
//! semantically identical nets hit the same cache line.
//!
//! The hash is two independently seeded FNV-1a lanes (no external
//! dependency, stable across platforms and releases of the standard
//! library, unlike [`std::hash::DefaultHasher`]).
//!
//! **Threat model:** FNV is not collision-resistant — an adversary who
//! controls the `.tpn` text can in principle craft two distinct nets
//! with the same digest, which against a shared `tpn-service` cache
//! would let one request's result be served for the other. The digest
//! protects against *accidental* collision (128 bits over two
//! independent lanes) and is intended for deployments whose clients
//! are trusted; a shared cache for mutually untrusting clients needs a
//! cryptographic hash instead.

use std::fmt;

use crate::{Bag, Frequency, TimeValue, TimedPetriNet};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// Seed of the second lane (the 64-bit golden ratio, any odd constant
/// different from the FNV offset works).
const LANE2_SEED: u64 = FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15;

/// A 128-bit canonical content digest of a [`TimedPetriNet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetDigest(pub [u64; 2]);

impl NetDigest {
    /// The digest as 32 lowercase hex digits.
    pub fn to_hex(self) -> String {
        format!("{:016x}{:016x}", self.0[0], self.0[1])
    }
}

impl fmt::Display for NetDigest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.0[0], self.0[1])
    }
}

/// One FNV-1a lane.
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn byte(&mut self, b: u8) {
        self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }

    fn bytes(&mut self, bs: &[u8]) {
        for &b in bs {
            self.byte(b);
        }
    }

    pub(crate) fn u64(&mut self, x: u64) {
        self.bytes(&x.to_le_bytes());
    }

    pub(crate) fn i128(&mut self, x: i128) {
        self.bytes(&x.to_le_bytes());
    }

    /// Length-prefixed, so `("ab", "c")` and `("a", "bc")` differ.
    pub(crate) fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }

    fn time(&mut self, t: &TimeValue) {
        match t {
            TimeValue::Known(r) => {
                self.byte(1);
                self.i128(r.numer());
                self.i128(r.denom());
            }
            TimeValue::Unknown => self.byte(2),
        }
    }

    fn frequency(&mut self, f: &Frequency) {
        match f {
            Frequency::Weight(w) => {
                self.byte(1);
                self.i128(w.numer());
                self.i128(w.denom());
            }
            Frequency::Unknown => self.byte(2),
        }
    }
}

/// Hash one record through both lanes.
pub(crate) fn record(write: impl Fn(&mut Fnv)) -> [u64; 2] {
    let mut a = Fnv(FNV_OFFSET);
    let mut b = Fnv(LANE2_SEED);
    write(&mut a);
    write(&mut b);
    [a.0, b.0]
}

/// Write a bag as (name, multiplicity) pairs sorted by place name, so
/// the hash does not depend on place declaration order.
pub(crate) fn bag_entries(net: &TimedPetriNet, bag: &Bag, h: &mut Fnv) {
    let mut entries: Vec<(&str, u32)> = bag.iter().map(|(p, n)| (net.place_name(p), n)).collect();
    entries.sort_unstable();
    h.u64(entries.len() as u64);
    for (name, mult) in entries {
        h.str(name);
        h.u64(u64::from(mult));
    }
}

impl TimedPetriNet {
    /// The canonical content digest of this net. See the module docs
    /// for what it covers and its order-independence guarantee.
    pub fn digest(&self) -> NetDigest {
        // Per-place and per-transition record hashes, combined through
        // a sorted fold: declaration order cannot influence the result.
        let mut records: Vec<[u64; 2]> =
            Vec::with_capacity(self.num_places() + self.num_transitions());
        for p in self.places() {
            records.push(record(|h| {
                h.byte(b'P');
                h.str(self.place_name(p));
                h.u64(u64::from(self.initial_marking().tokens(p)));
            }));
        }
        for t in self.transitions() {
            let tr = self.transition(t);
            records.push(record(|h| {
                h.byte(b'T');
                h.str(tr.name());
                bag_entries(self, tr.input(), h);
                bag_entries(self, tr.output(), h);
                h.time(tr.enabling());
                h.time(tr.firing());
                h.frequency(tr.frequency());
            }));
        }
        records.sort_unstable();
        let fold = record(|h| {
            h.str(self.name());
            h.u64(records.len() as u64);
            for r in &records {
                h.u64(r[0]);
                h.u64(r[1]);
            }
        });
        NetDigest(fold)
    }
}

#[cfg(test)]
mod tests {
    use crate::parse_tpn;

    const NET: &str = "
        net demo
        place a init 1
        place b
        trans go   in a out b firing 106.7 weight 0.95
        trans drop in a out - firing 106.7 weight 0.05
    ";

    /// The same net with places and transitions declared in the
    /// opposite order.
    const NET_PERMUTED: &str = "
        net demo
        place b
        place a init 1
        trans drop in a out - firing 106.7 weight 0.05
        trans go   in a out b firing 106.7 weight 0.95
    ";

    #[test]
    fn digest_is_deterministic() {
        let a = parse_tpn(NET).unwrap().digest();
        let b = parse_tpn(NET).unwrap().digest();
        assert_eq!(a, b);
    }

    #[test]
    fn digest_ignores_declaration_order() {
        let a = parse_tpn(NET).unwrap().digest();
        let b = parse_tpn(NET_PERMUTED).unwrap().digest();
        assert_eq!(a, b);
    }

    #[test]
    fn digest_distinguishes_content() {
        let base = parse_tpn(NET).unwrap().digest();
        for (what, src) in [
            ("net name", NET.replace("net demo", "net demo2")),
            ("initial marking", NET.replace("init 1", "init 2")),
            (
                "timing",
                NET.replace("firing 106.7 weight 0.95", "firing 13.5 weight 0.95"),
            ),
            ("weight", NET.replace("weight 0.05", "weight 0.06")),
            (
                "arcs",
                NET.replace("trans go   in a out b", "trans go   in a out a"),
            ),
            (
                "place name",
                NET.replace("place b", "place c").replace("out b", "out c"),
            ),
        ] {
            let changed = parse_tpn(&src).unwrap().digest();
            assert_ne!(base, changed, "{what} must change the digest");
        }
    }

    #[test]
    fn digest_covers_unknown_times() {
        let known = parse_tpn("net u\nplace a init 1\ntrans t in a firing 1").unwrap();
        let unknown = parse_tpn("net u\nplace a init 1\ntrans t in a firing ?").unwrap();
        assert_ne!(known.digest(), unknown.digest());
    }

    #[test]
    fn hex_rendering() {
        let d = parse_tpn(NET).unwrap().digest();
        let hex = d.to_hex();
        assert_eq!(hex.len(), 32);
        assert!(hex.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(hex, d.to_string());
    }
}
