//! Emitting a net back to `.tpn` text.
//!
//! [`TimedPetriNet::to_tpn`] is the inverse of [`crate::parse_tpn`]:
//! parsing the emitted text reconstructs a structurally identical net
//! (same places, transitions, arcs, timings and frequencies, in the
//! same declaration order). Attributes at their parser defaults
//! (`enabling 0`, `firing 0`, `weight 1`) are omitted, so the output is
//! canonical and minimal; unknown times render as `?`.
//!
//! The round trip holds for every net that came out of `parse_tpn`
//! (its names are `.tpn` tokens by construction) and for
//! builder-constructed nets whose names fit the `.tpn` token grammar:
//! no whitespace or `#`, for names used in bags also no `,` or `*`,
//! and not the literal `-`. [`crate::NetBuilder`] does not enforce
//! that grammar — a net named outside it emits a document that fails
//! (or changes meaning) on re-parse.

use std::fmt::Write as _;

use crate::{Bag, Frequency, TimeValue, TimedPetriNet};

impl TimedPetriNet {
    /// Render this net as a `.tpn` document that [`crate::parse_tpn`]
    /// parses back into an equal net, provided every name fits the
    /// `.tpn` token grammar (always true for parsed nets; see the
    /// module docs for the builder caveat).
    ///
    /// ```
    /// use tpn_net::parse_tpn;
    ///
    /// let net = parse_tpn("net m\nplace a init 1\ntrans t in a firing 27/2").unwrap();
    /// assert_eq!(parse_tpn(&net.to_tpn()).unwrap(), net);
    /// ```
    pub fn to_tpn(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "net {}", self.name());
        for p in self.places() {
            let init = self.initial_marking().tokens(p);
            if init > 0 {
                let _ = writeln!(out, "place {} init {}", self.place_name(p), init);
            } else {
                let _ = writeln!(out, "place {}", self.place_name(p));
            }
        }
        for t in self.transitions() {
            let tr = self.transition(t);
            let _ = write!(
                out,
                "trans {} in {}",
                tr.name(),
                self.bag_to_tpn(tr.input())
            );
            if !tr.output().is_empty() {
                let _ = write!(out, " out {}", self.bag_to_tpn(tr.output()));
            }
            if !tr.enabling().is_known_zero() {
                let _ = write!(out, " enabling {}", time_to_tpn(tr.enabling()));
            }
            if !tr.firing().is_known_zero() {
                let _ = write!(out, " firing {}", time_to_tpn(tr.firing()));
            }
            match tr.frequency() {
                Frequency::Weight(w) if w.is_one() => {}
                Frequency::Weight(w) => {
                    let _ = write!(out, " weight {w}");
                }
                Frequency::Unknown => {
                    let _ = write!(out, " weight ?");
                }
            }
            out.push('\n');
        }
        out
    }

    /// A bag as `.tpn` text: `a,2*b` (never called with an empty bag —
    /// empty output bags are simply omitted, and input bags are
    /// non-empty by validation).
    fn bag_to_tpn(&self, bag: &Bag) -> String {
        let parts: Vec<String> = bag
            .iter()
            .map(|(p, n)| {
                if n == 1 {
                    self.place_name(p).to_string()
                } else {
                    format!("{}*{}", n, self.place_name(p))
                }
            })
            .collect();
        parts.join(",")
    }
}

fn time_to_tpn(t: &TimeValue) -> String {
    match t {
        TimeValue::Known(r) => r.to_string(),
        TimeValue::Unknown => "?".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use crate::parse_tpn;

    #[test]
    fn roundtrips_the_medium_fragment() {
        let net = parse_tpn(
            "net medium
             place in_flight init 1
             place delivered
             trans deliver in in_flight out delivered firing 106.7 weight 0.95
             trans lose    in in_flight out -         firing 106.7 weight 0.05",
        )
        .unwrap();
        let text = net.to_tpn();
        let round = parse_tpn(&text).unwrap();
        assert_eq!(round, net, "emitted text:\n{text}");
        // emitting again is a fixed point
        assert_eq!(round.to_tpn(), text);
    }

    #[test]
    fn defaults_are_omitted() {
        let net = parse_tpn("net d\nplace a init 1\ntrans t in a").unwrap();
        let text = net.to_tpn();
        assert!(!text.contains("enabling"), "{text}");
        assert!(!text.contains("firing"), "{text}");
        assert!(!text.contains("weight"), "{text}");
        assert_eq!(parse_tpn(&text).unwrap(), net);
    }

    #[test]
    fn unknowns_and_multiplicities_roundtrip() {
        let net = parse_tpn(
            "net u\nplace a init 3\nplace b\ntrans t in 2*a,b out 3*b enabling ? firing ? weight ?",
        )
        .unwrap();
        let round = parse_tpn(&net.to_tpn()).unwrap();
        assert_eq!(round, net, "emitted text:\n{}", net.to_tpn());
    }

    #[test]
    fn roundtrip_preserves_digest() {
        let net = parse_tpn(
            "net dig\nplace a init 1\nplace b\ntrans go in a out b enabling 1000 firing 1 weight 0",
        )
        .unwrap();
        assert_eq!(parse_tpn(&net.to_tpn()).unwrap().digest(), net.digest());
    }
}
