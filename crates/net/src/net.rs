//! The validated net type and conflict-set computation.

use std::collections::HashMap;
use std::fmt;

use crate::{Bag, ConflictSetId, Marking, NetError, PlaceId, TransId, Transition};

/// A conflict set: a maximal group of transitions whose input bags
/// (transitively) overlap. The paper requires the partition to be
/// disjoint, which the transitive-closure construction guarantees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConflictSet {
    pub(crate) members: Vec<TransId>, // sorted
}

impl ConflictSet {
    /// The member transitions, in index order.
    pub fn members(&self) -> &[TransId] {
        &self.members
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` iff the set has a single member (no real conflict).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// A validated Timed Petri Net. Construct via [`crate::NetBuilder`] or
/// [`crate::parse_tpn`].
///
/// Equality is structural: same name, places (names and initial
/// tokens), and transitions (names, bags, timings, frequencies), in
/// the same declaration order. For order-*independent* identity use
/// [`TimedPetriNet::digest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedPetriNet {
    pub(crate) name: String,
    pub(crate) place_names: Vec<String>,
    pub(crate) transitions: Vec<Transition>,
    pub(crate) initial: Marking,
    pub(crate) conflict_sets: Vec<ConflictSet>,
    pub(crate) conflict_of: Vec<ConflictSetId>, // indexed by transition
    pub(crate) place_index: HashMap<String, PlaceId>,
    pub(crate) trans_index: HashMap<String, TransId>,
}

impl TimedPetriNet {
    /// The net's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of places.
    pub fn num_places(&self) -> usize {
        self.place_names.len()
    }

    /// Number of transitions.
    pub fn num_transitions(&self) -> usize {
        self.transitions.len()
    }

    /// Iterate over all place ids.
    pub fn places(&self) -> impl Iterator<Item = PlaceId> {
        (0..self.place_names.len()).map(PlaceId::from_index)
    }

    /// Iterate over all transition ids.
    pub fn transitions(&self) -> impl Iterator<Item = TransId> {
        (0..self.transitions.len()).map(TransId::from_index)
    }

    /// A place's name.
    pub fn place_name(&self, p: PlaceId) -> &str {
        &self.place_names[p.index()]
    }

    /// A transition's attributes.
    pub fn transition(&self, t: TransId) -> &Transition {
        &self.transitions[t.index()]
    }

    /// Look a place up by name.
    pub fn place_by_name(&self, name: &str) -> Result<PlaceId, NetError> {
        self.place_index
            .get(name)
            .copied()
            .ok_or_else(|| NetError::UnknownName {
                name: name.to_string(),
            })
    }

    /// Look a transition up by name.
    pub fn transition_by_name(&self, name: &str) -> Result<TransId, NetError> {
        self.trans_index
            .get(name)
            .copied()
            .ok_or_else(|| NetError::UnknownName {
                name: name.to_string(),
            })
    }

    /// The initial marking `μ₀`.
    pub fn initial_marking(&self) -> &Marking {
        &self.initial
    }

    /// The conflict-set partition.
    pub fn conflict_sets(&self) -> &[ConflictSet] {
        &self.conflict_sets
    }

    /// The conflict set containing a transition.
    pub fn conflict_set_of(&self, t: TransId) -> ConflictSetId {
        self.conflict_of[t.index()]
    }

    /// Members of a conflict set.
    pub fn conflict_set(&self, id: ConflictSetId) -> &ConflictSet {
        &self.conflict_sets[id.index()]
    }

    /// The paper's enabling rule for `t` under `marking`.
    pub fn is_enabled(&self, t: TransId, marking: &Marking) -> bool {
        marking.covers(self.transition(t).input())
    }

    /// All transitions enabled under `marking`.
    pub fn enabled_transitions(&self, marking: &Marking) -> Vec<TransId> {
        self.transitions()
            .filter(|t| self.is_enabled(*t, marking))
            .collect()
    }

    /// `true` iff every transition has known enabling and firing times
    /// and a known frequency (i.e. Zuberek's Section-2 analysis applies
    /// directly).
    pub fn is_fully_timed(&self) -> bool {
        self.transitions.iter().all(|t| {
            t.enabling.known().is_some()
                && t.firing.known().is_some()
                && t.frequency.weight().is_some()
        })
    }

    /// Compute the conflict-set partition for a set of transitions
    /// (union-find over shared input places).
    pub(crate) fn compute_conflict_sets(
        transitions: &[Transition],
        num_places: usize,
    ) -> (Vec<ConflictSet>, Vec<ConflictSetId>) {
        let n = transitions.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut Vec<usize>, i: usize) -> usize {
            if parent[i] != i {
                let root = find(parent, parent[i]);
                parent[i] = root;
            }
            parent[i]
        }
        // Group transitions by input place: any two transitions sharing a
        // place are unioned.
        let mut by_place: Vec<Option<usize>> = vec![None; num_places];
        for (i, t) in transitions.iter().enumerate() {
            for p in t.input.places() {
                match by_place[p.index()] {
                    Some(j) => {
                        let ri = find(&mut parent, i);
                        let rj = find(&mut parent, j);
                        if ri != rj {
                            parent[ri] = rj;
                        }
                    }
                    None => by_place[p.index()] = Some(i),
                }
            }
        }
        // Collect the classes in deterministic (first-member) order.
        let mut class_of_root: HashMap<usize, usize> = HashMap::new();
        let mut sets: Vec<ConflictSet> = Vec::new();
        let mut conflict_of: Vec<ConflictSetId> = Vec::with_capacity(n);
        for i in 0..n {
            let root = find(&mut parent, i);
            let class = *class_of_root.entry(root).or_insert_with(|| {
                sets.push(ConflictSet {
                    members: Vec::new(),
                });
                sets.len() - 1
            });
            sets[class].members.push(TransId::from_index(i));
            conflict_of.push(ConflictSetId(class as u32));
        }
        (sets, conflict_of)
    }

    /// Structural statistics, used by diagnostics and benches.
    pub fn stats(&self) -> NetStats {
        NetStats {
            places: self.num_places(),
            transitions: self.num_transitions(),
            conflict_sets: self.conflict_sets.len(),
            nontrivial_conflict_sets: self.conflict_sets.iter().filter(|c| c.len() > 1).count(),
            arcs: self
                .transitions
                .iter()
                .map(|t| t.input.num_distinct() + t.output.num_distinct())
                .sum(),
            initial_tokens: self.initial.total_tokens() as usize,
        }
    }
}

/// Summary statistics of a net's structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetStats {
    /// Number of places.
    pub places: usize,
    /// Number of transitions.
    pub transitions: usize,
    /// Number of conflict sets (including singletons).
    pub conflict_sets: usize,
    /// Number of conflict sets with at least two members.
    pub nontrivial_conflict_sets: usize,
    /// Number of arcs (distinct input + output pairs).
    pub arcs: usize,
    /// Tokens in the initial marking.
    pub initial_tokens: usize,
}

impl fmt::Display for TimedPetriNet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "net {}", self.name)?;
        for p in self.places() {
            let init = self.initial.tokens(p);
            if init > 0 {
                writeln!(f, "  place {} init {}", self.place_name(p), init)?;
            } else {
                writeln!(f, "  place {}", self.place_name(p))?;
            }
        }
        for t in self.transitions() {
            let tr = self.transition(t);
            write!(f, "  trans {}", tr.name())?;
            write!(f, " in {}", fmt_bag(self, &tr.input))?;
            write!(f, " out {}", fmt_bag(self, &tr.output))?;
            write!(
                f,
                " enabling {} firing {} weight {}",
                tr.enabling, tr.firing, tr.frequency
            )?;
            writeln!(f)?;
        }
        Ok(())
    }
}

fn fmt_bag(net: &TimedPetriNet, bag: &Bag) -> String {
    if bag.is_empty() {
        return "-".to_string();
    }
    let mut parts = Vec::new();
    for (p, n) in bag.iter() {
        if n == 1 {
            parts.push(net.place_name(p).to_string());
        } else {
            parts.push(format!("{}*{}", n, net.place_name(p)));
        }
    }
    parts.join(",")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetBuilder;
    use tpn_rational::Rational;

    fn two_conflicting() -> TimedPetriNet {
        let mut b = NetBuilder::new("test");
        let p0 = b.place("a", 1);
        let p1 = b.place("b", 0);
        b.transition("x")
            .input(p0)
            .output(p1)
            .firing_const(1)
            .weight_const(1)
            .add();
        b.transition("y")
            .input(p0)
            .firing_const(1)
            .weight_const(1)
            .add();
        b.transition("z")
            .input(p1)
            .output(p0)
            .firing_const(1)
            .weight_const(1)
            .add();
        b.build().unwrap()
    }

    #[test]
    fn conflict_partition() {
        let net = two_conflicting();
        assert_eq!(net.conflict_sets().len(), 2);
        let x = net.transition_by_name("x").unwrap();
        let y = net.transition_by_name("y").unwrap();
        let z = net.transition_by_name("z").unwrap();
        assert_eq!(net.conflict_set_of(x), net.conflict_set_of(y));
        assert_ne!(net.conflict_set_of(x), net.conflict_set_of(z));
        let cs = net.conflict_set(net.conflict_set_of(x));
        assert_eq!(cs.members(), &[x, y]);
    }

    #[test]
    fn transitive_conflict_closure() {
        // x shares p0 with y; y shares p1 with z — all three must be in
        // one set even though x and z share no place.
        let mut b = NetBuilder::new("chain");
        let p0 = b.place("p0", 1);
        let p1 = b.place("p1", 1);
        let p2 = b.place("p2", 0);
        b.transition("x").input(p0).output(p2).add();
        b.transition("y").input(p0).input(p1).output(p2).add();
        b.transition("z").input(p1).output(p2).add();
        b.transition("w").input(p2).output(p0).add();
        let net = b.build().unwrap();
        let x = net.transition_by_name("x").unwrap();
        let z = net.transition_by_name("z").unwrap();
        let w = net.transition_by_name("w").unwrap();
        assert_eq!(net.conflict_set_of(x), net.conflict_set_of(z));
        assert_ne!(net.conflict_set_of(x), net.conflict_set_of(w));
        assert_eq!(net.conflict_sets().len(), 2);
    }

    #[test]
    fn enabling_rule() {
        let net = two_conflicting();
        let x = net.transition_by_name("x").unwrap();
        let z = net.transition_by_name("z").unwrap();
        let m = net.initial_marking().clone();
        assert!(net.is_enabled(x, &m));
        assert!(!net.is_enabled(z, &m));
        let enabled = net.enabled_transitions(&m);
        assert_eq!(enabled.len(), 2); // x and y
    }

    #[test]
    fn fully_timed_detection() {
        let net = two_conflicting();
        assert!(net.is_fully_timed());
        let mut b = NetBuilder::new("sym");
        let p0 = b.place("a", 1);
        b.transition("x").input(p0).firing_unknown().add();
        let net2 = b.build().unwrap();
        assert!(!net2.is_fully_timed());
    }

    #[test]
    fn stats() {
        let net = two_conflicting();
        let s = net.stats();
        assert_eq!(s.places, 2);
        assert_eq!(s.transitions, 3);
        assert_eq!(s.conflict_sets, 2);
        assert_eq!(s.nontrivial_conflict_sets, 1);
        assert_eq!(s.initial_tokens, 1);
        assert_eq!(s.arcs, 5);
    }

    #[test]
    fn lookup_errors() {
        let net = two_conflicting();
        assert!(net.place_by_name("nope").is_err());
        assert!(net.transition_by_name("nope").is_err());
        assert_eq!(net.place_name(net.place_by_name("a").unwrap()), "a");
    }

    #[test]
    fn display_roundtrips_structure() {
        let net = two_conflicting();
        let shown = net.to_string();
        assert!(shown.contains("net test"));
        assert!(shown.contains("place a init 1"));
        assert!(shown.contains("trans x"));
        // empty output bag renders as '-'
        assert!(shown.contains(" out -"), "{shown}");
    }

    #[test]
    fn weights_default_to_one() {
        let mut b = NetBuilder::new("w");
        let p0 = b.place("a", 1);
        b.transition("x").input(p0).add();
        let net = b.build().unwrap();
        let x = net.transition_by_name("x").unwrap();
        assert_eq!(net.transition(x).frequency().weight(), Some(&Rational::ONE));
    }
}
