//! Structural validation errors.

use std::fmt;

/// An error found while building or validating a Timed Petri Net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// Two places share a name.
    DuplicatePlace {
        /// The offending name.
        name: String,
    },
    /// Two transitions share a name.
    DuplicateTransition {
        /// The offending name.
        name: String,
    },
    /// A transition has an empty input bag. Such a transition is enabled
    /// in every marking and could fire unboundedly often at a single
    /// instant, violating the paper's requirement that firing a
    /// transition disable all of its conflict set (including itself).
    EmptyInputBag {
        /// The offending transition's name.
        transition: String,
    },
    /// A known enabling or firing time is negative.
    NegativeTime {
        /// The offending transition's name.
        transition: String,
        /// `"enabling"` or `"firing"`.
        which: &'static str,
    },
    /// A known firing frequency is negative.
    NegativeFrequency {
        /// The offending transition's name.
        transition: String,
    },
    /// The initial marking vector has the wrong length.
    MarkingSizeMismatch {
        /// Number of places in the net.
        places: usize,
        /// Length of the supplied vector.
        got: usize,
    },
    /// A name was not found (when looking places/transitions up by name).
    UnknownName {
        /// The name that failed to resolve.
        name: String,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::DuplicatePlace { name } => write!(f, "duplicate place name {name:?}"),
            NetError::DuplicateTransition { name } => {
                write!(f, "duplicate transition name {name:?}")
            }
            NetError::EmptyInputBag { transition } => write!(
                f,
                "transition {transition:?} has an empty input bag (would be permanently enabled)"
            ),
            NetError::NegativeTime { transition, which } => {
                write!(f, "transition {transition:?} has a negative {which} time")
            }
            NetError::NegativeFrequency { transition } => {
                write!(
                    f,
                    "transition {transition:?} has a negative firing frequency"
                )
            }
            NetError::MarkingSizeMismatch { places, got } => write!(
                f,
                "initial marking has {got} entries but the net has {places} places"
            ),
            NetError::UnknownName { name } => write!(f, "unknown place or transition {name:?}"),
        }
    }
}

impl std::error::Error for NetError {}
