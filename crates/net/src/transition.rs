//! Transitions and their timing/frequency attributes.

use std::fmt;

use tpn_rational::Rational;

use crate::Bag;

/// A time attribute of a transition: either a known exact value or
/// "unknown, treat symbolically".
///
/// The paper's Section 2 (Zuberek's numeric analysis) requires every
/// time to be [`TimeValue::Known`]; Section 3 (the paper's contribution)
/// admits [`TimeValue::Unknown`] values governed by timing constraints.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TimeValue {
    /// An exact, a-priori-known delay.
    Known(Rational),
    /// Unknown; symbolic analyses introduce a symbol for it.
    Unknown,
}

impl TimeValue {
    /// Zero delay.
    pub fn zero() -> TimeValue {
        TimeValue::Known(Rational::ZERO)
    }

    /// The known value, if any.
    pub fn known(&self) -> Option<&Rational> {
        match self {
            TimeValue::Known(r) => Some(r),
            TimeValue::Unknown => None,
        }
    }

    /// `true` iff the value is known to be exactly zero.
    pub fn is_known_zero(&self) -> bool {
        matches!(self, TimeValue::Known(r) if r.is_zero())
    }
}

impl fmt::Display for TimeValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimeValue::Known(r) => write!(f, "{r}"),
            TimeValue::Unknown => write!(f, "?"),
        }
    }
}

/// A transition's relative firing frequency within its conflict set.
///
/// When several conflicting transitions are firable, each fires with
/// probability `fᵢ / Σ fⱼ` over the firable members. A frequency of
/// **zero** means the other firable members always have priority (the
/// paper models the timeout this way). [`Frequency::Unknown`] makes the
/// probability symbolic.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Frequency {
    /// A known non-negative relative weight.
    Weight(Rational),
    /// Unknown; symbolic analyses introduce a (positive) symbol for it.
    Unknown,
}

impl Frequency {
    /// The default frequency: weight one.
    pub fn one() -> Frequency {
        Frequency::Weight(Rational::ONE)
    }

    /// The known weight, if any.
    pub fn weight(&self) -> Option<&Rational> {
        match self {
            Frequency::Weight(w) => Some(w),
            Frequency::Unknown => None,
        }
    }

    /// `true` iff this is a known zero weight (pure priority victim).
    pub fn is_zero(&self) -> bool {
        matches!(self, Frequency::Weight(w) if w.is_zero())
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Frequency::Weight(w) => write!(f, "{w}"),
            Frequency::Unknown => write!(f, "?"),
        }
    }
}

/// A transition: name, input/output bags, enabling time, firing time and
/// conflict-resolution frequency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transition {
    pub(crate) name: String,
    pub(crate) input: Bag,
    pub(crate) output: Bag,
    pub(crate) enabling: TimeValue,
    pub(crate) firing: TimeValue,
    pub(crate) frequency: Frequency,
}

impl Transition {
    /// The transition's name (unique within its net).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The input bag `I(t)`.
    pub fn input(&self) -> &Bag {
        &self.input
    }

    /// The output bag `O(t)`.
    pub fn output(&self) -> &Bag {
        &self.output
    }

    /// The enabling time `E(t)`.
    pub fn enabling(&self) -> &TimeValue {
        &self.enabling
    }

    /// The firing time `F(t)`.
    pub fn firing(&self) -> &TimeValue {
        &self.firing
    }

    /// The relative firing frequency.
    pub fn frequency(&self) -> &Frequency {
        &self.frequency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_value() {
        assert!(TimeValue::zero().is_known_zero());
        assert!(!TimeValue::Unknown.is_known_zero());
        assert_eq!(
            TimeValue::Known(Rational::ONE).known(),
            Some(&Rational::ONE)
        );
        assert_eq!(TimeValue::Unknown.known(), None);
        assert_eq!(TimeValue::Unknown.to_string(), "?");
        assert_eq!(
            TimeValue::Known(Rational::new(1067, 10)).to_string(),
            "1067/10"
        );
    }

    #[test]
    fn frequency() {
        assert_eq!(Frequency::one().weight(), Some(&Rational::ONE));
        assert!(Frequency::Weight(Rational::ZERO).is_zero());
        assert!(!Frequency::one().is_zero());
        assert!(!Frequency::Unknown.is_zero());
        assert_eq!(Frequency::Unknown.weight(), None);
        assert_eq!(Frequency::Unknown.to_string(), "?");
    }
}
