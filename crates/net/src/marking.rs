//! Markings: token distributions over places.

use std::fmt;

use crate::{Bag, PlaceId};

/// A marking `μ : P → ℕ`, stored densely by place index.
///
/// Markings are the first component of a timed reachability-graph state;
/// they are hashable so states can be deduplicated.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Marking {
    tokens: Vec<u32>,
}

impl Marking {
    /// The empty marking over `num_places` places.
    pub fn empty(num_places: usize) -> Marking {
        Marking {
            tokens: vec![0; num_places],
        }
    }

    /// Construct from a dense token vector.
    pub fn from_vec(tokens: Vec<u32>) -> Marking {
        Marking { tokens }
    }

    /// Number of places.
    pub fn num_places(&self) -> usize {
        self.tokens.len()
    }

    /// Tokens on a place: the paper's `μ(p)`.
    pub fn tokens(&self, p: PlaceId) -> u32 {
        self.tokens[p.index()]
    }

    /// Set the token count of a place.
    pub fn set_tokens(&mut self, p: PlaceId, n: u32) {
        self.tokens[p.index()] = n;
    }

    /// Total number of tokens.
    pub fn total_tokens(&self) -> u32 {
        self.tokens.iter().sum()
    }

    /// The paper's enabling rule: `μ(pᵢ) ≥ #(pᵢ, I(t))` for all `pᵢ`.
    pub fn covers(&self, bag: &Bag) -> bool {
        bag.iter().all(|(p, n)| self.tokens(p) >= n)
    }

    /// Remove the tokens of `bag` (the absorb-at-firing-start step).
    ///
    /// # Panics
    /// Panics (in debug builds underflow-checks) if the bag is not
    /// covered; callers check [`Marking::covers`] first.
    pub fn subtract(&mut self, bag: &Bag) {
        for (p, n) in bag.iter() {
            let slot = &mut self.tokens[p.index()];
            debug_assert!(*slot >= n, "subtracting an uncovered bag");
            *slot -= n;
        }
    }

    /// Add the tokens of `bag` (the deposit-at-firing-end step).
    pub fn add(&mut self, bag: &Bag) {
        for (p, n) in bag.iter() {
            self.tokens[p.index()] += n;
        }
    }

    /// Iterate over (place, tokens) for *marked* places only.
    pub fn marked_places(&self) -> impl Iterator<Item = (PlaceId, u32)> + '_ {
        self.tokens
            .iter()
            .enumerate()
            .filter(|(_, n)| **n > 0)
            .map(|(i, n)| (PlaceId::from_index(i), *n))
    }

    /// The dense token vector.
    pub fn as_slice(&self) -> &[u32] {
        &self.tokens
    }

    /// `true` iff every place holds at most one token (1-safeness of this
    /// particular marking).
    pub fn is_safe(&self) -> bool {
        self.tokens.iter().all(|&n| n <= 1)
    }
}

impl fmt::Display for Marking {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, n) in self.tokens.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{n}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> PlaceId {
        PlaceId::from_index(i)
    }

    #[test]
    fn basics() {
        let mut m = Marking::empty(3);
        assert_eq!(m.num_places(), 3);
        assert_eq!(m.total_tokens(), 0);
        m.set_tokens(p(1), 2);
        assert_eq!(m.tokens(p(1)), 2);
        assert_eq!(m.total_tokens(), 2);
        assert!(!m.is_safe());
        m.set_tokens(p(1), 1);
        assert!(m.is_safe());
    }

    #[test]
    fn covers_subtract_add() {
        let mut m = Marking::from_vec(vec![2, 1, 0]);
        let bag = Bag::from_pairs([(p(0), 2), (p(1), 1)]);
        assert!(m.covers(&bag));
        m.subtract(&bag);
        assert_eq!(m.as_slice(), &[0, 0, 0]);
        assert!(!m.covers(&bag));
        m.add(&bag);
        assert_eq!(m.as_slice(), &[2, 1, 0]);
        // multiplicity matters
        let big = Bag::from_pairs([(p(0), 3)]);
        assert!(!m.covers(&big));
    }

    #[test]
    fn marked_places_filters_zeros() {
        let m = Marking::from_vec(vec![1, 0, 3]);
        let marked: Vec<_> = m.marked_places().collect();
        assert_eq!(marked, vec![(p(0), 1), (p(2), 3)]);
    }

    #[test]
    fn display() {
        let m = Marking::from_vec(vec![1, 0, 2]);
        assert_eq!(m.to_string(), "[1 0 2]");
    }
}
