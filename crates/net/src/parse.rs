//! The `.tpn` line-oriented text format.
//!
//! A small hand-written format so nets can be stored in files and read
//! without a serialization dependency. Grammar (one directive per line;
//! `#` starts a comment; blank lines ignored):
//!
//! ```text
//! net  <name>
//! place <name> [init <tokens>]
//! trans <name> in <bag> [out <bag>] [enabling <time>] [firing <time>] [weight <w>]
//! ```
//!
//! where `<bag>` is a comma-separated list of `place` or `n*place`
//! entries (`-` for the empty bag, only meaningful for `out`), `<time>`
//! and `<w>` are rational literals (`1000`, `106.7`, `27/2`) or `?` for
//! "unknown, treat symbolically". Omitted attributes default to
//! `enabling 0`, `firing 0`, `weight 1`.
//!
//! # Examples
//!
//! ```
//! use tpn_net::parse_tpn;
//!
//! let net = parse_tpn("
//!     net demo
//!     place ready init 1
//!     place done
//!     trans work in ready out done firing 106.7
//!     trans drop in ready out - firing 106.7 weight 0.05
//! ").unwrap();
//! assert_eq!(net.num_transitions(), 2);
//! assert_eq!(net.conflict_sets().len(), 1);
//! ```

use std::fmt;

use tpn_rational::Rational;

use crate::{NetBuilder, NetError, PlaceId, TimedPetriNet};

/// A parse failure, with 1-based line number and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line (0 for whole-file
    /// errors such as validation failures).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "tpn: {}", self.message)
        } else {
            write!(f, "tpn line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Parse a `.tpn` document into a validated net.
pub fn parse_tpn(src: &str) -> Result<TimedPetriNet, ParseError> {
    let mut builder: Option<NetBuilder> = None;
    let mut places: Vec<(String, PlaceId)> = Vec::new();
    // Transitions are collected first so places may be declared in any
    // order before... no: places must be declared before use, which keeps
    // the format single-pass and error messages precise.
    for (idx, raw) in src.lines().enumerate() {
        let lineno = idx + 1;
        let line = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let directive = tokens.next().expect("non-empty line");
        match directive {
            "net" => {
                let name = tokens
                    .next()
                    .ok_or_else(|| err(lineno, "net: missing name"))?;
                if tokens.next().is_some() {
                    return Err(err(lineno, "net: trailing tokens"));
                }
                if builder.is_some() {
                    return Err(err(lineno, "duplicate `net` directive"));
                }
                builder = Some(NetBuilder::new(name));
            }
            "place" => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| err(lineno, "`place` before `net`"))?;
                let name = tokens
                    .next()
                    .ok_or_else(|| err(lineno, "place: missing name"))?;
                let mut init = 0u32;
                match tokens.next() {
                    None => {}
                    Some("init") => {
                        let v = tokens
                            .next()
                            .ok_or_else(|| err(lineno, "place: missing init count"))?;
                        init = v
                            .parse()
                            .map_err(|_| err(lineno, format!("place: invalid init count {v:?}")))?;
                    }
                    Some(other) => {
                        return Err(err(lineno, format!("place: unexpected token {other:?}")));
                    }
                }
                if tokens.next().is_some() {
                    return Err(err(lineno, "place: trailing tokens"));
                }
                let id = b.place(name, init);
                places.push((name.to_string(), id));
            }
            "trans" => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| err(lineno, "`trans` before `net`"))?;
                let name = tokens
                    .next()
                    .ok_or_else(|| err(lineno, "trans: missing name"))?;
                let rest: Vec<&str> = tokens.collect();
                let mut t = b.transition(name);
                let mut i = 0usize;
                let mut saw_in = false;
                while i < rest.len() {
                    let key = rest[i];
                    let val = rest.get(i + 1).ok_or_else(|| {
                        err(lineno, format!("trans: missing value after {key:?}"))
                    })?;
                    match key {
                        "in" | "out" => {
                            for part in parse_bag(val, lineno)? {
                                let (mult, pname) = part;
                                let pid = lookup(&places, &pname).ok_or_else(|| {
                                    err(lineno, format!("unknown place {pname:?}"))
                                })?;
                                t = if key == "in" {
                                    saw_in = true;
                                    t.input_n(pid, mult)
                                } else {
                                    t.output_n(pid, mult)
                                };
                            }
                            if key == "in" {
                                saw_in = true;
                            }
                        }
                        "enabling" => {
                            t = match parse_time(val, lineno)? {
                                Some(r) => t.enabling(r),
                                None => t.enabling_unknown(),
                            };
                        }
                        "firing" => {
                            t = match parse_time(val, lineno)? {
                                Some(r) => t.firing(r),
                                None => t.firing_unknown(),
                            };
                        }
                        "weight" => {
                            t = match parse_time(val, lineno)? {
                                Some(r) => t.weight(r),
                                None => t.weight_unknown(),
                            };
                        }
                        other => {
                            return Err(err(lineno, format!("trans: unknown attribute {other:?}")));
                        }
                    }
                    i += 2;
                }
                if !saw_in {
                    return Err(err(lineno, format!("trans {name:?}: missing `in` bag")));
                }
                t.add();
            }
            other => return Err(err(lineno, format!("unknown directive {other:?}"))),
        }
    }
    let builder = builder.ok_or_else(|| err(0, "missing `net` directive"))?;
    builder.build().map_err(|e: NetError| err(0, e.to_string()))
}

fn lookup(places: &[(String, PlaceId)], name: &str) -> Option<PlaceId> {
    places.iter().find(|(n, _)| n == name).map(|(_, id)| *id)
}

/// Parse a bag literal: `a,b,2*c` or `-`.
fn parse_bag(s: &str, lineno: usize) -> Result<Vec<(u32, String)>, ParseError> {
    if s == "-" {
        return Ok(Vec::new());
    }
    let mut out = Vec::new();
    for part in s.split(',') {
        let part = part.trim();
        if part.is_empty() {
            return Err(err(lineno, "empty bag entry"));
        }
        match part.split_once('*') {
            Some((n, pname)) => {
                let mult: u32 = n
                    .parse()
                    .map_err(|_| err(lineno, format!("invalid multiplicity {n:?}")))?;
                if mult == 0 {
                    return Err(err(lineno, "zero multiplicity"));
                }
                out.push((mult, pname.to_string()));
            }
            None => out.push((1, part.to_string())),
        }
    }
    Ok(out)
}

/// Parse a time/weight literal: a rational, or `?` for unknown.
fn parse_time(s: &str, lineno: usize) -> Result<Option<Rational>, ParseError> {
    if s == "?" {
        return Ok(None);
    }
    s.parse::<Rational>()
        .map(Some)
        .map_err(|e| err(lineno, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SIMPLE: &str = "
        # the paper's medium fragment
        net medium
        place in_flight init 1
        place delivered
        trans deliver in in_flight out delivered firing 106.7 weight 0.95
        trans lose    in in_flight out -         firing 106.7 weight 0.05
    ";

    #[test]
    fn parses_simple() {
        let net = parse_tpn(SIMPLE).unwrap();
        assert_eq!(net.name(), "medium");
        assert_eq!(net.num_places(), 2);
        assert_eq!(net.num_transitions(), 2);
        assert_eq!(net.conflict_sets().len(), 1);
        let d = net.transition_by_name("deliver").unwrap();
        assert_eq!(
            net.transition(d).firing().known(),
            Some(&Rational::new(1067, 10))
        );
        assert_eq!(
            net.transition(d).frequency().weight(),
            Some(&Rational::new(19, 20))
        );
    }

    #[test]
    fn parses_multiplicities_and_unknowns() {
        let net = parse_tpn(
            "net m\nplace a init 3\nplace b\ntrans t in 2*a,b out 3*b enabling ? firing ? weight ?",
        )
        .unwrap();
        let t = net.transition_by_name("t").unwrap();
        let a = net.place_by_name("a").unwrap();
        let b = net.place_by_name("b").unwrap();
        assert_eq!(net.transition(t).input().count(a), 2);
        assert_eq!(net.transition(t).input().count(b), 1);
        assert_eq!(net.transition(t).output().count(b), 3);
        assert!(net.transition(t).enabling().known().is_none());
        assert!(!net.is_fully_timed());
    }

    #[test]
    fn error_reporting() {
        for (src, fragment) in [
            ("place a", "before `net`"),
            ("net n\nplace a init x\ntrans t in a", "invalid init count"),
            ("net n\nplace a init 1\ntrans t out a", "missing `in` bag"),
            ("net n\nplace a init 1\ntrans t in b", "unknown place"),
            (
                "net n\nplace a init 1\ntrans t in a firing abc",
                "cannot parse",
            ),
            ("net n\nnet m", "duplicate `net`"),
            ("bogus x", "unknown directive"),
            ("", "missing `net` directive"),
            ("net n\nplace a init 1\ntrans t in 0*a", "zero multiplicity"),
            (
                "net n\nplace a init 1\ntrans t in a bad 1",
                "unknown attribute",
            ),
        ] {
            let e = parse_tpn(src).unwrap_err();
            assert!(
                e.to_string().contains(fragment),
                "source {src:?}: expected {fragment:?} in {e}"
            );
        }
    }

    #[test]
    fn line_numbers_reported() {
        let e = parse_tpn("net n\nplace a init 1\nbogus").unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn validation_errors_propagate() {
        // duplicate place names caught by the builder
        let e = parse_tpn("net n\nplace a init 1\nplace a\ntrans t in a").unwrap_err();
        assert!(e.to_string().contains("duplicate place"));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let net = parse_tpn(
            "\n# leading comment\nnet n # trailing\nplace a init 1\ntrans t in a # hi\n\n",
        )
        .unwrap();
        assert_eq!(net.name(), "n");
    }

    #[test]
    fn display_reparses() {
        let net = parse_tpn(SIMPLE).unwrap();
        let round = parse_tpn(&net.to_string()).unwrap();
        assert_eq!(round.num_places(), net.num_places());
        assert_eq!(round.num_transitions(), net.num_transitions());
        assert_eq!(round.name(), net.name());
    }
}
