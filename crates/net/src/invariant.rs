//! Structural invariants: incidence matrix, P- and T-semiflows.
//!
//! Petri-net correctness arguments (the other half of the paper's
//! motivation — "Petri Nets … have been used to specify and prove the
//! correctness of protocols") rest on structural invariants:
//!
//! * a **P-semiflow** is a non-negative place weighting `y ≥ 0` with
//!   `yᵀ·C = 0` (C the incidence matrix): the weighted token count
//!   `yᵀ·μ` is constant under any firing. A net covered by positive
//!   P-semiflows is bounded; a semiflow with weights ≤ 1 and constant 1
//!   proves 1-safeness of its support.
//! * a **T-semiflow** is a non-negative transition weighting `x ≥ 0`
//!   with `C·x = 0`: firing each transition `xᵗ` times reproduces the
//!   marking — the candidate steady-state cycles whose *timing* the
//!   rest of this workspace analyses.
//!
//! Minimal-support semiflows are computed with the classical
//! Martínez–Silva elimination.

use tpn_linalg::Matrix;
use tpn_rational::{gcd, Rational};

use crate::{PlaceId, TimedPetriNet, TransId};

/// The incidence matrix `C` with `C[p][t] = #(p, O(t)) − #(p, I(t))`,
/// places as rows and transitions as columns.
pub fn incidence(net: &TimedPetriNet) -> Matrix<Rational> {
    let mut c = Matrix::zeros(net.num_places(), net.num_transitions());
    for t in net.transitions() {
        let tr = net.transition(t);
        for (p, n) in tr.input().iter() {
            let cur = *c.get(p.index(), t.index());
            c.set(p.index(), t.index(), cur - Rational::from_int(n as i128));
        }
        for (p, n) in tr.output().iter() {
            let cur = *c.get(p.index(), t.index());
            c.set(p.index(), t.index(), cur + Rational::from_int(n as i128));
        }
    }
    c
}

/// A non-negative integer semiflow with minimal support.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Semiflow {
    /// Integer weights (length = number of places for P-semiflows, of
    /// transitions for T-semiflows), content-normalised.
    pub weights: Vec<i128>,
}

impl Semiflow {
    /// Indices with non-zero weight.
    pub fn support(&self) -> Vec<usize> {
        self.weights
            .iter()
            .enumerate()
            .filter(|(_, w)| **w != 0)
            .map(|(i, _)| i)
            .collect()
    }

    /// The weighted sum `Σ wᵢ·vᵢ` of an integer vector (e.g. a marking).
    pub fn weighted_sum(&self, v: impl Iterator<Item = u32>) -> i128 {
        self.weights.iter().zip(v).map(|(w, x)| w * x as i128).sum()
    }
}

/// Minimal-support P-semiflows of the net (Martínez–Silva).
pub fn p_semiflows(net: &TimedPetriNet) -> Vec<Semiflow> {
    // Rows of [Cᵀ-columns | identity]: row i starts as (C[i][*], e_i).
    let np = net.num_places();
    let nt = net.num_transitions();
    let c = incidence(net);
    let rows: Vec<(Vec<i128>, Vec<i128>)> = (0..np)
        .map(|p| {
            let body: Vec<i128> = (0..nt).map(|t| c.get(p, t).numer()).collect();
            let mut id = vec![0i128; np];
            id[p] = 1;
            (body, id)
        })
        .collect();
    martinez_silva(rows, nt)
}

/// Minimal-support T-semiflows of the net.
pub fn t_semiflows(net: &TimedPetriNet) -> Vec<Semiflow> {
    let np = net.num_places();
    let nt = net.num_transitions();
    let c = incidence(net);
    let rows: Vec<(Vec<i128>, Vec<i128>)> = (0..nt)
        .map(|t| {
            let body: Vec<i128> = (0..np).map(|p| c.get(p, t).numer()).collect();
            let mut id = vec![0i128; nt];
            id[t] = 1;
            (body, id)
        })
        .collect();
    martinez_silva(rows, np)
}

/// Eliminate the `cols` body columns by non-negative row combinations,
/// keeping minimal-support rows.
fn martinez_silva(mut rows: Vec<(Vec<i128>, Vec<i128>)>, cols: usize) -> Vec<Semiflow> {
    const ROW_CAP: usize = 100_000;
    for col in 0..cols {
        let (zeros, nonzeros): (Vec<_>, Vec<_>) =
            rows.into_iter().partition(|(body, _)| body[col] == 0);
        let mut next = zeros;
        let (pos, neg): (Vec<_>, Vec<_>) =
            nonzeros.into_iter().partition(|(body, _)| body[col] > 0);
        for (pb, pw) in &pos {
            for (nb, nw) in &neg {
                let a = pb[col];
                let b = -nb[col];
                let g = gcd(a, b);
                let (ma, mb) = (b / g, a / g); // multiply pos row by ma, neg row by mb
                let body: Vec<i128> = pb.iter().zip(nb).map(|(x, y)| ma * x + mb * y).collect();
                debug_assert_eq!(body[col], 0);
                let weight: Vec<i128> = pw.iter().zip(nw).map(|(x, y)| ma * x + mb * y).collect();
                next.push(normalise(body, weight));
            }
        }
        // Keep only minimal-support rows (Martínez–Silva minimality).
        next = minimal_support(next);
        assert!(next.len() <= ROW_CAP, "semiflow enumeration exploded");
        rows = next;
    }
    rows.into_iter()
        .filter(|(_, w)| w.iter().any(|x| *x != 0))
        .map(|(_, weights)| Semiflow { weights })
        .collect()
}

fn normalise(body: Vec<i128>, mut weight: Vec<i128>) -> (Vec<i128>, Vec<i128>) {
    let mut g = 0i128;
    for x in body.iter().chain(weight.iter()) {
        g = gcd(g, *x);
    }
    if g > 1 {
        let body = body.into_iter().map(|x| x / g).collect();
        for w in &mut weight {
            *w /= g;
        }
        return (body, weight);
    }
    (body, weight)
}

fn minimal_support(rows: Vec<(Vec<i128>, Vec<i128>)>) -> Vec<(Vec<i128>, Vec<i128>)> {
    let supports: Vec<Vec<bool>> = rows
        .iter()
        .map(|(_, w)| w.iter().map(|x| *x != 0).collect())
        .collect();
    let mut keep = vec![true; rows.len()];
    for i in 0..rows.len() {
        if !keep[i] {
            continue;
        }
        for j in 0..rows.len() {
            if i == j || !keep[i] || !keep[j] {
                continue;
            }
            // drop j if support(i) ⊊ support(j)
            let i_subset_j = supports[i].iter().zip(&supports[j]).all(|(a, b)| !a || *b);
            let equal = supports[i] == supports[j];
            if i_subset_j && !equal {
                keep[j] = false;
            } else if equal && j > i {
                // identical support: keep one representative
                keep[j] = false;
            }
        }
    }
    rows.into_iter()
        .zip(keep)
        .filter(|(_, k)| *k)
        .map(|(r, _)| r)
        .collect()
}

/// `true` iff every place is in the support of some P-semiflow — a
/// sufficient structural condition for boundedness.
pub fn covered_by_p_semiflows(net: &TimedPetriNet) -> bool {
    let flows = p_semiflows(net);
    (0..net.num_places()).all(|p| flows.iter().any(|f| f.weights[p] != 0))
}

/// The conserved quantity `yᵀ·μ₀` of a P-semiflow under the initial
/// marking.
pub fn conserved_quantity(net: &TimedPetriNet, flow: &Semiflow) -> i128 {
    flow.weighted_sum(
        (0..net.num_places()).map(|p| net.initial_marking().tokens(PlaceId::from_index(p))),
    )
}

/// Check a T-semiflow by symbolic firing: `C·x = 0`.
pub fn is_t_semiflow(net: &TimedPetriNet, weights: &[i128]) -> bool {
    let c = incidence(net);
    (0..net.num_places()).all(|p| {
        let sum: i128 = (0..net.num_transitions())
            .map(|t| c.get(p, t).numer() * weights[t])
            .sum();
        sum == 0
    })
}

/// Convenience: the transitions in a T-semiflow's support.
pub fn t_semiflow_transitions(flow: &Semiflow) -> Vec<TransId> {
    flow.support()
        .into_iter()
        .map(TransId::from_index)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetBuilder;

    fn cycle2() -> TimedPetriNet {
        let mut b = NetBuilder::new("inv-cycle");
        let pa = b.place("pa", 1);
        let pb = b.place("pb", 0);
        b.transition("go").input(pa).output(pb).add();
        b.transition("back").input(pb).output(pa).add();
        b.build().unwrap()
    }

    #[test]
    fn incidence_matrix() {
        let net = cycle2();
        let c = incidence(&net);
        // go: pa −1, pb +1; back: pa +1, pb −1
        assert_eq!(c.get(0, 0).numer(), -1);
        assert_eq!(c.get(1, 0).numer(), 1);
        assert_eq!(c.get(0, 1).numer(), 1);
        assert_eq!(c.get(1, 1).numer(), -1);
    }

    #[test]
    fn cycle_has_token_conservation() {
        let net = cycle2();
        let flows = p_semiflows(&net);
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].weights, vec![1, 1], "pa + pb is conserved");
        assert_eq!(conserved_quantity(&net, &flows[0]), 1);
        assert!(covered_by_p_semiflows(&net));
        let t = t_semiflows(&net);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].weights, vec![1, 1], "go + back reproduces the marking");
        assert!(is_t_semiflow(&net, &t[0].weights));
        assert_eq!(t_semiflow_transitions(&t[0]).len(), 2);
    }

    #[test]
    fn weighted_semiflow() {
        // split: a → 2b; join: 2b → a. Conservation: 2·a + b.
        let mut b = NetBuilder::new("weighted");
        let pa = b.place("a", 1);
        let pb = b.place("b", 0);
        b.transition("split").input(pa).output_n(pb, 2).add();
        b.transition("join").input_n(pb, 2).output(pa).add();
        let net = b.build().unwrap();
        let flows = p_semiflows(&net);
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].weights, vec![2, 1]);
        assert_eq!(conserved_quantity(&net, &flows[0]), 2);
    }

    #[test]
    fn unbounded_net_not_covered() {
        let mut b = NetBuilder::new("sink");
        let p = b.place("p", 1);
        let sink = b.place("sink", 0);
        b.transition("emit").input(p).output(p).output(sink).add();
        let net = b.build().unwrap();
        assert!(!covered_by_p_semiflows(&net));
        // p alone is conserved though
        let flows = p_semiflows(&net);
        assert!(flows.iter().any(|f| f.weights == vec![1, 0]));
    }

    #[test]
    fn source_and_drain_have_no_t_semiflow() {
        let mut b = NetBuilder::new("line");
        let pa = b.place("a", 1);
        let pb = b.place("b", 0);
        b.transition("move").input(pa).output(pb).add();
        let net = b.build().unwrap();
        assert!(t_semiflows(&net).is_empty());
    }
}
