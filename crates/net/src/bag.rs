//! Multisets of places (input/output bags).

use std::collections::BTreeMap;
use std::fmt;

use crate::PlaceId;

/// A bag (multiset) of places, as used for transition input and output
/// functions. The paper writes `#(p, I(t))` for the multiplicity of
/// place `p` in the input bag of `t`; that is [`Bag::count`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Bag {
    counts: BTreeMap<PlaceId, u32>, // invariant: no zero counts
}

impl Bag {
    /// The empty bag.
    pub fn new() -> Bag {
        Bag::default()
    }

    /// Build a bag from (place, multiplicity) pairs; multiplicities of
    /// the same place accumulate.
    pub fn from_pairs<I: IntoIterator<Item = (PlaceId, u32)>>(pairs: I) -> Bag {
        let mut b = Bag::new();
        for (p, n) in pairs {
            b.insert(p, n);
        }
        b
    }

    /// Add `n` occurrences of `p`.
    pub fn insert(&mut self, p: PlaceId, n: u32) {
        if n == 0 {
            return;
        }
        *self.counts.entry(p).or_insert(0) += n;
    }

    /// Multiplicity of `p` (zero if absent).
    pub fn count(&self, p: PlaceId) -> u32 {
        self.counts.get(&p).copied().unwrap_or(0)
    }

    /// `true` iff the bag is empty.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Number of *distinct* places.
    pub fn num_distinct(&self) -> usize {
        self.counts.len()
    }

    /// Total multiplicity.
    pub fn total(&self) -> u32 {
        self.counts.values().sum()
    }

    /// Iterate over (place, multiplicity) pairs in place order.
    pub fn iter(&self) -> impl Iterator<Item = (PlaceId, u32)> + '_ {
        self.counts.iter().map(|(p, n)| (*p, *n))
    }

    /// The distinct places.
    pub fn places(&self) -> impl Iterator<Item = PlaceId> + '_ {
        self.counts.keys().copied()
    }

    /// `true` iff the two bags share at least one place — the paper's
    /// conflict condition `I(tᵢ) ∩ I(tⱼ) ≠ ∅`.
    pub fn intersects(&self, other: &Bag) -> bool {
        // Walk the smaller bag.
        let (small, big) = if self.counts.len() <= other.counts.len() {
            (self, other)
        } else {
            (other, self)
        };
        small.counts.keys().any(|p| big.counts.contains_key(p))
    }
}

impl FromIterator<PlaceId> for Bag {
    fn from_iter<I: IntoIterator<Item = PlaceId>>(iter: I) -> Bag {
        Bag::from_pairs(iter.into_iter().map(|p| (p, 1)))
    }
}

impl fmt::Display for Bag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (p, n)) in self.counts.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if *n == 1 {
                write!(f, "{p}")?;
            } else {
                write!(f, "{n}×{p}")?;
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> PlaceId {
        PlaceId::from_index(i)
    }

    #[test]
    fn construction_and_counts() {
        let b = Bag::from_pairs([(p(0), 1), (p(1), 2), (p(0), 1)]);
        assert_eq!(b.count(p(0)), 2);
        assert_eq!(b.count(p(1)), 2);
        assert_eq!(b.count(p(2)), 0);
        assert_eq!(b.total(), 4);
        assert_eq!(b.num_distinct(), 2);
        assert!(!b.is_empty());
        assert!(Bag::new().is_empty());
    }

    #[test]
    fn zero_insert_ignored() {
        let mut b = Bag::new();
        b.insert(p(0), 0);
        assert!(b.is_empty());
    }

    #[test]
    fn intersects() {
        let a: Bag = [p(0), p(1)].into_iter().collect();
        let b: Bag = [p(1), p(2)].into_iter().collect();
        let c: Bag = [p(3)].into_iter().collect();
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        assert!(!Bag::new().intersects(&a));
    }

    #[test]
    fn display() {
        let b = Bag::from_pairs([(p(0), 1), (p(1), 2)]);
        assert_eq!(b.to_string(), "{p0, 2×p1}");
        assert_eq!(Bag::new().to_string(), "{}");
    }
}
