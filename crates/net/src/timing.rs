//! The timing half of the structural/timing digest split.
//!
//! A net's [`digest`](TimedPetriNet::digest) covers *everything* that
//! affects behaviour, so editing only a firing time produces a fully
//! new identity — correct for a content-addressed cache, but blind to
//! the fact that Razouk's method derives **closed forms in the timing
//! attributes**: two nets that differ only in E/F/f values share every
//! structural artifact (reachability skeleton, decision-graph shape,
//! symbolic lift).
//!
//! This module factors a net's identity accordingly:
//!
//! * [`TimedPetriNet::structural_digest`] — places, arcs, weights-as-
//!   structure (only whether each attribute is known, not its value)
//!   and the initial marking;
//! * [`TimingAssignment`] — the canonical map from attribute names
//!   (`E(t)`, `F(t)`, `f(t)`) to their known values, with its own
//!   128-bit [`hash`](TimingAssignment::hash);
//! * [`TimedPetriNet::with_timing`] — the same structure re-timed.
//!
//! For fully timed nets, `(structural_digest, timing hash)` identifies
//! a net exactly as strongly as the full digest: the what-if machinery
//! in `tpn-session`/`tpn-service` keys its caches by the pair so a
//! batch of timing perturbations shares one structural cache line.

use std::collections::BTreeMap;
use std::fmt;

use tpn_rational::Rational;

use crate::digest::record;
use crate::{Frequency, NetDigest, NetError, TimeValue, TimedPetriNet};

/// Which of a transition's three timing attributes a canonical name
/// addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AttrKind {
    Enabling,
    Firing,
    Frequency,
}

/// Split a canonical attribute name (`E(t)`, `F(t)`, `f(t)`) into its
/// kind and transition name.
fn parse_attr(name: &str) -> Option<(AttrKind, &str)> {
    let inner = name.strip_suffix(')')?;
    if let Some(t) = inner.strip_prefix("E(") {
        return Some((AttrKind::Enabling, t));
    }
    if let Some(t) = inner.strip_prefix("F(") {
        return Some((AttrKind::Firing, t));
    }
    if let Some(t) = inner.strip_prefix("f(") {
        return Some((AttrKind::Frequency, t));
    }
    None
}

/// A canonical, order-independent map from attribute names to exact
/// values: the timing half of a net's identity.
///
/// Keys use the [`crate::symbols`] grammar — `E(t)` / `F(t)` / `f(t)`
/// for a transition `t`. A `TimingAssignment` can be **total**
/// (extracted from a net via [`TimedPetriNet::timing`], one entry per
/// known attribute) or **partial** (a perturbation naming only the
/// attributes to change, applied via [`TimedPetriNet::with_timing`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TimingAssignment {
    values: BTreeMap<String, Rational>,
}

impl TimingAssignment {
    /// An empty assignment (perturbs nothing).
    pub fn new() -> TimingAssignment {
        TimingAssignment::default()
    }

    /// Bind `attr` (canonical `E(t)`/`F(t)`/`f(t)` name) to `value`,
    /// replacing any previous binding.
    pub fn set(&mut self, attr: impl Into<String>, value: Rational) -> &mut Self {
        self.values.insert(attr.into(), value);
        self
    }

    /// Builder-style binding.
    pub fn with(mut self, attr: impl Into<String>, value: Rational) -> Self {
        self.values.insert(attr.into(), value);
        self
    }

    /// Look a binding up by canonical name.
    pub fn get(&self, attr: &str) -> Option<&Rational> {
        self.values.get(attr)
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` iff no bindings.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterate over bindings in canonical (attribute-name) order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Rational)> {
        self.values.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// This assignment overlaid with `other` (entries of `other` win).
    pub fn merged(&self, other: &TimingAssignment) -> TimingAssignment {
        let mut out = self.clone();
        for (k, v) in other.iter() {
            out.set(k, *v);
        }
        out
    }

    /// The 128-bit fingerprint of the assignment: the same two-lane
    /// FNV-1a construction as [`NetDigest`], one sorted-folded record
    /// per binding. Together with
    /// [`TimedPetriNet::structural_digest`] this identifies a fully
    /// timed net as strongly as its full [`TimedPetriNet::digest`].
    pub fn hash(&self) -> u128 {
        let records: Vec<[u64; 2]> = self
            .values
            .iter()
            .map(|(name, value)| {
                record(|h| {
                    h.str(name);
                    h.i128(value.numer());
                    h.i128(value.denom());
                })
            })
            .collect();
        // Entries iterate in BTreeMap (canonical) order already.
        let fold = record(|h| {
            h.u64(records.len() as u64);
            for r in &records {
                h.u64(r[0]);
                h.u64(r[1]);
            }
        });
        (u128::from(fold[0]) << 64) | u128::from(fold[1])
    }

    /// The hash as 32 lowercase hex digits (the rendering the service
    /// uses in `whatif` documents).
    pub fn hash_hex(&self) -> String {
        format!("{:032x}", self.hash())
    }
}

impl FromIterator<(String, Rational)> for TimingAssignment {
    fn from_iter<I: IntoIterator<Item = (String, Rational)>>(iter: I) -> Self {
        TimingAssignment {
            values: iter.into_iter().collect(),
        }
    }
}

impl fmt::Display for TimingAssignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (k, v) in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{k}={v}")?;
            first = false;
        }
        Ok(())
    }
}

impl TimedPetriNet {
    /// The structural half of the digest split: everything
    /// [`TimedPetriNet::digest`] covers **except attribute values** —
    /// for each of E/F/f only whether the attribute is known
    /// contributes (known-vs-unknown is structural: it decides which
    /// analyses apply at all). Two nets differing only in known timing
    /// values share a structural digest; the values live in their
    /// [`TimedPetriNet::timing`] assignments.
    pub fn structural_digest(&self) -> NetDigest {
        let mut records: Vec<[u64; 2]> =
            Vec::with_capacity(self.num_places() + self.num_transitions());
        for p in self.places() {
            records.push(record(|h| {
                h.byte(b'P');
                h.str(self.place_name(p));
                h.u64(u64::from(self.initial_marking().tokens(p)));
            }));
        }
        for t in self.transitions() {
            let tr = self.transition(t);
            records.push(record(|h| {
                h.byte(b'T');
                h.str(tr.name());
                crate::digest::bag_entries(self, tr.input(), h);
                crate::digest::bag_entries(self, tr.output(), h);
                h.byte(if tr.enabling().known().is_some() {
                    1
                } else {
                    2
                });
                h.byte(if tr.firing().known().is_some() { 1 } else { 2 });
                h.byte(if tr.frequency().weight().is_some() {
                    1
                } else {
                    2
                });
            }));
        }
        records.sort_unstable();
        let fold = record(|h| {
            // A distinct domain tag keeps the structural digest of a net
            // from ever colliding with its full digest.
            h.byte(b'S');
            h.str(self.name());
            h.u64(records.len() as u64);
            for r in &records {
                h.u64(r[0]);
                h.u64(r[1]);
            }
        });
        NetDigest(fold)
    }

    /// Extract the net's total timing assignment: one entry per *known*
    /// attribute, under its canonical `E(t)`/`F(t)`/`f(t)` name.
    /// `structural_digest() + timing().hash()` identifies a fully timed
    /// net exactly as strongly as `digest()`.
    pub fn timing(&self) -> TimingAssignment {
        let mut out = TimingAssignment::new();
        for t in self.transitions() {
            let tr = self.transition(t);
            let name = tr.name();
            if let Some(v) = tr.enabling().known() {
                out.set(format!("E({name})"), *v);
            }
            if let Some(v) = tr.firing().known() {
                out.set(format!("F({name})"), *v);
            }
            if let Some(v) = tr.frequency().weight() {
                out.set(format!("f({name})"), *v);
            }
        }
        out
    }

    /// The same structure with `timing`'s attribute values substituted
    /// in: a clone whose named E/F/f attributes take the assignment's
    /// values while places, arcs, conflict sets and the initial marking
    /// are untouched (so [`TimedPetriNet::structural_digest`] is
    /// preserved).
    ///
    /// Every entry must name a **known** attribute of an existing
    /// transition in the canonical grammar ([`NetError::UnknownName`]
    /// otherwise — re-timing an unknown attribute would change the
    /// structure, not its labels), and values must be non-negative
    /// ([`NetError::NegativeTime`] / [`NetError::NegativeFrequency`]).
    pub fn with_timing(&self, timing: &TimingAssignment) -> Result<TimedPetriNet, NetError> {
        let mut net = self.clone();
        for (attr, value) in timing.iter() {
            let (kind, tname) = parse_attr(attr).ok_or_else(|| NetError::UnknownName {
                name: attr.to_string(),
            })?;
            let t = net.transition_by_name(tname)?;
            let tr = &mut net.transitions[t.index()];
            match kind {
                AttrKind::Enabling | AttrKind::Firing => {
                    if value.is_negative() {
                        return Err(NetError::NegativeTime {
                            transition: tname.to_string(),
                            which: if kind == AttrKind::Enabling {
                                "enabling"
                            } else {
                                "firing"
                            },
                        });
                    }
                    let slot = if kind == AttrKind::Enabling {
                        &mut tr.enabling
                    } else {
                        &mut tr.firing
                    };
                    match slot {
                        TimeValue::Known(_) => *slot = TimeValue::Known(*value),
                        TimeValue::Unknown => {
                            return Err(NetError::UnknownName {
                                name: attr.to_string(),
                            })
                        }
                    }
                }
                AttrKind::Frequency => {
                    if value.is_negative() {
                        return Err(NetError::NegativeFrequency {
                            transition: tname.to_string(),
                        });
                    }
                    match &mut tr.frequency {
                        Frequency::Weight(_) => tr.frequency = Frequency::Weight(*value),
                        Frequency::Unknown => {
                            return Err(NetError::UnknownName {
                                name: attr.to_string(),
                            })
                        }
                    }
                }
            }
        }
        Ok(net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_tpn;
    use tpn_rational::Rational;

    const NET: &str = "net demo\nplace a init 1\nplace b\n\
        trans go in a out b firing 2 weight 3\n\
        trans back in b out a firing 3 weight 1";

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn structural_digest_ignores_timing_values() {
        let base = parse_tpn(NET).unwrap();
        let retimed = parse_tpn(&NET.replace("firing 2", "firing 7")).unwrap();
        assert_ne!(base.digest(), retimed.digest());
        assert_eq!(base.structural_digest(), retimed.structural_digest());
        // …but known-vs-unknown is structural.
        let symbolic = parse_tpn(&NET.replace("firing 2", "firing ?")).unwrap();
        assert_ne!(base.structural_digest(), symbolic.structural_digest());
        // and arcs/marking/names still matter
        let rewired = parse_tpn(&NET.replace("init 1", "init 2")).unwrap();
        assert_ne!(base.structural_digest(), rewired.structural_digest());
        // the two digest halves never collide with each other
        assert_ne!(base.structural_digest(), base.digest());
    }

    #[test]
    fn timing_extraction_and_hash() {
        let net = parse_tpn(NET).unwrap();
        let t = net.timing();
        // every transition contributes E, F and f
        assert_eq!(t.len(), 6);
        assert_eq!(t.get("F(go)"), Some(&r(2, 1)));
        assert_eq!(t.get("E(go)"), Some(&Rational::ZERO));
        assert_eq!(t.get("f(back)"), Some(&Rational::ONE));
        // hash is value-sensitive and stable
        let retimed = parse_tpn(&NET.replace("firing 2", "firing 7")).unwrap();
        assert_ne!(t.hash(), retimed.timing().hash());
        assert_eq!(t.hash(), parse_tpn(NET).unwrap().timing().hash());
        assert_eq!(t.hash_hex().len(), 32);
    }

    #[test]
    fn pair_identifies_like_the_full_digest() {
        // same structure + same timing hash ⇔ same full digest
        let a = parse_tpn(NET).unwrap();
        let b = parse_tpn(&NET.replace("weight 3", "weight 6/2")).unwrap();
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.structural_digest(), b.structural_digest());
        assert_eq!(a.timing().hash(), b.timing().hash());
    }

    #[test]
    fn with_timing_substitutes_values_only() {
        let net = parse_tpn(NET).unwrap();
        let p = TimingAssignment::new()
            .with("F(go)", r(7, 1))
            .with("f(back)", r(1, 2));
        let out = net.with_timing(&p).unwrap();
        assert_eq!(out.structural_digest(), net.structural_digest());
        assert_eq!(out.timing().get("F(go)"), Some(&r(7, 1)));
        assert_eq!(out.timing().get("f(back)"), Some(&r(1, 2)));
        // untouched attributes keep their base values
        assert_eq!(out.timing().get("F(back)"), Some(&r(3, 1)));
        // and the result equals parsing the perturbed text
        let direct = parse_tpn(
            &NET.replace("firing 2 weight 3", "firing 7 weight 3")
                .replace("firing 3 weight 1", "firing 3 weight 1/2"),
        )
        .unwrap();
        assert_eq!(out.digest(), direct.digest());
    }

    #[test]
    fn with_timing_rejects_bad_entries() {
        let net = parse_tpn(NET).unwrap();
        for (attr, value, why) in [
            ("F(nope)", r(1, 1), "unknown transition"),
            ("G(go)", r(1, 1), "unknown attribute kind"),
            ("F(go", r(1, 1), "malformed name"),
            ("F(go)", r(-1, 1), "negative time"),
            ("f(go)", r(-1, 1), "negative frequency"),
        ] {
            let p = TimingAssignment::new().with(attr, value);
            assert!(net.with_timing(&p).is_err(), "{why}");
        }
        // re-timing an unknown attribute is structural, not a label edit
        let symbolic = parse_tpn(&NET.replace("firing 2", "firing ?")).unwrap();
        let p = TimingAssignment::new().with("F(go)", r(1, 1));
        assert!(matches!(
            symbolic.with_timing(&p),
            Err(NetError::UnknownName { .. })
        ));
    }

    #[test]
    fn merged_overlays_entries() {
        let base = TimingAssignment::new()
            .with("F(go)", r(2, 1))
            .with("F(back)", r(3, 1));
        let over = TimingAssignment::new().with("F(go)", r(9, 1));
        let m = base.merged(&over);
        assert_eq!(m.get("F(go)"), Some(&r(9, 1)));
        assert_eq!(m.get("F(back)"), Some(&r(3, 1)));
        assert_eq!(m.len(), 2);
        assert_eq!(m.to_string(), "F(back)=3, F(go)=9");
    }
}
