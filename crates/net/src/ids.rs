//! Typed indices for places, transitions and conflict sets.

use std::fmt;

/// Index of a place within its net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PlaceId(pub(crate) u32);

/// Index of a transition within its net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TransId(pub(crate) u32);

/// Index of a conflict set within its net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConflictSetId(pub(crate) u32);

impl PlaceId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a raw index (for iteration helpers; the id is only
    /// meaningful for the net it came from).
    pub fn from_index(i: usize) -> PlaceId {
        PlaceId(u32::try_from(i).expect("place index overflow"))
    }
}

impl TransId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a raw index.
    pub fn from_index(i: usize) -> TransId {
        TransId(u32::try_from(i).expect("transition index overflow"))
    }
}

impl ConflictSetId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PlaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for TransId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for ConflictSetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_display() {
        let p = PlaceId::from_index(3);
        assert_eq!(p.index(), 3);
        assert_eq!(p.to_string(), "p3");
        let t = TransId::from_index(7);
        assert_eq!(t.index(), 7);
        assert_eq!(t.to_string(), "t7");
        assert_eq!(ConflictSetId(2).to_string(), "C2");
        assert_eq!(ConflictSetId(2).index(), 2);
    }
}
