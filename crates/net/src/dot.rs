//! Graphviz DOT export for nets.

use std::fmt::Write as _;

use crate::TimedPetriNet;

/// Render the net as a Graphviz digraph: places as circles (token count
/// shown), transitions as boxes annotated with `E`/`F`/weight, and arcs
/// labelled with multiplicities greater than one.
pub fn to_dot(net: &TimedPetriNet) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", net.name());
    let _ = writeln!(out, "  rankdir=LR;");
    for p in net.places() {
        let tokens = net.initial_marking().tokens(p);
        let label = if tokens > 0 {
            format!("{}\\n●×{}", net.place_name(p), tokens)
        } else {
            net.place_name(p).to_string()
        };
        let _ = writeln!(
            out,
            "  \"{}\" [shape=circle, label=\"{}\"];",
            net.place_name(p),
            label
        );
    }
    for t in net.transitions() {
        let tr = net.transition(t);
        let _ = writeln!(
            out,
            "  \"{0}\" [shape=box, label=\"{0}\\nE={1} F={2} w={3}\"];",
            tr.name(),
            tr.enabling(),
            tr.firing(),
            tr.frequency()
        );
        for (p, n) in tr.input().iter() {
            let label = if n > 1 {
                format!(" [label=\"{n}\"]")
            } else {
                String::new()
            };
            let _ = writeln!(
                out,
                "  \"{}\" -> \"{}\"{};",
                net.place_name(p),
                tr.name(),
                label
            );
        }
        for (p, n) in tr.output().iter() {
            let label = if n > 1 {
                format!(" [label=\"{n}\"]")
            } else {
                String::new()
            };
            let _ = writeln!(
                out,
                "  \"{}\" -> \"{}\"{};",
                tr.name(),
                net.place_name(p),
                label
            );
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetBuilder;

    #[test]
    fn renders_valid_dot() {
        let mut b = NetBuilder::new("dot-test");
        let a = b.place("src", 1);
        let c = b.place("dst", 0);
        b.transition("move")
            .input_n(a, 2)
            .output(c)
            .firing_const(7)
            .add();
        let net = b.build().unwrap();
        let dot = to_dot(&net);
        assert!(dot.starts_with("digraph \"dot-test\""));
        assert!(dot.contains("\"src\" [shape=circle"));
        assert!(dot.contains("\"move\" [shape=box"));
        assert!(dot.contains("\"src\" -> \"move\" [label=\"2\"]"));
        assert!(dot.contains("\"move\" -> \"dst\";"));
        assert!(dot.trim_end().ends_with('}'));
    }
}
