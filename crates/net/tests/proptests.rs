//! Property tests for the net model: conflict-set partition laws,
//! marking algebra, `.tpn` round-trips of random rings, and P-semiflow
//! conservation under random firing sequences.

use proptest::prelude::*;
use tpn_net::{invariant, Bag, Marking, NetBuilder, PlaceId, TimedPetriNet};
use tpn_rational::Rational;

fn random_ring(times: &[(i128, i128)]) -> TimedPetriNet {
    let mut b = NetBuilder::new("ring");
    let places: Vec<_> = (0..times.len())
        .map(|i| b.place(&format!("s{i}"), u32::from(i == 0)))
        .collect();
    for (i, (n, d)) in times.iter().enumerate() {
        let next = (i + 1) % times.len();
        b.transition(&format!("t{i}"))
            .input(places[i])
            .output(places[next])
            .firing(Rational::new(*n, *d))
            .add();
    }
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn conflict_sets_partition_the_transitions(
        // adjacency: each of 6 transitions consumes a subset of 4 places
        inputs in proptest::collection::vec(proptest::collection::vec(any::<bool>(), 4), 1..6),
    ) {
        let mut b = NetBuilder::new("part");
        let places: Vec<_> = (0..4).map(|i| b.place(&format!("p{i}"), 1)).collect();
        let mut n = 0usize;
        for (i, row) in inputs.iter().enumerate() {
            if row.iter().all(|x| !x) {
                continue; // empty input bags are rejected by validation
            }
            let mut t = b.transition(&format!("t{i}"));
            for (p, used) in places.iter().zip(row) {
                if *used {
                    t = t.input(*p);
                }
            }
            t.add();
            n += 1;
        }
        prop_assume!(n > 0);
        let net = b.build().unwrap();
        // every transition in exactly one set; sets are disjoint & cover
        let mut seen = vec![0usize; net.num_transitions()];
        for cs in net.conflict_sets() {
            for t in cs.members() {
                seen[t.index()] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
        // transitions sharing an input place are in the same set
        for a in net.transitions() {
            for z in net.transitions() {
                let share = net.transition(a).input().intersects(net.transition(z).input());
                if share {
                    prop_assert_eq!(net.conflict_set_of(a), net.conflict_set_of(z));
                }
            }
        }
    }

    #[test]
    fn marking_add_sub_inverse(
        tokens in proptest::collection::vec(0u32..4, 5),
        bag in proptest::collection::vec(0u32..3, 5),
    ) {
        let m0 = Marking::from_vec(tokens);
        let bag = Bag::from_pairs(
            bag.into_iter().enumerate().map(|(i, n)| (PlaceId::from_index(i), n)),
        );
        let mut m = m0.clone();
        m.add(&bag);
        prop_assert!(m.covers(&bag));
        m.subtract(&bag);
        prop_assert_eq!(m, m0);
    }

    #[test]
    fn tpn_roundtrip_random_rings(times in proptest::collection::vec((1i128..500, 1i128..10), 1..7)) {
        let net = random_ring(&times);
        let text = net.to_string();
        let back = tpn_net::parse_tpn(&text).unwrap();
        prop_assert_eq!(back.num_places(), net.num_places());
        prop_assert_eq!(back.num_transitions(), net.num_transitions());
        for t in net.transitions() {
            let a = net.transition(t);
            let b2 = back.transition(back.transition_by_name(a.name()).unwrap());
            prop_assert_eq!(a.firing(), b2.firing());
            prop_assert_eq!(a.enabling(), b2.enabling());
            prop_assert_eq!(a.frequency(), b2.frequency());
        }
    }

    #[test]
    fn to_tpn_parse_roundtrip_is_identity(
        inits in proptest::collection::vec(0u32..4, 4),
        trans in proptest::collection::vec(
            (
                proptest::collection::vec(0u32..3, 4), // input multiplicities
                proptest::collection::vec(0u32..3, 4), // output multiplicities
                (0u8..3, 1i128..2000, 1i128..10),      // enabling: kind, num, den
                (0u8..3, 1i128..2000, 1i128..10),      // firing
                (0u8..4, 0i128..20, 1i128..10),        // weight (0 allowed)
            ),
            1..6,
        ),
    ) {
        // Arbitrary nets (multi-arc bags, unknown times, zero weights,
        // non-default attributes) must survive emit → parse unchanged.
        let mut b = NetBuilder::new("generated");
        let places: Vec<_> = inits
            .iter()
            .enumerate()
            .map(|(i, init)| b.place(&format!("p{i}"), *init))
            .collect();
        for (i, (ins, outs, enabling, firing, weight)) in trans.iter().enumerate() {
            let mut t = b.transition(&format!("t{i}"));
            for (p, n) in places.iter().zip(ins) {
                t = t.input_n(*p, *n);
            }
            // validation rejects empty input bags; force one arc
            if ins.iter().all(|n| *n == 0) {
                t = t.input(places[i % places.len()]);
            }
            for (p, n) in places.iter().zip(outs) {
                t = t.output_n(*p, *n);
            }
            t = match enabling.0 {
                0 => t, // default: enabling 0
                1 => t.enabling(Rational::new(enabling.1, enabling.2)),
                _ => t.enabling_unknown(),
            };
            t = match firing.0 {
                0 => t,
                1 => t.firing(Rational::new(firing.1, firing.2)),
                _ => t.firing_unknown(),
            };
            t = match weight.0 {
                0 => t, // default: weight 1
                1 | 2 => t.weight(Rational::new(weight.1, weight.2)),
                _ => t.weight_unknown(),
            };
            t.add();
        }
        let net = b.build().unwrap();
        let text = net.to_tpn();
        let back = tpn_net::parse_tpn(&text).unwrap();
        prop_assert_eq!(&back, &net, "emitted text:\n{}", text);
        // and the canonical digest is preserved too
        prop_assert_eq!(back.digest(), net.digest());
    }

    #[test]
    fn digest_is_declaration_order_independent(
        inits in proptest::collection::vec(0u32..3, 4),
        perm_seed in any::<u64>(),
    ) {
        // Build a ring over the places, then rebuild it with places and
        // transitions declared in a rotated order: same digest.
        let n = inits.len();
        let rot = (perm_seed % n as u64) as usize;
        let build = |order: Vec<usize>| {
            let mut b = NetBuilder::new("perm");
            let mut ids = vec![None; n];
            for &i in &order {
                ids[i] = Some(b.place(&format!("p{i}"), inits[i]));
            }
            let ids: Vec<_> = ids.into_iter().map(Option::unwrap).collect();
            for &i in &order {
                b.transition(&format!("t{i}"))
                    .input(ids[i])
                    .output(ids[(i + 1) % n])
                    .firing(Rational::new(i as i128 + 1, 2))
                    .add();
            }
            b.build().unwrap()
        };
        let identity: Vec<usize> = (0..n).collect();
        let rotated: Vec<usize> = (0..n).map(|i| (i + rot) % n).collect();
        prop_assert_eq!(build(identity).digest(), build(rotated).digest());
    }

    #[test]
    fn p_semiflows_are_conserved_under_firing(
        times in proptest::collection::vec((1i128..9, 1i128..3), 2..6),
        steps in proptest::collection::vec(any::<u8>(), 12),
    ) {
        let net = random_ring(&times);
        let flows = invariant::p_semiflows(&net);
        prop_assert!(!flows.is_empty());
        // fire random enabled transitions atomically (consume + produce)
        // and check every semiflow stays constant
        let mut m = net.initial_marking().clone();
        let baselines: Vec<i128> = flows
            .iter()
            .map(|f| f.weighted_sum(m.as_slice().iter().copied()))
            .collect();
        for s in steps {
            let enabled = net.enabled_transitions(&m);
            prop_assume!(!enabled.is_empty());
            let t = enabled[s as usize % enabled.len()];
            m.subtract(net.transition(t).input());
            m.add(net.transition(t).output());
            for (f, base) in flows.iter().zip(&baselines) {
                prop_assert_eq!(f.weighted_sum(m.as_slice().iter().copied()), *base);
            }
        }
    }

    #[test]
    fn t_semiflow_firing_counts_reproduce_marking(times in proptest::collection::vec((1i128..9, 1i128..3), 2..6)) {
        let net = random_ring(&times);
        let flows = invariant::t_semiflows(&net);
        prop_assert_eq!(flows.len(), 1, "a ring has one minimal T-semiflow");
        prop_assert!(invariant::is_t_semiflow(&net, &flows[0].weights));
        // firing the whole ring once returns to the initial marking
        let mut m = net.initial_marking().clone();
        for t in net.transitions() {
            m.subtract(net.transition(t).input());
            m.add(net.transition(t).output());
        }
        prop_assert_eq!(&m, net.initial_marking());
    }
}
