//! Property tests for the net model: conflict-set partition laws,
//! marking algebra, `.tpn` round-trips of random rings, and P-semiflow
//! conservation under random firing sequences.

use proptest::prelude::*;
use tpn_net::{invariant, Bag, Marking, NetBuilder, PlaceId, TimedPetriNet};
use tpn_rational::Rational;

fn random_ring(times: &[(i128, i128)]) -> TimedPetriNet {
    let mut b = NetBuilder::new("ring");
    let places: Vec<_> = (0..times.len())
        .map(|i| b.place(&format!("s{i}"), u32::from(i == 0)))
        .collect();
    for (i, (n, d)) in times.iter().enumerate() {
        let next = (i + 1) % times.len();
        b.transition(&format!("t{i}"))
            .input(places[i])
            .output(places[next])
            .firing(Rational::new(*n, *d))
            .add();
    }
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn conflict_sets_partition_the_transitions(
        // adjacency: each of 6 transitions consumes a subset of 4 places
        inputs in proptest::collection::vec(proptest::collection::vec(any::<bool>(), 4), 1..6),
    ) {
        let mut b = NetBuilder::new("part");
        let places: Vec<_> = (0..4).map(|i| b.place(&format!("p{i}"), 1)).collect();
        let mut n = 0usize;
        for (i, row) in inputs.iter().enumerate() {
            if row.iter().all(|x| !x) {
                continue; // empty input bags are rejected by validation
            }
            let mut t = b.transition(&format!("t{i}"));
            for (p, used) in places.iter().zip(row) {
                if *used {
                    t = t.input(*p);
                }
            }
            t.add();
            n += 1;
        }
        prop_assume!(n > 0);
        let net = b.build().unwrap();
        // every transition in exactly one set; sets are disjoint & cover
        let mut seen = vec![0usize; net.num_transitions()];
        for cs in net.conflict_sets() {
            for t in cs.members() {
                seen[t.index()] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
        // transitions sharing an input place are in the same set
        for a in net.transitions() {
            for z in net.transitions() {
                let share = net.transition(a).input().intersects(net.transition(z).input());
                if share {
                    prop_assert_eq!(net.conflict_set_of(a), net.conflict_set_of(z));
                }
            }
        }
    }

    #[test]
    fn marking_add_sub_inverse(
        tokens in proptest::collection::vec(0u32..4, 5),
        bag in proptest::collection::vec(0u32..3, 5),
    ) {
        let m0 = Marking::from_vec(tokens);
        let bag = Bag::from_pairs(
            bag.into_iter().enumerate().map(|(i, n)| (PlaceId::from_index(i), n)),
        );
        let mut m = m0.clone();
        m.add(&bag);
        prop_assert!(m.covers(&bag));
        m.subtract(&bag);
        prop_assert_eq!(m, m0);
    }

    #[test]
    fn tpn_roundtrip_random_rings(times in proptest::collection::vec((1i128..500, 1i128..10), 1..7)) {
        let net = random_ring(&times);
        let text = net.to_string();
        let back = tpn_net::parse_tpn(&text).unwrap();
        prop_assert_eq!(back.num_places(), net.num_places());
        prop_assert_eq!(back.num_transitions(), net.num_transitions());
        for t in net.transitions() {
            let a = net.transition(t);
            let b2 = back.transition(back.transition_by_name(a.name()).unwrap());
            prop_assert_eq!(a.firing(), b2.firing());
            prop_assert_eq!(a.enabling(), b2.enabling());
            prop_assert_eq!(a.frequency(), b2.frequency());
        }
    }

    #[test]
    fn p_semiflows_are_conserved_under_firing(
        times in proptest::collection::vec((1i128..9, 1i128..3), 2..6),
        steps in proptest::collection::vec(any::<u8>(), 12),
    ) {
        let net = random_ring(&times);
        let flows = invariant::p_semiflows(&net);
        prop_assert!(!flows.is_empty());
        // fire random enabled transitions atomically (consume + produce)
        // and check every semiflow stays constant
        let mut m = net.initial_marking().clone();
        let baselines: Vec<i128> = flows
            .iter()
            .map(|f| f.weighted_sum(m.as_slice().iter().copied()))
            .collect();
        for s in steps {
            let enabled = net.enabled_transitions(&m);
            prop_assume!(!enabled.is_empty());
            let t = enabled[s as usize % enabled.len()];
            m.subtract(net.transition(t).input());
            m.add(net.transition(t).output());
            for (f, base) in flows.iter().zip(&baselines) {
                prop_assert_eq!(f.weighted_sum(m.as_slice().iter().copied()), *base);
            }
        }
    }

    #[test]
    fn t_semiflow_firing_counts_reproduce_marking(times in proptest::collection::vec((1i128..9, 1i128..3), 2..6)) {
        let net = random_ring(&times);
        let flows = invariant::t_semiflows(&net);
        prop_assert_eq!(flows.len(), 1, "a ring has one minimal T-semiflow");
        prop_assert!(invariant::is_t_semiflow(&net, &flows[0].weights));
        // firing the whole ring once returns to the initial marking
        let mut m = net.initial_marking().clone();
        for t in net.transitions() {
            m.subtract(net.transition(t).input());
            m.add(net.transition(t).output());
        }
        prop_assert_eq!(&m, net.initial_marking());
    }
}
