//! Property tests for the parameter-synthesis engines:
//!
//! * **Sturm root isolation vs known polynomials** — build `∏(x − rᵢ)`
//!   from random rational roots and check isolation finds exactly the
//!   distinct ones, each exactly or inside its bracket;
//! * **exact univariate optimum vs dense-grid argmax** — on random
//!   rational functions with a provably positive denominator, the
//!   certified optimum must dominate a 2001-point grid scan and agree
//!   with its refined argmax to within the refinement step;
//! * **thread-count invariance** — the multivariate refiner returns the
//!   identical `Optimum` at 1 and 8 seeding threads.
//!
//! Degree/coefficient bounds keep exact intermediates far inside
//! `i128` so an overflow cannot masquerade as a property failure.

use proptest::prelude::*;
use tpn_core::OptGoal;
use tpn_opt::{isolate_real_roots, optimize, OptOptions, RootLoc};
use tpn_rational::Rational;
use tpn_symbolic::{Poly, RatFn, Symbol};

fn x() -> Symbol {
    Symbol::intern("optp_x")
}

fn y() -> Symbol {
    Symbol::intern("optp_y")
}

fn r(n: i128, d: i128) -> Rational {
    Rational::new(n, d)
}

/// `∏ (x − root)` over possibly repeated roots.
fn poly_with_roots(roots: &[Rational]) -> Poly {
    let mut p = Poly::one();
    for root in roots {
        p = &p * &(&Poly::symbol(x()) - &Poly::constant(*root));
    }
    p
}

/// A polynomial in `x` from dense small-integer coefficients.
fn poly_from_coeffs(coeffs: &[i128]) -> Poly {
    let mut p = Poly::zero();
    for (i, &c) in coeffs.iter().enumerate() {
        p += Poly::symbol(x())
            .pow(i as u32)
            .scale(&Rational::from_int(c));
    }
    p
}

/// Random rational roots in (−8, 8): numerators up to ±47 over
/// denominators 6·{1..6}, so every root stays inside the isolation
/// interval while denominators still vary.
fn roots() -> impl Strategy<Value = Vec<(i128, i128)>> {
    proptest::collection::vec((-47i128..48, 1i128..7), 1..5)
        .prop_map(|v| v.into_iter().map(|(n, d)| (n, 6 * d)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn isolation_recovers_known_roots(raw in roots()) {
        let mut roots: Vec<Rational> = raw.iter().map(|&(n, d)| r(n, d)).collect();
        let p = poly_with_roots(&roots);
        roots.sort();
        roots.dedup();
        let tol = r(1, 1 << 12);
        let found = isolate_real_roots(&p, x(), &r(-9, 1), &r(9, 1), &tol).unwrap();
        prop_assert_eq!(found.len(), roots.len(), "every distinct root, exactly once");
        for (loc, want) in found.iter().zip(&roots) {
            prop_assert!(loc.could_be(want), "{loc:?} vs {want}");
            // Rational roots that bisection happens to bracket rather
            // than hit are still within tol of the truth.
            match loc {
                RootLoc::Exact(got) => prop_assert_eq!(got, want),
                RootLoc::Bracket(a, b) => prop_assert!(*b - *a <= tol),
            }
        }
    }

    #[test]
    fn exact_univariate_optimum_dominates_a_dense_grid(
        num in proptest::collection::vec(-5i128..6, 1..5),
        pole in (-30i128..31, 1i128..5),
        shift in 1i128..6,
        maximize in any::<bool>(),
    ) {
        // f = n(x) / ((x − c)² + s): denominator provably positive.
        let n = poly_from_coeffs(&num);
        prop_assume!(!n.is_constant());
        let c = r(pole.0, pole.1);
        let den = {
            let lin = &Poly::symbol(x()) - &Poly::constant(c);
            &(&lin * &lin) + &Poly::constant(Rational::from_int(shift))
        };
        let f = RatFn::new(n, den);
        prop_assume!(!f.symbols().is_empty());
        let goal = if maximize { OptGoal::Maximize } else { OptGoal::Minimize };
        let (lo, hi) = (r(0, 1), r(4, 1));
        let opts = OptOptions {
            tolerance: Some(r(1, 1 << 12)),
            ..OptOptions::default()
        };
        let best = optimize(&f, &[(x(), lo, hi)], &[], goal, &opts).unwrap();
        prop_assert!(best.certified(), "univariate results are always certified");
        let value = best.value.expect("exact value").to_f64();

        // Dense scan: 2001 points, then one refinement pass of 401
        // points across the argmax's two adjacent cells.
        let scan = |a: f64, b: f64, steps: usize| -> (f64, f64) {
            let mut best_x = a;
            let mut best_v = f64::NEG_INFINITY * if maximize { 1.0 } else { -1.0 };
            for i in 0..=steps {
                let xx = a + (b - a) * (i as f64) / (steps as f64);
                let at: tpn_symbolic::Assignment =
                    [(x(), Rational::from_f64_approx(xx, 1 << 20).unwrap())]
                        .into_iter()
                        .collect();
                // f64 through the exact oracle: positions are snapped
                // rationals, so both sides see the same abscissa.
                let Some(v) = f.eval(&at).map(|v| v.to_f64()) else { continue };
                if (maximize && v > best_v) || (!maximize && v < best_v) {
                    best_v = v;
                    best_x = xx;
                }
            }
            (best_x, best_v)
        };
        let cell = 4.0 / 2000.0;
        let (_, coarse_v) = scan(0.0, 4.0, 2000);
        // Refine around the certified optimum: a fine grid across its
        // cell must approach the certified value (and never beat it).
        let x_opt = best.point[0].1.to_f64();
        let (_, fine_v) = scan((x_opt - cell).max(0.0), (x_opt + cell).min(4.0), 400);
        let scale = 1.0 + value.abs().max(coarse_v.abs());
        // A bracketed critical point is reported at its bracket
        // midpoint, so a grid point can sit closer to the true
        // extremum by up to C·tol² in value — the dominance epsilon
        // must absorb that approximation, not just f64 noise.
        let eps = 1e-6 * scale;
        if maximize {
            // The certified optimum dominates every grid value…
            prop_assert!(value >= coarse_v - eps, "{value} vs grid {coarse_v}");
            prop_assert!(value >= fine_v - eps, "{value} vs refined {fine_v}");
            // …and the refined grid around it closes the gap.
            prop_assert!(fine_v >= value - 1e-3 * scale, "{fine_v} must approach {value}");
        } else {
            prop_assert!(value <= coarse_v + eps, "{value} vs grid {coarse_v}");
            prop_assert!(value <= fine_v + eps, "{value} vs refined {fine_v}");
            prop_assert!(fine_v <= value + 1e-3 * scale, "{fine_v} must approach {value}");
        }
    }

    #[test]
    fn multivariate_result_is_invariant_under_thread_count(
        cx in 1i128..8,
        cy in 1i128..8,
        seed_points in 16u64..200,
    ) {
        // f = x(cx − x) + y(cy − y) over a box that contains the peak.
        let fx = &Poly::symbol(x()) * &(Poly::constant(r(cx, 1)) - Poly::symbol(x()));
        let fy = &Poly::symbol(y()) * &(Poly::constant(r(cy, 1)) - Poly::symbol(y()));
        let f = RatFn::from_poly(&fx + &fy);
        let axes = [(x(), r(1, 2), r(8, 1)), (y(), r(1, 2), r(8, 1))];
        let mk = |threads: usize| OptOptions {
            threads,
            seed_points,
            ..OptOptions::default()
        };
        let a = optimize(&f, &axes, &[], OptGoal::Maximize, &mk(1)).unwrap();
        let b = optimize(&f, &axes, &[], OptGoal::Maximize, &mk(8)).unwrap();
        prop_assert_eq!(a, b, "threads only parallelise the seeding sweep");
    }
}
