//! Exact real-root isolation for univariate polynomials over the
//! rationals, via Sturm sequences.
//!
//! The exact univariate optimiser needs to know — with a proof, not a
//! float heuristic — where the derivative of a performance expression
//! vanishes. Sturm's theorem delivers that: for a square-free
//! polynomial `p`, the number of distinct real roots in `(a, b)` equals
//! `V(a) − V(b)`, the drop in sign variations along the Sturm chain
//! `p, p′, −rem(p, p′), …`. Combined with bisection this isolates every
//! root into a rational bracket of arbitrary width, and brackets whose
//! midpoint turns out to be a root collapse to **exact** rational roots
//! (the polynomial is deflated and isolation continues on the
//! quotient).
//!
//! All arithmetic is overflow-checked `i128` rational arithmetic: a
//! hostile or pathologically scaled input surfaces as
//! [`OptError::Overflow`], never a panic. Every chain element is
//! normalised to integer-primitive form (scaled by a *positive*
//! rational, which preserves signs and therefore the Sturm property) to
//! keep coefficient growth in check.

use tpn_rational::Rational;
use tpn_symbolic::{Poly, Symbol};

use crate::OptError;

/// Map an arithmetic overflow to the crate error.
fn ovf<T>(r: Result<T, tpn_rational::ArithmeticError>, what: &'static str) -> Result<T, OptError> {
    r.map_err(|_| OptError::Overflow(what))
}

/// A dense univariate polynomial `Σ coeffs[i]·x^i` with exact rational
/// coefficients. Invariant: no trailing zero coefficients (the zero
/// polynomial is the empty vector).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct UniPoly {
    coeffs: Vec<Rational>,
}

impl UniPoly {
    pub(crate) fn zero() -> UniPoly {
        UniPoly { coeffs: Vec::new() }
    }

    fn from_coeffs(mut coeffs: Vec<Rational>) -> UniPoly {
        while coeffs.last().is_some_and(Rational::is_zero) {
            coeffs.pop();
        }
        UniPoly { coeffs }
    }

    /// View a multivariate [`Poly`] as univariate in `x`. Returns
    /// `None` if the polynomial mentions any other symbol.
    pub(crate) fn from_poly(p: &Poly, x: Symbol) -> Option<UniPoly> {
        let mut coeffs = vec![Rational::ZERO; p.degree() as usize + 1];
        for (m, c) in p.terms() {
            let e = m.exponent(x);
            if m.degree() != e {
                return None; // a factor other than x
            }
            coeffs[e as usize] = *c;
        }
        Some(UniPoly::from_coeffs(coeffs))
    }

    pub(crate) fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Degree (zero polynomial reports 0).
    pub(crate) fn degree(&self) -> usize {
        self.coeffs.len().saturating_sub(1)
    }

    pub(crate) fn is_constant(&self) -> bool {
        self.coeffs.len() <= 1
    }

    /// Horner evaluation with overflow-checked arithmetic.
    pub(crate) fn eval(&self, x: &Rational) -> Result<Rational, OptError> {
        let mut acc = Rational::ZERO;
        for c in self.coeffs.iter().rev() {
            acc = ovf(acc.checked_mul(x), "polynomial evaluation")?;
            acc = ovf(acc.checked_add(c), "polynomial evaluation")?;
        }
        Ok(acc)
    }

    /// The sign of the polynomial at `x`.
    pub(crate) fn sign_at(&self, x: &Rational) -> Result<i32, OptError> {
        Ok(self.eval(x)?.signum())
    }

    /// Formal derivative.
    pub(crate) fn derivative(&self) -> Result<UniPoly, OptError> {
        if self.coeffs.len() <= 1 {
            return Ok(UniPoly::zero());
        }
        let mut out = Vec::with_capacity(self.coeffs.len() - 1);
        for (i, c) in self.coeffs.iter().enumerate().skip(1) {
            out.push(ovf(
                c.checked_mul(&Rational::from_int(i as i128)),
                "derivative",
            )?);
        }
        Ok(UniPoly::from_coeffs(out))
    }

    fn neg(&self) -> Result<UniPoly, OptError> {
        let mut out = Vec::with_capacity(self.coeffs.len());
        for c in &self.coeffs {
            out.push(ovf(c.checked_neg(), "negation")?);
        }
        Ok(UniPoly { coeffs: out })
    }

    /// Scale to integer coefficients with content 1, **preserving the
    /// sign** (the scale factor is positive). Controls coefficient
    /// growth along remainder sequences without disturbing Sturm signs.
    pub(crate) fn primitive(&self) -> Result<UniPoly, OptError> {
        if self.is_zero() {
            return Ok(UniPoly::zero());
        }
        let mut denom_lcm: i128 = 1;
        for c in &self.coeffs {
            denom_lcm = ovf(
                tpn_rational::lcm(denom_lcm, c.denom())
                    .ok_or(tpn_rational::ArithmeticError::Overflow),
                "content computation",
            )?;
        }
        let l = Rational::from_int(denom_lcm);
        let mut numer_gcd: i128 = 0;
        for c in &self.coeffs {
            let scaled = ovf(c.checked_mul(&l), "content computation")?;
            numer_gcd = tpn_rational::gcd(numer_gcd, scaled.numer());
        }
        debug_assert!(numer_gcd > 0);
        let scale = ovf(
            Rational::checked_new(denom_lcm, numer_gcd),
            "content computation",
        )?;
        let mut out = Vec::with_capacity(self.coeffs.len());
        for c in &self.coeffs {
            out.push(ovf(c.checked_mul(&scale), "content computation")?);
        }
        Ok(UniPoly { coeffs: out })
    }

    /// Polynomial division: `self = q·d + r` with `deg r < deg d`.
    fn divrem(&self, d: &UniPoly) -> Result<(UniPoly, UniPoly), OptError> {
        assert!(!d.is_zero(), "division by the zero polynomial");
        let dd = d.degree();
        let dl = *d.coeffs.last().expect("non-zero divisor");
        let mut rem = self.coeffs.clone();
        let mut quo = vec![Rational::ZERO; self.coeffs.len().saturating_sub(dd)];
        while rem.len() > dd {
            let shift = rem.len() - d.coeffs.len();
            let k = ovf(
                rem.last().expect("non-empty").checked_div(&dl),
                "polynomial division",
            )?;
            for (i, dc) in d.coeffs.iter().enumerate() {
                let sub = ovf(k.checked_mul(dc), "polynomial division")?;
                rem[shift + i] = ovf(rem[shift + i].checked_sub(&sub), "polynomial division")?;
            }
            quo[shift] = k;
            // The leading term cancelled by construction.
            debug_assert!(rem.last().unwrap().is_zero());
            while rem.last().is_some_and(Rational::is_zero) {
                rem.pop();
            }
        }
        Ok((UniPoly::from_coeffs(quo), UniPoly::from_coeffs(rem)))
    }

    /// Greatest common divisor, integer-primitive with a positive
    /// leading coefficient (constants collapse to 1).
    pub(crate) fn gcd(&self, other: &UniPoly) -> Result<UniPoly, OptError> {
        let mut a = self.primitive()?;
        let mut b = other.primitive()?;
        if a.degree() < b.degree() {
            std::mem::swap(&mut a, &mut b);
        }
        while !b.is_zero() {
            let (_, r) = a.divrem(&b)?;
            a = b;
            b = r.primitive()?;
        }
        if a.is_zero() {
            return Ok(UniPoly::zero());
        }
        if a.is_constant() {
            return Ok(UniPoly {
                coeffs: vec![Rational::ONE],
            });
        }
        if a.coeffs.last().expect("non-zero").is_negative() {
            a = a.neg()?;
        }
        a.primitive()
    }

    /// The square-free part `self / gcd(self, self′)` — same distinct
    /// roots, every one simple.
    pub(crate) fn square_free(&self) -> Result<UniPoly, OptError> {
        if self.is_constant() {
            return Ok(self.clone());
        }
        let g = self.gcd(&self.derivative()?)?;
        if g.is_constant() {
            return self.primitive();
        }
        let (q, r) = self.divrem(&g)?;
        debug_assert!(r.is_zero(), "gcd divides");
        q.primitive()
    }

    /// Exact synthetic division by `(x − r)`; `r` must be a root.
    fn deflate(&self, r: &Rational) -> Result<UniPoly, OptError> {
        debug_assert!(!self.is_constant());
        let n = self.coeffs.len();
        let mut quo = vec![Rational::ZERO; n - 1];
        let mut carry = Rational::ZERO;
        for i in (0..n).rev() {
            let b = ovf(
                carry
                    .checked_mul(r)
                    .and_then(|t| t.checked_add(&self.coeffs[i])),
                "deflation",
            )?;
            if i == 0 {
                debug_assert!(b.is_zero(), "deflation at a non-root");
            } else {
                quo[i - 1] = b;
            }
            carry = b;
        }
        Ok(UniPoly::from_coeffs(quo))
    }
}

/// The Sturm chain of a square-free polynomial.
pub(crate) struct Sturm {
    chain: Vec<UniPoly>,
}

impl Sturm {
    /// Build the chain `p, p′, −rem(p, p′), …` (each element primitive;
    /// positive scaling keeps all signs intact). `p` must be
    /// square-free and non-constant.
    pub(crate) fn new(p: &UniPoly) -> Result<Sturm, OptError> {
        debug_assert!(!p.is_constant());
        let mut chain = vec![p.primitive()?, p.derivative()?.primitive()?];
        loop {
            let k = chain.len();
            if chain[k - 1].is_zero() {
                chain.pop();
                break;
            }
            let (_, r) = chain[k - 2].divrem(&chain[k - 1])?;
            if r.is_zero() {
                break;
            }
            chain.push(r.neg()?.primitive()?);
        }
        Ok(Sturm { chain })
    }

    /// Sign variations of the chain at `x` (zero signs skipped).
    fn variations_at(&self, x: &Rational) -> Result<usize, OptError> {
        let mut count = 0usize;
        let mut prev = 0i32;
        for p in &self.chain {
            let s = p.sign_at(x)?;
            if s == 0 {
                continue;
            }
            if prev != 0 && s != prev {
                count += 1;
            }
            prev = s;
        }
        Ok(count)
    }

    /// Number of distinct real roots in the open interval `(a, b)`.
    /// Requires `p(a) ≠ 0` and `p(b) ≠ 0`.
    pub(crate) fn count_roots(&self, a: &Rational, b: &Rational) -> Result<usize, OptError> {
        debug_assert!(a < b);
        debug_assert_ne!(self.chain[0].sign_at(a)?, 0, "left endpoint is a root");
        debug_assert_ne!(self.chain[0].sign_at(b)?, 0, "right endpoint is a root");
        let va = self.variations_at(a)?;
        let vb = self.variations_at(b)?;
        Ok(va.saturating_sub(vb))
    }
}

/// One isolated real root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RootLoc {
    /// The root is exactly this rational.
    Exact(Rational),
    /// Exactly one root lies in the open bracket `(a, b)`;
    /// `p(a) ≠ 0 ≠ p(b)` and `b − a ≤ tol`.
    Bracket(Rational, Rational),
}

impl RootLoc {
    /// A sort/representative key: the root itself or the bracket's
    /// lower end.
    pub fn key(&self) -> Rational {
        match self {
            RootLoc::Exact(r) => *r,
            RootLoc::Bracket(a, _) => *a,
        }
    }

    /// `true` iff the (possibly irrational) root this location stands
    /// for could be `x`: an exact match, or containment in the bracket.
    pub fn could_be(&self, x: &Rational) -> bool {
        match self {
            RootLoc::Exact(r) => r == x,
            RootLoc::Bracket(a, b) => a < x && x < b,
        }
    }
}

/// Bisection-split budget: generous for any sane input, a hard stop
/// for pathologically clustered roots.
const MAX_SPLITS: u32 = 20_000;

/// Isolate every distinct real root of `p` in the **closed** interval
/// `[lo, hi]`, each as an exact rational or a bracket of width `≤ tol`,
/// sorted in ascending order.
pub(crate) fn isolate_roots(
    p: &UniPoly,
    lo: &Rational,
    hi: &Rational,
    tol: &Rational,
) -> Result<Vec<RootLoc>, OptError> {
    debug_assert!(lo <= hi);
    debug_assert!(tol.is_positive());
    if p.is_zero() {
        return Err(OptError::Budget("root isolation of the zero polynomial"));
    }
    let mut out: Vec<RootLoc> = Vec::new();
    let mut q = p.square_free()?;
    if q.is_constant() {
        return Ok(out);
    }
    // Endpoint roots come out exact, then get deflated away so the
    // Sturm counts below see non-root endpoints.
    for end in [lo, hi] {
        if q.sign_at(end)? == 0 {
            out.push(RootLoc::Exact(*end));
            q = q.deflate(end)?;
            if q.is_constant() {
                out.sort_by_key(RootLoc::key);
                return Ok(out);
            }
        }
    }
    if lo == hi {
        out.sort_by_key(RootLoc::key);
        return Ok(out);
    }
    let sturm = Sturm::new(&q)?;
    let n = sturm.count_roots(lo, hi)?;
    let mut splits = 0u32;
    /// One worklist entry: a polynomial with its Sturm chain (shared
    /// across subintervals), the interval, and the root count inside.
    type WorkItem = (
        std::rc::Rc<UniPoly>,
        std::rc::Rc<Sturm>,
        Rational,
        Rational,
        usize,
    );
    let mut work: Vec<WorkItem> = vec![(std::rc::Rc::new(q), std::rc::Rc::new(sturm), *lo, *hi, n)];
    while let Some((q, sturm, a, b, n)) = work.pop() {
        if n == 0 {
            continue;
        }
        let width = ovf(b.checked_sub(&a), "interval width")?;
        if n == 1 && width <= *tol {
            out.push(RootLoc::Bracket(a, b));
            continue;
        }
        splits += 1;
        if splits > MAX_SPLITS {
            return Err(OptError::Budget("root isolation"));
        }
        let m = ovf(
            a.checked_add(&b)
                .and_then(|s| s.checked_div(&Rational::from_int(2))),
            "bisection midpoint",
        )?;
        if q.sign_at(&m)? == 0 {
            // The midpoint is a root: record it exactly, deflate it
            // away, and continue isolating the siblings on a fresh
            // chain (the deflated polynomial is still square-free).
            out.push(RootLoc::Exact(m));
            let q2 = q.deflate(&m)?;
            if q2.is_constant() {
                continue;
            }
            let sturm2 = std::rc::Rc::new(Sturm::new(&q2)?);
            let q2 = std::rc::Rc::new(q2);
            let nl = sturm2.count_roots(&a, &m)?;
            let nr = sturm2.count_roots(&m, &b)?;
            work.push((q2.clone(), sturm2.clone(), a, m, nl));
            work.push((q2, sturm2, m, b, nr));
        } else {
            let nl = sturm.count_roots(&a, &m)?;
            let nr = n - nl;
            work.push((q.clone(), sturm.clone(), a, m, nl));
            work.push((q, sturm, m, b, nr));
        }
    }
    out.sort_by_key(RootLoc::key);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    /// `∏ (x − root)` as a UniPoly.
    fn with_roots(roots: &[Rational]) -> UniPoly {
        let mut p = UniPoly {
            coeffs: vec![Rational::ONE],
        };
        for root in roots {
            // multiply by (x − root)
            let mut next = vec![Rational::ZERO; p.coeffs.len() + 1];
            for (i, c) in p.coeffs.iter().enumerate() {
                next[i + 1] += *c;
                next[i] -= c * root;
            }
            p = UniPoly::from_coeffs(next);
        }
        p
    }

    #[test]
    fn eval_derivative_and_division() {
        // p = x² − 3x + 2 = (x−1)(x−2)
        let p = with_roots(&[r(1, 1), r(2, 1)]);
        assert_eq!(p.eval(&r(0, 1)).unwrap(), r(2, 1));
        assert_eq!(p.eval(&r(3, 1)).unwrap(), r(2, 1));
        assert_eq!(p.sign_at(&r(3, 2)).unwrap(), -1);
        let d = p.derivative().unwrap(); // 2x − 3
        assert_eq!(d.eval(&r(0, 1)).unwrap(), r(-3, 1));
        let (q, rem) = p.divrem(&with_roots(&[r(1, 1)])).unwrap();
        assert_eq!(q, with_roots(&[r(2, 1)]));
        assert!(rem.is_zero());
        assert_eq!(p.deflate(&r(2, 1)).unwrap(), with_roots(&[r(1, 1)]));
    }

    #[test]
    fn gcd_and_square_free() {
        // p = (x−1)²(x−2): square-free part (x−1)(x−2)
        let p = with_roots(&[r(1, 1), r(1, 1), r(2, 1)]);
        let sf = p.square_free().unwrap();
        assert_eq!(sf.degree(), 2);
        assert_eq!(sf.sign_at(&r(1, 1)).unwrap(), 0);
        assert_eq!(sf.sign_at(&r(2, 1)).unwrap(), 0);
        let g = p.gcd(&with_roots(&[r(1, 1), r(3, 1)])).unwrap();
        assert_eq!(g, with_roots(&[r(1, 1)]));
    }

    #[test]
    fn sturm_counts_distinct_roots() {
        let p = with_roots(&[r(-1, 1), r(1, 2), r(3, 1)]);
        let s = Sturm::new(&p).unwrap();
        assert_eq!(s.count_roots(&r(-2, 1), &r(4, 1)).unwrap(), 3);
        assert_eq!(s.count_roots(&r(0, 1), &r(4, 1)).unwrap(), 2);
        assert_eq!(s.count_roots(&r(2, 1), &r(5, 2)).unwrap(), 0);
        // multiple roots are counted once (via the square-free part)
        let m = with_roots(&[r(1, 1), r(1, 1), r(2, 1)]);
        let s = Sturm::new(&m.square_free().unwrap()).unwrap();
        assert_eq!(s.count_roots(&r(0, 1), &r(3, 1)).unwrap(), 2);
    }

    #[test]
    fn isolation_finds_exact_and_bracketed_roots() {
        // Rational roots on dyadic midpoints collapse to Exact.
        let p = with_roots(&[r(1, 1), r(3, 1)]);
        let roots = isolate_roots(&p, &r(-1, 1), &r(7, 1), &r(1, 100)).unwrap();
        assert_eq!(
            roots,
            vec![RootLoc::Exact(r(1, 1)), RootLoc::Exact(r(3, 1))]
        );
        // x² − 2: irrational roots ±√2 come out as brackets.
        let p = UniPoly::from_coeffs(vec![r(-2, 1), r(0, 1), r(1, 1)]);
        let roots = isolate_roots(&p, &r(-2, 1), &r(2, 1), &r(1, 1000)).unwrap();
        assert_eq!(roots.len(), 2);
        for (loc, want) in roots
            .iter()
            .zip([-std::f64::consts::SQRT_2, std::f64::consts::SQRT_2])
        {
            match loc {
                RootLoc::Bracket(a, b) => {
                    assert!((b - a) <= r(1, 1000));
                    assert!(a.to_f64() <= want && want <= b.to_f64());
                }
                RootLoc::Exact(_) => panic!("√2 is not rational"),
            }
        }
        // Endpoint roots are reported exactly.
        let p = with_roots(&[r(0, 1), r(5, 1)]);
        let roots = isolate_roots(&p, &r(0, 1), &r(5, 1), &r(1, 10)).unwrap();
        assert_eq!(
            roots,
            vec![RootLoc::Exact(r(0, 1)), RootLoc::Exact(r(5, 1))]
        );
        // No roots inside → empty.
        let p = with_roots(&[r(10, 1)]);
        assert!(isolate_roots(&p, &r(0, 1), &r(5, 1), &r(1, 10))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn clustered_roots_are_separated() {
        let close = [r(999, 1000), r(1, 1), r(1001, 1000)];
        let p = with_roots(&close);
        let roots = isolate_roots(&p, &r(0, 1), &r(2, 1), &r(1, 10_000)).unwrap();
        assert_eq!(roots.len(), 3);
        for (loc, want) in roots.iter().zip(close) {
            match loc {
                RootLoc::Exact(x) => assert_eq!(*x, want),
                RootLoc::Bracket(a, b) => assert!(*a < want && want < *b),
            }
        }
    }

    #[test]
    fn from_poly_rejects_other_symbols() {
        let x = Symbol::intern("sturm_x");
        let y = Symbol::intern("sturm_y");
        let p = &Poly::symbol(x) * &Poly::symbol(y);
        assert!(UniPoly::from_poly(&p, x).is_none());
        let q = &Poly::symbol(x).pow(2) + &Poly::constant(r(1, 2));
        let u = UniPoly::from_poly(&q, x).unwrap();
        assert_eq!(u.eval(&r(2, 1)).unwrap(), r(9, 2));
    }
}
