//! Errors of the parameter-synthesis engines.

use std::fmt;

use tpn_eval::EvalError;
use tpn_symbolic::Symbol;

/// Why an optimisation problem could not be solved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OptError {
    /// The problem has no box axes.
    EmptyBox,
    /// The same symbol appears on two box axes.
    DuplicateSymbol {
        /// The doubly-boxed symbol.
        symbol: Symbol,
    },
    /// A box axis has `from > to`.
    InvalidBounds {
        /// The offending axis' symbol.
        symbol: Symbol,
    },
    /// The objective or the validity region uses a symbol that no box
    /// axis bounds — the search space would be unbounded in it.
    UnboxedSymbol {
        /// The unbounded symbol.
        symbol: Symbol,
    },
    /// No point of the box satisfies the validity region (or, for the
    /// univariate engine, the feasible interval is narrower than the
    /// tolerance).
    Infeasible(String),
    /// The objective's denominator vanishes inside the feasible
    /// interval: the closed form has a pole there and no optimum can be
    /// certified across it.
    Pole(String),
    /// Exact arithmetic left `i128` range. Usually a too-fine tolerance
    /// (bisection denominators grow with every refinement step) or a
    /// pathologically scaled box.
    Overflow(&'static str),
    /// An internal iteration budget was exhausted (e.g. root isolation
    /// on a polynomial with pathologically clustered roots).
    Budget(&'static str),
    /// The validity region contains an equality constraint over several
    /// box symbols — the multivariate refiner searches full-dimensional
    /// boxes only. Sweep fewer symbols so the tie stays frozen.
    EqualityRegion(String),
    /// The seeding sweep failed.
    Eval(EvalError),
}

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptError::EmptyBox => write!(f, "the search box has no axes"),
            OptError::DuplicateSymbol { symbol } => {
                write!(f, "symbol {symbol} appears on more than one box axis")
            }
            OptError::InvalidBounds { symbol } => {
                write!(f, "box axis {symbol} has from > to")
            }
            OptError::UnboxedSymbol { symbol } => {
                write!(f, "symbol {symbol} is not bounded by any box axis")
            }
            OptError::Infeasible(m) => write!(f, "infeasible: {m}"),
            OptError::Pole(m) => write!(f, "objective has a pole in the box: {m}"),
            OptError::Overflow(what) => {
                write!(
                    f,
                    "exact arithmetic overflow during {what} (try a coarser tolerance)"
                )
            }
            OptError::Budget(what) => write!(f, "iteration budget exhausted during {what}"),
            OptError::EqualityRegion(m) => {
                write!(f, "validity region pins a multivariate tie: {m}")
            }
            OptError::Eval(e) => write!(f, "seed sweep failed: {e}"),
        }
    }
}

impl std::error::Error for OptError {}

impl From<EvalError> for OptError {
    fn from(e: EvalError) -> OptError {
        OptError::Eval(e)
    }
}
