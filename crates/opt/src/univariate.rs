//! The exact univariate engine: a certified optimum of a rational
//! function of **one** parameter over a box ∩ validity-region interval.
//!
//! The derivative of the objective is again a rational function whose
//! denominator is positive wherever the objective is defined, so
//! critical points are exactly the real roots of the derivative's
//! numerator polynomial. [`crate::sturm`] isolates those roots with
//! exact arithmetic; each one is classified by the derivative's sign on
//! either side (evaluated at rational probe points, where the sign is
//! provably non-zero), and the optimum is the exactly-best candidate
//! among the sign-change critical points and the interval endpoints.
//! The certificate this produces is *checkable*: it names the
//! derivative-sign pattern that proves local optimality, and Sturm root
//! counting proves no critical point was missed.

use tpn_core::{OptCertificate, OptGoal, Optimum};
use tpn_rational::Rational;
use tpn_symbolic::{Constraint, RatFn, Relation, Symbol};

use crate::sturm::{isolate_roots, RootLoc, UniPoly};
use crate::OptError;

/// Map an arithmetic overflow to the crate error.
fn ovf<T>(r: Result<T, tpn_rational::ArithmeticError>, what: &'static str) -> Result<T, OptError> {
    r.map_err(|_| OptError::Overflow(what))
}

/// The feasible interval after intersecting the box with the affine
/// validity-region constraints.
struct Interval {
    lo: Rational,
    hi: Rational,
    /// `true` when the bound comes from a *strict* region constraint:
    /// the boundary itself is outside the region.
    open_lo: bool,
    open_hi: bool,
    /// An equality constraint pinned the parameter to this value.
    pin: Option<Rational>,
}

/// Intersect `[lo, hi]` with the affine constraints (each `a·x + b ⋈ 0`).
fn feasible_interval(
    x: Symbol,
    lo: Rational,
    hi: Rational,
    region: &[Constraint],
) -> Result<Interval, OptError> {
    let mut iv = Interval {
        lo,
        hi,
        open_lo: false,
        open_hi: false,
        pin: None,
    };
    for c in region {
        for s in c.expr.symbols() {
            if s != x {
                return Err(OptError::UnboxedSymbol { symbol: s });
            }
        }
        let a = c.expr.coeff(x);
        let b = *c.expr.constant_part();
        if a.is_zero() {
            // Constant constraint: holds or the region is empty.
            let holds = match c.rel {
                Relation::Eq => b.is_zero(),
                Relation::Ge => !b.is_negative(),
                Relation::Gt => b.is_positive(),
            };
            if !holds {
                return Err(OptError::Infeasible(format!(
                    "region constraint {c} is identically false"
                )));
            }
            continue;
        }
        let bound = ovf(b.checked_neg().and_then(|n| n.checked_div(&a)), "bound")?;
        match c.rel {
            Relation::Eq => match iv.pin {
                None => iv.pin = Some(bound),
                Some(p) if p == bound => {}
                Some(p) => {
                    return Err(OptError::Infeasible(format!(
                        "equality constraints pin {x:?} to both {p} and {bound}"
                    )))
                }
            },
            Relation::Gt | Relation::Ge => {
                let strict = c.rel == Relation::Gt;
                if a.is_positive() {
                    // x > bound (or ≥)
                    if bound > iv.lo {
                        iv.lo = bound;
                        iv.open_lo = strict;
                    } else if bound == iv.lo && strict {
                        iv.open_lo = true;
                    }
                } else {
                    // x < bound (or ≤)
                    if bound < iv.hi {
                        iv.hi = bound;
                        iv.open_hi = strict;
                    } else if bound == iv.hi && strict {
                        iv.open_hi = true;
                    }
                }
            }
        }
    }
    Ok(iv)
}

/// Exact objective evaluation `n(x)/q(x)` with overflow-checked
/// arithmetic; the denominator is known non-zero on the interval.
fn eval_exact(n: &UniPoly, q: &UniPoly, x: &Rational) -> Result<Rational, OptError> {
    let nv = n.eval(x)?;
    let qv = q.eval(x)?;
    if qv.is_zero() {
        return Err(OptError::Pole(format!("denominator vanishes at {x}")));
    }
    ovf(nv.checked_div(&qv), "objective evaluation")
}

/// One candidate optimum.
struct Candidate {
    point: Rational,
    value: Rational,
    certificate: OptCertificate,
}

/// Solve `goal` for `objective` (a rational function of the single
/// symbol `x`) over `[lo, hi]` intersected with the affine `region`
/// constraints. `tol` bounds the width of critical-point brackets (and
/// how closely an open region boundary is approached).
pub fn optimize_univariate(
    objective: &RatFn,
    x: Symbol,
    lo: Rational,
    hi: Rational,
    region: &[Constraint],
    goal: OptGoal,
    tol: Rational,
) -> Result<Optimum, OptError> {
    debug_assert!(tol.is_positive());
    let numer =
        UniPoly::from_poly(objective.numer(), x).ok_or(OptError::UnboxedSymbol { symbol: x })?;
    let denom =
        UniPoly::from_poly(objective.denom(), x).ok_or(OptError::UnboxedSymbol { symbol: x })?;

    let iv = feasible_interval(x, lo, hi, region)?;

    // An equality constraint leaves a single feasible point.
    if let Some(p) = iv.pin {
        let inside = (p > iv.lo || (p == iv.lo && !iv.open_lo))
            && (p < iv.hi || (p == iv.hi && !iv.open_hi));
        if !inside {
            return Err(OptError::Infeasible(format!(
                "the pinned point {p} lies outside the feasible interval"
            )));
        }
        let value = eval_exact(&numer, &denom, &p)?;
        return Ok(finish(x, p, value, goal, OptCertificate::Pinned));
    }

    // Shrink open region boundaries inward by the tolerance: the
    // supremum at an open bound is not attained, so the solver reports
    // a point within `tol` of it (and says so in the certificate).
    let a = if iv.open_lo {
        ovf(iv.lo.checked_add(&tol), "interval shrink")?
    } else {
        iv.lo
    };
    let b = if iv.open_hi {
        ovf(iv.hi.checked_sub(&tol), "interval shrink")?
    } else {
        iv.hi
    };
    if a > b {
        return Err(OptError::Infeasible(
            "the feasible interval is empty (or narrower than the tolerance)".to_string(),
        ));
    }

    // The closed form must be defined across the whole search interval.
    if !denom.is_constant() && !isolate_roots(&denom, &a, &b, &tol)?.is_empty() {
        return Err(OptError::Pole(format!(
            "the objective's denominator has a root inside [{a}, {b}]"
        )));
    }
    if denom.sign_at(&a)? == 0 {
        return Err(OptError::Pole(format!("denominator vanishes at {a}")));
    }

    if a == b {
        let value = eval_exact(&numer, &denom, &a)?;
        return Ok(finish(x, a, value, goal, OptCertificate::Pinned));
    }

    // Derivative sign on the interval: sign(f′) = denom_sign · sign(n′)
    // where n′ is the canonical derivative's numerator and denom_sign
    // is the (constant, root-free on the interval) sign of its
    // denominator.
    let df = objective.derivative(x);
    let dnum = UniPoly::from_poly(df.numer(), x).ok_or(OptError::UnboxedSymbol { symbol: x })?;
    let dden = UniPoly::from_poly(df.denom(), x).ok_or(OptError::UnboxedSymbol { symbol: x })?;
    let mid = ovf(
        a.checked_add(&b)
            .and_then(|s| s.checked_div(&Rational::from_int(2))),
        "interval midpoint",
    )?;
    let denom_sign = dden.sign_at(&mid)?;
    debug_assert_ne!(denom_sign, 0, "f' denominator divides q², non-zero here");

    // Constant objective: every feasible point ties; report the lower
    // endpoint with a zero-derivative boundary certificate.
    if dnum.is_zero() {
        let value = eval_exact(&numer, &denom, &a)?;
        return Ok(finish(
            x,
            a,
            value,
            goal,
            OptCertificate::Boundary {
                upper: false,
                open: iv.open_lo,
                derivative_sign: 0,
            },
        ));
    }

    // Critical points: roots of n′ strictly inside (a, b).
    let locs: Vec<RootLoc> = isolate_roots(&dnum, &a, &b, &tol)?
        .into_iter()
        .filter(|loc| !matches!(loc, RootLoc::Exact(r) if *r == a || *r == b))
        .collect();

    // Probe points between consecutive critical points (and the
    // endpoints): the derivative sign is constant and non-zero on each
    // such segment, so one exact sign evaluation per segment certifies
    // the classification of every critical point.
    let mut fence: Vec<Rational> = vec![a];
    for loc in &locs {
        match loc {
            RootLoc::Exact(r) => fence.push(*r),
            RootLoc::Bracket(bl, bh) => {
                fence.push(*bl);
                fence.push(*bh);
            }
        }
    }
    fence.push(b);
    // Sign of f′ on each derivative-root-free segment. For a Bracket
    // the segment between bl and bh contains the root, so the segment
    // list alternates: [a..r1), (r1..r2), …; for brackets the two fence
    // entries bl/bh are themselves valid probes (sign non-zero there).
    let seg_sign = |left: &Rational, right: &Rational| -> Result<i32, OptError> {
        let m = ovf(
            left.checked_add(right)
                .and_then(|s| s.checked_div(&Rational::from_int(2))),
            "probe midpoint",
        )?;
        Ok(denom_sign * dnum.sign_at(&m)?)
    };

    let mut candidates: Vec<Candidate> = Vec::new();
    // Walk the critical points with their adjacent segment signs.
    let mut below_probe = a;
    for loc in &locs {
        let (point, exact, bracket, sign_below, sign_above, above_probe) = match loc {
            RootLoc::Exact(r) => {
                let sb = seg_sign(&below_probe, r)?;
                // Probe above: up to the next fence entry after r.
                let next = fence.iter().find(|f| *f > r).copied().unwrap_or(b);
                let sa = seg_sign(r, &next)?;
                (*r, true, (*r, *r), sb, sa, *r)
            }
            RootLoc::Bracket(bl, bh) => {
                let sb = denom_sign * dnum.sign_at(bl)?;
                let sa = denom_sign * dnum.sign_at(bh)?;
                let m = ovf(
                    bl.checked_add(bh)
                        .and_then(|s| s.checked_div(&Rational::from_int(2))),
                    "bracket midpoint",
                )?;
                (m, false, (*bl, *bh), sb, sa, *bh)
            }
        };
        below_probe = above_probe;
        let is_optimal_kind = match goal {
            OptGoal::Maximize => sign_below > 0 && sign_above < 0,
            OptGoal::Minimize => sign_below < 0 && sign_above > 0,
        };
        if !is_optimal_kind {
            continue;
        }
        candidates.push(Candidate {
            point,
            value: eval_exact(&numer, &denom, &point)?,
            certificate: OptCertificate::Interior {
                exact,
                bracket,
                sign_below,
                sign_above,
            },
        });
    }

    // Endpoint candidates, certified by the derivative sign on their
    // adjacent segment (no critical point intervenes, by isolation).
    let first_stop = locs.first().map(RootLoc::key).unwrap_or(b);
    let lower_sign = seg_sign(&a, &first_stop)?;
    candidates.push(Candidate {
        point: a,
        value: eval_exact(&numer, &denom, &a)?,
        certificate: OptCertificate::Boundary {
            upper: false,
            open: iv.open_lo,
            derivative_sign: lower_sign,
        },
    });
    let last_stop = match locs.last() {
        Some(RootLoc::Exact(r)) => *r,
        Some(RootLoc::Bracket(_, bh)) => *bh,
        None => a,
    };
    let upper_sign = seg_sign(&last_stop, &b)?;
    candidates.push(Candidate {
        point: b,
        value: eval_exact(&numer, &denom, &b)?,
        certificate: OptCertificate::Boundary {
            upper: true,
            open: iv.open_hi,
            derivative_sign: upper_sign,
        },
    });

    // Pick the exactly-best candidate; ties resolve to the smallest x.
    candidates.sort_by_key(|c| c.point);
    let mut best: Option<Candidate> = None;
    for c in candidates {
        let better = match &best {
            None => true,
            Some(cur) => goal.better(&c.value, &cur.value),
        };
        if better {
            best = Some(c);
        }
    }
    let best = best.expect("endpoints always produce candidates");
    Ok(finish(x, best.point, best.value, goal, best.certificate))
}

fn finish(
    x: Symbol,
    point: Rational,
    value: Rational,
    goal: OptGoal,
    certificate: OptCertificate,
) -> Optimum {
    Optimum {
        point: vec![(x, point)],
        value_f64: value.to_f64(),
        value: Some(value),
        goal,
        certificate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpn_symbolic::{LinExpr, Poly};

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    fn sym() -> Symbol {
        Symbol::intern("uni_x")
    }

    /// f = x·(4−x): interior maximum at x = 2.
    fn hump() -> RatFn {
        let x = sym();
        RatFn::from_poly(&Poly::symbol(x) * &(Poly::constant(r(4, 1)) - Poly::symbol(x)))
    }

    #[test]
    fn interior_maximum_is_exact_and_certified() {
        let x = sym();
        let o = optimize_univariate(
            &hump(),
            x,
            r(0, 1),
            r(4, 1),
            &[],
            OptGoal::Maximize,
            r(1, 1 << 20),
        )
        .unwrap();
        assert_eq!(o.point, vec![(x, r(2, 1))]);
        assert_eq!(o.value, Some(r(4, 1)));
        assert!(o.certified());
        match o.certificate {
            OptCertificate::Interior {
                exact,
                sign_below,
                sign_above,
                ..
            } => {
                assert!(exact);
                assert_eq!((sign_below, sign_above), (1, -1));
            }
            other => panic!("expected interior certificate, got {other:?}"),
        }
        // Minimising the same function lands on an endpoint (tie at
        // 0 and 4 resolves to the smaller x).
        let o = optimize_univariate(
            &hump(),
            x,
            r(0, 1),
            r(4, 1),
            &[],
            OptGoal::Minimize,
            r(1, 1 << 20),
        )
        .unwrap();
        assert_eq!(o.point, vec![(x, r(0, 1))]);
        assert!(matches!(
            o.certificate,
            OptCertificate::Boundary { upper: false, .. }
        ));
    }

    #[test]
    fn monotone_objective_lands_on_the_boundary_with_a_sign_certificate() {
        let x = sym();
        // f = 1/(x+3): strictly decreasing; max over [1, 9] is at 1.
        let f = RatFn::new(Poly::one(), &Poly::symbol(x) + &Poly::constant(r(3, 1)));
        let o = optimize_univariate(
            &f,
            x,
            r(1, 1),
            r(9, 1),
            &[],
            OptGoal::Maximize,
            r(1, 1 << 20),
        )
        .unwrap();
        assert_eq!(o.point, vec![(x, r(1, 1))]);
        assert_eq!(o.value, Some(r(1, 4)));
        match o.certificate {
            OptCertificate::Boundary {
                upper,
                open,
                derivative_sign,
            } => {
                assert!(!upper && !open);
                assert_eq!(derivative_sign, -1);
            }
            other => panic!("expected boundary certificate, got {other:?}"),
        }
    }

    #[test]
    fn region_constraints_trim_the_interval() {
        let x = sym();
        // max of x(4−x) over [0,4] ∩ {x − 3 > 0}: the peak at 2 is
        // infeasible; the supremum is the open bound 3, approached
        // within tol.
        let c = Constraint {
            expr: LinExpr::symbol(x) - LinExpr::constant(r(3, 1)),
            rel: Relation::Gt,
        };
        let tol = r(1, 1024);
        let o = optimize_univariate(
            &hump(),
            x,
            r(0, 1),
            r(4, 1),
            std::slice::from_ref(&c),
            OptGoal::Maximize,
            tol,
        )
        .unwrap();
        assert_eq!(o.point, vec![(x, r(3, 1) + tol)]);
        assert!(matches!(
            o.certificate,
            OptCertificate::Boundary {
                upper: false,
                open: true,
                derivative_sign: -1,
            }
        ));
        // An equality constraint pins the point outright.
        let pin = Constraint {
            expr: LinExpr::symbol(x) - LinExpr::constant(r(1, 1)),
            rel: Relation::Eq,
        };
        let o = optimize_univariate(&hump(), x, r(0, 1), r(4, 1), &[pin], OptGoal::Maximize, tol)
            .unwrap();
        assert_eq!(o.point, vec![(x, r(1, 1))]);
        assert_eq!(o.value, Some(r(3, 1)));
        assert_eq!(o.certificate, OptCertificate::Pinned);
    }

    #[test]
    fn irrational_critical_points_come_out_bracketed() {
        let x = sym();
        // f = x/(x² + 2): maximum at x = √2 (irrational).
        let f = RatFn::new(
            Poly::symbol(x),
            &Poly::symbol(x).pow(2) + &Poly::constant(r(2, 1)),
        );
        let tol = r(1, 1 << 24);
        let o = optimize_univariate(&f, x, r(0, 1), r(8, 1), &[], OptGoal::Maximize, tol).unwrap();
        let got = o.point[0].1.to_f64();
        assert!((got - std::f64::consts::SQRT_2).abs() < 1e-6, "{got}");
        match o.certificate {
            OptCertificate::Interior {
                exact,
                bracket,
                sign_below,
                sign_above,
            } => {
                assert!(!exact);
                assert!((bracket.1 - bracket.0) <= tol);
                assert_eq!((sign_below, sign_above), (1, -1));
            }
            other => panic!("expected interior certificate, got {other:?}"),
        }
        // The f64 value agrees with the exact one at the bracket midpoint.
        assert!((o.value_f64 - o.value.unwrap().to_f64()).abs() < 1e-15);
    }

    #[test]
    fn poles_and_infeasibility_error_cleanly() {
        let x = sym();
        // f = 1/(x − 2) has a pole inside [0, 4].
        let f = RatFn::new(Poly::one(), &Poly::symbol(x) - &Poly::constant(r(2, 1)));
        let e = optimize_univariate(&f, x, r(0, 1), r(4, 1), &[], OptGoal::Maximize, r(1, 1024))
            .unwrap_err();
        assert!(matches!(e, OptError::Pole(_)), "{e}");
        // Contradictory region → infeasible.
        let above = Constraint {
            expr: LinExpr::symbol(x) - LinExpr::constant(r(10, 1)),
            rel: Relation::Gt,
        };
        let e = optimize_univariate(
            &hump(),
            x,
            r(0, 1),
            r(4, 1),
            &[above],
            OptGoal::Maximize,
            r(1, 1024),
        )
        .unwrap_err();
        assert!(matches!(e, OptError::Infeasible(_)), "{e}");
    }
}
