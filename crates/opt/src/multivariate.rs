//! The multivariate refiner: coarse compiled-`f64` grid seeding plus
//! projected gradient ascent, with exact re-verification of the final
//! point.
//!
//! For more than one free parameter there is no Sturm-style exact
//! procedure in this codebase, so the engine is numeric with an exact
//! epilogue: the objective, its partial derivatives and the validity-
//! region constraints are compiled into **one** shared `tpn-eval`
//! program (CSE makes the marginal cost of the extra outputs small),
//! a coarse grid seeds the search via [`tpn_eval::argbest_f64`]
//! (parallel across std threads, deterministic at any thread count),
//! gradient ascent with backtracking line search polishes the seed
//! inside box ∩ region, and the final point is snapped to exact
//! rationals, re-checked against every region constraint with exact
//! arithmetic, and re-evaluated in the exact compiled backend. The
//! returned [`Optimum`] therefore stands on exact feasibility and an
//! exact objective value even though the *search* ran in `f64`.

use tpn_core::{OptCertificate, OptGoal, Optimum};
use tpn_rational::Rational;
use tpn_symbolic::{Assignment, Constraint, Poly, RatFn, Relation, Symbol};

use tpn_eval::{argbest_f64, Axis, Compiled, Grid, SweepOptions};

use crate::{OptError, OptOptions};

/// Denominator bound for snapping `f64` coordinates back to exact
/// rationals (dyadic-ish approximants; `Rational::from_f64_approx`
/// picks the best continued-fraction convergent under this bound).
const SNAP_MAX_DEN: i128 = 1 << 32;

/// Gradient-ascent improvement must beat this relative threshold for a
/// step to be accepted (pure noise steps would never converge).
const REL_IMPROVEMENT: f64 = 1e-15;

/// Solve `goal` for `objective` over the box `axes` intersected with
/// the affine validity-region `region`.
pub fn optimize_multivariate(
    objective: &RatFn,
    axes: &[(Symbol, Rational, Rational)],
    region: &[Constraint],
    goal: OptGoal,
    opts: &OptOptions,
) -> Result<Optimum, OptError> {
    for c in region {
        if c.rel == Relation::Eq {
            return Err(OptError::EqualityRegion(format!(
                "{c} (two lifted attributes are tied at the base point)"
            )));
        }
    }

    // One shared program: objective, then one partial derivative per
    // axis, then one output per region constraint.
    let symbols: Vec<Symbol> = axes.iter().map(|(s, _, _)| *s).collect();
    let mut exprs: Vec<RatFn> = Vec::with_capacity(1 + symbols.len() + region.len());
    exprs.push(objective.clone());
    for &s in &symbols {
        exprs.push(objective.derivative(s));
    }
    for c in region {
        exprs.push(RatFn::from_poly(Poly::from_linexpr(&c.expr)));
    }
    let compiled = Compiled::compile(&exprs);
    let k = symbols.len();
    let n_constraints = region.len();
    let feasible = |out: &[Option<f64>]| -> bool {
        out[1 + k..1 + k + n_constraints]
            .iter()
            .zip(region)
            .all(|(v, c)| match (v, c.rel) {
                (Some(v), Relation::Gt) => *v > 0.0,
                (Some(v), Relation::Ge) => *v >= 0.0,
                (Some(v), Relation::Eq) => *v == 0.0,
                (None, _) => false,
            })
    };

    // Coarse seeding over a uniform grid: the largest per-axis count
    // whose cartesian product stays within the seed budget.
    let per_axis = per_axis_steps(opts.seed_points, k);
    let grid_axes: Vec<Axis> = axes
        .iter()
        .map(|&(s, lo, hi)| {
            if lo > hi {
                return Err(OptError::InvalidBounds { symbol: s });
            }
            Axis::try_linear(s, lo, hi, per_axis).map_err(OptError::from)
        })
        .collect::<Result<_, _>>()?;
    let grid = Grid::new(grid_axes)?;
    let sweep_opts = SweepOptions {
        threads: opts.threads,
        // The grid was sized from the seed budget above (with a floor
        // of two points per axis); no second cap is needed here.
        max_points: u64::MAX,
    };
    let fixed = Assignment::new();
    let maximize = goal == OptGoal::Maximize;
    let seed = argbest_f64(&compiled, &grid, &fixed, &sweep_opts, 0, maximize, feasible)?
        .ok_or_else(|| {
            OptError::Infeasible(
                "no grid point of the box satisfies the validity region".to_string(),
            )
        })?;
    let mut seed_coords: Vec<Rational> = Vec::new();
    grid.point(seed.0, &mut seed_coords);

    // Gradient ascent from the seed, in f64, entirely sequential (the
    // result must not depend on the thread count). A box axis whose
    // symbol cancelled out of the objective (and appears in no region
    // constraint) has no program variable at all — its coordinate is
    // simply inert: zero derivative, nothing to write into the point.
    let var_of: Vec<Option<usize>> = symbols.iter().map(|&s| compiled.var_index(s)).collect();
    let lo_f: Vec<f64> = axes.iter().map(|(_, lo, _)| lo.to_f64()).collect();
    let hi_f: Vec<f64> = axes.iter().map(|(_, _, hi)| hi.to_f64()).collect();
    let mut point_f = vec![0.0f64; compiled.vars().len()];
    let mut scratch: Vec<f64> = Vec::new();
    let mut out = vec![None; compiled.num_outputs()];
    let mut eval_at = |x: &[f64], out: &mut Vec<Option<f64>>, point_f: &mut Vec<f64>| {
        for (slot, &var) in x.iter().zip(&var_of) {
            if let Some(var) = var {
                point_f[var] = *slot;
            }
        }
        compiled.eval_f64(point_f, &mut scratch, out);
    };

    let mut x: Vec<f64> = seed_coords.iter().map(Rational::to_f64).collect();
    eval_at(&x, &mut out, &mut point_f);
    let mut fx = out[0].expect("seed row was feasible and defined");
    let span: f64 = lo_f
        .iter()
        .zip(&hi_f)
        .map(|(l, h)| h - l)
        .fold(0.0f64, f64::max);
    let mut step = span / 4.0;
    let min_step = span * 1e-12;
    let mut iterations = 0u32;
    let mut grad_norm = 0.0f64;
    let sign = if goal == OptGoal::Maximize { 1.0 } else { -1.0 };
    let mut cand = vec![0.0f64; k];
    let mut cand_out = vec![None; compiled.num_outputs()];
    while iterations < opts.max_iters && step > min_step {
        // Ascent direction from the compiled partial derivatives.
        eval_at(&x, &mut out, &mut point_f);
        let mut g = vec![0.0f64; k];
        let mut norm2 = 0.0f64;
        for (i, slot) in g.iter_mut().enumerate() {
            *slot = sign * out[1 + i].unwrap_or(0.0);
            norm2 += *slot * *slot;
        }
        grad_norm = norm2.sqrt();
        if grad_norm == 0.0 || !grad_norm.is_finite() {
            break;
        }
        // Backtracking line search along the unit ascent direction,
        // projected onto the box, rejected outside the region.
        let mut accepted = false;
        let mut eta = step;
        for _ in 0..30 {
            for i in 0..k {
                cand[i] = (x[i] + eta * g[i] / grad_norm).clamp(lo_f[i], hi_f[i]);
            }
            eval_at(&cand, &mut cand_out, &mut point_f);
            let improves = cand_out[0]
                .is_some_and(|v| sign * v > sign * fx + fx.abs() * REL_IMPROVEMENT)
                && feasible(&cand_out);
            if improves {
                x.copy_from_slice(&cand);
                fx = cand_out[0].expect("improving step is defined");
                accepted = true;
                break;
            }
            eta /= 2.0;
        }
        iterations += 1;
        if accepted {
            step = (eta * 2.0).min(span / 4.0);
        } else {
            break;
        }
    }

    // Exact epilogue: snap the final point, re-verify feasibility with
    // exact arithmetic, and prefer the snapped point over the raw seed
    // only if it is exactly feasible and exactly at least as good.
    let snapped: Option<Vec<Rational>> = x
        .iter()
        .zip(axes)
        .map(|(&v, &(_, lo, hi))| {
            Rational::from_f64_approx(v, SNAP_MAX_DEN).map(|r| r.max(lo).min(hi))
        })
        .collect();
    let mut chosen: Option<(Vec<Rational>, Option<Rational>, f64)> = None;
    let mut consider = |coords: &[Rational]| {
        let a = symbols
            .iter()
            .zip(coords)
            .fold(Assignment::new(), |acc, (&s, &v)| acc.with(s, v));
        // Overflow-checked membership: a check that leaves i128 range
        // conservatively counts as infeasible rather than panicking
        // (the crate's no-panic contract covers hostile box bounds).
        if !region.iter().all(|c| holds_checked(c, &a) == Some(true)) {
            return;
        }
        let exact_point: Vec<Rational> = compiled
            .vars()
            .iter()
            .map(|s| *a.get(*s).expect("all program vars are axes"))
            .collect();
        let exact_row = compiled.eval_exact_once(&exact_point);
        let f64_point: Vec<f64> = exact_point.iter().map(Rational::to_f64).collect();
        let f64_row = compiled.eval_f64_once(&f64_point);
        let (value, value_f64) = (exact_row[0], f64_row[0]);
        let Some(vf) = value_f64 else { return };
        let better = match &chosen {
            None => true,
            Some((_, Some(cur), _)) => match value {
                Some(v) => goal.better(&v, cur),
                None => false,
            },
            Some((_, None, cur_f)) => goal.better_f64(vf, *cur_f),
        };
        if better {
            chosen = Some((coords.to_vec(), value, vf));
        }
    };
    consider(&seed_coords);
    if let Some(s) = &snapped {
        consider(s);
    }
    let (coords, value, value_f64) = chosen.ok_or_else(|| {
        OptError::Infeasible(
            "the refined point and the seed both fail exact region re-verification".to_string(),
        )
    })?;
    Ok(Optimum {
        point: symbols.into_iter().zip(coords).collect(),
        value,
        value_f64,
        goal,
        certificate: OptCertificate::Refined {
            iterations,
            grad_norm,
        },
    })
}

/// Exact constraint membership with overflow-checked arithmetic —
/// [`Constraint::check`] evaluates through `Rational`'s panicking
/// operators, which a hostile box bound must not reach. `None` when
/// the check itself overflows `i128`.
fn holds_checked(c: &Constraint, a: &Assignment) -> Option<bool> {
    let mut acc = *c.expr.constant_part();
    for (s, coeff) in c.expr.terms() {
        let term = coeff.checked_mul(a.get(s)?).ok()?;
        acc = acc.checked_add(&term).ok()?;
    }
    Some(match c.rel {
        Relation::Eq => acc.is_zero(),
        Relation::Ge => !acc.is_negative(),
        Relation::Gt => acc.is_positive(),
    })
}

/// The largest per-axis point count whose `k`-fold product stays within
/// `budget` (at least 2 so every axis sees both of its endpoints).
fn per_axis_steps(budget: u64, k: usize) -> usize {
    let mut n: u64 = 2;
    loop {
        let next = n + 1;
        let mut product: u64 = 1;
        let mut fits = true;
        for _ in 0..k {
            product = match product.checked_mul(next) {
                Some(p) if p <= budget => p,
                _ => {
                    fits = false;
                    break;
                }
            };
        }
        if !fits {
            return n as usize;
        }
        n = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpn_symbolic::LinExpr;

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn per_axis_budgeting() {
        assert_eq!(per_axis_steps(4096, 1), 4096);
        assert_eq!(per_axis_steps(4096, 2), 64);
        assert_eq!(per_axis_steps(4096, 3), 16);
        assert_eq!(per_axis_steps(1, 2), 2, "floor of two points per axis");
    }

    #[test]
    fn refines_a_two_dimensional_peak() {
        let x = Symbol::intern("mv_x");
        let y = Symbol::intern("mv_y");
        // f = x(4−x) + y(2−y): separable, peak at (2, 1), value 5.
        let fx = &Poly::symbol(x) * &(Poly::constant(r(4, 1)) - Poly::symbol(x));
        let fy = &Poly::symbol(y) * &(Poly::constant(r(2, 1)) - Poly::symbol(y));
        let f = RatFn::from_poly(&fx + &fy);
        let axes = [(x, r(0, 1), r(4, 1)), (y, r(0, 1), r(2, 1))];
        let opts = OptOptions::default();
        let o = optimize_multivariate(&f, &axes, &[], OptGoal::Maximize, &opts).unwrap();
        assert!(!o.certified());
        let px = o.point[0].1.to_f64();
        let py = o.point[1].1.to_f64();
        assert!((px - 2.0).abs() < 1e-3, "{px}");
        assert!((py - 1.0).abs() < 1e-3, "{py}");
        assert!((o.value_f64 - 5.0).abs() < 1e-6, "{}", o.value_f64);
        // exact re-verification produced an exact value too
        let v = o.value.expect("exact value at a rational point");
        assert!((v.to_f64() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn an_axis_absent_from_the_objective_is_inert_not_a_panic() {
        // The objective ignores y entirely (and no region constraint
        // mentions it): y has no program variable, its derivative is
        // zero, and the refiner must still answer instead of panicking
        // on a missing var index.
        let x = Symbol::intern("mv_inert_x");
        let y = Symbol::intern("mv_inert_y");
        let f = RatFn::from_poly(&Poly::symbol(x) * &(Poly::constant(r(4, 1)) - Poly::symbol(x)));
        let axes = [(x, r(0, 1), r(4, 1)), (y, r(1, 1), r(2, 1))];
        let o = optimize_multivariate(&f, &axes, &[], OptGoal::Maximize, &OptOptions::default())
            .unwrap();
        assert!((o.point[0].1.to_f64() - 2.0).abs() < 1e-3);
        // The inert coordinate stays at its seed value, inside its box.
        let yv = o.point[1].1;
        assert!(yv >= r(1, 1) && yv <= r(2, 1), "{yv}");
        assert!((o.value_f64 - 4.0).abs() < 1e-6);
    }

    #[test]
    fn result_is_invariant_under_thread_count() {
        let x = Symbol::intern("mv_t_x");
        let y = Symbol::intern("mv_t_y");
        let f = RatFn::new(
            &Poly::symbol(x) * &Poly::symbol(y),
            &(&Poly::symbol(x) + &Poly::symbol(y)) * &(&Poly::symbol(x) + &Poly::symbol(y)),
        );
        let axes = [(x, r(1, 1), r(9, 1)), (y, r(1, 1), r(9, 1))];
        let one = OptOptions {
            threads: 1,
            ..OptOptions::default()
        };
        let eight = OptOptions {
            threads: 8,
            ..OptOptions::default()
        };
        let a = optimize_multivariate(&f, &axes, &[], OptGoal::Maximize, &one).unwrap();
        let b = optimize_multivariate(&f, &axes, &[], OptGoal::Maximize, &eight).unwrap();
        assert_eq!(a, b, "threads only parallelise the seeding sweep");
    }

    #[test]
    fn region_constraints_bind_and_equalities_are_rejected() {
        let x = Symbol::intern("mv_r_x");
        let y = Symbol::intern("mv_r_y");
        let fx = &Poly::symbol(x) * &(Poly::constant(r(4, 1)) - Poly::symbol(x));
        let fy = &Poly::symbol(y) * &(Poly::constant(r(2, 1)) - Poly::symbol(y));
        let f = RatFn::from_poly(&fx + &fy);
        let axes = [(x, r(0, 1), r(4, 1)), (y, r(0, 1), r(2, 1))];
        // x − 3 > 0 excludes the unconstrained peak at x = 2.
        let gt = Constraint {
            expr: LinExpr::symbol(x) - LinExpr::constant(r(3, 1)),
            rel: Relation::Gt,
        };
        let opts = OptOptions::default();
        let o = optimize_multivariate(
            &f,
            &axes,
            std::slice::from_ref(&gt),
            OptGoal::Maximize,
            &opts,
        )
        .unwrap();
        let px = o.point[0].1;
        assert!(px > r(3, 1), "feasible: {px}");
        assert!(px.to_f64() < 3.2, "pushed to the boundary: {px}");
        // Equality ties are out of scope for the refiner.
        let eq = Constraint {
            expr: LinExpr::symbol(x) - LinExpr::symbol(y),
            rel: Relation::Eq,
        };
        let e = optimize_multivariate(&f, &axes, &[eq], OptGoal::Maximize, &opts).unwrap_err();
        assert!(matches!(e, OptError::EqualityRegion(_)), "{e}");
        // A region no box point satisfies is infeasible.
        let far = Constraint {
            expr: LinExpr::symbol(x) - LinExpr::constant(r(100, 1)),
            rel: Relation::Gt,
        };
        let e = optimize_multivariate(&f, &axes, &[far], OptGoal::Maximize, &opts).unwrap_err();
        assert!(matches!(e, OptError::Infeasible(_)), "{e}");
    }
}
