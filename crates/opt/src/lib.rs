//! `tpn-opt` — parameter synthesis: find the timing and frequency
//! parameters that optimise a performance expression.
//!
//! The paper's closed forms exist to answer design questions — *what
//! timeout maximises throughput?* — and the sweep subsystem (`tpn-eval`,
//! PR 3) can only tabulate them. This crate answers the question
//! itself. Given an objective [`RatFn`] (typically an exported
//! [`ExprTarget`](tpn_core::ExprTarget) closed form derived through a
//! [`LiftedDomain`](https://docs.rs/tpn-reach) lift), a box of per-symbol
//! bounds and the lift's validity-region constraints, [`optimize`]
//! returns the best feasible point with a justification:
//!
//! | engine | when | certificate |
//! |---|---|---|
//! | [`optimize_univariate`] | one box axis | **exact** — Sturm-sequence root isolation of the derivative numerator over exact rationals, critical points classified by certified derivative sign changes |
//! | [`optimize_multivariate`] | several axes | numeric — compiled-`f64` grid seeding (parallel, thread-count invariant) + projected gradient ascent, with the final point snapped to rationals, exactly re-verified against the region and exactly re-evaluated |
//!
//! ```
//! use tpn_core::OptGoal;
//! use tpn_opt::{optimize, OptOptions};
//! use tpn_rational::Rational;
//! use tpn_symbolic::{Poly, RatFn, Symbol};
//!
//! // f = x·(4−x) peaks at x = 2 — and the optimiser can prove it.
//! let x = Symbol::intern("opt_doc_x");
//! let f = RatFn::from_poly(
//!     &Poly::symbol(x) * &(Poly::constant(Rational::from_int(4)) - Poly::symbol(x)),
//! );
//! let axes = [(x, Rational::ZERO, Rational::from_int(4))];
//! let best = optimize(&f, &axes, &[], OptGoal::Maximize, &OptOptions::default()).unwrap();
//! assert_eq!(best.point[0].1, Rational::from_int(2));
//! assert_eq!(best.value, Some(Rational::from_int(4)));
//! assert!(best.certified());
//! ```

mod error;
mod multivariate;
mod sturm;
mod univariate;

use tpn_core::{OptGoal, Optimum};
use tpn_rational::Rational;
use tpn_symbolic::{Constraint, RatFn, Symbol};

pub use error::OptError;
pub use multivariate::optimize_multivariate;
pub use sturm::RootLoc;
pub use univariate::optimize_univariate;

/// Isolate every distinct real root of `p` (viewed as univariate in
/// `x`) within the closed interval `[lo, hi]`: each root comes out
/// either exactly rational or bracketed to width `≤ tol`, in ascending
/// order, certified by Sturm-sequence root counting. Errors if `p`
/// mentions a symbol other than `x` or is identically zero.
pub fn isolate_real_roots(
    p: &tpn_symbolic::Poly,
    x: Symbol,
    lo: &Rational,
    hi: &Rational,
    tol: &Rational,
) -> Result<Vec<RootLoc>, OptError> {
    let u = sturm::UniPoly::from_poly(p, x).ok_or_else(|| {
        let other = p
            .symbols()
            .into_iter()
            .find(|&s| s != x)
            .expect("from_poly fails only on foreign symbols");
        OptError::UnboxedSymbol { symbol: other }
    })?;
    sturm::isolate_roots(&u, lo, hi, tol)
}

/// Knobs of the search engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptOptions {
    /// Worker threads for the seeding sweep (the result is identical at
    /// every thread count).
    pub threads: usize,
    /// Total seed-grid point budget of the multivariate engine.
    pub seed_points: u64,
    /// Gradient-ascent iteration cap of the multivariate engine.
    pub max_iters: u32,
    /// Width bound for the univariate engine's critical-point brackets
    /// (and how closely an open region boundary is approached). `None`
    /// picks `interval width / 2^20`.
    pub tolerance: Option<Rational>,
}

impl Default for OptOptions {
    fn default() -> OptOptions {
        OptOptions {
            threads: 4,
            seed_points: 4096,
            max_iters: 200,
            tolerance: None,
        }
    }
}

/// Find the feasible point of the box `axes` ∩ `region` that optimises
/// `objective` under `goal`. Dispatches to the exact univariate engine
/// for a one-axis box and to the grid-seeded gradient refiner
/// otherwise; see the crate docs for the certificate each produces.
pub fn optimize(
    objective: &RatFn,
    axes: &[(Symbol, Rational, Rational)],
    region: &[Constraint],
    goal: OptGoal,
    opts: &OptOptions,
) -> Result<Optimum, OptError> {
    if axes.is_empty() {
        return Err(OptError::EmptyBox);
    }
    for (i, &(s, lo, hi)) in axes.iter().enumerate() {
        if axes[..i].iter().any(|&(t, _, _)| t == s) {
            return Err(OptError::DuplicateSymbol { symbol: s });
        }
        if lo > hi {
            return Err(OptError::InvalidBounds { symbol: s });
        }
    }
    let boxed = |s: Symbol| axes.iter().any(|&(t, _, _)| t == s);
    for s in objective.symbols() {
        if !boxed(s) {
            return Err(OptError::UnboxedSymbol { symbol: s });
        }
    }
    for c in region {
        for s in c.expr.symbols() {
            if !boxed(s) {
                return Err(OptError::UnboxedSymbol { symbol: s });
            }
        }
    }
    if let [(x, lo, hi)] = axes {
        let tol = match &opts.tolerance {
            Some(t) if t.is_positive() => *t,
            _ => default_tolerance(lo, hi)?,
        };
        optimize_univariate(objective, *x, *lo, *hi, region, goal, tol)
    } else {
        optimize_multivariate(objective, axes, region, goal, opts)
    }
}

/// `width / 2^20`, or a fixed `2^-20` for a degenerate zero-width box.
fn default_tolerance(lo: &Rational, hi: &Rational) -> Result<Rational, OptError> {
    let width = hi
        .checked_sub(lo)
        .map_err(|_| OptError::Overflow("tolerance derivation"))?;
    if width.is_zero() {
        return Ok(Rational::new(1, 1 << 20));
    }
    width
        .checked_div(&Rational::from_int(1 << 20))
        .map_err(|_| OptError::Overflow("tolerance derivation"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpn_symbolic::Poly;

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn dispatch_validates_the_box() {
        let x = Symbol::intern("opt_lib_x");
        let y = Symbol::intern("opt_lib_y");
        let f = RatFn::from_poly(&Poly::symbol(x) + &Poly::symbol(y));
        let opts = OptOptions::default();
        let e = optimize(&f, &[], &[], OptGoal::Maximize, &opts).unwrap_err();
        assert_eq!(e, OptError::EmptyBox);
        let e = optimize(&f, &[(x, r(0, 1), r(1, 1))], &[], OptGoal::Maximize, &opts).unwrap_err();
        assert_eq!(e, OptError::UnboxedSymbol { symbol: y });
        let e = optimize(
            &f,
            &[(x, r(0, 1), r(1, 1)), (x, r(0, 1), r(1, 1))],
            &[],
            OptGoal::Maximize,
            &opts,
        )
        .unwrap_err();
        assert_eq!(e, OptError::DuplicateSymbol { symbol: x });
        let e = optimize(
            &f,
            &[(x, r(2, 1), r(1, 1)), (y, r(0, 1), r(1, 1))],
            &[],
            OptGoal::Maximize,
            &opts,
        )
        .unwrap_err();
        assert_eq!(e, OptError::InvalidBounds { symbol: x });
    }

    #[test]
    fn one_axis_routes_to_the_exact_engine() {
        let x = Symbol::intern("opt_lib_uni");
        let f = RatFn::from_poly(&Poly::symbol(x) * &(Poly::constant(r(6, 1)) - Poly::symbol(x)));
        let o = optimize(
            &f,
            &[(x, r(0, 1), r(6, 1))],
            &[],
            OptGoal::Maximize,
            &OptOptions::default(),
        )
        .unwrap();
        assert!(o.certified());
        assert_eq!(o.point, vec![(x, r(3, 1))]);
        assert_eq!(o.value, Some(r(9, 1)));
    }
}
