//! Numeric assignments for symbols.

use std::collections::BTreeMap;

use tpn_rational::Rational;

use crate::Symbol;

/// A partial map from symbols to exact numeric values.
///
/// Used to *instantiate* symbolic results: evaluating the symbolic
/// throughput expression at the paper's Figure-1b times must reproduce
/// the numeric analysis exactly, and the property tests rely on this.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Assignment {
    values: BTreeMap<Symbol, Rational>,
}

impl Assignment {
    /// An empty assignment.
    pub fn new() -> Assignment {
        Assignment::default()
    }

    /// Bind `sym` to `value`, replacing any previous binding.
    pub fn set(&mut self, sym: Symbol, value: Rational) -> &mut Self {
        self.values.insert(sym, value);
        self
    }

    /// Builder-style binding.
    pub fn with(mut self, sym: Symbol, value: Rational) -> Self {
        self.values.insert(sym, value);
        self
    }

    /// Look up a binding.
    pub fn get(&self, sym: Symbol) -> Option<&Rational> {
        self.values.get(&sym)
    }

    /// `true` iff `sym` is bound.
    pub fn contains(&self, sym: Symbol) -> bool {
        self.values.contains_key(&sym)
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` iff no bindings.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterate over bindings in symbol order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &Rational)> {
        self.values.iter().map(|(s, v)| (*s, v))
    }
}

impl FromIterator<(Symbol, Rational)> for Assignment {
    fn from_iter<I: IntoIterator<Item = (Symbol, Rational)>>(iter: I) -> Self {
        Assignment {
            values: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get() {
        let x = Symbol::intern("assign_x");
        let y = Symbol::intern("assign_y");
        let mut a = Assignment::new();
        assert!(a.is_empty());
        a.set(x, Rational::from_int(3));
        assert_eq!(a.get(x), Some(&Rational::from_int(3)));
        assert_eq!(a.get(y), None);
        assert!(a.contains(x));
        assert!(!a.contains(y));
        assert_eq!(a.len(), 1);
        a.set(x, Rational::from_int(4));
        assert_eq!(a.get(x), Some(&Rational::from_int(4)));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn from_iter_and_iter() {
        let x = Symbol::intern("assign_i1");
        let y = Symbol::intern("assign_i2");
        let a: Assignment = [(x, Rational::ONE), (y, Rational::from_int(2))]
            .into_iter()
            .collect();
        let pairs: Vec<_> = a.iter().collect();
        assert_eq!(pairs.len(), 2);
    }
}
