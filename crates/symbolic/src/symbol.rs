//! Interned symbols.
//!
//! A [`Symbol`] is a cheap, copyable handle to an interned name such as
//! `E(t3)`, `F(t4)` or `f4`. Interning makes symbol comparison and
//! hashing O(1), which matters because symbols are the keys of every
//! polynomial monomial and linear-expression term in the workspace.
//!
//! The interner is a process-global table: two calls to
//! [`Symbol::intern`] with the same string always return the same
//! handle, from any thread. Symbol ordering (used for canonical display
//! and for the deterministic variable-elimination order of the
//! constraint solver) is *interning order*, not lexicographic order —
//! deterministic as long as symbol creation order is deterministic,
//! which it is everywhere in this workspace.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// A handle to an interned symbol name.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

/// The global interner state.
#[derive(Default)]
pub struct SymbolTable {
    names: Vec<String>,
    by_name: HashMap<String, u32>,
}

impl SymbolTable {
    fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&id) = self.by_name.get(name) {
            return Symbol(id);
        }
        let id = u32::try_from(self.names.len()).expect("symbol table overflow");
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), id);
        Symbol(id)
    }

    fn name(&self, sym: Symbol) -> &str {
        &self.names[sym.0 as usize]
    }
}

fn table() -> &'static Mutex<SymbolTable> {
    static TABLE: OnceLock<Mutex<SymbolTable>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(SymbolTable::default()))
}

impl Symbol {
    /// Intern a name, returning its handle. Idempotent.
    pub fn intern(name: &str) -> Symbol {
        table().lock().expect("symbol table poisoned").intern(name)
    }

    /// The interned name.
    pub fn name(&self) -> String {
        table()
            .lock()
            .expect("symbol table poisoned")
            .name(*self)
            .to_string()
    }

    /// The raw interner index (stable for the process lifetime).
    pub fn index(&self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.name())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("E(t3)");
        let b = Symbol::intern("E(t3)");
        assert_eq!(a, b);
        assert_eq!(a.name(), "E(t3)");
    }

    #[test]
    fn distinct_names_distinct_symbols() {
        let a = Symbol::intern("F(t4)");
        let b = Symbol::intern("F(t5)");
        assert_ne!(a, b);
        assert_eq!(a.name(), "F(t4)");
        assert_eq!(b.name(), "F(t5)");
    }

    #[test]
    fn display_shows_name() {
        let a = Symbol::intern("f4");
        assert_eq!(a.to_string(), "f4");
        assert!(format!("{a:?}").contains("f4"));
    }

    #[test]
    fn interning_from_threads_is_consistent() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| Symbol::intern("threaded")))
            .collect();
        let first = Symbol::intern("threaded");
        for h in handles {
            assert_eq!(h.join().unwrap(), first);
        }
    }
}
