//! Monomials: products of symbol powers.

use std::collections::BTreeMap;
use std::fmt;

use crate::Symbol;

/// A monomial `Π symbolᵉ` with positive integer exponents, kept in
/// canonical form (no zero exponents). The empty monomial is `1`.
///
/// Monomials are ordered by *graded lexicographic* order (total degree
/// first, then lexicographic on the symbol/exponent sequence), which
/// gives polynomials a deterministic leading term.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Monomial {
    exps: BTreeMap<Symbol, u32>, // invariant: no zero exponents
}

impl Monomial {
    /// The unit monomial `1`.
    pub fn one() -> Monomial {
        Monomial::default()
    }

    /// The monomial consisting of a single symbol.
    pub fn symbol(s: Symbol) -> Monomial {
        let mut exps = BTreeMap::new();
        exps.insert(s, 1);
        Monomial { exps }
    }

    /// A symbol raised to a power.
    pub fn power(s: Symbol, e: u32) -> Monomial {
        let mut m = Monomial::one();
        if e > 0 {
            m.exps.insert(s, e);
        }
        m
    }

    /// `true` iff this is the unit monomial.
    pub fn is_one(&self) -> bool {
        self.exps.is_empty()
    }

    /// The exponent of `s` (zero if absent).
    pub fn exponent(&self, s: Symbol) -> u32 {
        self.exps.get(&s).copied().unwrap_or(0)
    }

    /// Total degree.
    pub fn degree(&self) -> u32 {
        self.exps.values().sum()
    }

    /// Degree in a single symbol.
    pub fn degree_in(&self, s: Symbol) -> u32 {
        self.exponent(s)
    }

    /// Iterate over (symbol, exponent) pairs in symbol order.
    pub fn factors(&self) -> impl Iterator<Item = (Symbol, u32)> + '_ {
        self.exps.iter().map(|(s, e)| (*s, *e))
    }

    /// The symbols occurring in this monomial.
    pub fn symbols(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.exps.keys().copied()
    }

    /// Product of two monomials.
    pub fn mul(&self, other: &Monomial) -> Monomial {
        let mut out = self.clone();
        for (s, e) in &other.exps {
            *out.exps.entry(*s).or_insert(0) += e;
        }
        out
    }

    /// Exact quotient `self / other`, or `None` if `other` does not
    /// divide `self`.
    pub fn div(&self, other: &Monomial) -> Option<Monomial> {
        let mut out = self.clone();
        for (s, e) in &other.exps {
            let have = out.exps.get_mut(s)?;
            if *have < *e {
                return None;
            }
            *have -= e;
            if *have == 0 {
                out.exps.remove(s);
            }
        }
        Some(out)
    }

    /// Componentwise minimum (the gcd of two monomials).
    pub fn gcd(&self, other: &Monomial) -> Monomial {
        let mut out = Monomial::one();
        for (s, e) in &self.exps {
            let oe = other.exponent(*s);
            let m = (*e).min(oe);
            if m > 0 {
                out.exps.insert(*s, m);
            }
        }
        out
    }

    /// Remove a symbol entirely, returning the remaining monomial and the
    /// removed exponent.
    pub fn split(&self, s: Symbol) -> (Monomial, u32) {
        let mut out = self.clone();
        let e = out.exps.remove(&s).unwrap_or(0);
        (out, e)
    }
}

impl PartialOrd for Monomial {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Monomial {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Graded lexicographic order: total degree first, then lex on the
        // *dense* exponent vectors (first differing symbol in ascending
        // symbol order decides; larger exponent is greater). Grlex is a
        // proper monomial order — multiplication-compatible — which the
        // exact-division algorithm in `Poly::try_div` requires.
        use std::cmp::Ordering;
        match self.degree().cmp(&other.degree()) {
            Ordering::Equal => {}
            ord => return ord,
        }
        let mut a = self.exps.iter().peekable();
        let mut b = other.exps.iter().peekable();
        loop {
            match (a.peek(), b.peek()) {
                (None, None) => return Ordering::Equal,
                (Some(_), None) => return Ordering::Greater,
                (None, Some(_)) => return Ordering::Less,
                (Some((sa, ea)), Some((sb, eb))) => match sa.cmp(sb) {
                    // The side with an exponent on the smaller symbol has
                    // the larger entry at that position of the dense vector.
                    Ordering::Less => return Ordering::Greater,
                    Ordering::Greater => return Ordering::Less,
                    Ordering::Equal => match ea.cmp(eb) {
                        Ordering::Equal => {
                            a.next();
                            b.next();
                        }
                        ord => return ord,
                    },
                },
            }
        }
    }
}

impl fmt::Display for Monomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_one() {
            return write!(f, "1");
        }
        let mut first = true;
        for (s, e) in &self.exps {
            if !first {
                write!(f, "·")?;
            }
            first = false;
            if *e == 1 {
                write!(f, "{s}")?;
            } else {
                write!(f, "{s}^{e}")?;
            }
        }
        Ok(())
    }
}

impl fmt::Debug for Monomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(n: &str) -> Symbol {
        Symbol::intern(n)
    }

    #[test]
    fn unit_monomial() {
        let m = Monomial::one();
        assert!(m.is_one());
        assert_eq!(m.degree(), 0);
        assert_eq!(m.to_string(), "1");
        assert_eq!(Monomial::power(s("mono_u"), 0), Monomial::one());
    }

    #[test]
    fn mul_div() {
        let x = s("mono_x");
        let y = s("mono_y");
        let xy = Monomial::symbol(x).mul(&Monomial::symbol(y));
        assert_eq!(xy.degree(), 2);
        let x2y = xy.mul(&Monomial::symbol(x));
        assert_eq!(x2y.exponent(x), 2);
        assert_eq!(x2y.div(&Monomial::symbol(x)), Some(xy.clone()));
        assert_eq!(x2y.div(&Monomial::power(x, 3)), None);
        assert_eq!(xy.div(&Monomial::symbol(s("mono_z"))), None);
        assert_eq!(xy.div(&xy), Some(Monomial::one()));
    }

    #[test]
    fn gcd_is_componentwise_min() {
        let x = s("mono_g1");
        let y = s("mono_g2");
        let a = Monomial::power(x, 3).mul(&Monomial::symbol(y));
        let b = Monomial::power(x, 1).mul(&Monomial::power(y, 2));
        let g = a.gcd(&b);
        assert_eq!(g.exponent(x), 1);
        assert_eq!(g.exponent(y), 1);
    }

    #[test]
    fn split_removes_symbol() {
        let x = s("mono_s1");
        let y = s("mono_s2");
        let m = Monomial::power(x, 2).mul(&Monomial::symbol(y));
        let (rest, e) = m.split(x);
        assert_eq!(e, 2);
        assert_eq!(rest, Monomial::symbol(y));
        let (same, zero) = m.split(s("mono_absent"));
        assert_eq!(zero, 0);
        assert_eq!(same, m);
    }

    #[test]
    fn graded_lex_ordering() {
        let x = s("mono_o1");
        let y = s("mono_o2");
        // degree dominates
        assert!(Monomial::symbol(x) < Monomial::power(y, 2));
        assert!(Monomial::one() < Monomial::symbol(x));
        // same degree: lexicographic tie-break is deterministic
        let a = Monomial::power(x, 2);
        let b = Monomial::symbol(x).mul(&Monomial::symbol(y));
        assert_ne!(a.cmp(&b), std::cmp::Ordering::Equal);
    }

    #[test]
    fn display() {
        let x = s("mx");
        let y = s("my");
        let m = Monomial::power(x, 2).mul(&Monomial::symbol(y));
        let shown = m.to_string();
        assert!(shown.contains("mx^2"));
        assert!(shown.contains("my"));
    }
}
