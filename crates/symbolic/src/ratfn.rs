//! Rational functions: the field in which branching probabilities and
//! traversal rates live.
//!
//! A [`RatFn`] is a quotient of two [`Poly`]s kept in canonical form:
//! the gcd is cancelled and the denominator is integer-primitive with a
//! positive leading coefficient. Canonical form makes `Eq`/`Hash`
//! structural equality coincide with mathematical equality, which the
//! decision-graph solver relies on (pivot selection, zero tests).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

use tpn_rational::Rational;

use crate::{Assignment, Poly, Symbol};

/// A canonical quotient of polynomials.
///
/// # Examples
///
/// ```
/// use tpn_symbolic::{Poly, RatFn, Symbol};
///
/// let f4 = Poly::symbol(Symbol::intern("f4"));
/// let f5 = Poly::symbol(Symbol::intern("f5"));
/// // p = f4 / (f4 + f5), the firing probability of t4 in its conflict set
/// let p = RatFn::new(f4.clone(), &f4 + &f5);
/// let q = RatFn::new(f5.clone(), &f4 + &f5);
/// assert!((p + q).is_one()); // probabilities sum to one
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct RatFn {
    num: Poly,
    den: Poly, // invariant: non-zero, integer-primitive, positive leading coeff, coprime with num
}

/// Errors from rational-function arithmetic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RatFnError {
    /// Division by the zero function.
    DivisionByZero,
}

impl fmt::Display for RatFnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RatFnError::DivisionByZero => write!(f, "division by the zero rational function"),
        }
    }
}

impl std::error::Error for RatFnError {}

impl RatFn {
    /// Construct `num / den` in canonical form.
    ///
    /// # Panics
    /// Panics if `den` is the zero polynomial.
    pub fn new(num: Poly, den: Poly) -> RatFn {
        RatFn::checked_new(num, den).expect("RatFn::new: zero denominator")
    }

    /// Fallible constructor.
    pub fn checked_new(num: Poly, den: Poly) -> Result<RatFn, RatFnError> {
        if den.is_zero() {
            return Err(RatFnError::DivisionByZero);
        }
        if num.is_zero() {
            return Ok(RatFn {
                num: Poly::zero(),
                den: Poly::one(),
            });
        }
        let g = num.gcd(&den);
        let mut num = num.try_div(&g).expect("gcd divides numerator");
        let mut den = den.try_div(&g).expect("gcd divides denominator");
        // Scale so the denominator is integer-primitive with a positive
        // leading coefficient; the numerator absorbs the unit.
        let (dp, dc) = den.to_primitive_integer();
        den = dp;
        num = num.scale(&dc.recip());
        Ok(RatFn { num, den })
    }

    /// The zero function.
    pub fn zero() -> RatFn {
        RatFn {
            num: Poly::zero(),
            den: Poly::one(),
        }
    }

    /// The constant one.
    pub fn one() -> RatFn {
        RatFn {
            num: Poly::one(),
            den: Poly::one(),
        }
    }

    /// A constant function.
    pub fn constant(c: Rational) -> RatFn {
        RatFn {
            num: Poly::constant(c),
            den: Poly::one(),
        }
    }

    /// A polynomial viewed as a rational function.
    pub fn from_poly(p: Poly) -> RatFn {
        RatFn {
            num: p,
            den: Poly::one(),
        }
    }

    /// The function consisting of a single symbol.
    pub fn symbol(s: Symbol) -> RatFn {
        RatFn::from_poly(Poly::symbol(s))
    }

    /// The (canonical) numerator.
    pub fn numer(&self) -> &Poly {
        &self.num
    }

    /// The (canonical) denominator.
    pub fn denom(&self) -> &Poly {
        &self.den
    }

    /// `true` iff this is the zero function.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// `true` iff this is the constant one.
    pub fn is_one(&self) -> bool {
        self.num == self.den
    }

    /// The constant value, if the function is constant.
    pub fn as_constant(&self) -> Option<Rational> {
        let n = self.num.as_constant()?;
        let d = self.den.as_constant()?;
        Some(n / d)
    }

    /// Reciprocal.
    pub fn recip(&self) -> Result<RatFn, RatFnError> {
        RatFn::checked_new(self.den.clone(), self.num.clone())
    }

    /// Evaluate under a total assignment. Returns `None` if a symbol is
    /// unbound or the denominator vanishes at the point.
    pub fn eval(&self, a: &Assignment) -> Option<Rational> {
        let n = self.num.eval(a)?;
        let d = self.den.eval(a)?;
        if d.is_zero() {
            return None;
        }
        Some(n / d)
    }

    /// Substitute values for a subset of symbols, re-canonicalising.
    pub fn eval_partial(&self, a: &Assignment) -> Result<RatFn, RatFnError> {
        RatFn::checked_new(self.num.eval_partial(a), self.den.eval_partial(a))
    }

    /// Partial derivative with respect to a symbol (quotient rule),
    /// re-canonicalised.
    pub fn derivative(&self, s: Symbol) -> RatFn {
        let n = &self.num;
        let d = &self.den;
        let num = &(&n.derivative(s) * d) - &(n * &d.derivative(s));
        let den = d * d;
        RatFn::new(num, den)
    }

    /// The elasticity `(s / f)·∂f/∂s` evaluated at a point: the relative
    /// change of `f` per relative change of `s`. `None` if the point is
    /// outside the domain or `f` vanishes there.
    pub fn elasticity_at(&self, s: Symbol, at: &Assignment) -> Option<Rational> {
        let f = self.eval(at)?;
        if f.is_zero() {
            return None;
        }
        let df = self.derivative(s).eval(at)?;
        let x = *at.get(s)?;
        Some(x * df / f)
    }

    /// All symbols occurring in the function.
    pub fn symbols(&self) -> Vec<Symbol> {
        let mut out = self.num.symbols();
        for s in self.den.symbols() {
            if let Err(pos) = out.binary_search(&s) {
                out.insert(pos, s);
            }
        }
        out
    }
}

impl Default for RatFn {
    fn default() -> Self {
        RatFn::zero()
    }
}

impl From<Rational> for RatFn {
    fn from(c: Rational) -> RatFn {
        RatFn::constant(c)
    }
}

impl From<Poly> for RatFn {
    fn from(p: Poly) -> RatFn {
        RatFn::from_poly(p)
    }
}

impl Add for RatFn {
    type Output = RatFn;
    fn add(self, rhs: RatFn) -> RatFn {
        &self + &rhs
    }
}

impl Add<&RatFn> for &RatFn {
    type Output = RatFn;
    fn add(self, rhs: &RatFn) -> RatFn {
        let num = &(&self.num * &rhs.den) + &(&rhs.num * &self.den);
        let den = &self.den * &rhs.den;
        RatFn::new(num, den)
    }
}

impl AddAssign for RatFn {
    fn add_assign(&mut self, rhs: RatFn) {
        *self = &*self + &rhs;
    }
}

impl Sub for RatFn {
    type Output = RatFn;
    fn sub(self, rhs: RatFn) -> RatFn {
        &self - &rhs
    }
}

impl Sub<&RatFn> for &RatFn {
    type Output = RatFn;
    fn sub(self, rhs: &RatFn) -> RatFn {
        let num = &(&self.num * &rhs.den) - &(&rhs.num * &self.den);
        let den = &self.den * &rhs.den;
        RatFn::new(num, den)
    }
}

impl SubAssign for RatFn {
    fn sub_assign(&mut self, rhs: RatFn) {
        *self = &*self - &rhs;
    }
}

impl Mul for RatFn {
    type Output = RatFn;
    fn mul(self, rhs: RatFn) -> RatFn {
        &self * &rhs
    }
}

impl Mul<&RatFn> for &RatFn {
    type Output = RatFn;
    fn mul(self, rhs: &RatFn) -> RatFn {
        // Cross-cancel before multiplying to keep degrees low.
        let g1 = self.num.gcd(&rhs.den);
        let g2 = rhs.num.gcd(&self.den);
        let n1 = self.num.try_div(&g1).unwrap_or_else(|| self.num.clone());
        let d2 = rhs.den.try_div(&g1).unwrap_or_else(|| rhs.den.clone());
        let n2 = rhs.num.try_div(&g2).unwrap_or_else(|| rhs.num.clone());
        let d1 = self.den.try_div(&g2).unwrap_or_else(|| self.den.clone());
        RatFn::new(&n1 * &n2, &d1 * &d2)
    }
}

impl MulAssign for RatFn {
    fn mul_assign(&mut self, rhs: RatFn) {
        *self = &*self * &rhs;
    }
}

impl Div for RatFn {
    type Output = RatFn;
    fn div(self, rhs: RatFn) -> RatFn {
        &self / &rhs
    }
}

impl Div<&RatFn> for &RatFn {
    type Output = RatFn;
    #[allow(clippy::suspicious_arithmetic_impl)] // division = multiply by the reciprocal
    fn div(self, rhs: &RatFn) -> RatFn {
        let r = rhs.recip().expect("RatFn division by zero");
        self * &r
    }
}

impl Neg for RatFn {
    type Output = RatFn;
    fn neg(self) -> RatFn {
        RatFn {
            num: -self.num,
            den: self.den,
        }
    }
}

impl fmt::Display for RatFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_one() {
            write!(f, "{}", self.num)
        } else {
            let n = self.num.to_string();
            let needs_parens = self.num.num_terms() > 1;
            if needs_parens {
                write!(f, "({n})")?;
            } else {
                write!(f, "{n}")?;
            }
            let d = self.den.to_string();
            if self.den.num_terms() > 1 {
                write!(f, "/({d})")
            } else {
                write!(f, "/{d}")
            }
        }
    }
}

impl fmt::Debug for RatFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp(n: &str) -> Poly {
        Poly::symbol(Symbol::intern(n))
    }

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn canonical_form() {
        let x = sp("rf_x");
        let y = sp("rf_y");
        // (x² - y²) / (x + y)  canonicalises to  x - y
        let f = RatFn::new(&(&x * &x) - &(&y * &y), &x + &y);
        assert_eq!(f, RatFn::from_poly(&x - &y));
        assert!(f.denom().is_one());
        // zero numerator forces the canonical zero
        let z = RatFn::new(Poly::zero(), x.clone());
        assert_eq!(z, RatFn::zero());
        assert!(z.denom().is_one());
    }

    #[test]
    fn denominator_sign_normalised() {
        let x = sp("rf_s");
        let f = RatFn::new(Poly::one(), -x.clone());
        let g = RatFn::new(-Poly::one(), x.clone());
        assert_eq!(f, g);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let f4 = sp("rf_f4");
        let f5 = sp("rf_f5");
        let p = RatFn::new(f4.clone(), &f4 + &f5);
        let q = RatFn::new(f5.clone(), &f4 + &f5);
        assert!((p.clone() + q.clone()).is_one());
        assert_eq!(
            p.clone() * q.clone(),
            RatFn::new(&f4 * &f5, (&f4 + &f5).pow(2))
        );
        assert_eq!(&p - &p, RatFn::zero());
    }

    #[test]
    fn field_ops() {
        let x = RatFn::symbol(Symbol::intern("rf_a"));
        let y = RatFn::symbol(Symbol::intern("rf_b"));
        let f = &x / &y;
        let g = &y / &x;
        assert!((f.clone() * g.clone()).is_one());
        assert_eq!(f.recip().unwrap(), g);
        assert!(RatFn::zero().recip().is_err());
        let h = &f + &g; // (x² + y²)/(xy)
        let expect = RatFn::new(
            &(&Poly::symbol(Symbol::intern("rf_a")) * &Poly::symbol(Symbol::intern("rf_a")))
                + &(&Poly::symbol(Symbol::intern("rf_b")) * &Poly::symbol(Symbol::intern("rf_b"))),
            &Poly::symbol(Symbol::intern("rf_a")) * &Poly::symbol(Symbol::intern("rf_b")),
        );
        assert_eq!(h, expect);
    }

    #[test]
    fn eval() {
        let a = Symbol::intern("rf_e1");
        let b = Symbol::intern("rf_e2");
        let f = RatFn::new(Poly::symbol(a), &Poly::symbol(a) + &Poly::symbol(b));
        let asn = Assignment::new().with(a, r(19, 1)).with(b, r(1, 1));
        assert_eq!(f.eval(&asn), Some(r(19, 20)));
        // unbound symbol
        assert_eq!(f.eval(&Assignment::new()), None);
        // denominator vanishing
        let bad = Assignment::new().with(a, r(1, 1)).with(b, r(-1, 1));
        assert_eq!(f.eval(&bad), None);
    }

    #[test]
    fn eval_partial() {
        let a = Symbol::intern("rf_p1");
        let b = Symbol::intern("rf_p2");
        let f = RatFn::new(Poly::symbol(a), &Poly::symbol(a) + &Poly::symbol(b));
        let partial = Assignment::new().with(a, r(19, 1));
        let g = f.eval_partial(&partial).unwrap();
        let full = Assignment::new().with(b, r(1, 1));
        assert_eq!(g.eval(&full), Some(r(19, 20)));
    }

    #[test]
    fn constants() {
        let c = RatFn::constant(r(3, 4));
        assert_eq!(c.as_constant(), Some(r(3, 4)));
        assert!(RatFn::one().is_one());
        assert!(RatFn::zero().is_zero());
        assert_eq!(
            (RatFn::constant(r(1, 2)) + RatFn::constant(r(1, 2))).as_constant(),
            Some(Rational::ONE)
        );
        assert_eq!(RatFn::symbol(Symbol::intern("rf_c")).as_constant(), None);
    }

    #[test]
    fn derivative_quotient_rule() {
        let x = Symbol::intern("rf_d1");
        // f = 1/x  =>  f' = −1/x²
        let f = RatFn::new(Poly::one(), Poly::symbol(x));
        let expect = RatFn::new(-Poly::one(), Poly::symbol(x).pow(2));
        assert_eq!(f.derivative(x), expect);
        // f = x/(x+1) => f' = 1/(x+1)²
        let g = RatFn::new(Poly::symbol(x), &Poly::symbol(x) + &Poly::one());
        let expect2 = RatFn::new(Poly::one(), (&Poly::symbol(x) + &Poly::one()).pow(2));
        assert_eq!(g.derivative(x), expect2);
        // derivative in an absent symbol is zero
        let y = Symbol::intern("rf_d2");
        assert!(g.derivative(y).is_zero());
    }

    #[test]
    fn elasticity() {
        let x = Symbol::intern("rf_el");
        // f = x²: elasticity is exactly 2 everywhere
        let f = RatFn::from_poly(Poly::symbol(x).pow(2));
        let at = Assignment::new().with(x, r(7, 2));
        assert_eq!(f.elasticity_at(x, &at), Some(r(2, 1)));
        // elasticity of a constant is 0
        let c = RatFn::constant(r(3, 1));
        assert_eq!(c.elasticity_at(x, &at), Some(Rational::ZERO));
        // undefined where f vanishes
        let zero_at = Assignment::new().with(x, Rational::ZERO);
        assert_eq!(f.elasticity_at(x, &zero_at), None);
    }

    #[test]
    fn display() {
        let f4 = Symbol::intern("f4_disp");
        let f5 = Symbol::intern("f5_disp");
        let p = RatFn::new(Poly::symbol(f4), &Poly::symbol(f4) + &Poly::symbol(f5));
        let shown = p.to_string();
        assert!(shown.contains("f4_disp"), "{shown}");
        assert!(shown.contains('/'), "{shown}");
    }
}
