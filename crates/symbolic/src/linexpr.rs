//! Affine (linear-plus-constant) expressions over time symbols.
//!
//! Every time value appearing in a symbolic timed reachability graph is
//! an affine combination of the net's enabling/firing-time symbols: the
//! construction starts from `E(t)`/`F(t)` symbols and only ever adds and
//! subtracts them (paper §3, "subtractions must also be done symbolically
//! and expressions must be simplified algebraically"). `LinExpr` is that
//! canonical simplified form: a constant plus a map of symbol
//! coefficients, with zero coefficients never stored.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

use tpn_rational::Rational;

use crate::{Assignment, Symbol};

/// An affine expression `constant + Σ coeff·symbol` with exact rational
/// coefficients, kept in canonical form (no zero coefficients).
///
/// # Examples
///
/// ```
/// use tpn_symbolic::{LinExpr, Symbol};
/// use tpn_rational::Rational;
///
/// let e3 = LinExpr::symbol(Symbol::intern("E(t3)"));
/// let f4 = LinExpr::symbol(Symbol::intern("F(t4)"));
/// let remaining = e3.clone() - f4; // RET after a delay of F(t4) elapses
/// assert_eq!(remaining.to_string(), "E(t3) - F(t4)");
/// assert!(!remaining.is_constant());
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinExpr {
    constant: Rational,
    terms: BTreeMap<Symbol, Rational>, // invariant: no zero coefficients
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> LinExpr {
        LinExpr {
            constant: Rational::ZERO,
            terms: BTreeMap::new(),
        }
    }

    /// A constant expression.
    pub fn constant(c: Rational) -> LinExpr {
        LinExpr {
            constant: c,
            terms: BTreeMap::new(),
        }
    }

    /// The expression consisting of a single symbol with coefficient 1.
    pub fn symbol(s: Symbol) -> LinExpr {
        let mut terms = BTreeMap::new();
        terms.insert(s, Rational::ONE);
        LinExpr {
            constant: Rational::ZERO,
            terms,
        }
    }

    /// A single scaled symbol `c·s`.
    pub fn term(c: Rational, s: Symbol) -> LinExpr {
        let mut e = LinExpr::zero();
        e.add_term(c, s);
        e
    }

    /// The constant component.
    pub fn constant_part(&self) -> &Rational {
        &self.constant
    }

    /// The coefficient of `s` (zero if absent).
    pub fn coeff(&self, s: Symbol) -> Rational {
        self.terms.get(&s).copied().unwrap_or(Rational::ZERO)
    }

    /// Iterate over the (symbol, coefficient) terms in symbol order.
    pub fn terms(&self) -> impl Iterator<Item = (Symbol, &Rational)> {
        self.terms.iter().map(|(s, c)| (*s, c))
    }

    /// The symbols with non-zero coefficient.
    pub fn symbols(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.terms.keys().copied()
    }

    /// Number of non-zero symbol terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// `true` iff the expression is a constant (possibly zero).
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// `true` iff the expression is identically zero.
    pub fn is_zero(&self) -> bool {
        self.constant.is_zero() && self.terms.is_empty()
    }

    /// Add `c·s` in place, removing the term if it cancels.
    pub fn add_term(&mut self, c: Rational, s: Symbol) {
        if c.is_zero() {
            return;
        }
        let entry = self.terms.entry(s).or_insert(Rational::ZERO);
        *entry += c;
        if entry.is_zero() {
            self.terms.remove(&s);
        }
    }

    /// Multiply every coefficient and the constant by `c`.
    pub fn scale(&self, c: &Rational) -> LinExpr {
        if c.is_zero() {
            return LinExpr::zero();
        }
        LinExpr {
            constant: self.constant * c,
            terms: self.terms.iter().map(|(s, k)| (*s, k * c)).collect(),
        }
    }

    /// Evaluate under a (total, for this expression) assignment.
    ///
    /// Returns `None` if some symbol is unbound.
    pub fn eval(&self, assignment: &Assignment) -> Option<Rational> {
        let mut acc = self.constant;
        for (s, c) in &self.terms {
            acc += c * assignment.get(*s)?;
        }
        Some(acc)
    }

    /// Substitute an expression for a symbol.
    pub fn substitute(&self, s: Symbol, replacement: &LinExpr) -> LinExpr {
        let c = self.coeff(s);
        if c.is_zero() {
            return self.clone();
        }
        let mut out = self.clone();
        out.terms.remove(&s);
        out + replacement.scale(&c)
    }
}

impl Default for LinExpr {
    fn default() -> Self {
        LinExpr::zero()
    }
}

impl From<Rational> for LinExpr {
    fn from(c: Rational) -> LinExpr {
        LinExpr::constant(c)
    }
}

impl From<Symbol> for LinExpr {
    fn from(s: Symbol) -> LinExpr {
        LinExpr::symbol(s)
    }
}

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: LinExpr) -> LinExpr {
        self += rhs;
        self
    }
}

impl Add<&LinExpr> for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: &LinExpr) -> LinExpr {
        self.constant += rhs.constant;
        for (s, c) in &rhs.terms {
            self.add_term(*c, *s);
        }
        self
    }
}

impl AddAssign for LinExpr {
    fn add_assign(&mut self, rhs: LinExpr) {
        self.constant += rhs.constant;
        for (s, c) in rhs.terms {
            self.add_term(c, s);
        }
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;
    fn sub(mut self, rhs: LinExpr) -> LinExpr {
        self -= rhs;
        self
    }
}

impl Sub<&LinExpr> for LinExpr {
    type Output = LinExpr;
    fn sub(mut self, rhs: &LinExpr) -> LinExpr {
        self.constant -= rhs.constant;
        for (s, c) in &rhs.terms {
            self.add_term(-c, *s);
        }
        self
    }
}

impl SubAssign for LinExpr {
    fn sub_assign(&mut self, rhs: LinExpr) {
        self.constant -= rhs.constant;
        for (s, c) in rhs.terms {
            self.add_term(-c, s);
        }
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(self) -> LinExpr {
        self.scale(&-Rational::ONE)
    }
}

impl Mul<Rational> for LinExpr {
    type Output = LinExpr;
    fn mul(self, rhs: Rational) -> LinExpr {
        self.scale(&rhs)
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut first = true;
        if !self.constant.is_zero() {
            write!(f, "{}", self.constant)?;
            first = false;
        }
        for (s, c) in &self.terms {
            if first {
                if *c == -Rational::ONE {
                    write!(f, "-{s}")?;
                } else if c.is_one() {
                    write!(f, "{s}")?;
                } else {
                    write!(f, "{c}·{s}")?;
                }
                first = false;
            } else if c.is_negative() {
                let mag = c.abs();
                if mag.is_one() {
                    write!(f, " - {s}")?;
                } else {
                    write!(f, " - {mag}·{s}")?;
                }
            } else if c.is_one() {
                write!(f, " + {s}")?;
            } else {
                write!(f, " + {c}·{s}")?;
            }
        }
        Ok(())
    }
}

impl fmt::Debug for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(n: &str) -> Symbol {
        Symbol::intern(n)
    }

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn construction_and_accessors() {
        let x = sym("lx_x");
        let e = LinExpr::term(r(3, 2), x) + LinExpr::constant(r(1, 1));
        assert_eq!(e.coeff(x), r(3, 2));
        assert_eq!(*e.constant_part(), Rational::ONE);
        assert_eq!(e.num_terms(), 1);
        assert!(!e.is_constant());
        assert!(!e.is_zero());
    }

    #[test]
    fn cancellation_removes_terms() {
        let x = sym("lx_c");
        let e = LinExpr::symbol(x) - LinExpr::symbol(x);
        assert!(e.is_zero());
        assert_eq!(e.num_terms(), 0);
    }

    #[test]
    fn arithmetic() {
        let x = sym("lx_a");
        let y = sym("lx_b");
        let e1 = LinExpr::symbol(x) + LinExpr::symbol(y);
        let e2 = LinExpr::symbol(x) - LinExpr::symbol(y);
        let sum = e1.clone() + e2.clone();
        assert_eq!(sum.coeff(x), r(2, 1));
        assert_eq!(sum.coeff(y), Rational::ZERO);
        let diff = e1 - e2;
        assert_eq!(diff.coeff(x), Rational::ZERO);
        assert_eq!(diff.coeff(y), r(2, 1));
    }

    #[test]
    fn scale_and_neg() {
        let x = sym("lx_s");
        let e = (LinExpr::symbol(x) + LinExpr::constant(r(2, 1))).scale(&r(3, 1));
        assert_eq!(e.coeff(x), r(3, 1));
        assert_eq!(*e.constant_part(), r(6, 1));
        let n = -e;
        assert_eq!(n.coeff(x), r(-3, 1));
        assert!(LinExpr::symbol(x).scale(&Rational::ZERO).is_zero());
    }

    #[test]
    fn eval_total_and_partial() {
        let x = sym("lx_e1");
        let y = sym("lx_e2");
        let e = LinExpr::term(r(2, 1), x) + LinExpr::symbol(y) + LinExpr::constant(r(5, 1));
        let mut a = Assignment::new();
        a.set(x, r(3, 1));
        assert_eq!(e.eval(&a), None); // y unbound
        a.set(y, r(1, 2));
        assert_eq!(e.eval(&a), Some(r(23, 2)));
    }

    #[test]
    fn substitution() {
        let x = sym("lx_sub1");
        let y = sym("lx_sub2");
        // 2x + 1, with x := y + 3  =>  2y + 7
        let e = LinExpr::term(r(2, 1), x) + LinExpr::constant(Rational::ONE);
        let replacement = LinExpr::symbol(y) + LinExpr::constant(r(3, 1));
        let out = e.substitute(x, &replacement);
        assert_eq!(out.coeff(x), Rational::ZERO);
        assert_eq!(out.coeff(y), r(2, 1));
        assert_eq!(*out.constant_part(), r(7, 1));
        // substituting an absent symbol is a no-op
        let same = out.substitute(x, &LinExpr::constant(r(100, 1)));
        assert_eq!(same, out);
    }

    #[test]
    fn display_forms() {
        let x = sym("lx_d1");
        let y = sym("lx_d2");
        assert_eq!(LinExpr::zero().to_string(), "0");
        assert_eq!(LinExpr::constant(r(5, 2)).to_string(), "5/2");
        assert_eq!(LinExpr::symbol(x).to_string(), "lx_d1");
        assert_eq!((-LinExpr::symbol(x)).to_string(), "-lx_d1");
        let e = LinExpr::symbol(x) - LinExpr::symbol(y);
        assert_eq!(e.to_string(), "lx_d1 - lx_d2");
        let e2 = LinExpr::constant(Rational::ONE) + LinExpr::term(r(-2, 1), x);
        assert_eq!(e2.to_string(), "1 - 2·lx_d1");
    }
}
