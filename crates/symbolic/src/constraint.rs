//! Timing-constraint sets and their decision procedure.
//!
//! Section 3 of the paper: *"the model must include sufficient timing
//! constraints to guarantee that all vertices which do not involve
//! decisions have at most one successor each. This is the case when
//! timing constraints are sufficiently specific to identify the smallest
//! non-zero RET and RFT for every state in the graph."*
//!
//! A [`ConstraintSet`] is a conjunction of linear constraints
//! `expr ⋈ 0` with `⋈ ∈ {=, ≥, >}` over the time symbols. The key
//! operation is **entailment**: does the conjunction logically imply
//! another linear constraint? We decide this by refutation — add the
//! negation and test for infeasibility with **Fourier–Motzkin
//! elimination**, which is sound *and complete* for linear arithmetic
//! over the rationals. All arithmetic is exact, so there are no
//! tolerance knobs and no false positives.

use std::collections::BTreeSet;
use std::fmt;

use tpn_rational::Rational;

use crate::{Assignment, LinExpr, Symbol};

/// Relation of a constraint's expression to zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Relation {
    /// `expr = 0`
    Eq,
    /// `expr ≥ 0`
    Ge,
    /// `expr > 0`
    Gt,
}

/// A single linear constraint `expr ⋈ 0`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Constraint {
    /// The left-hand side (the right-hand side is always zero).
    pub expr: LinExpr,
    /// How `expr` relates to zero.
    pub rel: Relation,
}

impl Constraint {
    /// Normalise for deduplication: scale so that coefficients are
    /// integers with content 1 (preserving sign).
    fn normalised(&self) -> Constraint {
        let mut denom_lcm: i128 = 1;
        let mut numer_gcd: i128 = 0;
        for (_, c) in self.expr.terms() {
            denom_lcm = tpn_rational::lcm(denom_lcm, c.denom()).unwrap_or(denom_lcm);
        }
        denom_lcm =
            tpn_rational::lcm(denom_lcm, self.expr.constant_part().denom()).unwrap_or(denom_lcm);
        for (_, c) in self.expr.terms() {
            numer_gcd = tpn_rational::gcd(numer_gcd, (c * Rational::from_int(denom_lcm)).numer());
        }
        numer_gcd = tpn_rational::gcd(
            numer_gcd,
            (self.expr.constant_part() * Rational::from_int(denom_lcm)).numer(),
        );
        if numer_gcd == 0 {
            return self.clone();
        }
        let scale = Rational::new(denom_lcm, numer_gcd);
        Constraint {
            expr: self.expr.scale(&scale),
            rel: self.rel,
        }
    }

    /// Evaluate the constraint under a numeric assignment.
    pub fn check(&self, a: &Assignment) -> Option<bool> {
        let v = self.expr.eval(a)?;
        Some(match self.rel {
            Relation::Eq => v.is_zero(),
            Relation::Ge => !v.is_negative(),
            Relation::Gt => v.is_positive(),
        })
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rel = match self.rel {
            Relation::Eq => "=",
            Relation::Ge => "≥",
            Relation::Gt => ">",
        };
        write!(f, "{} {rel} 0", self.expr)
    }
}

/// Result of a three-way symbolic comparison under a constraint set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `a = b` is entailed.
    Equal,
    /// `a < b` is entailed.
    Less,
    /// `a > b` is entailed.
    Greater,
    /// `a ≤ b` is entailed, but neither `a < b` nor `a = b` is.
    LessEq,
    /// `a ≥ b` is entailed, but neither `a > b` nor `a = b` is.
    GreaterEq,
    /// No ordering is entailed by the constraints.
    Unknown,
}

/// Errors from the constraint decision procedure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConstraintError {
    /// Fourier–Motzkin elimination exceeded the working-set limit.
    ///
    /// Elimination is worst-case exponential; this error bounds it. The
    /// timing-constraint systems arising from protocol nets are tiny, so
    /// hitting this limit indicates a degenerate model.
    TooComplex {
        /// The limit that was exceeded.
        limit: usize,
    },
    /// No expression in the candidate set is entailed to be minimal; the
    /// two named expressions cannot be ordered. This is the structured
    /// form of the paper's "prompt designers for timing constraints at
    /// the necessary points".
    AmbiguousMinimum {
        /// One candidate of the undecidable pair.
        left: LinExpr,
        /// The other candidate.
        right: LinExpr,
    },
    /// `min_of` was called with no candidates.
    EmptyCandidates,
}

impl fmt::Display for ConstraintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstraintError::TooComplex { limit } => {
                write!(
                    f,
                    "Fourier–Motzkin elimination exceeded {limit} working constraints"
                )
            }
            ConstraintError::AmbiguousMinimum { left, right } => write!(
                f,
                "timing constraints are insufficient to order ({left}) against ({right}); \
                 add a constraint relating them"
            ),
            ConstraintError::EmptyCandidates => write!(f, "minimum of an empty set of expressions"),
        }
    }
}

impl std::error::Error for ConstraintError {}

/// Maximum number of working constraints during elimination.
const FM_LIMIT: usize = 50_000;

/// A conjunction of linear timing constraints with an exact entailment
/// decision procedure.
///
/// # Examples
///
/// The paper's constraint (1), *"the timeout period must be greater than
/// the round-trip delay"*:
///
/// ```
/// use tpn_symbolic::{ConstraintSet, LinExpr, Symbol};
///
/// let e3 = LinExpr::symbol(Symbol::intern("E(t3)"));
/// let f4 = LinExpr::symbol(Symbol::intern("F(t4)"));
/// let f6 = LinExpr::symbol(Symbol::intern("F(t6)"));
/// let f8 = LinExpr::symbol(Symbol::intern("F(t8)"));
///
/// let mut cs = ConstraintSet::new();
/// for t in [&f4, &f6, &f8] {
///     cs.assume_ge(t.clone(), LinExpr::zero()); // times are non-negative
/// }
/// cs.assume_gt(e3.clone(), f4.clone() + &f6 + &f8); // constraint (1)
///
/// // It follows that the timeout exceeds the one-way delay alone:
/// assert_eq!(cs.entails_gt(&e3, &f4), Ok(true));
/// // ... but nothing orders F(t4) against F(t6):
/// assert_eq!(cs.entails_ge(&f4, &f6), Ok(false));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ConstraintSet {
    constraints: Vec<Constraint>,
}

impl ConstraintSet {
    /// The empty (always-satisfiable) constraint set.
    pub fn new() -> ConstraintSet {
        ConstraintSet::default()
    }

    /// The constraints added so far.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Assume `expr ⋈ 0`.
    pub fn assume(&mut self, expr: LinExpr, rel: Relation) -> &mut Self {
        self.constraints.push(Constraint { expr, rel });
        self
    }

    /// Assume `a = b`.
    pub fn assume_eq(&mut self, a: LinExpr, b: LinExpr) -> &mut Self {
        self.assume(a - b, Relation::Eq)
    }

    /// Assume `a ≥ b`.
    pub fn assume_ge(&mut self, a: LinExpr, b: LinExpr) -> &mut Self {
        self.assume(a - b, Relation::Ge)
    }

    /// Assume `a > b`.
    pub fn assume_gt(&mut self, a: LinExpr, b: LinExpr) -> &mut Self {
        self.assume(a - b, Relation::Gt)
    }

    /// Assume `a ≤ b`.
    pub fn assume_le(&mut self, a: LinExpr, b: LinExpr) -> &mut Self {
        self.assume(b - a, Relation::Ge)
    }

    /// Assume `a < b`.
    pub fn assume_lt(&mut self, a: LinExpr, b: LinExpr) -> &mut Self {
        self.assume(b - a, Relation::Gt)
    }

    /// Is the conjunction satisfiable over the rationals?
    pub fn is_feasible(&self) -> Result<bool, ConstraintError> {
        feasible(self.constraints.clone())
    }

    /// Does the conjunction entail `expr ⋈ 0`?
    ///
    /// Decided by refutation; complete over the rationals. Note that an
    /// *infeasible* constraint set entails everything.
    pub fn entails(&self, expr: &LinExpr, rel: Relation) -> Result<bool, ConstraintError> {
        match rel {
            Relation::Eq => Ok(self.entails(expr, Relation::Ge)?
                && self.entails(&(-expr.clone()), Relation::Ge)?),
            Relation::Ge => {
                // ¬(expr ≥ 0) ≡ −expr > 0
                let mut work = self.constraints.clone();
                work.push(Constraint {
                    expr: -expr.clone(),
                    rel: Relation::Gt,
                });
                Ok(!feasible(work)?)
            }
            Relation::Gt => {
                // ¬(expr > 0) ≡ −expr ≥ 0
                let mut work = self.constraints.clone();
                work.push(Constraint {
                    expr: -expr.clone(),
                    rel: Relation::Ge,
                });
                Ok(!feasible(work)?)
            }
        }
    }

    /// Does the conjunction entail `a ≥ b`?
    pub fn entails_ge(&self, a: &LinExpr, b: &LinExpr) -> Result<bool, ConstraintError> {
        self.entails(&(a.clone() - b), Relation::Ge)
    }

    /// Does the conjunction entail `a > b`?
    pub fn entails_gt(&self, a: &LinExpr, b: &LinExpr) -> Result<bool, ConstraintError> {
        self.entails(&(a.clone() - b), Relation::Gt)
    }

    /// Does the conjunction entail `a = b`?
    pub fn entails_eq(&self, a: &LinExpr, b: &LinExpr) -> Result<bool, ConstraintError> {
        self.entails(&(a.clone() - b), Relation::Eq)
    }

    /// Three-way comparison of two expressions under the constraints.
    pub fn compare(&self, a: &LinExpr, b: &LinExpr) -> Result<Cmp, ConstraintError> {
        let diff = a.clone() - b;
        // Fast path: syntactically equal or constant difference.
        if diff.is_zero() {
            return Ok(Cmp::Equal);
        }
        if diff.is_constant() {
            let c = diff.constant_part();
            return Ok(if c.is_zero() {
                Cmp::Equal
            } else if c.is_negative() {
                Cmp::Less
            } else {
                Cmp::Greater
            });
        }
        if self.entails(&diff, Relation::Eq)? {
            return Ok(Cmp::Equal);
        }
        if self.entails(&(-diff.clone()), Relation::Gt)? {
            return Ok(Cmp::Less);
        }
        if self.entails(&diff, Relation::Gt)? {
            return Ok(Cmp::Greater);
        }
        if self.entails(&(-diff.clone()), Relation::Ge)? {
            return Ok(Cmp::LessEq);
        }
        if self.entails(&diff, Relation::Ge)? {
            return Ok(Cmp::GreaterEq);
        }
        Ok(Cmp::Unknown)
    }

    /// Find an index `i` such that `candidates[i] ≤ candidates[j]` is
    /// entailed for every `j`. Returns [`ConstraintError::AmbiguousMinimum`]
    /// naming an undecidable pair when the constraints are insufficient —
    /// the paper's "prompt the designer" point.
    pub fn min_of(&self, candidates: &[LinExpr]) -> Result<usize, ConstraintError> {
        if candidates.is_empty() {
            return Err(ConstraintError::EmptyCandidates);
        }
        'outer: for (i, ci) in candidates.iter().enumerate() {
            for cj in candidates.iter() {
                if std::ptr::eq(ci, cj) {
                    continue;
                }
                if !self.entails_ge(cj, ci)? {
                    continue 'outer;
                }
            }
            return Ok(i);
        }
        // No candidate is provably minimal: find an undecidable pair for
        // the error message.
        for (i, ci) in candidates.iter().enumerate() {
            for cj in candidates.iter().skip(i + 1) {
                if !self.entails_ge(cj, ci)? && !self.entails_ge(ci, cj)? {
                    return Err(ConstraintError::AmbiguousMinimum {
                        left: ci.clone(),
                        right: cj.clone(),
                    });
                }
            }
        }
        // All pairs are ordered but no global minimum was found — this
        // cannot happen for a total preorder; defensive fallback.
        Err(ConstraintError::AmbiguousMinimum {
            left: candidates[0].clone(),
            right: candidates[candidates.len() - 1].clone(),
        })
    }

    /// Check every constraint under a numeric assignment (for testing and
    /// for validating concrete instantiations). `None` if some symbol is
    /// unbound.
    pub fn check(&self, a: &Assignment) -> Option<bool> {
        for c in &self.constraints {
            if !c.check(a)? {
                return Some(false);
            }
        }
        Some(true)
    }

    /// All symbols mentioned by the constraints.
    pub fn symbols(&self) -> Vec<Symbol> {
        let mut out: Vec<Symbol> = Vec::new();
        for c in &self.constraints {
            for s in c.expr.symbols() {
                if let Err(pos) = out.binary_search(&s) {
                    out.insert(pos, s);
                }
            }
        }
        out
    }
}

impl fmt::Display for ConstraintSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.constraints.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

/// Fourier–Motzkin feasibility test.
fn feasible(mut work: Vec<Constraint>) -> Result<bool, ConstraintError> {
    // Phase 1: use equalities as substitutions.
    loop {
        let mut subst: Option<(Symbol, LinExpr)> = None;
        let mut infeasible = false;
        work.retain(|c| {
            if subst.is_some() || infeasible || c.rel != Relation::Eq {
                return true;
            }
            match c.expr.symbols().next() {
                Some(s) => {
                    // c·s + rest = 0  =>  s = −rest/c
                    let coeff = c.expr.coeff(s);
                    let mut rest = c.expr.clone();
                    rest.add_term(-coeff, s);
                    let replacement = rest.scale(&(-coeff.recip()));
                    subst = Some((s, replacement));
                    false
                }
                None => {
                    if !c.expr.constant_part().is_zero() {
                        infeasible = true;
                    }
                    false
                }
            }
        });
        if infeasible {
            return Ok(false);
        }
        match subst {
            Some((s, replacement)) => {
                for c in &mut work {
                    c.expr = c.expr.substitute(s, &replacement);
                }
            }
            None => break,
        }
    }
    // Phase 2: eliminate variables from the inequalities.
    loop {
        // Drop constant constraints, checking them.
        let mut still = Vec::with_capacity(work.len());
        for c in work {
            if c.expr.is_constant() {
                let v = c.expr.constant_part();
                let ok = match c.rel {
                    Relation::Ge => !v.is_negative(),
                    Relation::Gt => v.is_positive(),
                    Relation::Eq => v.is_zero(),
                };
                if !ok {
                    return Ok(false);
                }
            } else {
                still.push(c);
            }
        }
        work = dedupe(still);
        if work.is_empty() {
            return Ok(true);
        }
        // Pick the variable minimising |P|·|N| (Fourier–Motzkin heuristic).
        let mut vars: BTreeSet<Symbol> = BTreeSet::new();
        for c in &work {
            vars.extend(c.expr.symbols());
        }
        let mut best: Option<(Symbol, usize)> = None;
        for &v in &vars {
            let mut pos = 0usize;
            let mut neg = 0usize;
            for c in &work {
                let coeff = c.expr.coeff(v);
                if coeff.is_positive() {
                    pos += 1;
                } else if coeff.is_negative() {
                    neg += 1;
                }
            }
            let cost = pos * neg + pos + neg;
            if best.map(|(_, b)| cost < b).unwrap_or(true) {
                best = Some((v, cost));
            }
        }
        let (x, _) = best.expect("non-constant constraints mention variables");
        let mut lowers: Vec<Constraint> = Vec::new(); // coeff(x) > 0
        let mut uppers: Vec<Constraint> = Vec::new(); // coeff(x) < 0
        let mut rest: Vec<Constraint> = Vec::new();
        for c in work {
            let coeff = c.expr.coeff(x);
            if coeff.is_positive() {
                lowers.push(c);
            } else if coeff.is_negative() {
                uppers.push(c);
            } else {
                rest.push(c);
            }
        }
        if lowers.len() * uppers.len() + rest.len() > FM_LIMIT {
            return Err(ConstraintError::TooComplex { limit: FM_LIMIT });
        }
        for lo in &lowers {
            let cl = lo.expr.coeff(x); // > 0
            for up in &uppers {
                let cu = up.expr.coeff(x); // < 0
                                           // cl·up.expr − cu·lo.expr eliminates x with positive
                                           // multipliers (cl and −cu).
                let combined = up.expr.scale(&cl) - lo.expr.scale(&cu);
                debug_assert!(combined.coeff(x).is_zero());
                let rel = if lo.rel == Relation::Gt || up.rel == Relation::Gt {
                    Relation::Gt
                } else {
                    Relation::Ge
                };
                rest.push(Constraint {
                    expr: combined,
                    rel,
                });
            }
        }
        work = rest;
        if work.len() > FM_LIMIT {
            return Err(ConstraintError::TooComplex { limit: FM_LIMIT });
        }
    }
}

/// Normalise and deduplicate, keeping the strictest relation per
/// expression.
fn dedupe(work: Vec<Constraint>) -> Vec<Constraint> {
    let mut map: std::collections::BTreeMap<LinExpr, Relation> = std::collections::BTreeMap::new();
    for c in work {
        let n = c.normalised();
        map.entry(n.expr)
            .and_modify(|r| {
                if n.rel > *r {
                    *r = n.rel;
                }
            })
            .or_insert(n.rel);
    }
    map.into_iter()
        .map(|(expr, rel)| Constraint { expr, rel })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(n: &str) -> LinExpr {
        LinExpr::symbol(Symbol::intern(n))
    }

    fn c(n: i128) -> LinExpr {
        LinExpr::constant(Rational::from_int(n))
    }

    #[test]
    fn empty_set_is_feasible_entails_nothing() {
        let cs = ConstraintSet::new();
        assert_eq!(cs.is_feasible(), Ok(true));
        let x = sym("cs_x");
        assert_eq!(cs.entails_ge(&x, &LinExpr::zero()), Ok(false));
        // ... but tautologies hold
        assert_eq!(cs.entails_ge(&x, &x), Ok(true));
        assert_eq!(cs.entails_eq(&x, &x), Ok(true));
        assert_eq!(cs.entails_gt(&(x.clone() + c(1)), &x), Ok(true));
    }

    #[test]
    fn basic_transitivity() {
        let (a, b, d) = (sym("cs_t1"), sym("cs_t2"), sym("cs_t3"));
        let mut cs = ConstraintSet::new();
        cs.assume_gt(a.clone(), b.clone());
        cs.assume_ge(b.clone(), d.clone());
        assert_eq!(cs.entails_gt(&a, &d), Ok(true));
        assert_eq!(cs.entails_ge(&a, &d), Ok(true));
        assert_eq!(cs.entails_gt(&b, &d), Ok(false)); // only ≥ was assumed
        assert_eq!(cs.entails_ge(&d, &a), Ok(false));
    }

    #[test]
    fn equalities_substitute() {
        let (a, b) = (sym("cs_e1"), sym("cs_e2"));
        let mut cs = ConstraintSet::new();
        cs.assume_eq(a.clone(), b.clone() + c(3));
        assert_eq!(cs.entails_gt(&a, &b), Ok(true));
        assert_eq!(cs.entails_eq(&(a.clone() - b.clone()), &c(3)), Ok(true));
    }

    #[test]
    fn infeasibility_detected() {
        let a = sym("cs_i1");
        let mut cs = ConstraintSet::new();
        cs.assume_gt(a.clone(), c(5));
        cs.assume_lt(a.clone(), c(3));
        assert_eq!(cs.is_feasible(), Ok(false));
        // Infeasible sets entail everything (ex falso).
        assert_eq!(cs.entails_ge(&c(0), &c(1)), Ok(true));
    }

    #[test]
    fn strictness_tracked() {
        let a = sym("cs_s1");
        let mut cs = ConstraintSet::new();
        cs.assume_ge(a.clone(), c(5));
        cs.assume_le(a.clone(), c(5));
        // a = 5 exactly: feasible, and a > 4 entailed, a > 5 not.
        assert_eq!(cs.is_feasible(), Ok(true));
        assert_eq!(cs.entails_gt(&a, &c(4)), Ok(true));
        assert_eq!(cs.entails_gt(&a, &c(5)), Ok(false));
        assert_eq!(cs.entails_eq(&a, &c(5)), Ok(true));
        // strict pair on the same point is infeasible
        let mut cs2 = ConstraintSet::new();
        cs2.assume_gt(a.clone(), c(5));
        cs2.assume_le(a.clone(), c(5));
        assert_eq!(cs2.is_feasible(), Ok(false));
    }

    #[test]
    fn paper_constraint_one() {
        // E(t3) > F(t4) + F(t6) + F(t8), all times ≥ 0
        // ⟹ E(t3) > F(t4), E(t3) > F(t4) + F(t6), etc.
        let e3 = sym("cs_E3");
        let f4 = sym("cs_F4");
        let f6 = sym("cs_F6");
        let f8 = sym("cs_F8");
        let mut cs = ConstraintSet::new();
        for t in [&f4, &f6, &f8] {
            cs.assume_ge(t.clone(), LinExpr::zero());
        }
        cs.assume_gt(e3.clone(), f4.clone() + &f6 + &f8);
        assert_eq!(cs.entails_gt(&e3, &f4), Ok(true));
        assert_eq!(cs.entails_gt(&e3, &(f4.clone() + &f6)), Ok(true));
        assert_eq!(
            cs.entails_gt(&(e3.clone() - f4.clone() - &f6), &f8),
            Ok(true)
        );
        // but F(t4) vs F(t6) is open
        assert_eq!(cs.compare(&f4, &f6), Ok(Cmp::Unknown));
    }

    #[test]
    fn compare_all_outcomes() {
        let (a, b) = (sym("cs_c1"), sym("cs_c2"));
        let mut cs = ConstraintSet::new();
        cs.assume_lt(a.clone(), b.clone());
        assert_eq!(cs.compare(&a, &b), Ok(Cmp::Less));
        assert_eq!(cs.compare(&b, &a), Ok(Cmp::Greater));
        assert_eq!(cs.compare(&a, &a), Ok(Cmp::Equal));

        let (x, y) = (sym("cs_c3"), sym("cs_c4"));
        let mut cs2 = ConstraintSet::new();
        cs2.assume_le(x.clone(), y.clone());
        assert_eq!(cs2.compare(&x, &y), Ok(Cmp::LessEq));
        assert_eq!(cs2.compare(&y, &x), Ok(Cmp::GreaterEq));

        let mut cs3 = ConstraintSet::new();
        cs3.assume_eq(x.clone(), y.clone());
        assert_eq!(cs3.compare(&x, &y), Ok(Cmp::Equal));

        assert_eq!(ConstraintSet::new().compare(&x, &y), Ok(Cmp::Unknown));
        // constant fast path
        assert_eq!(ConstraintSet::new().compare(&c(2), &c(3)), Ok(Cmp::Less));
        assert_eq!(ConstraintSet::new().compare(&c(3), &c(3)), Ok(Cmp::Equal));
        assert_eq!(ConstraintSet::new().compare(&c(4), &c(3)), Ok(Cmp::Greater));
    }

    #[test]
    fn min_of_finds_entailed_minimum() {
        let e3 = sym("cs_m1");
        let f4 = sym("cs_m2");
        let mut cs = ConstraintSet::new();
        cs.assume_ge(f4.clone(), LinExpr::zero());
        cs.assume_gt(e3.clone(), f4.clone());
        let cands = [e3.clone(), f4.clone()];
        assert_eq!(cs.min_of(&cands), Ok(1));
        let cands2 = [f4.clone(), e3.clone()];
        assert_eq!(cs.min_of(&cands2), Ok(0));
        // singleton
        assert_eq!(cs.min_of(std::slice::from_ref(&e3)), Ok(0));
        // empty
        assert_eq!(cs.min_of(&[]), Err(ConstraintError::EmptyCandidates));
    }

    #[test]
    fn min_of_reports_ambiguous_pair() {
        let a = sym("cs_a1");
        let b = sym("cs_a2");
        let cs = ConstraintSet::new();
        match cs.min_of(&[a.clone(), b.clone()]) {
            Err(ConstraintError::AmbiguousMinimum { left, right }) => {
                assert!((left == a && right == b) || (left == b && right == a));
            }
            other => panic!("expected ambiguity, got {other:?}"),
        }
    }

    #[test]
    fn min_of_with_ties() {
        let a = sym("cs_tie1");
        let b = sym("cs_tie2");
        let mut cs = ConstraintSet::new();
        cs.assume_eq(a.clone(), b.clone());
        // Either index is acceptable; both are entailed ≤ the other.
        let idx = cs.min_of(&[a.clone(), b.clone()]).unwrap();
        assert!(idx == 0 || idx == 1);
    }

    #[test]
    fn numeric_check() {
        let a = Symbol::intern("cs_n1");
        let b = Symbol::intern("cs_n2");
        let mut cs = ConstraintSet::new();
        cs.assume_gt(LinExpr::symbol(a), LinExpr::symbol(b));
        let good = Assignment::new()
            .with(a, Rational::from_int(5))
            .with(b, Rational::from_int(3));
        let bad = Assignment::new()
            .with(a, Rational::from_int(3))
            .with(b, Rational::from_int(5));
        assert_eq!(cs.check(&good), Some(true));
        assert_eq!(cs.check(&bad), Some(false));
        assert_eq!(cs.check(&Assignment::new()), None);
    }

    #[test]
    fn chained_elimination() {
        // x1 ≤ x2 ≤ ... ≤ x6, x1 ≥ 10 entails x6 ≥ 10.
        let xs: Vec<LinExpr> = (0..6).map(|i| sym(&format!("cs_chain{i}"))).collect();
        let mut cs = ConstraintSet::new();
        for w in xs.windows(2) {
            cs.assume_le(w[0].clone(), w[1].clone());
        }
        cs.assume_ge(xs[0].clone(), c(10));
        assert_eq!(cs.entails_ge(&xs[5], &c(10)), Ok(true));
        assert_eq!(cs.entails_gt(&xs[5], &c(10)), Ok(false));
        assert_eq!(cs.min_of(&xs.clone()), Ok(0));
    }

    #[test]
    fn symbols_listed() {
        let mut cs = ConstraintSet::new();
        cs.assume_ge(sym("cs_sym_a"), sym("cs_sym_b"));
        let syms = cs.symbols();
        assert_eq!(syms.len(), 2);
    }

    #[test]
    fn display() {
        let mut cs = ConstraintSet::new();
        cs.assume_gt(sym("cs_d_x"), LinExpr::zero());
        let shown = cs.to_string();
        assert!(shown.contains("cs_d_x"), "{shown}");
        assert!(shown.contains("> 0"), "{shown}");
    }
}
