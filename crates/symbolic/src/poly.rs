//! Multivariate polynomials with exact rational coefficients.
//!
//! Branching probabilities in a symbolic timed reachability graph are
//! rational functions of the firing-frequency symbols (e.g.
//! `f₄ / (f₄ + f₅)`), and the decision-graph traversal rates derived from
//! them are solutions of linear systems over that rational-function
//! field. Keeping those functions *canonical* — so that equal
//! expressions compare equal and final performance expressions are
//! simplified — requires polynomial GCD. This module provides the
//! polynomial ring: arithmetic, exact division, content/primitive-part
//! decomposition, and a multivariate GCD via primitive pseudo-remainder
//! sequences.
//!
//! Monomials are ordered by graded lexicographic order (a proper
//! monomial order, so leading terms are multiplicative and the exact
//! division algorithm below is correct).

use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use tpn_rational::{gcd as int_gcd, lcm as int_lcm, Rational};

use crate::{Assignment, LinExpr, Monomial, Symbol};

/// A multivariate polynomial `Σ coeff·monomial`, kept canonical: no zero
/// coefficients are stored.
///
/// # Examples
///
/// ```
/// use tpn_symbolic::{Poly, Symbol};
///
/// let f4 = Poly::symbol(Symbol::intern("f4"));
/// let f5 = Poly::symbol(Symbol::intern("f5"));
/// let sum = f4.clone() + f5;
/// let prod = sum.clone() * f4;
/// assert_eq!(prod.try_div(&sum).unwrap(), Poly::symbol(Symbol::intern("f4")));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Poly {
    terms: BTreeMap<Monomial, Rational>, // invariant: no zero coefficients
}

impl Poly {
    /// The zero polynomial.
    pub fn zero() -> Poly {
        Poly::default()
    }

    /// The unit polynomial `1`.
    pub fn one() -> Poly {
        Poly::constant(Rational::ONE)
    }

    /// A constant polynomial.
    pub fn constant(c: Rational) -> Poly {
        let mut terms = BTreeMap::new();
        if !c.is_zero() {
            terms.insert(Monomial::one(), c);
        }
        Poly { terms }
    }

    /// The polynomial consisting of a single symbol.
    pub fn symbol(s: Symbol) -> Poly {
        Poly::term(Rational::ONE, Monomial::symbol(s))
    }

    /// A single term `c·m`.
    pub fn term(c: Rational, m: Monomial) -> Poly {
        let mut terms = BTreeMap::new();
        if !c.is_zero() {
            terms.insert(m, c);
        }
        Poly { terms }
    }

    /// Convert an affine expression into a (degree ≤ 1) polynomial.
    pub fn from_linexpr(e: &LinExpr) -> Poly {
        let mut p = Poly::constant(*e.constant_part());
        for (s, c) in e.terms() {
            p.add_term(*c, Monomial::symbol(s));
        }
        p
    }

    /// `true` iff the polynomial is zero.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// `true` iff the polynomial is the constant one.
    pub fn is_one(&self) -> bool {
        self.as_constant().map(|c| c.is_one()).unwrap_or(false)
    }

    /// `true` iff the polynomial has no symbols.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
            || (self.terms.len() == 1 && self.terms.keys().next().unwrap().is_one())
    }

    /// The constant value, if the polynomial is constant.
    pub fn as_constant(&self) -> Option<Rational> {
        if self.terms.is_empty() {
            return Some(Rational::ZERO);
        }
        if self.terms.len() == 1 {
            let (m, c) = self.terms.iter().next().unwrap();
            if m.is_one() {
                return Some(*c);
            }
        }
        None
    }

    /// Number of terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Iterate over (monomial, coefficient) pairs in ascending monomial
    /// order.
    pub fn terms(&self) -> impl Iterator<Item = (&Monomial, &Rational)> {
        self.terms.iter()
    }

    /// Total degree (zero for the zero polynomial).
    pub fn degree(&self) -> u32 {
        self.terms.keys().map(Monomial::degree).max().unwrap_or(0)
    }

    /// Degree in a single symbol.
    pub fn degree_in(&self, s: Symbol) -> u32 {
        self.terms.keys().map(|m| m.degree_in(s)).max().unwrap_or(0)
    }

    /// All symbols occurring in the polynomial, in symbol order.
    pub fn symbols(&self) -> Vec<Symbol> {
        let mut out: Vec<Symbol> = Vec::new();
        for m in self.terms.keys() {
            for s in m.symbols() {
                if let Err(pos) = out.binary_search(&s) {
                    out.insert(pos, s);
                }
            }
        }
        out
    }

    /// The leading (greatest in graded-lex order) term, if non-zero.
    pub fn leading(&self) -> Option<(&Monomial, &Rational)> {
        self.terms.iter().next_back()
    }

    /// The coefficient of a monomial (zero if absent).
    pub fn coeff(&self, m: &Monomial) -> Rational {
        self.terms.get(m).copied().unwrap_or(Rational::ZERO)
    }

    /// Add `c·m` in place, removing the term if it cancels.
    pub fn add_term(&mut self, c: Rational, m: Monomial) {
        if c.is_zero() {
            return;
        }
        let entry = self.terms.entry(m.clone()).or_insert(Rational::ZERO);
        *entry += c;
        if entry.is_zero() {
            self.terms.remove(&m);
        }
    }

    /// Multiply by a scalar.
    pub fn scale(&self, c: &Rational) -> Poly {
        if c.is_zero() {
            return Poly::zero();
        }
        Poly {
            terms: self.terms.iter().map(|(m, k)| (m.clone(), k * c)).collect(),
        }
    }

    /// `self^e` by repeated squaring.
    pub fn pow(&self, e: u32) -> Poly {
        let mut result = Poly::one();
        let mut base = self.clone();
        let mut e = e;
        while e > 0 {
            if e & 1 == 1 {
                result = &result * &base;
            }
            base = &base * &base;
            e >>= 1;
        }
        result
    }

    /// Evaluate under a total assignment; `None` if a symbol is unbound.
    pub fn eval(&self, a: &Assignment) -> Option<Rational> {
        let mut acc = Rational::ZERO;
        for (m, c) in &self.terms {
            let mut v = *c;
            for (s, e) in m.factors() {
                let x = a.get(s)?;
                v *= x.pow(e as i32);
            }
            acc += v;
        }
        Some(acc)
    }

    /// Substitute values for any *subset* of the symbols, returning the
    /// resulting polynomial in the remaining symbols.
    pub fn eval_partial(&self, a: &Assignment) -> Poly {
        let mut out = Poly::zero();
        for (m, c) in &self.terms {
            let mut v = *c;
            let mut rest = Monomial::one();
            for (s, e) in m.factors() {
                match a.get(s) {
                    Some(x) => v *= x.pow(e as i32),
                    None => rest = rest.mul(&Monomial::power(s, e)),
                }
            }
            out.add_term(v, rest);
        }
        out
    }

    /// Partial derivative with respect to a symbol.
    ///
    /// Used for sensitivity analysis of derived performance expressions:
    /// `∂T/∂F(t4)` tells how much the protocol throughput reacts to the
    /// packet transmission time.
    pub fn derivative(&self, s: Symbol) -> Poly {
        let mut out = Poly::zero();
        for (m, c) in &self.terms {
            let e = m.exponent(s);
            if e == 0 {
                continue;
            }
            let (rest, _) = m.split(s);
            let lowered = rest.mul(&Monomial::power(s, e - 1));
            out.add_term(c * Rational::from_int(e as i128), lowered);
        }
        out
    }

    /// Exact division: returns `Some(q)` with `self == q·d`, or `None` if
    /// `d` does not divide `self` (or `d` is zero).
    pub fn try_div(&self, d: &Poly) -> Option<Poly> {
        let (dm, dc) = d.leading()?; // None if d is zero
        let dm = dm.clone();
        let dc = *dc;
        let mut rem = self.clone();
        let mut quo = Poly::zero();
        while let Some((rm, rc)) = rem.leading() {
            let m = rm.div(&dm)?;
            let c = *rc / dc;
            let t = Poly::term(c, m);
            rem -= &t * d;
            quo += t;
        }
        Some(quo)
    }

    /// Decompose as `c · P` with `P` having integer coefficients, content
    /// one, and positive leading coefficient. Returns `(P, c)`. The zero
    /// polynomial decomposes as `(0, 1)`.
    pub fn to_primitive_integer(&self) -> (Poly, Rational) {
        if self.is_zero() {
            return (Poly::zero(), Rational::ONE);
        }
        // Scale by the lcm of coefficient denominators to clear fractions.
        let mut l: i128 = 1;
        for c in self.terms.values() {
            l = int_lcm(l, c.denom()).expect("coefficient denominator lcm overflow");
        }
        let scale = Rational::from_int(l);
        // Integer content (gcd of numerators after scaling).
        let mut g: i128 = 0;
        for c in self.terms.values() {
            let scaled = c * scale;
            debug_assert!(scaled.is_integer());
            g = int_gcd(g, scaled.numer());
        }
        debug_assert!(g > 0);
        let lead_sign = self
            .leading()
            .map(|(_, c)| if c.is_negative() { -1i128 } else { 1 })
            .unwrap_or(1);
        let content = Rational::new(g * lead_sign, l);
        let prim = self.scale(&content.recip());
        (prim, content)
    }

    /// Multivariate GCD, always returned as an integer-primitive
    /// polynomial with positive leading coefficient (constants collapse
    /// to `1`). `gcd(0, p)` is the primitive part of `p`.
    pub fn gcd(&self, other: &Poly) -> Poly {
        let (a, _) = self.to_primitive_integer();
        let (b, _) = other.to_primitive_integer();
        let g = gcd_primitive(&a, &b);
        debug_assert!(
            self.is_zero() || self.try_div(&g).is_some(),
            "gcd must divide lhs"
        );
        debug_assert!(
            other.is_zero() || other.try_div(&g).is_some(),
            "gcd must divide rhs"
        );
        g
    }

    /// View the polynomial as univariate in `x` with polynomial
    /// coefficients: a map from `x`-exponent to coefficient polynomial
    /// (in the other symbols).
    fn univariate_in(&self, x: Symbol) -> BTreeMap<u32, Poly> {
        let mut out: BTreeMap<u32, Poly> = BTreeMap::new();
        for (m, c) in &self.terms {
            let (rest, e) = m.split(x);
            out.entry(e).or_insert_with(Poly::zero).add_term(*c, rest);
        }
        out.retain(|_, p| !p.is_zero());
        out
    }

    fn from_univariate(x: Symbol, coeffs: &BTreeMap<u32, Poly>) -> Poly {
        let mut out = Poly::zero();
        for (e, p) in coeffs {
            let xe = Poly::term(Rational::ONE, Monomial::power(x, *e));
            out += &xe * p;
        }
        out
    }
}

/// GCD of two integer-coefficient polynomials by the primitive
/// pseudo-remainder-sequence algorithm, recursing on the variable set.
/// The result is integer-primitive with positive leading coefficient.
fn gcd_primitive(a: &Poly, b: &Poly) -> Poly {
    if a.is_zero() {
        return normalize_sign(b.to_primitive_integer().0);
    }
    if b.is_zero() {
        return normalize_sign(a.to_primitive_integer().0);
    }
    if a.is_constant() || b.is_constant() {
        // Over the rationals every non-zero constant is a unit.
        return Poly::one();
    }
    // Main variable: the lowest symbol occurring in either polynomial.
    let x = {
        let sa = a.symbols();
        let sb = b.symbols();
        *sa.iter()
            .chain(sb.iter())
            .min()
            .expect("non-constant polys have symbols")
    };
    // If one side is x-free, it must divide the other's content w.r.t. x.
    if a.degree_in(x) == 0 {
        return gcd_primitive(a, &content_wrt(b, x));
    }
    if b.degree_in(x) == 0 {
        return gcd_primitive(&content_wrt(a, x), b);
    }
    let ca = content_wrt(a, x);
    let cb = content_wrt(b, x);
    let content_gcd = gcd_primitive(&ca, &cb);
    let mut p = a.try_div(&ca).expect("content divides");
    let mut q = b.try_div(&cb).expect("content divides");
    if p.degree_in(x) < q.degree_in(x) {
        std::mem::swap(&mut p, &mut q);
    }
    // Primitive pseudo-remainder sequence: x-degree strictly decreases.
    loop {
        let r = pseudo_rem(&p, &q, x);
        if r.is_zero() {
            let result = &content_gcd * &primitive_wrt(&q, x);
            return normalize_sign(result);
        }
        if r.degree_in(x) == 0 {
            // Non-zero x-free remainder: p and q are coprime w.r.t. x.
            return normalize_sign(content_gcd);
        }
        p = q;
        q = primitive_wrt(&r, x);
    }
}

/// Content of `p` with respect to `x`: the gcd of its univariate
/// coefficient polynomials.
fn content_wrt(p: &Poly, x: Symbol) -> Poly {
    let mut g = Poly::zero();
    for c in p.univariate_in(x).values() {
        g = gcd_primitive(&g, c);
        if g.is_one() {
            break;
        }
    }
    g
}

/// Pseudo-remainder of `a` by `b`, both viewed as univariate in `x`.
fn pseudo_rem(a: &Poly, b: &Poly, x: Symbol) -> Poly {
    let bu = b.univariate_in(x);
    let db = *bu.keys().next_back().expect("b non-zero");
    let lb = bu[&db].clone();
    let mut r = a.clone();
    loop {
        if r.is_zero() {
            return r;
        }
        let ru = r.univariate_in(x);
        let dr = *ru.keys().next_back().expect("r non-zero");
        if dr < db {
            return r;
        }
        let lr = ru[&dr].clone();
        // r := lb·r − lr·x^(dr−db)·b  — cancels the leading x-term.
        let shift = Poly::term(Rational::ONE, Monomial::power(x, dr - db));
        r = &(&lb * &r) - &(&(&lr * &shift) * b);
    }
}

/// Divide out the content with respect to `x` (the gcd of the univariate
/// coefficient polynomials), then normalise to integer-primitive form.
fn primitive_wrt(p: &Poly, x: Symbol) -> Poly {
    if p.is_zero() {
        return Poly::zero();
    }
    let g = content_wrt(p, x);
    let reduced = if g.is_one() {
        p.clone()
    } else {
        let u = p.univariate_in(x);
        let mut out: BTreeMap<u32, Poly> = BTreeMap::new();
        for (e, c) in &u {
            out.insert(*e, c.try_div(&g).expect("content divides"));
        }
        Poly::from_univariate(x, &out)
    };
    reduced.to_primitive_integer().0
}

fn normalize_sign(p: Poly) -> Poly {
    match p.leading() {
        Some((_, c)) if c.is_negative() => p.scale(&-Rational::ONE),
        _ => {
            if p.is_constant() && !p.is_zero() {
                Poly::one()
            } else {
                p
            }
        }
    }
}

impl From<Rational> for Poly {
    fn from(c: Rational) -> Poly {
        Poly::constant(c)
    }
}

impl From<Symbol> for Poly {
    fn from(s: Symbol) -> Poly {
        Poly::symbol(s)
    }
}

impl Add for Poly {
    type Output = Poly;
    fn add(mut self, rhs: Poly) -> Poly {
        self += rhs;
        self
    }
}

impl Add<&Poly> for &Poly {
    type Output = Poly;
    fn add(self, rhs: &Poly) -> Poly {
        let mut out = self.clone();
        for (m, c) in &rhs.terms {
            out.add_term(*c, m.clone());
        }
        out
    }
}

impl AddAssign for Poly {
    fn add_assign(&mut self, rhs: Poly) {
        for (m, c) in rhs.terms {
            self.add_term(c, m);
        }
    }
}

impl Sub for Poly {
    type Output = Poly;
    fn sub(mut self, rhs: Poly) -> Poly {
        self -= &rhs;
        self
    }
}

impl Sub<&Poly> for &Poly {
    type Output = Poly;
    fn sub(self, rhs: &Poly) -> Poly {
        let mut out = self.clone();
        out -= rhs;
        out
    }
}

impl SubAssign<&Poly> for Poly {
    fn sub_assign(&mut self, rhs: &Poly) {
        for (m, c) in &rhs.terms {
            self.add_term(-c, m.clone());
        }
    }
}

impl SubAssign for Poly {
    fn sub_assign(&mut self, rhs: Poly) {
        *self -= &rhs;
    }
}

impl Mul for Poly {
    type Output = Poly;
    fn mul(self, rhs: Poly) -> Poly {
        &self * &rhs
    }
}

impl Mul<&Poly> for &Poly {
    type Output = Poly;
    fn mul(self, rhs: &Poly) -> Poly {
        let mut out = Poly::zero();
        for (m1, c1) in &self.terms {
            for (m2, c2) in &rhs.terms {
                out.add_term(c1 * c2, m1.mul(m2));
            }
        }
        out
    }
}

impl MulAssign for Poly {
    fn mul_assign(&mut self, rhs: Poly) {
        *self = &*self * &rhs;
    }
}

impl Neg for Poly {
    type Output = Poly;
    fn neg(self) -> Poly {
        self.scale(&-Rational::ONE)
    }
}

impl fmt::Display for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        // Display highest-order terms first.
        let mut first = true;
        for (m, c) in self.terms.iter().rev() {
            if first {
                first = false;
                if m.is_one() {
                    write!(f, "{c}")?;
                } else if c.is_one() {
                    write!(f, "{m}")?;
                } else if *c == -Rational::ONE {
                    write!(f, "-{m}")?;
                } else {
                    write!(f, "{c}·{m}")?;
                }
            } else {
                let (sign, mag) = if c.is_negative() {
                    (" - ", c.abs())
                } else {
                    (" + ", *c)
                };
                write!(f, "{sign}")?;
                if m.is_one() {
                    write!(f, "{mag}")?;
                } else if mag.is_one() {
                    write!(f, "{m}")?;
                } else {
                    write!(f, "{mag}·{m}")?;
                }
            }
        }
        Ok(())
    }
}

impl fmt::Debug for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(n: &str) -> Poly {
        Poly::symbol(Symbol::intern(n))
    }

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn constants_and_predicates() {
        assert!(Poly::zero().is_zero());
        assert!(Poly::one().is_one());
        assert!(Poly::constant(r(3, 2)).is_constant());
        assert_eq!(Poly::constant(r(3, 2)).as_constant(), Some(r(3, 2)));
        assert_eq!(Poly::zero().as_constant(), Some(Rational::ZERO));
        assert_eq!(s("px").as_constant(), None);
    }

    #[test]
    fn arithmetic_identities() {
        let x = s("poly_x");
        let y = s("poly_y");
        let p = &x + &y;
        let q = &x - &y;
        // (x+y)(x-y) = x² - y²
        let prod = &p * &q;
        let expect = &(&x * &x) - &(&y * &y);
        assert_eq!(prod, expect);
        // (x+y)² = x² + 2xy + y²
        let sq = p.pow(2);
        let expect2 = {
            let mut e = &x * &x;
            e += (&x * &y).scale(&r(2, 1));
            e += &y * &y;
            e
        };
        assert_eq!(sq, expect2);
        assert_eq!(p.pow(0), Poly::one());
    }

    #[test]
    fn degrees() {
        let x = Symbol::intern("poly_dx");
        let y = Symbol::intern("poly_dy");
        let p = &Poly::symbol(x).pow(3) * &Poly::symbol(y);
        assert_eq!(p.degree(), 4);
        assert_eq!(p.degree_in(x), 3);
        assert_eq!(p.degree_in(y), 1);
        assert_eq!(Poly::zero().degree(), 0);
    }

    #[test]
    fn eval_and_partial() {
        let x = Symbol::intern("poly_e1");
        let y = Symbol::intern("poly_e2");
        // p = x²y + 3
        let p = {
            let mut p = &Poly::symbol(x).pow(2) * &Poly::symbol(y);
            p += Poly::constant(r(3, 1));
            p
        };
        let a = Assignment::new().with(x, r(2, 1)).with(y, r(5, 1));
        assert_eq!(p.eval(&a), Some(r(23, 1)));
        let partial = Assignment::new().with(x, r(2, 1));
        assert_eq!(p.eval(&partial), None);
        let reduced = p.eval_partial(&partial);
        // 4y + 3
        let mut expect = Poly::symbol(y).scale(&r(4, 1));
        expect += Poly::constant(r(3, 1));
        assert_eq!(reduced, expect);
    }

    #[test]
    fn exact_division() {
        let x = s("poly_v1");
        let y = s("poly_v2");
        let a = &x + &y;
        let b = &x - &y;
        let prod = &a * &b;
        assert_eq!(prod.try_div(&a), Some(b.clone()));
        assert_eq!(prod.try_div(&b), Some(a.clone()));
        assert_eq!(a.try_div(&b), None);
        assert_eq!(a.try_div(&Poly::zero()), None);
        assert_eq!(Poly::zero().try_div(&a), Some(Poly::zero()));
        // Division by a constant always succeeds.
        assert_eq!(a.try_div(&Poly::constant(r(2, 1))), Some(a.scale(&r(1, 2))));
    }

    #[test]
    fn primitive_integer_decomposition() {
        let x = Symbol::intern("poly_p1");
        // p = (3/2)x + 3/4  =  (3/4)·(2x + 1)
        let p = Poly::symbol(x).scale(&r(3, 2)) + Poly::constant(r(3, 4));
        let (prim, c) = p.to_primitive_integer();
        assert_eq!(c, r(3, 4));
        let mut expect = Poly::symbol(x).scale(&r(2, 1));
        expect += Poly::one();
        assert_eq!(prim, expect);
        assert_eq!(prim.scale(&c), p);
        // Negative leading coefficient moves into the content.
        let n = -p;
        let (prim2, c2) = n.to_primitive_integer();
        assert_eq!(prim2, expect);
        assert_eq!(c2, r(-3, 4));
    }

    #[test]
    fn gcd_univariate() {
        let x = s("poly_g1");
        // gcd((x+1)², (x+1)(x-1)) = x+1
        let xp1 = &x + &Poly::one();
        let xm1 = &x - &Poly::one();
        let a = xp1.pow(2);
        let b = &xp1 * &xm1;
        assert_eq!(a.gcd(&b), xp1);
    }

    #[test]
    fn gcd_multivariate() {
        let x = s("poly_m1");
        let y = s("poly_m2");
        let common = &x + &y;
        let a = &common * &(&x - &y);
        let b = &common * &(&x + &Poly::one());
        assert_eq!(a.gcd(&b), common);
    }

    #[test]
    fn gcd_coprime_and_degenerate() {
        let x = s("poly_c1");
        let y = s("poly_c2");
        assert_eq!(x.gcd(&y), Poly::one());
        assert_eq!(x.gcd(&Poly::zero()), x);
        assert_eq!(Poly::zero().gcd(&y), y);
        assert_eq!(Poly::zero().gcd(&Poly::zero()), Poly::zero());
        assert_eq!(
            Poly::constant(r(6, 1)).gcd(&Poly::constant(r(4, 1))),
            Poly::one()
        );
        // gcd result has positive leading coefficient and content 1
        let g = (-x.clone()).gcd(&x.scale(&r(7, 3)));
        assert_eq!(g, x);
    }

    #[test]
    fn gcd_with_rational_coefficients() {
        let x = s("poly_r1");
        // (x/2 + 1/2) and (x+1)(x+2) share the factor x+1 up to a unit.
        let half = (&x + &Poly::one()).scale(&r(1, 2));
        let b = &(&x + &Poly::one()) * &(&x + &Poly::constant(r(2, 1)));
        assert_eq!(half.gcd(&b), &x + &Poly::one());
    }

    #[test]
    fn from_linexpr_roundtrip() {
        let x = Symbol::intern("poly_l1");
        let e = LinExpr::term(r(2, 1), x) + LinExpr::constant(r(1, 2));
        let p = Poly::from_linexpr(&e);
        assert_eq!(p.degree(), 1);
        let a = Assignment::new().with(x, r(3, 1));
        assert_eq!(p.eval(&a), e.eval(&a));
    }

    #[test]
    fn derivative() {
        let x = Symbol::intern("poly_der_x");
        let y = Symbol::intern("poly_der_y");
        // p = x³y + 2x + 5
        let p = {
            let mut p = &Poly::symbol(x).pow(3) * &Poly::symbol(y);
            p += Poly::symbol(x).scale(&r(2, 1));
            p += Poly::constant(r(5, 1));
            p
        };
        // ∂p/∂x = 3x²y + 2
        let dx = p.derivative(x);
        let mut expect = (&Poly::symbol(x).pow(2) * &Poly::symbol(y)).scale(&r(3, 1));
        expect += Poly::constant(r(2, 1));
        assert_eq!(dx, expect);
        // ∂p/∂y = x³
        assert_eq!(p.derivative(y), Poly::symbol(x).pow(3));
        // constants vanish
        assert_eq!(Poly::constant(r(7, 1)).derivative(x), Poly::zero());
        // product rule sanity: d(p²) = 2·p·p'
        let sq = &p * &p;
        assert_eq!(sq.derivative(x), (&p * &dx).scale(&r(2, 1)));
    }

    #[test]
    fn display() {
        let x = s("pdx");
        let p = &(&x * &x) - &Poly::one();
        let shown = p.to_string();
        assert!(shown.contains("pdx^2"), "{shown}");
        assert!(shown.contains("- 1"), "{shown}");
        assert_eq!(Poly::zero().to_string(), "0");
    }
}
