//! Symbolic algebra substrate for deriving performance *expressions*.
//!
//! Section 3 of Razouk's paper replaces the concrete enabling/firing times
//! of a Timed Petri Net with *symbols* constrained by a set of linear
//! timing constraints, and replaces concrete firing frequencies with
//! frequency symbols. Constructing the symbolic timed reachability graph
//! then requires three capabilities, each provided by this crate:
//!
//! 1. **Affine time expressions** ([`LinExpr`]) — every remaining
//!    enabling/firing time in the graph is an affine combination
//!    `c₀ + Σ cᵢ·xᵢ` of the time symbols, because the construction only
//!    ever *subtracts* delays from delays.
//! 2. **A decision procedure for timing constraints**
//!    ([`ConstraintSet`]) — "evaluating the smallest non-zero values is
//!    replaced by a procedure for evaluating the smallest value in a set
//!    of expressions, given a set of timing constraints" (paper, §3).
//!    We implement entailment checking by Fourier–Motzkin elimination
//!    over exact rationals.
//! 3. **Rational functions** ([`RatFn`]) — branching probabilities such
//!    as `f₄/(f₄+f₅)` and the traversal rates derived from them are
//!    ratios of multivariate polynomials ([`Poly`]) in the frequency
//!    symbols; solving the decision-graph rate equations happens in this
//!    field.
//!
//! All arithmetic is exact (see [`tpn_rational`]).

#![allow(clippy::result_large_err)] // ConstraintError carries the offending expressions by design

mod assignment;
mod constraint;
mod linexpr;
mod monomial;
mod poly;
mod ratfn;
mod symbol;

pub use assignment::Assignment;
pub use constraint::{Cmp, Constraint, ConstraintError, ConstraintSet, Relation};
pub use linexpr::LinExpr;
pub use monomial::Monomial;
pub use poly::Poly;
pub use ratfn::RatFn;
pub use symbol::{Symbol, SymbolTable};
