//! Property-based tests for the symbolic substrate: ring/field axioms,
//! GCD contracts, Fourier–Motzkin soundness against numeric sampling,
//! and calculus identities.

use proptest::prelude::*;
use tpn_rational::Rational;
use tpn_symbolic::{Assignment, ConstraintSet, LinExpr, Monomial, Poly, RatFn, Relation, Symbol};

fn vars() -> Vec<Symbol> {
    (0..4)
        .map(|i| Symbol::intern(&format!("pp_v{i}")))
        .collect()
}

fn small_coeff() -> impl Strategy<Value = Rational> {
    (-6i128..=6, 1i128..=3).prop_map(|(n, d)| Rational::new(n, d))
}

/// Random sparse polynomial of low degree over 4 shared symbols.
fn poly() -> impl Strategy<Value = Poly> {
    proptest::collection::vec((small_coeff(), proptest::collection::vec(0u32..3, 4)), 0..5)
        .prop_map(|terms| {
            let vs = vars();
            let mut p = Poly::zero();
            for (c, exps) in terms {
                let mut m = Monomial::one();
                for (v, e) in vs.iter().zip(exps) {
                    m = m.mul(&Monomial::power(*v, e));
                }
                p.add_term(c, m);
            }
            p
        })
}

fn assignment() -> impl Strategy<Value = Assignment> {
    proptest::collection::vec((-5i128..=5, 1i128..=3), 4).prop_map(|vals| {
        let vs = vars();
        vs.into_iter()
            .zip(vals)
            .map(|(v, (n, d))| (v, Rational::new(n, d)))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn poly_ring_axioms(a in poly(), b in poly(), c in poly()) {
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        prop_assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        prop_assert_eq!(&a + &Poly::zero(), a.clone());
        prop_assert_eq!(&a * &Poly::one(), a.clone());
        prop_assert_eq!(&a - &a, Poly::zero());
    }

    #[test]
    fn poly_eval_is_a_homomorphism(a in poly(), b in poly(), at in assignment()) {
        let ea = a.eval(&at).unwrap();
        let eb = b.eval(&at).unwrap();
        prop_assert_eq!((&a + &b).eval(&at).unwrap(), ea + eb);
        prop_assert_eq!((&a * &b).eval(&at).unwrap(), ea * eb);
    }

    #[test]
    fn gcd_divides_and_product_roundtrips(a in poly(), b in poly()) {
        let g = a.gcd(&b);
        if !a.is_zero() {
            prop_assert!(a.try_div(&g).is_some());
        }
        if !b.is_zero() {
            prop_assert!(b.try_div(&g).is_some());
        }
        // (a·b) / a == b  (exact division of a true multiple)
        if !a.is_zero() {
            let prod = &a * &b;
            prop_assert_eq!(prod.try_div(&a), Some(b.clone()));
        }
    }

    #[test]
    fn derivative_is_linear_and_leibniz(a in poly(), b in poly()) {
        let x = vars()[0];
        prop_assert_eq!((&a + &b).derivative(x), &a.derivative(x) + &b.derivative(x));
        let prod = &a * &b;
        let leibniz = &(&a.derivative(x) * &b) + &(&a * &b.derivative(x));
        prop_assert_eq!(prod.derivative(x), leibniz);
    }

    #[test]
    fn ratfn_field_axioms(a in poly(), b in poly()) {
        prop_assume!(!b.is_zero());
        let f = RatFn::new(a.clone(), b.clone());
        prop_assert_eq!(&f - &f, RatFn::zero());
        if !f.is_zero() {
            let inv = f.recip().unwrap();
            prop_assert!((&f * &inv).is_one());
        }
        // canonical: evaluating f at a random point equals a(x)/b(x)
    }

    #[test]
    fn ratfn_eval_consistent(a in poly(), b in poly(), at in assignment()) {
        prop_assume!(!b.is_zero());
        let f = RatFn::new(a.clone(), b.clone());
        let eb = b.eval(&at).unwrap();
        prop_assume!(!eb.is_zero());
        let ea = a.eval(&at).unwrap();
        // the canonical form may cancel a factor vanishing at the point;
        // when it does not, values agree exactly
        if let Some(v) = f.eval(&at) {
            prop_assert_eq!(v, ea / eb);
        }
    }

    #[test]
    fn fm_entailment_sound(
        coeffs in proptest::collection::vec((-4i128..=4, -4i128..=4, -6i128..=6), 1..5),
        query in (-4i128..=4, -4i128..=4, -6i128..=6),
        samples in proptest::collection::vec((-8i128..=8, -8i128..=8), 32),
    ) {
        // Random 2-variable constraint system; if FM claims entailment,
        // no integer sample satisfying the constraints may violate the
        // query (soundness check by exhaustive-ish sampling).
        let x = Symbol::intern("fm_x");
        let y = Symbol::intern("fm_y");
        let expr = |a: i128, b: i128, c: i128| {
            LinExpr::term(Rational::from_int(a), x)
                + LinExpr::term(Rational::from_int(b), y)
                + LinExpr::constant(Rational::from_int(c))
        };
        let mut cs = ConstraintSet::new();
        for (a, b, c) in &coeffs {
            cs.assume(expr(*a, *b, *c), Relation::Ge);
        }
        let q = expr(query.0, query.1, query.2);
        let entailed = cs.entails(&q, Relation::Ge).unwrap();
        if entailed {
            for (vx, vy) in samples {
                let at = Assignment::new()
                    .with(x, Rational::from_int(vx))
                    .with(y, Rational::from_int(vy));
                if cs.check(&at) == Some(true) {
                    let v = q.eval(&at).unwrap();
                    prop_assert!(
                        !v.is_negative(),
                        "FM claimed entailment but ({vx},{vy}) violates it"
                    );
                }
            }
        }
    }

    #[test]
    fn fm_feasibility_agrees_with_witnesses(
        coeffs in proptest::collection::vec((-3i128..=3, -3i128..=3, -5i128..=5), 1..4),
        samples in proptest::collection::vec((-6i128..=6, -6i128..=6), 48),
    ) {
        let x = Symbol::intern("fmf_x");
        let y = Symbol::intern("fmf_y");
        let mut cs = ConstraintSet::new();
        for (a, b, c) in &coeffs {
            let e = LinExpr::term(Rational::from_int(*a), x)
                + LinExpr::term(Rational::from_int(*b), y)
                + LinExpr::constant(Rational::from_int(*c));
            cs.assume(e, Relation::Ge);
        }
        let feasible = cs.is_feasible().unwrap();
        let witness = samples.iter().any(|(vx, vy)| {
            let at = Assignment::new()
                .with(x, Rational::from_int(*vx))
                .with(y, Rational::from_int(*vy));
            cs.check(&at) == Some(true)
        });
        // A satisfying sample implies feasibility (completeness of the
        // infeasibility verdict).
        if witness {
            prop_assert!(feasible, "witness exists but FM says infeasible");
        }
    }

    #[test]
    fn linexpr_poly_embedding_commutes(at in assignment(), coeffs in proptest::collection::vec(small_coeff(), 4)) {
        let vs = vars();
        let mut e = LinExpr::zero();
        for (v, c) in vs.iter().zip(&coeffs) {
            e.add_term(*c, *v);
        }
        let p = Poly::from_linexpr(&e);
        prop_assert_eq!(e.eval(&at), p.eval(&at));
    }
}
