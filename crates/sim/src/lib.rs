//! Discrete-event Monte-Carlo simulation of Timed Petri Nets.
//!
//! The paper derives performance expressions *analytically*; this crate
//! provides the independent oracle: it executes the same Timed-Petri-Net
//! semantics (enabling times, absorb-at-start firing, conflict-set
//! resolution by relative frequencies) event by event, resolving
//! conflicts with a seeded pseudo-random number generator, and reports
//! empirical transition rates. Every analytic result in the workspace is
//! cross-checked against long simulation runs.
//!
//! Time is kept as exact [`tpn_rational::Rational`]s — the event *clock*
//! never drifts;
//! randomness enters only through conflict resolution.

mod engine;
mod stats;

pub use engine::{simulate, SimError, SimOptions};
pub use stats::SimStats;
