//! Simulation statistics.

use tpn_net::{TimedPetriNet, TransId};
use tpn_rational::Rational;

/// Counters collected by a simulation run (after the warm-up cut).
#[derive(Debug, Clone)]
pub struct SimStats {
    pub(crate) measured_time: Rational,
    pub(crate) started: Vec<u64>,
    pub(crate) completed: Vec<u64>,
    pub(crate) place_busy: Vec<Rational>,
    pub(crate) trans_busy: Vec<Rational>,
    pub(crate) events: u64,
    pub(crate) deadlocked: bool,
}

impl SimStats {
    /// Simulated time covered by the measurement window.
    pub fn measured_time(&self) -> &Rational {
        &self.measured_time
    }

    /// Number of discrete events processed (firings begun plus elapse
    /// steps), including warm-up.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// `true` iff the run ended in a dead state rather than at the
    /// event/time budget.
    pub fn deadlocked(&self) -> bool {
        self.deadlocked
    }

    /// How many times transition `t` began firing in the window.
    pub fn firings(&self, t: TransId) -> u64 {
        self.started[t.index()]
    }

    /// How many times transition `t` finished firing in the window.
    pub fn completions(&self, t: TransId) -> u64 {
        self.completed[t.index()]
    }

    /// Empirical throughput of `t`: completions per unit time, as `f64`.
    pub fn throughput(&self, t: TransId) -> f64 {
        if self.measured_time.is_zero() {
            return 0.0;
        }
        self.completed[t.index()] as f64 / self.measured_time.to_f64()
    }

    /// Empirical utilisation of a place: fraction of measured time the
    /// place held at least one token. Exact rational bookkeeping — the
    /// analytic [`place_utilization`] of `tpn-core` must match this in
    /// the limit.
    ///
    /// [`place_utilization`]: https://docs.rs/tpn-core
    pub fn place_utilization(&self, p: tpn_net::PlaceId) -> f64 {
        if self.measured_time.is_zero() {
            return 0.0;
        }
        self.place_busy[p.index()].to_f64() / self.measured_time.to_f64()
    }

    /// Empirical utilisation of a transition: fraction of measured time
    /// it was actively firing.
    pub fn transition_utilization(&self, t: TransId) -> f64 {
        if self.measured_time.is_zero() {
            return 0.0;
        }
        self.trans_busy[t.index()].to_f64() / self.measured_time.to_f64()
    }

    /// Render per-transition counts.
    pub fn describe(&self, net: &TimedPetriNet) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "simulated {} time units, {} events{}",
            self.measured_time.to_decimal_string(3),
            self.events,
            if self.deadlocked { " (deadlocked)" } else { "" }
        );
        for t in net.transitions() {
            let _ = writeln!(
                out,
                "  {:<16} started {:>8}  completed {:>8}  rate {:.6}",
                net.transition(t).name(),
                self.started[t.index()],
                self.completed[t.index()],
                self.throughput(t)
            );
        }
        out
    }
}
