//! The simulation engine.

use std::collections::BTreeMap;
use std::fmt;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tpn_net::{ConflictSetId, Frequency, Marking, TimedPetriNet, TransId};
use tpn_rational::Rational;

use crate::SimStats;

/// Options for a simulation run.
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// PRNG seed (runs are fully reproducible given the seed).
    pub seed: u64,
    /// Stop after this many discrete events (0 = unlimited).
    pub max_events: u64,
    /// Stop once the clock passes this time (`None` = unlimited). At
    /// least one of `max_events`/`max_time` must bound the run.
    pub max_time: Option<Rational>,
    /// Discard everything before this time from the statistics
    /// (steady-state warm-up cut).
    pub warmup: Rational,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            seed: 0x5EED,
            max_events: 1_000_000,
            max_time: None,
            warmup: Rational::ZERO,
        }
    }
}

/// Errors from simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The net has unknown times or frequencies; simulation needs
    /// concrete values.
    UnknownAttribute {
        /// The offending transition's name.
        transition: String,
    },
    /// The paper's conflict-set restriction was violated (a transition
    /// could fire twice at one instant).
    MultipleFiring {
        /// The offending transition's name.
        transition: String,
    },
    /// Neither `max_events` nor `max_time` bounds the run.
    UnboundedRun,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownAttribute { transition } => {
                write!(
                    f,
                    "simulation requires concrete attributes for {transition:?}"
                )
            }
            SimError::MultipleFiring { transition } => {
                write!(
                    f,
                    "transition {transition:?} would fire twice at one instant"
                )
            }
            SimError::UnboundedRun => write!(f, "set max_events or max_time"),
        }
    }
}

impl std::error::Error for SimError {}

struct SimState {
    marking: Marking,
    ret: Vec<Option<Rational>>,
    rft: Vec<Option<Rational>>,
}

/// Run a simulation of `net`.
pub fn simulate(net: &TimedPetriNet, opts: &SimOptions) -> Result<SimStats, SimError> {
    if opts.max_events == 0 && opts.max_time.is_none() {
        return Err(SimError::UnboundedRun);
    }
    // Pre-resolve all attributes.
    let nt = net.num_transitions();
    let mut enabling = Vec::with_capacity(nt);
    let mut firing = Vec::with_capacity(nt);
    let mut weight = Vec::with_capacity(nt);
    for t in net.transitions() {
        let tr = net.transition(t);
        let unknown = || SimError::UnknownAttribute {
            transition: tr.name().to_string(),
        };
        enabling.push(*tr.enabling().known().ok_or_else(unknown)?);
        firing.push(*tr.firing().known().ok_or_else(unknown)?);
        weight.push(match tr.frequency() {
            Frequency::Weight(w) => w.to_f64(),
            Frequency::Unknown => return Err(unknown()),
        });
    }

    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut state = SimState {
        marking: net.initial_marking().clone(),
        ret: vec![None; nt],
        rft: vec![None; nt],
    };
    refresh_enablement(net, &enabling, &mut state);

    let np = net.num_places();
    let mut clock = Rational::ZERO;
    let mut started = vec![0u64; nt];
    let mut completed = vec![0u64; nt];
    let mut place_busy = vec![Rational::ZERO; np];
    let mut trans_busy = vec![Rational::ZERO; nt];
    let mut events = 0u64;
    let mut deadlocked = false;
    // Warm-up snapshot (taken once the clock first reaches `warmup`).
    type Snap = (Rational, Vec<u64>, Vec<u64>, Vec<Rational>, Vec<Rational>);
    let mut snap: Option<Snap> = None;
    let mut take_snapshot_now = opts.warmup.is_zero();

    loop {
        if take_snapshot_now && snap.is_none() {
            snap = Some((
                clock,
                started.clone(),
                completed.clone(),
                place_busy.clone(),
                trans_busy.clone(),
            ));
        }
        if opts.max_events > 0 && events >= opts.max_events {
            break;
        }
        if let Some(mt) = &opts.max_time {
            if &clock >= mt {
                break;
            }
        }
        let firable: Vec<TransId> = state
            .ret
            .iter()
            .enumerate()
            .filter_map(|(i, v)| match v {
                Some(x) if x.is_zero() => Some(TransId::from_index(i)),
                _ => None,
            })
            .collect();
        if !firable.is_empty() {
            // Resolve each firable conflict set independently.
            let mut by_set: BTreeMap<ConflictSetId, Vec<TransId>> = BTreeMap::new();
            for &t in &firable {
                if state.rft[t.index()].is_some() {
                    return Err(SimError::MultipleFiring {
                        transition: net.transition(t).name().to_string(),
                    });
                }
                by_set.entry(net.conflict_set_of(t)).or_default().push(t);
            }
            let mut chosen: Vec<TransId> = Vec::with_capacity(by_set.len());
            for members in by_set.values() {
                chosen.push(pick_weighted(members, &weight, &mut rng));
            }
            for &t in &chosen {
                state.marking.subtract(net.transition(t).input());
            }
            // Conflict-set restriction check (as in the analytic engine).
            for &t in &chosen {
                let cs = net.conflict_set(net.conflict_set_of(t));
                for &u in cs.members() {
                    let was_firable = matches!(&state.ret[u.index()], Some(x) if x.is_zero());
                    if was_firable && state.marking.covers(net.transition(u).input()) {
                        return Err(SimError::MultipleFiring {
                            transition: net.transition(u).name().to_string(),
                        });
                    }
                }
            }
            for &t in &chosen {
                started[t.index()] += 1;
                if firing[t.index()].is_zero() {
                    state.marking.add(net.transition(t).output());
                    completed[t.index()] += 1;
                } else {
                    state.rft[t.index()] = Some(firing[t.index()]);
                }
            }
            refresh_enablement(net, &enabling, &mut state);
        } else {
            // Elapse the minimum remaining time.
            let tmin = state
                .ret
                .iter()
                .chain(state.rft.iter())
                .filter_map(|v| v.as_ref())
                .min()
                .copied();
            let Some(tmin) = tmin else {
                deadlocked = true;
                break;
            };
            // Accrue busy time over the elapse interval.
            for (p, n) in state.marking.marked_places() {
                debug_assert!(n > 0);
                place_busy[p.index()] += tmin;
            }
            for (i, v) in state.rft.iter().enumerate() {
                if v.is_some() {
                    trans_busy[i] += tmin;
                }
            }
            clock += tmin;
            if !opts.warmup.is_zero() && clock >= opts.warmup {
                take_snapshot_now = true;
            }
            for v in state.ret.iter_mut().chain(state.rft.iter_mut()).flatten() {
                *v -= tmin;
            }
            let mut done: Vec<TransId> = Vec::new();
            for (i, v) in state.rft.iter_mut().enumerate() {
                if matches!(v, Some(x) if x.is_zero()) {
                    *v = None;
                    done.push(TransId::from_index(i));
                }
            }
            for &t in &done {
                completed[t.index()] += 1;
                state.marking.add(net.transition(t).output());
            }
            refresh_enablement(net, &enabling, &mut state);
        }
        events += 1;
    }

    let (t0, s0, c0, pb0, tb0) = snap.unwrap_or_else(|| {
        (
            clock,
            started.clone(),
            completed.clone(),
            place_busy.clone(),
            trans_busy.clone(),
        )
    });
    Ok(SimStats {
        measured_time: clock - t0,
        started: diff(&started, &s0),
        completed: diff(&completed, &c0),
        place_busy: diff_time(&place_busy, &pb0),
        trans_busy: diff_time(&trans_busy, &tb0),
        events,
        deadlocked,
    })
}

fn diff_time(a: &[Rational], b: &[Rational]) -> Vec<Rational> {
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

fn diff(a: &[u64], b: &[u64]) -> Vec<u64> {
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Weighted choice among firable conflict-set members: zero-weight
/// members lose to any positive-weight member; all-zero sets are
/// resolved uniformly (both rules as documented in `tpn-reach`).
fn pick_weighted(members: &[TransId], weight: &[f64], rng: &mut StdRng) -> TransId {
    if members.len() == 1 {
        return members[0];
    }
    let total: f64 = members.iter().map(|t| weight[t.index()]).sum();
    if total <= 0.0 {
        let i = rng.random_range(0..members.len());
        return members[i];
    }
    let mut x = rng.random_range(0.0..total);
    for &t in members {
        x -= weight[t.index()];
        if x < 0.0 {
            return t;
        }
    }
    *members.last().expect("non-empty members")
}

fn refresh_enablement(net: &TimedPetriNet, enabling: &[Rational], state: &mut SimState) {
    for t in net.transitions() {
        let covered = state.marking.covers(net.transition(t).input());
        let slot = &mut state.ret[t.index()];
        match (covered, slot.is_some()) {
            (true, false) => *slot = Some(enabling[t.index()]),
            (false, true) => *slot = None,
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpn_net::NetBuilder;

    fn r(n: i128) -> Rational {
        Rational::from_int(n)
    }

    fn cycle_net() -> TimedPetriNet {
        let mut b = NetBuilder::new("simcycle");
        let pa = b.place("pa", 1);
        let pb = b.place("pb", 0);
        b.transition("go")
            .input(pa)
            .output(pb)
            .firing_const(2)
            .add();
        b.transition("back")
            .input(pb)
            .output(pa)
            .firing_const(3)
            .add();
        b.build().unwrap()
    }

    #[test]
    fn deterministic_cycle_rates_exact() {
        let net = cycle_net();
        let stats = simulate(
            &net,
            &SimOptions {
                max_time: Some(r(5000)),
                max_events: 0,
                ..SimOptions::default()
            },
        )
        .unwrap();
        let go = net.transition_by_name("go").unwrap();
        // one 'go' per 5 time units, exactly (deterministic net)
        assert_eq!(stats.completions(go), 1000);
        assert!(!stats.deadlocked());
        assert!((stats.throughput(go) - 0.2).abs() < 1e-9);
    }

    #[test]
    fn weighted_conflict_converges() {
        let mut b = NetBuilder::new("coinflip");
        let p = b.place("p", 1);
        b.transition("heads")
            .input(p)
            .output(p)
            .firing_const(1)
            .weight_const(3)
            .add();
        b.transition("tails")
            .input(p)
            .output(p)
            .firing_const(1)
            .weight_const(1)
            .add();
        let net = b.build().unwrap();
        let stats = simulate(
            &net,
            &SimOptions {
                max_events: 200_000,
                ..SimOptions::default()
            },
        )
        .unwrap();
        let heads = net.transition_by_name("heads").unwrap();
        let tails = net.transition_by_name("tails").unwrap();
        let h = stats.completions(heads) as f64;
        let t = stats.completions(tails) as f64;
        let ratio = h / (h + t);
        assert!((ratio - 0.75).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn zero_weight_priority() {
        let mut b = NetBuilder::new("prio");
        let p = b.place("p", 1);
        b.transition("main")
            .input(p)
            .output(p)
            .firing_const(1)
            .weight_const(1)
            .add();
        b.transition("never")
            .input(p)
            .output(p)
            .firing_const(1)
            .weight_const(0)
            .add();
        let net = b.build().unwrap();
        let stats = simulate(
            &net,
            &SimOptions {
                max_events: 10_000,
                ..SimOptions::default()
            },
        )
        .unwrap();
        let never = net.transition_by_name("never").unwrap();
        assert_eq!(stats.firings(never), 0);
    }

    #[test]
    fn deadlock_detected() {
        let mut b = NetBuilder::new("dead");
        let p = b.place("p", 1);
        let q = b.place("q", 0);
        b.transition("once")
            .input(p)
            .output(q)
            .firing_const(1)
            .add();
        let net = b.build().unwrap();
        let stats = simulate(&net, &SimOptions::default()).unwrap();
        assert!(stats.deadlocked());
        let once = net.transition_by_name("once").unwrap();
        assert_eq!(stats.completions(once), 1);
        assert_eq!(stats.measured_time(), &r(1));
    }

    #[test]
    fn warmup_discards_initial_transient() {
        let net = cycle_net();
        let stats = simulate(
            &net,
            &SimOptions {
                max_time: Some(r(1000)),
                max_events: 0,
                warmup: r(500),
                ..SimOptions::default()
            },
        )
        .unwrap();
        let go = net.transition_by_name("go").unwrap();
        // measured window is [500, 1000]: 100 cycles
        assert_eq!(stats.completions(go), 100);
        assert_eq!(stats.measured_time(), &r(500));
    }

    #[test]
    fn reproducible_with_seed() {
        let mut b = NetBuilder::new("rng");
        let p = b.place("p", 1);
        b.transition("a")
            .input(p)
            .output(p)
            .firing_const(1)
            .weight_const(1)
            .add();
        b.transition("z")
            .input(p)
            .output(p)
            .firing_const(1)
            .weight_const(1)
            .add();
        let net = b.build().unwrap();
        let opts = SimOptions {
            max_events: 10_000,
            seed: 42,
            ..SimOptions::default()
        };
        let s1 = simulate(&net, &opts).unwrap();
        let s2 = simulate(&net, &opts).unwrap();
        let a = net.transition_by_name("a").unwrap();
        assert_eq!(s1.completions(a), s2.completions(a));
    }

    #[test]
    fn unknown_attributes_rejected() {
        let mut b = NetBuilder::new("unk");
        let p = b.place("p", 1);
        b.transition("t").input(p).firing_unknown().add();
        let net = b.build().unwrap();
        assert!(matches!(
            simulate(&net, &SimOptions::default()),
            Err(SimError::UnknownAttribute { .. })
        ));
    }

    #[test]
    fn unbounded_run_rejected() {
        let net = cycle_net();
        let opts = SimOptions {
            max_events: 0,
            max_time: None,
            ..SimOptions::default()
        };
        assert!(matches!(simulate(&net, &opts), Err(SimError::UnboundedRun)));
    }

    #[test]
    fn utilization_tracking() {
        // go (F=2) then back (F=3): pa is marked only instantaneously
        // (absorbed at fire start), "go" is busy 2/5 of the time.
        let net = cycle_net();
        let stats = simulate(
            &net,
            &SimOptions {
                max_time: Some(r(5000)),
                max_events: 0,
                ..SimOptions::default()
            },
        )
        .unwrap();
        let go = net.transition_by_name("go").unwrap();
        let back = net.transition_by_name("back").unwrap();
        let pa = net.place_by_name("pa").unwrap();
        assert!((stats.transition_utilization(go) - 0.4).abs() < 1e-9);
        assert!((stats.transition_utilization(back) - 0.6).abs() < 1e-9);
        assert_eq!(
            stats.place_utilization(pa),
            0.0,
            "tokens are absorbed instantly"
        );
    }

    #[test]
    fn enabling_time_respected() {
        let mut b = NetBuilder::new("timeouty");
        let p = b.place("p", 1);
        b.transition("slowstart")
            .input(p)
            .output(p)
            .enabling_const(9)
            .firing_const(1)
            .add();
        let net = b.build().unwrap();
        let stats = simulate(
            &net,
            &SimOptions {
                max_time: Some(r(100)),
                max_events: 0,
                ..SimOptions::default()
            },
        )
        .unwrap();
        let t = net.transition_by_name("slowstart").unwrap();
        assert_eq!(stats.completions(t), 10); // period 9 + 1
    }
}
