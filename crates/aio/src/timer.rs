//! A hashed timer wheel with lazy cancellation.
//!
//! The reactor arms at most one logical deadline per connection but
//! never cancels wheel entries in place: when an entry fires, the
//! owner re-checks the connection's current deadline and either acts,
//! ignores, or asks for re-insertion. [`TimerWheel::advance`] hands
//! every due key to the callback; keys whose slot has come around but
//! whose stored deadline lies in a later rotation are re-queued
//! internally.
//!
//! Time is caller-supplied milliseconds from an arbitrary monotonic
//! origin (the reactor uses `Instant` elapsed time), which keeps the
//! wheel deterministic and directly testable.

#[derive(Clone, Copy)]
struct Entry {
    key: u64,
    deadline_ms: u64,
}

pub struct TimerWheel {
    granularity_ms: u64,
    slots: Vec<Vec<Entry>>,
    /// Slot index corresponding to `now_ms`.
    cursor: usize,
    /// The time up to which the wheel has been advanced.
    now_ms: u64,
    len: usize,
}

impl TimerWheel {
    /// `granularity_ms` is the tick size; `slots` the wheel length.
    /// Deadlines beyond `granularity * slots` simply ride extra
    /// rotations.
    pub fn new(granularity_ms: u64, slots: usize) -> TimerWheel {
        assert!(granularity_ms > 0 && slots > 1);
        TimerWheel {
            granularity_ms,
            slots: (0..slots).map(|_| Vec::new()).collect(),
            cursor: 0,
            now_ms: 0,
            len: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedule `key` to fire once `advance` passes `deadline_ms`.
    /// Deadlines at or before the current time fire on the next
    /// `advance` call.
    pub fn insert(&mut self, key: u64, deadline_ms: u64) {
        self.place(Entry { key, deadline_ms });
        self.len += 1;
    }

    /// Drop `entry` into the slot matching its deadline relative to
    /// the current cursor. Deadlines beyond one rotation land in the
    /// farthest slot and are re-normalized when the cursor sweeps it.
    fn place(&mut self, entry: Entry) {
        let ticks_ahead = (entry.deadline_ms.saturating_sub(self.now_ms)) / self.granularity_ms;
        let ticks_ahead = ticks_ahead.min(self.slots.len() as u64 - 1) as usize;
        let slot = (self.cursor + ticks_ahead) % self.slots.len();
        self.slots[slot].push(entry);
    }

    /// Advance wheel time to `now_ms`, invoking `fire(key)` for every
    /// entry whose deadline has passed.
    pub fn advance(&mut self, now_ms: u64, mut fire: impl FnMut(u64)) {
        if now_ms <= self.now_ms {
            return;
        }
        let ticks = (now_ms - self.now_ms) / self.granularity_ms;
        let ticks = ticks.min(self.slots.len() as u64) as usize;
        // Sweep each slot the cursor passes (a jump of a full rotation
        // or more sweeps every slot exactly once), collecting not-yet-
        // due entries so they can be re-placed against the *final*
        // cursor position rather than dropped back a rotation behind.
        let mut deferred: Vec<Entry> = Vec::new();
        for step in 1..=ticks {
            let slot = (self.cursor + step) % self.slots.len();
            self.sweep_slot(slot, now_ms, &mut fire, &mut deferred);
        }
        self.cursor = (self.cursor + ticks) % self.slots.len();
        self.now_ms = now_ms;
        // The cursor slot itself can hold entries inserted with an
        // immediate deadline; sweep it too.
        let cursor = self.cursor;
        self.sweep_slot(cursor, now_ms, &mut fire, &mut deferred);
        for entry in deferred {
            self.place(entry);
        }
    }

    fn sweep_slot(
        &mut self,
        slot: usize,
        now_ms: u64,
        fire: &mut impl FnMut(u64),
        deferred: &mut Vec<Entry>,
    ) {
        if self.slots[slot].is_empty() {
            return;
        }
        let entries = std::mem::take(&mut self.slots[slot]);
        for entry in entries {
            if entry.deadline_ms <= now_ms {
                self.len -= 1;
                fire(entry.key);
            } else {
                deferred.push(entry);
            }
        }
    }

    /// Milliseconds until the next *potentially* due entry, relative
    /// to the current wheel time. This is an under-estimate (entries
    /// for later rotations make the wheel wake early and re-queue),
    /// which is safe for use as an `epoll_wait` timeout.
    pub fn next_timeout_ms(&self, now_ms: u64) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        let slots = self.slots.len();
        for step in 0..slots {
            let slot = (self.cursor + step) % slots;
            if !self.slots[slot].is_empty() {
                let due_at = self.now_ms + step as u64 * self.granularity_ms;
                return Some(due_at.saturating_sub(now_ms));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_deadline_order_across_rotations() {
        let mut wheel = TimerWheel::new(10, 8);
        wheel.insert(1, 25); // slot 2
        wheel.insert(2, 250); // > one rotation
        let mut fired = Vec::new();
        wheel.advance(30, |k| fired.push(k));
        assert_eq!(fired, vec![1]);
        assert_eq!(wheel.len(), 1);
        wheel.advance(240, |k| fired.push(k));
        assert_eq!(fired, vec![1]);
        wheel.advance(260, |k| fired.push(k));
        assert_eq!(fired, vec![1, 2]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn immediate_deadline_fires_on_next_advance() {
        let mut wheel = TimerWheel::new(10, 4);
        wheel.advance(100, |_| {});
        wheel.insert(7, 50); // already past
        let mut fired = Vec::new();
        wheel.advance(101, |k| fired.push(k));
        assert_eq!(fired, vec![7]);
    }

    #[test]
    fn next_timeout_tracks_earliest_slot() {
        let mut wheel = TimerWheel::new(10, 8);
        assert_eq!(wheel.next_timeout_ms(0), None);
        wheel.insert(1, 35);
        let t = wheel.next_timeout_ms(0).unwrap();
        assert!(t <= 35, "timeout {t} must not overshoot the deadline");
        wheel.advance(20, |_| {});
        let t = wheel.next_timeout_ms(20).unwrap();
        assert!(t <= 15);
    }

    #[test]
    fn large_jump_sweeps_every_slot_once() {
        let mut wheel = TimerWheel::new(10, 4);
        for key in 0..16 {
            wheel.insert(key, key * 7);
        }
        let mut fired = Vec::new();
        wheel.advance(1_000, |k| fired.push(k));
        fired.sort_unstable();
        assert_eq!(fired, (0..16).collect::<Vec<_>>());
    }
}
