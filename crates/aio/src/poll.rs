//! Edge-triggered readiness polling over raw epoll.
//!
//! The reactor registers every descriptor once with the full interest
//! mask (`EPOLLIN | EPOLLOUT | EPOLLET | EPOLLRDHUP`) and tracks
//! readiness in userspace, clearing flags on `EAGAIN`. That avoids
//! per-request `epoll_ctl` churn: after registration the only syscalls
//! on the hot path are `epoll_wait`, `read`, `write`, and `accept`.

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

use crate::sys;

/// Interest flags for [`Poller::add`]. Combine with `|`.
pub mod interest {
    pub const READ: u32 = super::sys::EPOLLIN;
    pub const WRITE: u32 = super::sys::EPOLLOUT;
}

/// One readiness notification out of [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
    /// Peer shut down its write half (or the connection is gone).
    pub hangup: bool,
    /// Error condition on the descriptor.
    pub error: bool,
}

/// Owner of an epoll instance. Dropping closes the epoll fd; the
/// registered descriptors are unaffected (the kernel detaches them
/// when they are closed).
pub struct Poller {
    epfd: RawFd,
    buf: Vec<sys::epoll_event>,
}

impl Poller {
    pub fn new() -> io::Result<Poller> {
        let epfd = sys::sys_epoll_create1()?;
        Ok(Poller {
            epfd,
            buf: vec![sys::epoll_event { events: 0, data: 0 }; 1024],
        })
    }

    /// Register `fd` edge-triggered with the given interest set.
    pub fn add(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        sys::sys_epoll_ctl(
            self.epfd,
            sys::EPOLL_CTL_ADD,
            fd,
            interest | sys::EPOLLET | sys::EPOLLRDHUP,
            token,
        )
    }

    /// Replace the interest set of an already-registered descriptor.
    pub fn modify(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        sys::sys_epoll_ctl(
            self.epfd,
            sys::EPOLL_CTL_MOD,
            fd,
            interest | sys::EPOLLET | sys::EPOLLRDHUP,
            token,
        )
    }

    /// Deregister a descriptor (used for accept-pause backpressure).
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        sys::sys_epoll_del(self.epfd, fd)
    }

    /// Wait for readiness, appending into `events`. `None` blocks
    /// indefinitely. Returns the number of events delivered; `EINTR`
    /// is swallowed and reported as zero events.
    pub fn wait(
        &mut self,
        events: &mut Vec<Event>,
        timeout: Option<Duration>,
    ) -> io::Result<usize> {
        let timeout_ms = match timeout {
            // Round up so a 0.5ms deadline does not spin at timeout 0.
            Some(d) => d
                .as_millis()
                .saturating_add(u128::from(d.subsec_nanos() % 1_000_000 != 0))
                .min(i32::MAX as u128) as i32,
            None => -1,
        };
        let n = match sys::sys_epoll_wait(self.epfd, &mut self.buf, timeout_ms) {
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
            Err(e) => return Err(e),
        };
        for raw in &self.buf[..n] {
            let bits = raw.events;
            events.push(Event {
                token: raw.data,
                readable: bits & (sys::EPOLLIN | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0,
                writable: bits & sys::EPOLLOUT != 0,
                hangup: bits & (sys::EPOLLHUP | sys::EPOLLRDHUP) != 0,
                error: bits & sys::EPOLLERR != 0,
            });
        }
        Ok(n)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        sys::sys_close(self.epfd);
    }
}
