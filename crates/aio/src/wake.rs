//! Cross-thread reactor wakeup via eventfd.

use std::io;
use std::os::fd::RawFd;
use std::sync::Arc;

use crate::sys;

/// A cloneable handle that interrupts a blocked `epoll_wait`. Register
/// `fd()` with the poller under a reserved token; call [`Waker::wake`]
/// from any thread; call [`Waker::drain`] on the reactor when the
/// token fires (edge-triggered registration requires draining fully).
#[derive(Clone)]
pub struct Waker {
    inner: Arc<WakerFd>,
}

struct WakerFd {
    fd: RawFd,
}

impl Waker {
    pub fn new() -> io::Result<Waker> {
        let fd = sys::sys_eventfd()?;
        Ok(Waker {
            inner: Arc::new(WakerFd { fd }),
        })
    }

    pub fn fd(&self) -> RawFd {
        self.inner.fd
    }

    pub fn wake(&self) {
        // EAGAIN means the counter is already saturated — the reactor
        // is guaranteed to wake, so the nudge was delivered either way.
        let _ = sys::sys_write_u64(self.inner.fd, 1);
    }

    /// Reset the eventfd counter. Call once per wakeup event.
    pub fn drain(&self) {
        let _ = sys::sys_read_u64(self.inner.fd);
    }
}

impl Drop for WakerFd {
    fn drop(&mut self) {
        sys::sys_close(self.fd);
    }
}
