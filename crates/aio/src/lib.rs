//! tpn-aio — std-only event-driven I/O building blocks.
//!
//! The serving tier in `tpn-service` historically ran one blocking
//! thread per in-flight connection, which caps out far below the
//! traffic the ROADMAP targets. This crate supplies the pieces for a
//! readiness-driven listener without any external dependency:
//!
//! - [`poll::Poller`] — edge-triggered epoll via thin `extern "C"`
//!   syscall bindings (Linux, behind the default `epoll` feature);
//! - [`wake::Waker`] — eventfd wakeups for cross-thread nudges;
//! - [`timer::TimerWheel`] — hashed-wheel deadlines with lazy
//!   cancellation (portable);
//! - [`slab::Slab`] — generation-guarded connection storage keyed by
//!   epoll tokens (portable);
//! - [`http1`] — the incremental HTTP/1.1 request parser shared by
//!   the epoll and threaded listeners, plus a response parser with
//!   chunked decoding for load generation and differential tests
//!   (portable);
//! - [`rlimit::ensure_nofile`] — descriptor-limit raising for
//!   high-connection-count runs (Unix).
//!
//! Platforms without the `epoll` feature (or outside Linux) still get
//! every portable module; [`supported`] reports whether the reactor
//! primitives are usable so consumers can fall back to threaded I/O.

pub mod http1;
pub mod slab;
pub mod timer;

#[cfg(unix)]
pub mod rlimit;

#[cfg(all(target_os = "linux", feature = "epoll"))]
mod sys;

#[cfg(all(target_os = "linux", feature = "epoll"))]
pub mod poll;

#[cfg(all(target_os = "linux", feature = "epoll"))]
pub mod wake;

/// True when the epoll reactor primitives are available on this
/// build (Linux with the `epoll` feature enabled).
pub fn supported() -> bool {
    cfg!(all(target_os = "linux", feature = "epoll"))
}
