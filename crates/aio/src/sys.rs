//! Thin `extern "C"` bindings for the Linux epoll/eventfd syscalls.
//!
//! The build environment has no registry access, so there is no `libc`
//! crate to lean on. std already links the platform C library, which
//! means these symbols resolve without any extra build configuration —
//! we only need the prototypes and the handful of constants the
//! reactor uses.

#![allow(non_camel_case_types)]

use std::io;
use std::os::raw::{c_int, c_uint, c_void};

// On x86 the kernel ABI packs `epoll_event` so the 64-bit data field
// sits at offset 4; other architectures use natural alignment.
#[repr(C)]
#[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
#[derive(Clone, Copy)]
pub struct epoll_event {
    pub events: u32,
    pub data: u64,
}

pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;
pub const EPOLLET: u32 = 1 << 31;

pub const EPOLL_CTL_ADD: c_int = 1;
pub const EPOLL_CTL_DEL: c_int = 2;
pub const EPOLL_CTL_MOD: c_int = 3;

pub const EPOLL_CLOEXEC: c_int = 0o2000000;
pub const EFD_CLOEXEC: c_int = 0o2000000;
pub const EFD_NONBLOCK: c_int = 0o4000;

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut epoll_event, maxevents: c_int, timeout: c_int)
        -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

pub fn sys_epoll_create1() -> io::Result<c_int> {
    cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })
}

pub fn sys_epoll_ctl(epfd: c_int, op: c_int, fd: c_int, events: u32, data: u64) -> io::Result<()> {
    let mut ev = epoll_event { events, data };
    cvt(unsafe { epoll_ctl(epfd, op, fd, &mut ev) }).map(|_| ())
}

pub fn sys_epoll_del(epfd: c_int, fd: c_int) -> io::Result<()> {
    // Pre-2.6.9 kernels required a non-null event pointer for DEL;
    // passing one is harmless everywhere.
    let mut ev = epoll_event { events: 0, data: 0 };
    cvt(unsafe { epoll_ctl(epfd, EPOLL_CTL_DEL, fd, &mut ev) }).map(|_| ())
}

pub fn sys_epoll_wait(
    epfd: c_int,
    events: &mut [epoll_event],
    timeout_ms: c_int,
) -> io::Result<usize> {
    let n = unsafe { epoll_wait(epfd, events.as_mut_ptr(), events.len() as c_int, timeout_ms) };
    cvt(n).map(|n| n as usize)
}

pub fn sys_eventfd() -> io::Result<c_int> {
    cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })
}

pub fn sys_close(fd: c_int) {
    unsafe { close(fd) };
}

pub fn sys_read_u64(fd: c_int) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    let n = unsafe { read(fd, buf.as_mut_ptr() as *mut c_void, 8) };
    if n < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(u64::from_ne_bytes(buf))
    }
}

pub fn sys_write_u64(fd: c_int, value: u64) -> io::Result<()> {
    let buf = value.to_ne_bytes();
    let n = unsafe { write(fd, buf.as_ptr() as *const c_void, 8) };
    if n < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(())
    }
}
