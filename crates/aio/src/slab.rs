//! A generational slab keyed by `u64` tokens.
//!
//! The reactor parks connection state here and stamps the slab token
//! into each epoll registration. Tokens carry the slot index in the
//! low 32 bits and a per-slot generation in the high 32, so a stale
//! readiness event or timer entry for a connection that has since
//! been closed (and its slot reused) fails the generation check
//! instead of touching the wrong connection.

pub struct Slab<T> {
    entries: Vec<Slot<T>>,
    free: Vec<u32>,
    len: usize,
}

struct Slot<T> {
    generation: u32,
    value: Option<T>,
}

impl<T> Slab<T> {
    pub fn new() -> Slab<T> {
        Slab {
            entries: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Store `value`, returning its token.
    pub fn insert(&mut self, value: T) -> u64 {
        let index = match self.free.pop() {
            Some(index) => {
                self.entries[index as usize].value = Some(value);
                index
            }
            None => {
                let index = self.entries.len() as u32;
                self.entries.push(Slot {
                    generation: 0,
                    value: Some(value),
                });
                index
            }
        };
        self.len += 1;
        (u64::from(self.entries[index as usize].generation) << 32) | u64::from(index)
    }

    fn slot(&self, token: u64) -> Option<usize> {
        let index = (token & 0xffff_ffff) as usize;
        let generation = (token >> 32) as u32;
        match self.entries.get(index) {
            Some(slot) if slot.generation == generation && slot.value.is_some() => Some(index),
            _ => None,
        }
    }

    pub fn get(&self, token: u64) -> Option<&T> {
        self.slot(token)
            .and_then(|index| self.entries[index].value.as_ref())
    }

    pub fn get_mut(&mut self, token: u64) -> Option<&mut T> {
        self.slot(token)
            .and_then(move |index| self.entries[index].value.as_mut())
    }

    /// Remove and return the value for `token`; the slot's generation
    /// is bumped so the token (and any copies of it) go stale.
    pub fn remove(&mut self, token: u64) -> Option<T> {
        let index = self.slot(token)?;
        let value = self.entries[index].value.take();
        self.entries[index].generation = self.entries[index].generation.wrapping_add(1);
        self.free.push(index as u32);
        self.len -= 1;
        value
    }

    /// Tokens of all live entries (for shutdown sweeps).
    pub fn tokens(&self) -> Vec<u64> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, slot)| slot.value.is_some())
            .map(|(index, slot)| (u64::from(slot.generation) << 32) | index as u64)
            .collect()
    }
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuse_bumps_generation_and_invalidates_stale_tokens() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        assert_eq!(slab.get(a), Some(&"a"));
        assert_eq!(slab.remove(a), Some("a"));
        assert_eq!(slab.get(a), None, "stale token must not resolve");
        let b = slab.insert("b");
        assert_ne!(a, b, "reused slot must mint a fresh token");
        assert_eq!(slab.get(a), None);
        assert_eq!(slab.get(b), Some(&"b"));
        assert_eq!(slab.len(), 1);
    }

    #[test]
    fn tokens_lists_live_entries() {
        let mut slab = Slab::new();
        let a = slab.insert(1);
        let b = slab.insert(2);
        let c = slab.insert(3);
        slab.remove(b);
        let mut live = slab.tokens();
        live.sort_unstable();
        let mut expect = vec![a, c];
        expect.sort_unstable();
        assert_eq!(live, expect);
    }
}
