//! File-descriptor limit handling for high-connection-count runs.
//!
//! A 10k-connection benchmark needs 10k server-side plus 10k
//! client-side descriptors in one process; default soft limits are
//! often far lower. [`ensure_nofile`] raises `RLIMIT_NOFILE` toward
//! the requested count, capped at the hard limit.

#![allow(non_camel_case_types)]

use std::io;
use std::os::raw::c_int;

#[repr(C)]
#[derive(Clone, Copy)]
struct rlimit {
    rlim_cur: u64,
    rlim_max: u64,
}

const RLIMIT_NOFILE: c_int = 7;

extern "C" {
    fn getrlimit(resource: c_int, rlim: *mut rlimit) -> c_int;
    fn setrlimit(resource: c_int, rlim: *const rlimit) -> c_int;
}

/// Best-effort raise of the open-file soft limit to at least `want`.
/// Returns the soft limit in effect afterwards.
pub fn ensure_nofile(want: u64) -> io::Result<u64> {
    let mut lim = rlimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return Err(io::Error::last_os_error());
    }
    if lim.rlim_cur >= want {
        return Ok(lim.rlim_cur);
    }
    if want > lim.rlim_max {
        // With CAP_SYS_RESOURCE the hard limit itself can move (up to
        // the kernel's fs.nr_open); try that first, fall through to
        // the capped raise when the process is unprivileged.
        let lifted = rlimit {
            rlim_cur: want,
            rlim_max: want,
        };
        if unsafe { setrlimit(RLIMIT_NOFILE, &lifted) } == 0 {
            return Ok(want);
        }
    }
    let target = want.max(lim.rlim_cur).min(lim.rlim_max);
    let raised = rlimit {
        rlim_cur: target,
        rlim_max: lim.rlim_max,
    };
    if unsafe { setrlimit(RLIMIT_NOFILE, &raised) } != 0 {
        // Raising can fail under seccomp or container policy even
        // below the hard limit; report the limit still in effect
        // rather than failing the caller outright.
        return Ok(lim.rlim_cur);
    }
    Ok(target)
}
