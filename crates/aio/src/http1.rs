//! Incremental HTTP/1.1 message parsing.
//!
//! One request parser serves both listeners in `tpn-service`: the
//! blocking threaded path feeds it from synchronous reads, the epoll
//! path feeds it whatever each readiness event delivers. Bytes arrive
//! via [`RequestParser::feed`] in arbitrary splits; [`RequestParser::poll`]
//! returns a request exactly when one is complete, leaving any
//! pipelined remainder buffered for the next poll. Error messages
//! match the service's historical responses byte-for-byte so the
//! listeners cannot drift apart.
//!
//! The module also carries a [`ResponseParser`] (status line, fixed or
//! chunked bodies) used by the load generator and the differential
//! test suite to reassemble streamed responses.

/// Parser limits. Both default to the service's historical caps.
#[derive(Clone, Copy, Debug)]
pub struct HttpLimits {
    /// Maximum bytes buffered while hunting for the end of the header
    /// section.
    pub max_head_bytes: usize,
    /// Maximum declared `Content-Length`.
    pub max_body_bytes: usize,
}

impl Default for HttpLimits {
    fn default() -> Self {
        HttpLimits {
            max_head_bytes: 16 * 1024,
            max_body_bytes: 1 << 20,
        }
    }
}

/// Protocol-level parse failure. The variants map onto the service's
/// response statuses: 400, 413, 501.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HttpError {
    Malformed(String),
    TooLarge,
    Unsupported(String),
}

/// One parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub query: Vec<(String, String)>,
    pub body: Vec<u8>,
    /// The client asked for (or its HTTP version implies) closing the
    /// connection after this response.
    pub close: bool,
}

struct HeadInfo {
    method: String,
    path: String,
    query: Vec<(String, String)>,
    content_length: usize,
    expect_continue: bool,
    close: bool,
    /// Total head bytes including the terminating blank line.
    head_len: usize,
}

pub struct RequestParser {
    limits: HttpLimits,
    buf: Vec<u8>,
    /// Bytes of `buf` already scanned for the header terminator, so
    /// slow-drip clients cost O(n) total instead of O(n²) rescans.
    scanned: usize,
    head: Option<HeadInfo>,
    continue_signaled: bool,
}

impl RequestParser {
    pub fn new(limits: HttpLimits) -> RequestParser {
        RequestParser {
            limits,
            buf: Vec::with_capacity(1024),
            scanned: 0,
            head: None,
            continue_signaled: false,
        }
    }

    /// Append newly received bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered (head-in-progress, body-in-progress,
    /// or a pipelined follow-up request).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// True once the header section of the in-flight request is
    /// complete (so an EOF now means a truncated body, not a closed
    /// idle connection).
    pub fn in_body(&self) -> bool {
        self.head.is_some()
    }

    /// True while any partial request sits in the buffer.
    pub fn mid_request(&self) -> bool {
        self.head.is_some() || !self.buf.is_empty()
    }

    /// Returns true exactly once per request when the client sent
    /// `Expect: 100-continue`, its header section is parsed, and the
    /// body has not fully arrived — the moment to write the interim
    /// `100 Continue` response.
    pub fn wants_continue(&mut self) -> bool {
        match &self.head {
            Some(head)
                if head.expect_continue
                    && !self.continue_signaled
                    && self.buf.len() - head.head_len < head.content_length =>
            {
                self.continue_signaled = true;
                true
            }
            _ => false,
        }
    }

    /// Try to complete a request from the buffered bytes. `Ok(None)`
    /// means more input is needed.
    pub fn poll(&mut self) -> Result<Option<Request>, HttpError> {
        if self.head.is_none() {
            match self.find_head_end() {
                Some(head_end) => {
                    let head = parse_head(&self.buf[..head_end], &self.limits)?;
                    self.head = Some(head);
                }
                None => {
                    if self.buf.len() > self.limits.max_head_bytes {
                        return Err(HttpError::Malformed("header section too large".into()));
                    }
                    return Ok(None);
                }
            }
        }
        let head = self.head.as_ref().expect("head parsed above");
        let available = self.buf.len() - head.head_len;
        if available < head.content_length {
            return Ok(None);
        }
        let head = self.head.take().expect("head parsed above");
        let body = self.buf[head.head_len..head.head_len + head.content_length].to_vec();
        // Keep pipelined bytes; they are the start of the next request.
        self.buf.drain(..head.head_len + head.content_length);
        self.scanned = 0;
        self.continue_signaled = false;
        Ok(Some(Request {
            method: head.method,
            path: head.path,
            query: head.query,
            body,
            close: head.close,
        }))
    }

    /// Incremental `\r\n\r\n` search; returns the index where the
    /// terminator starts (head length excluding the blank line is the
    /// same value; total head length is this plus four).
    fn find_head_end(&mut self) -> Option<usize> {
        let start = self.scanned.saturating_sub(3);
        let found = self.buf[start..]
            .windows(4)
            .position(|w| w == b"\r\n\r\n")
            .map(|pos| start + pos);
        if found.is_none() {
            self.scanned = self.buf.len();
        }
        found
    }
}

fn parse_head(raw: &[u8], limits: &HttpLimits) -> Result<HeadInfo, HttpError> {
    let head = String::from_utf8_lossy(raw).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| HttpError::Malformed("empty request line".into()))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing request target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing HTTP version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!("unsupported {version}")));
    }
    let http10 = version == "HTTP/1.0";
    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query: Vec<(String, String)> = query_str
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (kv.to_string(), String::new()),
        })
        .collect();
    let mut content_length: Option<usize> = None;
    let mut expect_continue = false;
    let mut connection_close = http10;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim();
            if name.eq_ignore_ascii_case("content-length") {
                let parsed: usize = value
                    .trim()
                    .parse()
                    .map_err(|_| HttpError::Malformed("bad Content-Length".into()))?;
                // Conflicting duplicate Content-Length headers are a
                // request-smuggling vector (RFC 7230 §3.3.2): two
                // intermediaries that disagree on which value wins
                // disagree on where the next request starts. The
                // pre-refactor reader silently let the last one win.
                // Identical repeats are tolerated per the RFC.
                match content_length {
                    Some(previous) if previous != parsed => {
                        return Err(HttpError::Malformed(
                            "conflicting Content-Length headers".into(),
                        ));
                    }
                    _ => content_length = Some(parsed),
                }
            } else if name.eq_ignore_ascii_case("transfer-encoding")
                && !value.trim().eq_ignore_ascii_case("identity")
            {
                // Bodies are framed by Content-Length only; silently
                // reading a chunked body as empty would mis-serve a
                // well-formed request (RFC 7230 §3.3.1: respond 501).
                return Err(HttpError::Unsupported(format!(
                    "Transfer-Encoding {:?} not supported; use Content-Length",
                    value.trim()
                )));
            } else if name.eq_ignore_ascii_case("expect")
                && value.trim().eq_ignore_ascii_case("100-continue")
            {
                expect_continue = true;
            } else if name.eq_ignore_ascii_case("connection") {
                for token in value.split(',') {
                    let token = token.trim();
                    if token.eq_ignore_ascii_case("close") {
                        connection_close = true;
                    } else if token.eq_ignore_ascii_case("keep-alive") {
                        connection_close = false;
                    }
                }
            }
        }
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > limits.max_body_bytes {
        return Err(HttpError::TooLarge);
    }
    Ok(HeadInfo {
        method,
        path: path.to_string(),
        query,
        content_length,
        expect_continue,
        close: connection_close,
        head_len: raw.len() + 4,
    })
}

/// One parsed response (for the load generator and tests).
#[derive(Clone, Debug)]
pub struct Response {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
    /// Body arrived with `Transfer-Encoding: chunked` (already
    /// decoded into `body`).
    pub chunked: bool,
    /// Server signaled `Connection: close`.
    pub close: bool,
}

impl Response {
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

enum RespState {
    Head,
    FixedBody { meta: RespMeta, remaining: usize },
    ChunkSize { meta: RespMeta },
    ChunkData { meta: RespMeta, remaining: usize },
    ChunkDataCrlf { meta: RespMeta },
    Trailer { meta: RespMeta },
}

struct RespMeta {
    status: u16,
    headers: Vec<(String, String)>,
    chunked: bool,
    close: bool,
    body: Vec<u8>,
}

pub struct ResponseParser {
    buf: Vec<u8>,
    scanned: usize,
    state: Option<RespState>,
}

impl Default for ResponseParser {
    fn default() -> Self {
        Self::new()
    }
}

impl ResponseParser {
    pub fn new() -> ResponseParser {
        ResponseParser {
            buf: Vec::new(),
            scanned: 0,
            state: Some(RespState::Head),
        }
    }

    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Complete the next response if the buffer holds one. Interim
    /// `100 Continue` responses are returned like any other (with an
    /// empty body); callers expecting a final response poll again.
    pub fn poll(&mut self) -> Result<Option<Response>, HttpError> {
        loop {
            match self.state.take().expect("state always present") {
                RespState::Head => {
                    let start = self.scanned.saturating_sub(3);
                    let head_end = self.buf[start..]
                        .windows(4)
                        .position(|w| w == b"\r\n\r\n")
                        .map(|pos| start + pos);
                    let Some(head_end) = head_end else {
                        self.scanned = self.buf.len();
                        self.state = Some(RespState::Head);
                        return Ok(None);
                    };
                    let meta = parse_response_head(&self.buf[..head_end])?;
                    self.buf.drain(..head_end + 4);
                    self.scanned = 0;
                    // 1xx/204/304 carry no body regardless of headers.
                    if meta.status / 100 == 1 || meta.status == 204 || meta.status == 304 {
                        self.state = Some(RespState::Head);
                        return Ok(Some(finish(meta)));
                    }
                    if meta.chunked {
                        self.state = Some(RespState::ChunkSize { meta });
                    } else {
                        let remaining = meta
                            .headers
                            .iter()
                            .find(|(n, _)| n.eq_ignore_ascii_case("content-length"))
                            .map(|(_, v)| {
                                v.trim()
                                    .parse::<usize>()
                                    .map_err(|_| HttpError::Malformed("bad Content-Length".into()))
                            })
                            .transpose()?
                            .ok_or_else(|| {
                                HttpError::Malformed("response without body framing".into())
                            })?;
                        self.state = Some(RespState::FixedBody { meta, remaining });
                    }
                }
                RespState::FixedBody {
                    mut meta,
                    remaining,
                } => {
                    let take = remaining.min(self.buf.len());
                    meta.body.extend_from_slice(&self.buf[..take]);
                    self.buf.drain(..take);
                    let remaining = remaining - take;
                    if remaining == 0 {
                        self.state = Some(RespState::Head);
                        return Ok(Some(finish(meta)));
                    }
                    self.state = Some(RespState::FixedBody { meta, remaining });
                    return Ok(None);
                }
                RespState::ChunkSize { meta } => {
                    let Some(line_end) = find_crlf(&self.buf) else {
                        self.state = Some(RespState::ChunkSize { meta });
                        return Ok(None);
                    };
                    let line = String::from_utf8_lossy(&self.buf[..line_end]).into_owned();
                    self.buf.drain(..line_end + 2);
                    let size_str = line.split(';').next().unwrap_or("").trim();
                    let size = usize::from_str_radix(size_str, 16).map_err(|_| {
                        HttpError::Malformed(format!("bad chunk size {size_str:?}"))
                    })?;
                    if size == 0 {
                        self.state = Some(RespState::Trailer { meta });
                    } else {
                        self.state = Some(RespState::ChunkData {
                            meta,
                            remaining: size,
                        });
                    }
                }
                RespState::ChunkData {
                    mut meta,
                    remaining,
                } => {
                    let take = remaining.min(self.buf.len());
                    meta.body.extend_from_slice(&self.buf[..take]);
                    self.buf.drain(..take);
                    let remaining = remaining - take;
                    if remaining == 0 {
                        self.state = Some(RespState::ChunkDataCrlf { meta });
                    } else {
                        self.state = Some(RespState::ChunkData { meta, remaining });
                        return Ok(None);
                    }
                }
                RespState::ChunkDataCrlf { meta } => {
                    if self.buf.len() < 2 {
                        self.state = Some(RespState::ChunkDataCrlf { meta });
                        return Ok(None);
                    }
                    if &self.buf[..2] != b"\r\n" {
                        return Err(HttpError::Malformed("chunk missing CRLF".into()));
                    }
                    self.buf.drain(..2);
                    self.state = Some(RespState::ChunkSize { meta });
                }
                RespState::Trailer { meta } => {
                    // Trailer section: zero or more header lines, then
                    // a blank line.
                    let Some(line_end) = find_crlf(&self.buf) else {
                        self.state = Some(RespState::Trailer { meta });
                        return Ok(None);
                    };
                    self.buf.drain(..line_end + 2);
                    if line_end == 0 {
                        self.state = Some(RespState::Head);
                        return Ok(Some(finish(meta)));
                    }
                    self.state = Some(RespState::Trailer { meta });
                }
            }
        }
    }
}

fn finish(meta: RespMeta) -> Response {
    Response {
        status: meta.status,
        headers: meta.headers,
        body: meta.body,
        chunked: meta.chunked,
        close: meta.close,
    }
}

fn find_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(2).position(|w| w == b"\r\n")
}

fn parse_response_head(raw: &[u8]) -> Result<RespMeta, HttpError> {
    let head = String::from_utf8_lossy(raw).into_owned();
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or_default();
    let mut parts = status_line.split(' ');
    let version = parts
        .next()
        .filter(|v| v.starts_with("HTTP/1."))
        .ok_or_else(|| HttpError::Malformed("bad status line".into()))?;
    let _ = version;
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| HttpError::Malformed("bad status code".into()))?;
    let mut headers = Vec::new();
    let mut chunked = false;
    let mut close = false;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_string();
            let value = value.trim().to_string();
            if name.eq_ignore_ascii_case("transfer-encoding")
                && value.eq_ignore_ascii_case("chunked")
            {
                chunked = true;
            }
            if name.eq_ignore_ascii_case("connection") && value.eq_ignore_ascii_case("close") {
                close = true;
            }
            headers.push((name, value));
        }
    }
    Ok(RespMeta {
        status,
        headers,
        chunked,
        close,
        body: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_shot(bytes: &[u8]) -> Result<Option<Request>, HttpError> {
        let mut parser = RequestParser::new(HttpLimits::default());
        parser.feed(bytes);
        parser.poll()
    }

    #[test]
    fn simple_get() {
        let req = one_shot(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.query.is_empty());
        assert!(req.body.is_empty());
        assert!(!req.close);
    }

    #[test]
    fn query_pairs_and_body() {
        let req =
            one_shot(b"POST /simulate?events=5&seed=7 HTTP/1.1\r\nContent-Length: 4\r\n\r\nwxyz")
                .unwrap()
                .unwrap();
        assert_eq!(
            req.query,
            vec![
                ("events".to_string(), "5".to_string()),
                ("seed".to_string(), "7".to_string())
            ]
        );
        assert_eq!(req.body, b"wxyz");
    }

    #[test]
    fn byte_at_a_time_equals_one_shot() {
        let raw = b"POST /analyze HTTP/1.1\r\nContent-Length: 3\r\nConnection: close\r\n\r\nabcGET /next HTTP/1.1\r\n\r\n";
        let mut parser = RequestParser::new(HttpLimits::default());
        let mut got = Vec::new();
        for byte in raw.iter() {
            parser.feed(std::slice::from_ref(byte));
            while let Some(req) = parser.poll().unwrap() {
                got.push(req);
            }
        }
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].path, "/analyze");
        assert_eq!(got[0].body, b"abc");
        assert!(got[0].close);
        assert_eq!(got[1].path, "/next");
        assert!(!got[1].close);
    }

    #[test]
    fn error_messages_match_the_historical_reader() {
        assert_eq!(
            one_shot(b" / HTTP/1.1\r\n\r\n").unwrap_err(),
            HttpError::Malformed("empty request line".into())
        );
        assert_eq!(
            one_shot(b"GET\r\n\r\n").unwrap_err(),
            HttpError::Malformed("missing request target".into())
        );
        assert_eq!(
            one_shot(b"GET /\r\n\r\n").unwrap_err(),
            HttpError::Malformed("missing HTTP version".into())
        );
        assert_eq!(
            one_shot(b"GET / HTTP/2\r\n\r\n").unwrap_err(),
            HttpError::Malformed("unsupported HTTP/2".into())
        );
        assert_eq!(
            one_shot(b"GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n").unwrap_err(),
            HttpError::Malformed("bad Content-Length".into())
        );
        assert_eq!(
            one_shot(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").unwrap_err(),
            HttpError::Unsupported(
                "Transfer-Encoding \"chunked\" not supported; use Content-Length".into()
            )
        );
        let huge = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            (1 << 20) + 1
        );
        assert_eq!(one_shot(huge.as_bytes()).unwrap_err(), HttpError::TooLarge);
    }

    #[test]
    fn conflicting_content_length_rejected_identical_tolerated() {
        assert_eq!(
            one_shot(b"POST / HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 4\r\n\r\n")
                .unwrap_err(),
            HttpError::Malformed("conflicting Content-Length headers".into())
        );
        let req = one_shot(b"POST / HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 3\r\n\r\nabc")
            .unwrap()
            .unwrap();
        assert_eq!(req.body, b"abc");
    }

    #[test]
    fn oversized_head_rejected_while_incomplete() {
        let mut parser = RequestParser::new(HttpLimits {
            max_head_bytes: 64,
            max_body_bytes: 1024,
        });
        parser.feed(&[b'A'; 100]);
        assert_eq!(
            parser.poll().unwrap_err(),
            HttpError::Malformed("header section too large".into())
        );
    }

    #[test]
    fn wants_continue_fires_once_before_body() {
        let mut parser = RequestParser::new(HttpLimits::default());
        parser.feed(b"POST / HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: 2\r\n\r\n");
        assert!(parser.poll().unwrap().is_none());
        assert!(parser.wants_continue());
        assert!(!parser.wants_continue(), "signal must fire exactly once");
        parser.feed(b"ok");
        let req = parser.poll().unwrap().unwrap();
        assert_eq!(req.body, b"ok");
        assert!(!parser.wants_continue());
    }

    #[test]
    fn http10_closes_by_default() {
        let req = one_shot(b"GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(req.close);
        let req = one_shot(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!req.close);
        let req = one_shot(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(req.close);
    }

    #[test]
    fn response_fixed_body_roundtrip() {
        let mut parser = ResponseParser::new();
        parser.feed(b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 2\r\nConnection: close\r\n\r\n{}");
        let resp = parser.poll().unwrap().unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"{}");
        assert!(resp.close);
        assert!(!resp.chunked);
        assert_eq!(resp.header("content-type"), Some("application/json"));
    }

    #[test]
    fn response_chunked_reassembles_across_splits() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nWiki\r\n5\r\npedia\r\n0\r\n\r\n";
        for split in 0..raw.len() {
            let mut parser = ResponseParser::new();
            parser.feed(&raw[..split]);
            let early = parser.poll().unwrap();
            parser.feed(&raw[split..]);
            let resp = match early {
                Some(r) => r,
                None => parser.poll().unwrap().expect("complete after full feed"),
            };
            assert_eq!(resp.body, b"Wikipedia", "split at {split}");
            assert!(resp.chunked);
        }
    }

    #[test]
    fn interim_100_then_final_response() {
        let mut parser = ResponseParser::new();
        parser.feed(b"HTTP/1.1 100 Continue\r\n\r\nHTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nhi");
        let interim = parser.poll().unwrap().unwrap();
        assert_eq!(interim.status, 100);
        assert!(interim.body.is_empty());
        let final_resp = parser.poll().unwrap().unwrap();
        assert_eq!(final_resp.status, 200);
        assert_eq!(final_resp.body, b"hi");
    }
}
