//! Property tests for the shared HTTP/1.1 parser: feeding a message
//! in arbitrary splits must be indistinguishable from a one-shot
//! parse — same requests, same bodies, same errors.

use proptest::collection::vec;
use proptest::prelude::*;
use tpn_aio::http1::{HttpError, HttpLimits, Request, RequestParser, Response, ResponseParser};

fn parse_all(raw: &[u8], splits: &[usize]) -> Result<Vec<Request>, HttpError> {
    let mut parser = RequestParser::new(HttpLimits::default());
    let mut out = Vec::new();
    let mut cursor = 0usize;
    let mut cuts: Vec<usize> = splits.iter().map(|s| s % (raw.len() + 1)).collect();
    cuts.push(raw.len());
    cuts.sort_unstable();
    for cut in cuts {
        if cut > cursor {
            parser.feed(&raw[cursor..cut]);
            cursor = cut;
        }
        while let Some(req) = parser.poll()? {
            out.push(req);
        }
    }
    Ok(out)
}

fn requests_eq(a: &Request, b: &Request) -> bool {
    a.method == b.method
        && a.path == b.path
        && a.query == b.query
        && a.body == b.body
        && a.close == b.close
}

/// A generated request serialized to wire form.
fn wire_request(
    method: &str,
    path: &str,
    query: &[(String, String)],
    body: &[u8],
    close: bool,
) -> Vec<u8> {
    let mut target = path.to_string();
    if !query.is_empty() {
        target.push('?');
        let pairs: Vec<String> = query.iter().map(|(k, v)| format!("{k}={v}")).collect();
        target.push_str(&pairs.join("&"));
    }
    let mut raw = format!(
        "{method} {target} HTTP/1.1\r\nContent-Length: {}\r\n",
        body.len()
    );
    if close {
        raw.push_str("Connection: close\r\n");
    }
    raw.push_str("\r\n");
    let mut bytes = raw.into_bytes();
    bytes.extend_from_slice(body);
    bytes
}

/// Short lowercase identifier built from generated digits (the
/// offline proptest shim has no regex string strategies).
fn ident() -> impl Strategy<Value = String> {
    vec(0u8..26, 1..7).prop_map(|digits| {
        digits
            .into_iter()
            .map(|d| char::from(b'a' + d))
            .collect::<String>()
    })
}

fn method() -> impl Strategy<Value = &'static str> {
    (0usize..4).prop_map(|i| ["GET", "POST", "PUT", "DELETE"][i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_split_matches_one_shot(
        method in method(),
        path_seg in ident(),
        query in vec((ident(), ident()), 0..3),
        body in vec(any::<u8>(), 0..200),
        close in any::<bool>(),
        splits in vec(any::<usize>(), 0..8),
    ) {
        let raw = wire_request(method, &format!("/{path_seg}"), &query, &body, close);
        let one_shot = parse_all(&raw, &[]).unwrap();
        let split = parse_all(&raw, &splits).unwrap();
        prop_assert_eq!(one_shot.len(), 1);
        prop_assert_eq!(split.len(), 1);
        prop_assert!(requests_eq(&one_shot[0], &split[0]));
    }

    #[test]
    fn pipelined_pair_survives_any_split(
        body_a in vec(any::<u8>(), 0..64),
        body_b in vec(any::<u8>(), 0..64),
        splits in vec(any::<usize>(), 0..12),
    ) {
        let mut raw = wire_request("POST", "/analyze", &[], &body_a, false);
        raw.extend_from_slice(&wire_request("POST", "/simulate", &[], &body_b, true));
        let one_shot = parse_all(&raw, &[]).unwrap();
        let split = parse_all(&raw, &splits).unwrap();
        prop_assert_eq!(one_shot.len(), 2);
        prop_assert_eq!(split.len(), 2);
        for (a, b) in one_shot.iter().zip(split.iter()) {
            prop_assert!(requests_eq(a, b));
        }
    }

    #[test]
    fn arbitrary_garbage_never_panics_and_errors_agree(
        raw in vec(any::<u8>(), 0..512),
        splits in vec(any::<usize>(), 0..8),
    ) {
        let one_shot = parse_all(&raw, &[]);
        let split = parse_all(&raw, &splits);
        match (one_shot, split) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(b.iter()) {
                    prop_assert!(requests_eq(x, y));
                }
            }
            (Err(ea), Err(eb)) => prop_assert_eq!(ea, eb),
            // Splitting changes nothing about the byte stream, so
            // success/failure must agree.
            (a, b) => prop_assert!(false, "split divergence: {:?} vs {:?}", a, b),
        }
    }

    #[test]
    fn chunked_response_any_split_matches_one_shot(
        chunks in vec(vec(any::<u8>(), 1..64), 0..6),
        splits in vec(any::<usize>(), 0..8),
    ) {
        let mut raw = b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec();
        let mut expect = Vec::new();
        for chunk in &chunks {
            raw.extend_from_slice(format!("{:x}\r\n", chunk.len()).as_bytes());
            raw.extend_from_slice(chunk);
            raw.extend_from_slice(b"\r\n");
            expect.extend_from_slice(chunk);
        }
        raw.extend_from_slice(b"0\r\n\r\n");

        let decode = |cuts: &[usize]| -> Option<Response> {
            let mut parser = ResponseParser::new();
            let mut cursor = 0usize;
            let mut cuts: Vec<usize> = cuts.iter().map(|s| s % (raw.len() + 1)).collect();
            cuts.push(raw.len());
            cuts.sort_unstable();
            let mut done = None;
            for cut in cuts {
                if cut > cursor {
                    parser.feed(&raw[cursor..cut]);
                    cursor = cut;
                }
                if done.is_none() {
                    done = parser.poll().unwrap();
                }
            }
            done
        };
        let one_shot = decode(&[]).expect("complete response");
        let split = decode(&splits).expect("complete response");
        prop_assert_eq!(&one_shot.body, &expect);
        prop_assert_eq!(&split.body, &expect);
        prop_assert!(one_shot.chunked && split.chunked);
    }
}
