//! Exercises the raw reactor primitives (epoll poller, eventfd waker)
//! against real sockets. Linux-only; other platforms compile this
//! file to nothing and fall back to the threaded listener instead.

#![cfg(all(target_os = "linux", feature = "epoll"))]

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::time::{Duration, Instant};

use tpn_aio::poll::{interest, Event, Poller};
use tpn_aio::wake::Waker;

fn wait_for(
    poller: &mut Poller,
    pred: impl Fn(&Event) -> bool,
    timeout: Duration,
) -> Option<Event> {
    let deadline = Instant::now() + timeout;
    let mut events = Vec::new();
    loop {
        let now = Instant::now();
        if now >= deadline {
            return None;
        }
        events.clear();
        poller
            .wait(&mut events, Some(deadline - now))
            .expect("epoll_wait");
        if let Some(event) = events.iter().find(|e| pred(e)) {
            return Some(*event);
        }
    }
}

#[test]
fn readiness_for_accept_read_and_hangup() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    listener.set_nonblocking(true).unwrap();
    let mut poller = Poller::new().unwrap();
    poller.add(listener.as_raw_fd(), 1, interest::READ).unwrap();

    let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
    wait_for(
        &mut poller,
        |e| e.token == 1 && e.readable,
        Duration::from_secs(5),
    )
    .expect("listener readable after connect");

    let (mut server_side, _) = listener.accept().unwrap();
    server_side.set_nonblocking(true).unwrap();
    poller
        .add(server_side.as_raw_fd(), 2, interest::READ | interest::WRITE)
        .unwrap();

    client.write_all(b"ping").unwrap();
    wait_for(
        &mut poller,
        |e| e.token == 2 && e.readable,
        Duration::from_secs(5),
    )
    .expect("connection readable after client write");
    let mut buf = [0u8; 16];
    assert_eq!(server_side.read(&mut buf).unwrap(), 4);
    assert_eq!(&buf[..4], b"ping");

    drop(client);
    let event = wait_for(
        &mut poller,
        |e| e.token == 2 && e.hangup,
        Duration::from_secs(5),
    )
    .expect("hangup after client close");
    assert!(event.readable, "hangup implies a final zero-length read");
}

#[test]
fn waker_interrupts_a_blocked_wait() {
    let mut poller = Poller::new().unwrap();
    let waker = Waker::new().unwrap();
    poller.add(waker.fd(), 99, interest::READ).unwrap();

    let remote = waker.clone();
    let handle = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(50));
        remote.wake();
    });

    let event = wait_for(&mut poller, |e| e.token == 99, Duration::from_secs(5))
        .expect("waker event delivered");
    assert!(event.readable);
    waker.drain();

    // Edge-triggered: once drained, no further event without a new wake.
    let mut events = Vec::new();
    poller
        .wait(&mut events, Some(Duration::from_millis(50)))
        .unwrap();
    assert!(
        events.iter().all(|e| e.token != 99),
        "drained waker must stay quiet"
    );
    handle.join().unwrap();
}

#[test]
fn accept_pause_via_delete_and_rearm() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    listener.set_nonblocking(true).unwrap();
    let addr = listener.local_addr().unwrap();
    let mut poller = Poller::new().unwrap();
    poller.add(listener.as_raw_fd(), 1, interest::READ).unwrap();

    // Pause accepting: deregister, connect, observe silence.
    poller.delete(listener.as_raw_fd()).unwrap();
    let _client = TcpStream::connect(addr).unwrap();
    let mut events = Vec::new();
    poller
        .wait(&mut events, Some(Duration::from_millis(100)))
        .unwrap();
    assert!(events.is_empty(), "paused listener must not report");

    // Resume: re-add and the pending connection surfaces immediately
    // (epoll is level-checked at registration time).
    poller.add(listener.as_raw_fd(), 1, interest::READ).unwrap();
    wait_for(
        &mut poller,
        |e| e.token == 1 && e.readable,
        Duration::from_secs(5),
    )
    .expect("re-armed listener reports the backlog");
    assert!(listener.accept().is_ok());
}
