//! Decision graphs and performance-expression derivation — the paper's
//! primary contribution (§2 numeric, §3–§4 symbolic).
//!
//! Pipeline:
//!
//! 1. Build a timed reachability graph with [`tpn_reach::build_trg`]
//!    (numeric or symbolic domain).
//! 2. Collapse it into a [`DecisionGraph`]: only the *decision nodes*
//!    (states with several successors) remain; the deterministic paths
//!    between them become single edges whose delays are summed —
//!    symbolically when times are symbols (paper Figures 5 and 8).
//! 3. Derive the *traversal rates* `rᵢ`: the rate of an outgoing edge is
//!    its branching probability times the total rate into its source
//!    node. The system is homogeneous and (for an ergodic protocol
//!    cycle) has a one-dimensional solution space; [`solve_rates`]
//!    extracts it by exact null-space computation over the probability
//!    field and normalises against a reference edge, exactly as the
//!    paper does with "assuming r = 1".
//! 4. Form performance measures from `wᵢ = rᵢ·dᵢ`: [`Performance`]
//!    exposes throughput of any transition, mean cycle time, edge time
//!    shares and place utilisation. In the symbolic domain every measure
//!    is a closed-form rational function of the enabling/firing-time and
//!    frequency symbols, valid for *all* parameters satisfying the
//!    timing constraints — the paper's throughput expression falls out
//!    of [`Performance::throughput`] for `t6`.

mod decision;
mod error;
mod exprs;
mod measures;
mod opt;
mod rates;

pub use decision::{DecisionEdge, DecisionGraph};
pub use error::CoreError;
pub use exprs::ExprTarget;
pub use measures::Performance;
pub use opt::{OptCertificate, OptGoal, Optimum};
pub use rates::{solve_rates, solve_rates_with, RateMethod, Rates};
