//! Shared types of the parameter-synthesis surface.
//!
//! The optimizer (`tpn-opt`) answers the question the exported closed
//! forms exist for: *which parameter values make the protocol fastest?*
//! Its result vocabulary lives here, next to [`ExprTarget`](crate::ExprTarget),
//! so every layer — the solver, the daemon's `/optimize` endpoint and
//! the CLI — speaks the same language without depending on the solver
//! crate itself.

use tpn_rational::Rational;
use tpn_symbolic::Symbol;

/// Direction of a parameter search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OptGoal {
    /// Find the point with the greatest objective value.
    Maximize,
    /// Find the point with the least objective value.
    Minimize,
}

impl OptGoal {
    /// The canonical spec-grammar name (`"max"` / `"min"`).
    pub fn name(self) -> &'static str {
        match self {
            OptGoal::Maximize => "max",
            OptGoal::Minimize => "min",
        }
    }

    /// Parse the spec grammar (`"max"` / `"min"`).
    pub fn parse(s: &str) -> Option<OptGoal> {
        match s {
            "max" => Some(OptGoal::Maximize),
            "min" => Some(OptGoal::Minimize),
            _ => None,
        }
    }

    /// `true` iff `a` is strictly better than `b` under this goal.
    pub fn better(self, a: &Rational, b: &Rational) -> bool {
        match self {
            OptGoal::Maximize => a > b,
            OptGoal::Minimize => a < b,
        }
    }

    /// [`OptGoal::better`] in the `f64` backend.
    pub fn better_f64(self, a: f64, b: f64) -> bool {
        match self {
            OptGoal::Maximize => a > b,
            OptGoal::Minimize => a < b,
        }
    }
}

/// How a reported optimum is justified. The univariate engine produces
/// *exact* certificates (Sturm-sequence root isolation over rational
/// arithmetic); the multivariate refiner reports the numeric evidence
/// it has.
#[derive(Debug, Clone, PartialEq)]
pub enum OptCertificate {
    /// The optimum is an interior critical point: the objective's
    /// derivative changes sign across it (`+ → −` for a maximum,
    /// `− → +` for a minimum), certified by exact sign evaluation at
    /// the rational bracket endpoints.
    Interior {
        /// `true` when the critical point is exactly rational (the
        /// bracket has collapsed to the point itself).
        exact: bool,
        /// Rational bracket `[lo, hi]` isolating the critical point
        /// (`lo == hi` when `exact`).
        bracket: (Rational, Rational),
        /// Sign of the derivative just below the critical point.
        sign_below: i32,
        /// Sign of the derivative just above the critical point.
        sign_above: i32,
    },
    /// The optimum sits on the boundary of the feasible interval: the
    /// derivative keeps a single sign (certified by Sturm root
    /// counting — no interior sign change exists) between the boundary
    /// and the nearest critical point.
    Boundary {
        /// `true` when the optimum is the upper end of the interval.
        upper: bool,
        /// `true` when the binding bound is an *open* validity-region
        /// constraint: the reported point approaches the boundary
        /// within the solver tolerance rather than sitting on it.
        open: bool,
        /// Sign of the derivative on the boundary-adjacent segment.
        derivative_sign: i32,
    },
    /// The feasible set collapsed to a single point (an equality
    /// constraint of the validity region pinned the parameter).
    Pinned,
    /// Numeric evidence only: coarse grid seeding plus projected
    /// gradient ascent, with the final point re-verified by exact
    /// evaluation but not certified globally optimal.
    Refined {
        /// Gradient-ascent iterations performed after seeding.
        iterations: u32,
        /// Euclidean norm of the objective gradient at the final point.
        grad_norm: f64,
    },
}

impl OptCertificate {
    /// `true` for the exact-arithmetic certificates (`Interior`,
    /// `Boundary`, `Pinned`); `false` for `Refined`.
    pub fn is_exact(&self) -> bool {
        !matches!(self, OptCertificate::Refined { .. })
    }

    /// The certificate kind's canonical name (the JSON `kind` member).
    pub fn kind(&self) -> &'static str {
        match self {
            OptCertificate::Interior { .. } => "interior",
            OptCertificate::Boundary { .. } => "boundary",
            OptCertificate::Pinned => "pinned",
            OptCertificate::Refined { .. } => "refined",
        }
    }
}

/// A solved parameter-synthesis problem: the best feasible point found,
/// its objective value, and the justification.
#[derive(Debug, Clone, PartialEq)]
pub struct Optimum {
    /// The optimal parameter values, in the problem's box-axis order.
    pub point: Vec<(Symbol, Rational)>,
    /// Exact objective value at `point` (`None` only when exact
    /// re-evaluation overflowed `i128`; `value_f64` still stands).
    pub value: Option<Rational>,
    /// The objective value at `point` in the `f64` backend.
    pub value_f64: f64,
    /// The search direction the optimum answers.
    pub goal: OptGoal,
    /// Why this point is believed optimal.
    pub certificate: OptCertificate,
}

impl Optimum {
    /// `true` iff the optimum carries an exact-arithmetic certificate.
    pub fn certified(&self) -> bool {
        self.certificate.is_exact()
    }

    /// The value of symbol `s` at the optimum, if it is part of the point.
    pub fn coordinate(&self, s: Symbol) -> Option<Rational> {
        self.point
            .iter()
            .find(|(sym, _)| *sym == s)
            .map(|(_, v)| *v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goal_grammar_roundtrips() {
        for g in [OptGoal::Maximize, OptGoal::Minimize] {
            assert_eq!(OptGoal::parse(g.name()), Some(g));
        }
        assert_eq!(OptGoal::parse("maximise"), None);
    }

    #[test]
    fn better_follows_the_goal() {
        let two = Rational::from_int(2);
        let three = Rational::from_int(3);
        assert!(OptGoal::Maximize.better(&three, &two));
        assert!(!OptGoal::Maximize.better(&two, &two));
        assert!(OptGoal::Minimize.better(&two, &three));
        assert!(OptGoal::Maximize.better_f64(3.0, 2.0));
        assert!(OptGoal::Minimize.better_f64(2.0, 3.0));
    }

    #[test]
    fn certificates_classify_exactness() {
        let interior = OptCertificate::Interior {
            exact: true,
            bracket: (Rational::ONE, Rational::ONE),
            sign_below: 1,
            sign_above: -1,
        };
        assert!(interior.is_exact());
        assert_eq!(interior.kind(), "interior");
        let refined = OptCertificate::Refined {
            iterations: 10,
            grad_norm: 1e-9,
        };
        assert!(!refined.is_exact());
        assert_eq!(refined.kind(), "refined");
        let s = Symbol::intern("opt_types_x");
        let o = Optimum {
            point: vec![(s, Rational::from_int(7))],
            value: Some(Rational::ONE),
            value_f64: 1.0,
            goal: OptGoal::Maximize,
            certificate: refined,
        };
        assert!(!o.certified());
        assert_eq!(o.coordinate(s), Some(Rational::from_int(7)));
    }
}
