//! Export of performance measures as closed-form rational functions.
//!
//! In a symbolic analysis domain (the fully symbolic
//! [`SymbolicDomain`](tpn_reach::SymbolicDomain) of §3 or the
//! numerically guided [`LiftedDomain`](tpn_reach::LiftedDomain)) every
//! measure a [`Performance`] exposes *is* a [`RatFn`] in the timing and
//! frequency symbols. This module gives those measures a uniform,
//! addressable form — an [`ExprTarget`] names one measure, and
//! [`Performance::export_expr`] returns its closed form — which is what
//! the compiled-evaluation and parameter-sweep layers (`tpn-eval`, the
//! daemon's `/sweep` endpoint) consume.

use tpn_net::{PlaceId, TransId};
use tpn_reach::{AnalysisDomain, TimedReachabilityGraph};
use tpn_symbolic::RatFn;

use crate::{DecisionGraph, Performance};

/// One exportable performance measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExprTarget {
    /// Firings of a transition per unit time
    /// ([`Performance::throughput`]).
    Throughput(TransId),
    /// Steady-state fraction of time a place is marked
    /// ([`Performance::place_utilization`]).
    PlaceUtilization(PlaceId),
    /// Steady-state fraction of time a transition is actively firing
    /// ([`Performance::transition_utilization`]).
    TransitionUtilization(TransId),
    /// The mean recurrence time of the reference edge `Σ wᵢ` — the
    /// paper's mean cycle time ([`Performance::total_weight`]).
    CycleTime,
}

impl<D: AnalysisDomain<Prob = RatFn>> Performance<D> {
    /// The closed form of one performance measure as a rational
    /// function of the domain's symbols.
    pub fn export_expr(
        &self,
        dg: &DecisionGraph<D>,
        trg: &TimedReachabilityGraph<D>,
        domain: &D,
        target: ExprTarget,
    ) -> RatFn {
        match target {
            ExprTarget::Throughput(t) => self.throughput(dg, t),
            ExprTarget::PlaceUtilization(p) => self.place_utilization(dg, trg, domain, p),
            ExprTarget::TransitionUtilization(t) => self.transition_utilization(dg, trg, domain, t),
            ExprTarget::CycleTime => self.total_weight().clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve_rates;
    use tpn_net::{symbols, NetBuilder};
    use tpn_rational::Rational;
    use tpn_reach::{build_trg, LiftedDomain, TrgOptions};
    use tpn_symbolic::Assignment;

    #[test]
    fn exported_exprs_instantiate_to_the_numeric_measures() {
        // succeed (w=3, d=1) vs retry (w=1, d=2), with F(retry) lifted.
        let mut b = NetBuilder::new("exprs");
        let p = b.place("p", 1);
        b.transition("succeed")
            .input(p)
            .output(p)
            .firing_const(1)
            .weight_const(3)
            .add();
        b.transition("retry")
            .input(p)
            .output(p)
            .firing_const(2)
            .weight_const(1)
            .add();
        let net = b.build().unwrap();
        let fr = symbols::firing("retry");
        let domain = LiftedDomain::new(&net, &[fr]).unwrap();
        let trg = build_trg(&net, &domain, &TrgOptions::default()).unwrap();
        let dg = DecisionGraph::from_trg(&trg, &domain).unwrap();
        let rates = solve_rates(&dg, 0).unwrap();
        let perf = Performance::new(&dg, rates, &domain).unwrap();
        let succeed = net.transition_by_name("succeed").unwrap();

        let th = perf.export_expr(&dg, &trg, &domain, ExprTarget::Throughput(succeed));
        let cycle = perf.export_expr(&dg, &trg, &domain, ExprTarget::CycleTime);
        let util = perf.export_expr(
            &dg,
            &trg,
            &domain,
            ExprTarget::TransitionUtilization(succeed),
        );
        // At the base point F(retry)=2 the numeric analysis gives
        // throughput 3/5, Σw = 5/3 (per reference traversal) and
        // utilisation 3/5 (see tpn-core's measures tests).
        let at = Assignment::new().with(fr, Rational::from_int(2));
        assert_eq!(th.eval(&at), Some(Rational::new(3, 5)));
        assert_eq!(cycle.eval(&at), Some(Rational::new(5, 3)));
        assert_eq!(util.eval(&at), Some(Rational::new(3, 5)));
        // And the closed form moves with the parameter: a slower retry
        // lowers the success throughput.
        let slower = Assignment::new().with(fr, Rational::from_int(10));
        assert!(th.eval(&slower).unwrap() < th.eval(&at).unwrap());
    }
}
