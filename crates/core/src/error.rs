//! Errors from decision-graph analysis.

use std::fmt;

use tpn_linalg::LinalgError;

/// An error during decision-graph construction or rate derivation.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A path out of a decision node re-entered itself without passing a
    /// decision node: the system can loop forever with no branching, so
    /// steady-state rates are undefined (livelock from the decision
    /// graph's point of view).
    AbsorbingCycle {
        /// Index (in the TRG) of a state on the offending cycle.
        state: usize,
    },
    /// The reachability graph has no cycle at all (every run reaches a
    /// terminal state), so there is no steady state to analyse.
    NoCycle,
    /// The rate equations do not have a one-dimensional solution space:
    /// dimension 0 means probability leaks out of the cycle (terminal
    /// paths); dimension > 1 means several independent recurrent classes.
    NotErgodic {
        /// Dimension of the computed solution space.
        kernel_dim: usize,
    },
    /// The reference edge for normalisation has rate zero.
    ZeroReferenceRate {
        /// The edge index that was requested as reference.
        edge: usize,
    },
    /// An edge index was out of range.
    NoSuchEdge {
        /// The offending index.
        edge: usize,
    },
    /// Total cycle weight is zero (a zero-time cycle), so time-based
    /// measures are undefined.
    ZeroCycleTime,
    /// Underlying linear-algebra failure.
    Linalg(LinalgError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::AbsorbingCycle { state } => write!(
                f,
                "state {state} lies on a cycle that passes no decision node; \
                 steady-state rates are undefined"
            ),
            CoreError::NoCycle => {
                write!(
                    f,
                    "the reachability graph is acyclic: no steady state exists"
                )
            }
            CoreError::NotErgodic { kernel_dim } => write!(
                f,
                "rate equations have a {kernel_dim}-dimensional solution space \
                 (expected 1: a single recurrent cycle)"
            ),
            CoreError::ZeroReferenceRate { edge } => {
                write!(f, "reference edge {edge} has zero traversal rate")
            }
            CoreError::NoSuchEdge { edge } => write!(f, "no decision-graph edge {edge}"),
            CoreError::ZeroCycleTime => write!(f, "total cycle time is zero"),
            CoreError::Linalg(e) => write!(f, "linear algebra: {e}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<LinalgError> for CoreError {
    fn from(e: LinalgError) -> CoreError {
        CoreError::Linalg(e)
    }
}
