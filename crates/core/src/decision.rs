//! Collapsing a timed reachability graph into a decision graph
//! (paper §2, Figure 5; symbolically §4, Figure 8).

use std::collections::HashMap;
use std::fmt::Write as _;

use tpn_net::{TimedPetriNet, TransId};
use tpn_reach::{AnalysisDomain, StateId, TimedReachabilityGraph};

use crate::CoreError;

/// An edge of the decision graph: a maximal deterministic path of the
/// TRG starting with one branching choice at a decision node.
#[derive(Debug, Clone)]
pub struct DecisionEdge<D: AnalysisDomain> {
    /// Index of the source decision node (into [`DecisionGraph::nodes`]).
    pub from: usize,
    /// Index of the target decision node.
    pub to: usize,
    /// The branching probability taken at the source node.
    pub prob: D::Prob,
    /// Total delay accumulated along the collapsed path.
    pub delay: D::Time,
    /// The TRG states visited, source and target included.
    pub path: Vec<StateId>,
    /// Every transition that *begins firing* somewhere along the path,
    /// with multiplicity. Used to attribute throughput events to edges.
    pub fired: Vec<TransId>,
    /// Dwell times: `(state, duration)` for each elapse step along the
    /// path. Used for utilisation measures.
    pub dwell: Vec<(StateId, D::Time)>,
}

impl<D: AnalysisDomain> DecisionEdge<D> {
    /// How many times `t` begins firing along this edge.
    pub fn firings_of(&self, t: TransId) -> usize {
        self.fired.iter().filter(|&&x| x == t).count()
    }
}

/// The decision graph: decision nodes of the TRG plus collapsed edges.
///
/// When the TRG has *no* decision node (a fully deterministic cycle),
/// the graph degenerates gracefully: the first state of the recurrent
/// cycle is used as the single anchor node, with one self-edge of
/// probability one, so the rate/measure machinery applies unchanged.
#[derive(Debug, Clone)]
pub struct DecisionGraph<D: AnalysisDomain> {
    nodes: Vec<StateId>,
    edges: Vec<DecisionEdge<D>>,
    out: Vec<Vec<usize>>, // per node: indices into `edges`
}

impl<D: AnalysisDomain> DecisionGraph<D> {
    /// Collapse a TRG into its decision graph.
    pub fn from_trg(
        trg: &TimedReachabilityGraph<D>,
        domain: &D,
    ) -> Result<DecisionGraph<D>, CoreError> {
        let mut nodes = trg.decision_states();
        if nodes.is_empty() {
            // Deterministic net: anchor at the first state of the
            // recurrent cycle (walk until a state repeats).
            nodes = vec![find_cycle_anchor(trg)?];
        }
        let node_of: HashMap<StateId, usize> =
            nodes.iter().enumerate().map(|(i, s)| (*s, i)).collect();
        let mut edges: Vec<DecisionEdge<D>> = Vec::new();
        let mut out: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        for (ni, &n) in nodes.iter().enumerate() {
            for first in trg.edges_from(n) {
                let mut delay = first.delay.clone();
                let mut fired = first.fired.clone();
                let mut path = vec![n];
                let mut dwell: Vec<(StateId, D::Time)> = Vec::new();
                if !domain.is_zero(&first.delay) {
                    dwell.push((n, first.delay.clone()));
                }
                let mut cur = first.to;
                loop {
                    path.push(cur);
                    if let Some(&ti) = node_of.get(&cur) {
                        let idx = edges.len();
                        edges.push(DecisionEdge {
                            from: ni,
                            to: ti,
                            prob: first.prob.clone(),
                            delay,
                            path,
                            fired,
                            dwell,
                        });
                        out[ni].push(idx);
                        break;
                    }
                    let nexts = trg.edges_from(cur);
                    if nexts.is_empty() {
                        // Terminal state: no steady-state cycle through
                        // this branch.
                        return Err(CoreError::NoCycle);
                    }
                    debug_assert_eq!(nexts.len(), 1, "non-decision nodes have one successor");
                    let e = &nexts[0];
                    if path.contains(&e.to) && !node_of.contains_key(&e.to) {
                        return Err(CoreError::AbsorbingCycle {
                            state: e.to.index(),
                        });
                    }
                    if !domain.is_zero(&e.delay) {
                        dwell.push((cur, e.delay.clone()));
                    }
                    delay = domain.add(&delay, &e.delay);
                    fired.extend_from_slice(&e.fired);
                    cur = e.to;
                }
            }
        }
        Ok(DecisionGraph { nodes, edges, out })
    }

    /// Re-label the graph into another domain by mapping every delay,
    /// dwell time and probability, keeping the structure — nodes, edge
    /// endpoints, paths, firings — untouched. The decision-graph
    /// counterpart of [`TimedReachabilityGraph::map`]: instantiating a
    /// lifted decision graph at an in-region parameter point yields the
    /// decision graph the cold pipeline would derive there. Returns
    /// `None` if any label fails to map (an unbound symbol).
    pub fn map<D2, FT, FP>(&self, mut time: FT, mut prob: FP) -> Option<DecisionGraph<D2>>
    where
        D2: AnalysisDomain,
        FT: FnMut(&D::Time) -> Option<D2::Time>,
        FP: FnMut(&D::Prob) -> Option<D2::Prob>,
    {
        let edges = self
            .edges
            .iter()
            .map(|e| {
                Some(DecisionEdge {
                    from: e.from,
                    to: e.to,
                    prob: prob(&e.prob)?,
                    delay: time(&e.delay)?,
                    path: e.path.clone(),
                    fired: e.fired.clone(),
                    dwell: e
                        .dwell
                        .iter()
                        .map(|(s, d)| Some((*s, time(d)?)))
                        .collect::<Option<Vec<_>>>()?,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        Some(DecisionGraph {
            nodes: self.nodes.clone(),
            edges,
            out: self.out.clone(),
        })
    }

    /// The decision nodes (TRG state ids).
    pub fn nodes(&self) -> &[StateId] {
        &self.nodes
    }

    /// All edges.
    pub fn edges(&self) -> &[DecisionEdge<D>] {
        &self.edges
    }

    /// Outgoing edge indices of a node.
    pub fn edges_from(&self, node: usize) -> &[usize] {
        &self.out[node]
    }

    /// Edge indices entering a node.
    pub fn edges_into(&self, node: usize) -> Vec<usize> {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.to == node)
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Index of the edge whose collapsed path starts at TRG state `from`
    /// by firing transition `t` first, if any. Convenient for naming the
    /// paper's edges ("edge 2 corresponds to path 11-13-15-…").
    pub fn edge_firing_first(&self, from: StateId, t: TransId) -> Option<usize> {
        self.edges
            .iter()
            .position(|e| self.nodes[e.from] == from && e.fired.first() == Some(&t))
    }

    /// Human-readable rendering in the style of the paper's Figure 5/8:
    /// one line per edge with probability, delay and collapsed path.
    pub fn describe(&self, net: &TimedPetriNet) -> String {
        let mut outs = String::new();
        for (i, e) in self.edges.iter().enumerate() {
            let path: Vec<String> = e.path.iter().map(|s| s.to_string()).collect();
            let fired: Vec<&str> = e.fired.iter().map(|t| net.transition(*t).name()).collect();
            let _ = writeln!(
                outs,
                "edge {i}: {} -> {}  p = {}  d = {}  path {}  fires [{}]",
                self.nodes[e.from],
                self.nodes[e.to],
                e.prob,
                e.delay,
                path.join("-"),
                fired.join(", "),
            );
        }
        outs
    }
}

/// Walk unique successors from the initial state until a state repeats;
/// that repeated state anchors the recurrent cycle.
fn find_cycle_anchor<D: AnalysisDomain>(
    trg: &TimedReachabilityGraph<D>,
) -> Result<StateId, CoreError> {
    let mut seen = vec![false; trg.num_states()];
    let mut cur = trg.initial();
    loop {
        if seen[cur.index()] {
            return Ok(cur);
        }
        seen[cur.index()] = true;
        let nexts = trg.edges_from(cur);
        if nexts.is_empty() {
            return Err(CoreError::NoCycle);
        }
        cur = nexts[0].to;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpn_net::NetBuilder;
    use tpn_rational::Rational;
    use tpn_reach::{build_trg, NumericDomain, TrgOptions};

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn deterministic_cycle_collapses_to_anchor() {
        let net = tpn_protocols_cycle();
        let trg = build_trg(&net, &NumericDomain::new(), &TrgOptions::default()).unwrap();
        let dg = DecisionGraph::from_trg(&trg, &NumericDomain::new()).unwrap();
        assert_eq!(dg.num_nodes(), 1);
        assert_eq!(dg.num_edges(), 1);
        let e = &dg.edges()[0];
        assert_eq!(e.prob, Rational::ONE);
        assert_eq!(e.delay, r(5, 1)); // 2 + 3
        assert_eq!(e.fired.len(), 2);
        assert_eq!(e.dwell.len(), 2);
    }

    fn tpn_protocols_cycle() -> tpn_net::TimedPetriNet {
        let mut b = NetBuilder::new("c");
        let pa = b.place("pa", 1);
        let pb = b.place("pb", 0);
        b.transition("go")
            .input(pa)
            .output(pb)
            .firing_const(2)
            .add();
        b.transition("back")
            .input(pb)
            .output(pa)
            .firing_const(3)
            .add();
        b.build().unwrap()
    }

    #[test]
    fn branching_cycle() {
        // One decision: succeed (p=3/4, delay 1) and restart, or retry
        // (p=1/4, delay 2) and restart.
        let mut b = NetBuilder::new("branch");
        let p = b.place("p", 1);
        b.transition("succeed")
            .input(p)
            .output(p)
            .firing_const(1)
            .weight_const(3)
            .add();
        b.transition("retry")
            .input(p)
            .output(p)
            .firing_const(2)
            .weight_const(1)
            .add();
        let net = b.build().unwrap();
        let trg = build_trg(&net, &NumericDomain::new(), &TrgOptions::default()).unwrap();
        let dg = DecisionGraph::from_trg(&trg, &NumericDomain::new()).unwrap();
        assert_eq!(dg.num_nodes(), 1);
        assert_eq!(dg.num_edges(), 2);
        let probs: Vec<Rational> = dg.edges().iter().map(|e| e.prob).collect();
        assert!(probs.contains(&r(3, 4)));
        assert!(probs.contains(&r(1, 4)));
        // both edges return to the sole node
        assert!(dg.edges().iter().all(|e| e.to == 0 && e.from == 0));
        // edges_into/edges_from agree
        assert_eq!(dg.edges_into(0).len(), 2);
        assert_eq!(dg.edges_from(0).len(), 2);
    }

    #[test]
    fn acyclic_graph_is_rejected() {
        let mut b = NetBuilder::new("acyclic");
        let p = b.place("p", 1);
        let q = b.place("q", 0);
        b.transition("once")
            .input(p)
            .output(q)
            .firing_const(1)
            .add();
        let net = b.build().unwrap();
        let trg = build_trg(&net, &NumericDomain::new(), &TrgOptions::default()).unwrap();
        assert_eq!(
            DecisionGraph::from_trg(&trg, &NumericDomain::new()).unwrap_err(),
            CoreError::NoCycle
        );
    }

    #[test]
    fn terminal_branch_is_rejected() {
        // A decision node where one branch deadlocks.
        let mut b = NetBuilder::new("leak");
        let p = b.place("p", 1);
        let dead = b.place("dead", 0);
        b.transition("loop")
            .input(p)
            .output(p)
            .firing_const(1)
            .weight_const(1)
            .add();
        b.transition("die")
            .input(p)
            .output(dead)
            .firing_const(1)
            .weight_const(1)
            .add();
        let net = b.build().unwrap();
        let trg = build_trg(&net, &NumericDomain::new(), &TrgOptions::default()).unwrap();
        assert_eq!(
            DecisionGraph::from_trg(&trg, &NumericDomain::new()).unwrap_err(),
            CoreError::NoCycle
        );
    }

    #[test]
    fn edge_lookup_and_describe() {
        let mut b = NetBuilder::new("branch2");
        let p = b.place("p", 1);
        b.transition("a")
            .input(p)
            .output(p)
            .firing_const(1)
            .weight_const(1)
            .add();
        b.transition("z")
            .input(p)
            .output(p)
            .firing_const(2)
            .weight_const(1)
            .add();
        let net = b.build().unwrap();
        let trg = build_trg(&net, &NumericDomain::new(), &TrgOptions::default()).unwrap();
        let dg = DecisionGraph::from_trg(&trg, &NumericDomain::new()).unwrap();
        let a = net.transition_by_name("a").unwrap();
        let anchor = dg.nodes()[0];
        let ia = dg.edge_firing_first(anchor, a).unwrap();
        assert_eq!(dg.edges()[ia].fired, vec![a]);
        let text = dg.describe(&net);
        assert!(text.contains("edge 0"), "{text}");
        assert!(text.contains("fires"), "{text}");
    }
}
