//! Traversal-rate equations over the decision graph (paper §4).
//!
//! *"The rate at which an outgoing edge is traversed is a function of
//! the branching probability for that edge and of the rate at which the
//! incoming edges are traversed"*:
//!
//! ```text
//! rₑ = pₑ · Σ { rₑ′ : e′ enters src(e) }
//! ```
//!
//! The system is homogeneous; for an ergodic cycle its solution space is
//! one-dimensional, and the paper fixes the scale by "assuming rⱼ = 1"
//! for a chosen reference edge. [`solve_rates`] reproduces exactly that:
//! exact null-space computation over the probability field (rationals or
//! rational functions) followed by normalisation.

use tpn_linalg::{Field, Matrix, SparseMatrix};
use tpn_reach::AnalysisDomain;

use crate::{CoreError, DecisionGraph};

/// How to solve the homogeneous rate system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RateMethod {
    /// Compute the null space of the full homogeneous system and
    /// normalise (the default; detects non-ergodic graphs exactly).
    #[default]
    DenseKernel,
    /// Replace the reference edge's equation by `r_ref = 1` and solve
    /// the resulting inhomogeneous system with dense elimination.
    DenseFixed,
    /// Same fixed-reference system, solved with the sparse eliminator —
    /// the representation that wins on large decision graphs (see the
    /// `scaling` benchmarks).
    SparseFixed,
}

/// Normalised traversal rates, one per decision-graph edge.
#[derive(Debug, Clone)]
pub struct Rates<P> {
    rates: Vec<P>,
    reference: usize,
}

impl<P: Clone> Rates<P> {
    /// The rate of edge `e` (same indexing as
    /// [`DecisionGraph::edges`]).
    pub fn rate(&self, e: usize) -> &P {
        &self.rates[e]
    }

    /// All rates in edge order.
    pub fn as_slice(&self) -> &[P] {
        &self.rates
    }

    /// The edge whose rate was normalised to one.
    pub fn reference_edge(&self) -> usize {
        self.reference
    }

    /// Re-label every rate through `f`, keeping the reference edge.
    /// This is how symbolic rates are instantiated at a concrete
    /// parameter point: because the solved system is linear and the
    /// solution unique, evaluating each closed form yields exactly the
    /// rates a fresh numeric solve would produce. Returns `None` if
    /// any rate fails to map (an unbound symbol).
    pub fn map<Q, F>(&self, f: F) -> Option<Rates<Q>>
    where
        F: FnMut(&P) -> Option<Q>,
    {
        Some(Rates {
            rates: self.rates.iter().map(f).collect::<Option<Vec<_>>>()?,
            reference: self.reference,
        })
    }
}

/// Solve the traversal-rate equations of `dg`, normalising the rate of
/// `reference_edge` to one.
///
/// Errors: [`CoreError::NotErgodic`] if the solution space is not
/// one-dimensional, [`CoreError::ZeroReferenceRate`] if the requested
/// reference edge has rate zero, [`CoreError::NoSuchEdge`] for a bad
/// index.
pub fn solve_rates<D>(
    dg: &DecisionGraph<D>,
    reference_edge: usize,
) -> Result<Rates<D::Prob>, CoreError>
where
    D: AnalysisDomain,
    D::Prob: Field,
{
    solve_rates_with(dg, reference_edge, RateMethod::DenseKernel)
}

/// [`solve_rates`] with an explicit solver strategy. All strategies
/// return the same rates on ergodic graphs; they differ in how
/// non-ergodicity is detected and in performance on large graphs.
pub fn solve_rates_with<D>(
    dg: &DecisionGraph<D>,
    reference_edge: usize,
    method: RateMethod,
) -> Result<Rates<D::Prob>, CoreError>
where
    D: AnalysisDomain,
    D::Prob: Field,
{
    let m = dg.num_edges();
    if reference_edge >= m {
        return Err(CoreError::NoSuchEdge {
            edge: reference_edge,
        });
    }
    // The homogeneous system A·r = 0 with rows
    //   r_e − p_e·Σ_{e′→src(e)} r_{e′} = 0.
    let coefficient = |ei: usize| {
        let e = &dg.edges()[ei];
        let mut row: Vec<(usize, D::Prob)> = vec![(ei, D::Prob::one())];
        for into in dg.edges_into(e.from) {
            // subtract p_e at column `into` (may coincide with ei)
            if let Some(slot) = row.iter_mut().find(|(c, _)| *c == into) {
                slot.1 = slot.1.sub(&e.prob);
            } else {
                row.push((into, D::Prob::zero().sub(&e.prob)));
            }
        }
        row
    };
    match method {
        RateMethod::DenseKernel => {
            let mut a = Matrix::<D::Prob>::zeros(m, m);
            for ei in 0..m {
                for (c, v) in coefficient(ei) {
                    a.set(ei, c, v);
                }
            }
            let kernel = a.null_space();
            if kernel.len() != 1 {
                return Err(CoreError::NotErgodic {
                    kernel_dim: kernel.len(),
                });
            }
            let base = &kernel[0];
            let scale = base[reference_edge].clone();
            if scale.is_zero() {
                return Err(CoreError::ZeroReferenceRate {
                    edge: reference_edge,
                });
            }
            let rates = base.iter().map(|r| r.div(&scale)).collect();
            Ok(Rates {
                rates,
                reference: reference_edge,
            })
        }
        RateMethod::DenseFixed => {
            let mut a = Matrix::<D::Prob>::zeros(m, m);
            for ei in 0..m {
                if ei == reference_edge {
                    a.set(ei, ei, D::Prob::one());
                    continue;
                }
                for (c, v) in coefficient(ei) {
                    a.set(ei, c, v);
                }
            }
            let mut b = vec![D::Prob::zero(); m];
            b[reference_edge] = D::Prob::one();
            let rates = a
                .solve(&b)
                .map_err(|_| CoreError::NotErgodic { kernel_dim: 0 })?;
            Ok(Rates {
                rates,
                reference: reference_edge,
            })
        }
        RateMethod::SparseFixed => {
            let mut a = SparseMatrix::<D::Prob>::zeros(m, m);
            for ei in 0..m {
                if ei == reference_edge {
                    a.set(ei, ei, D::Prob::one());
                    continue;
                }
                for (c, v) in coefficient(ei) {
                    a.set(ei, c, v);
                }
            }
            let mut b = vec![D::Prob::zero(); m];
            b[reference_edge] = D::Prob::one();
            let rates = a
                .solve(&b)
                .map_err(|_| CoreError::NotErgodic { kernel_dim: 0 })?;
            Ok(Rates {
                rates,
                reference: reference_edge,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpn_net::NetBuilder;
    use tpn_rational::Rational;
    use tpn_reach::{build_trg, NumericDomain, TrgOptions};

    use crate::DecisionGraph;

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    /// retry loop: succeed with p=3/4 (delay 1) or retry with p=1/4
    /// (delay 2); expected rates relative to "succeed": retry = 1/3.
    fn retry_dg() -> (tpn_net::TimedPetriNet, DecisionGraph<NumericDomain>) {
        let mut b = NetBuilder::new("retry");
        let p = b.place("p", 1);
        b.transition("succeed")
            .input(p)
            .output(p)
            .firing_const(1)
            .weight_const(3)
            .add();
        b.transition("retry")
            .input(p)
            .output(p)
            .firing_const(2)
            .weight_const(1)
            .add();
        let net = b.build().unwrap();
        let trg = build_trg(&net, &NumericDomain::new(), &TrgOptions::default()).unwrap();
        let dg = DecisionGraph::from_trg(&trg, &NumericDomain::new()).unwrap();
        (net, dg)
    }

    #[test]
    fn rates_of_retry_loop() {
        let (net, dg) = retry_dg();
        let succeed = net.transition_by_name("succeed").unwrap();
        let anchor = dg.nodes()[0];
        let is_ = dg.edge_firing_first(anchor, succeed).unwrap();
        let rates = solve_rates(&dg, is_).unwrap();
        assert_eq!(rates.reference_edge(), is_);
        assert_eq!(*rates.rate(is_), Rational::ONE);
        let other = 1 - is_;
        assert_eq!(*rates.rate(other), r(1, 3));
        // the rates satisfy the defining equations: r_e = p_e · inflow
        for (ei, e) in dg.edges().iter().enumerate() {
            let inflow: Rational = dg.edges_into(e.from).iter().map(|&i| *rates.rate(i)).sum();
            assert_eq!(*rates.rate(ei), e.prob * inflow);
        }
    }

    #[test]
    fn deterministic_cycle_rate_is_one() {
        let mut b = NetBuilder::new("det");
        let p = b.place("p", 1);
        b.transition("go").input(p).output(p).firing_const(5).add();
        let net = b.build().unwrap();
        let trg = build_trg(&net, &NumericDomain::new(), &TrgOptions::default()).unwrap();
        let dg = DecisionGraph::from_trg(&trg, &NumericDomain::new()).unwrap();
        let rates = solve_rates(&dg, 0).unwrap();
        assert_eq!(rates.as_slice(), &[Rational::ONE]);
    }

    #[test]
    fn bad_reference_rejected() {
        let (_, dg) = retry_dg();
        assert_eq!(
            solve_rates(&dg, 99).unwrap_err(),
            CoreError::NoSuchEdge { edge: 99 }
        );
    }

    #[test]
    fn all_methods_agree() {
        let (_, dg) = retry_dg();
        for reference in 0..dg.num_edges() {
            let kernel = solve_rates_with(&dg, reference, RateMethod::DenseKernel).unwrap();
            let dense = solve_rates_with(&dg, reference, RateMethod::DenseFixed).unwrap();
            let sparse = solve_rates_with(&dg, reference, RateMethod::SparseFixed).unwrap();
            assert_eq!(kernel.as_slice(), dense.as_slice());
            assert_eq!(kernel.as_slice(), sparse.as_slice());
        }
    }
}
