//! Performance measures over a solved decision graph (paper §4).
//!
//! With traversal rates `rᵢ` and accumulated delays `dᵢ`, the *relative
//! time spent* on edge `i` is `wᵢ = rᵢ·dᵢ`, and any event rate divides
//! by the total `Σ wᵢ`: the paper's protocol throughput is
//! `r₂ / Σᵢ wᵢ` because edge 2 is the one whose path acknowledges a
//! message. [`Performance`] generalises this: the throughput of *any*
//! transition is the rate-weighted count of its firings per unit time,
//! and place utilisation weighs the dwell times of the states marking
//! the place.

use tpn_linalg::Field;
use tpn_net::{PlaceId, TimedPetriNet, TransId};
use tpn_reach::{AnalysisDomain, TimedReachabilityGraph};

use crate::{CoreError, DecisionGraph, Rates};

/// Solved steady-state measures for a decision graph.
#[derive(Debug, Clone)]
pub struct Performance<D: AnalysisDomain> {
    weights: Vec<D::Prob>,
    total_weight: D::Prob,
    rates: Rates<D::Prob>,
}

impl<D: AnalysisDomain> Performance<D>
where
    D::Prob: Field,
{
    /// Combine a decision graph with solved rates into measures.
    pub fn new(
        dg: &DecisionGraph<D>,
        rates: Rates<D::Prob>,
        domain: &D,
    ) -> Result<Performance<D>, CoreError> {
        let weights: Vec<D::Prob> = dg
            .edges()
            .iter()
            .enumerate()
            .map(|(i, e)| rates.rate(i).mul(&domain.time_as_prob(&e.delay)))
            .collect();
        let total_weight = weights.iter().fold(D::Prob::zero(), |acc, w| acc.add(w));
        if total_weight.is_zero() {
            return Err(CoreError::ZeroCycleTime);
        }
        Ok(Performance {
            weights,
            total_weight,
            rates,
        })
    }

    /// The edge weights `wᵢ = rᵢ·dᵢ`.
    pub fn weights(&self) -> &[D::Prob] {
        &self.weights
    }

    /// The total weight `Σ wᵢ` — the mean recurrence time of the
    /// reference edge, in net time units per reference-edge traversal.
    pub fn total_weight(&self) -> &D::Prob {
        &self.total_weight
    }

    /// The normalised traversal rates.
    pub fn rates(&self) -> &Rates<D::Prob> {
        &self.rates
    }

    /// Re-label the measures into another domain by mapping every
    /// weight and rate. Because evaluation at a point is a ring
    /// homomorphism, instantiating symbolic measures this way yields
    /// exactly what [`Performance::new`] over the instantiated decision
    /// graph and rates would compute. Returns `None` if any value fails
    /// to map or the mapped total weight vanishes (the point lies
    /// outside the measures' domain).
    pub fn map<D2, F>(&self, mut f: F) -> Option<Performance<D2>>
    where
        D2: AnalysisDomain,
        D2::Prob: Field,
        F: FnMut(&D::Prob) -> Option<D2::Prob>,
    {
        let weights = self
            .weights
            .iter()
            .map(&mut f)
            .collect::<Option<Vec<_>>>()?;
        let total_weight = f(&self.total_weight)?;
        if total_weight.is_zero() {
            return None;
        }
        let rates = self.rates.map(&mut f)?;
        Some(Performance {
            weights,
            total_weight,
            rates,
        })
    }

    /// The fraction of time spent on edge `e`: `wₑ / Σ wᵢ`.
    pub fn time_share(&self, e: usize) -> Result<D::Prob, CoreError> {
        let w = self
            .weights
            .get(e)
            .ok_or(CoreError::NoSuchEdge { edge: e })?;
        Ok(w.div(&self.total_weight))
    }

    /// Throughput of transition `t`: firings per unit time,
    /// `Σₑ count(t, e)·rₑ / Σ wᵢ`. For the paper's protocol with `t7`
    /// (the sender receives the acknowledgement — one firing per
    /// *successfully acknowledged* message) this is exactly the paper's
    /// throughput expression `r₂ / Σ wᵢ`.
    pub fn throughput(&self, dg: &DecisionGraph<D>, t: TransId) -> D::Prob {
        let mut num = D::Prob::zero();
        for (ei, e) in dg.edges().iter().enumerate() {
            let k = e.firings_of(t);
            for _ in 0..k {
                num = num.add(self.rates.rate(ei));
            }
        }
        num.div(&self.total_weight)
    }

    /// Mean time between traversals of edge `e` (infinite — an error —
    /// if the edge is never traversed).
    pub fn mean_recurrence_time(&self, e: usize) -> Result<D::Prob, CoreError> {
        let r = self
            .rates
            .as_slice()
            .get(e)
            .ok_or(CoreError::NoSuchEdge { edge: e })?;
        if r.is_zero() {
            return Err(CoreError::ZeroReferenceRate { edge: e });
        }
        Ok(self.total_weight.div(r))
    }

    /// Utilisation of place `p`: the steady-state fraction of time the
    /// place holds at least one token, computed from the dwell times of
    /// the collapsed paths.
    pub fn place_utilization(
        &self,
        dg: &DecisionGraph<D>,
        trg: &TimedReachabilityGraph<D>,
        domain: &D,
        p: PlaceId,
    ) -> D::Prob {
        self.dwell_weighted(dg, domain, |s| trg.state(s).marking().tokens(p) > 0)
    }

    /// Utilisation of transition `t`: the fraction of time `t` is
    /// actively firing (its RFT is tracked).
    pub fn transition_utilization(
        &self,
        dg: &DecisionGraph<D>,
        trg: &TimedReachabilityGraph<D>,
        domain: &D,
        t: TransId,
    ) -> D::Prob {
        self.dwell_weighted(dg, domain, |s| trg.state(s).rft(t).is_some())
    }

    fn dwell_weighted(
        &self,
        dg: &DecisionGraph<D>,
        domain: &D,
        pred: impl Fn(tpn_reach::StateId) -> bool,
    ) -> D::Prob {
        let mut num = D::Prob::zero();
        for (ei, e) in dg.edges().iter().enumerate() {
            let mut acc = D::Prob::zero();
            for (s, d) in &e.dwell {
                if pred(*s) {
                    acc = acc.add(&domain.time_as_prob(d));
                }
            }
            num = num.add(&self.rates.rate(ei).mul(&acc));
        }
        num.div(&self.total_weight)
    }

    /// Render rates, weights and shares in the spirit of the paper's
    /// Figure 8 derivation.
    pub fn describe(&self, net: &TimedPetriNet, dg: &DecisionGraph<D>) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, e) in dg.edges().iter().enumerate() {
            let fired: Vec<&str> = e.fired.iter().map(|t| net.transition(*t).name()).collect();
            let _ = writeln!(
                out,
                "edge {i} ({} -> {}): r = {}  d = {}  w = {}  [{}]",
                dg.nodes()[e.from],
                dg.nodes()[e.to],
                self.rates.rate(i),
                e.delay,
                self.weights[i],
                fired.join(", ")
            );
        }
        let _ = writeln!(out, "total weight Σw = {}", self.total_weight);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve_rates;
    use tpn_net::NetBuilder;
    use tpn_rational::Rational;
    use tpn_reach::{build_trg, NumericDomain, TrgOptions};

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    /// succeed (p=3/4, total delay 1) vs retry (p=1/4, total delay 2).
    fn setup() -> (
        tpn_net::TimedPetriNet,
        TimedReachabilityGraph<NumericDomain>,
        DecisionGraph<NumericDomain>,
        Performance<NumericDomain>,
    ) {
        let mut b = NetBuilder::new("m");
        let p = b.place("p", 1);
        b.transition("succeed")
            .input(p)
            .output(p)
            .firing_const(1)
            .weight_const(3)
            .add();
        b.transition("retry")
            .input(p)
            .output(p)
            .firing_const(2)
            .weight_const(1)
            .add();
        let net = b.build().unwrap();
        let d = NumericDomain::new();
        let trg = build_trg(&net, &d, &TrgOptions::default()).unwrap();
        let dg = DecisionGraph::from_trg(&trg, &d).unwrap();
        let succeed = net.transition_by_name("succeed").unwrap();
        let anchor = dg.nodes()[0];
        let is_ = dg.edge_firing_first(anchor, succeed).unwrap();
        let rates = solve_rates(&dg, is_).unwrap();
        let perf = Performance::new(&dg, rates, &d).unwrap();
        (net, trg, dg, perf)
    }

    #[test]
    fn weights_and_total() {
        let (net, _trg, dg, perf) = setup();
        let succeed = net.transition_by_name("succeed").unwrap();
        let anchor = dg.nodes()[0];
        let is_ = dg.edge_firing_first(anchor, succeed).unwrap();
        let ir = 1 - is_;
        // r_succeed = 1 (d=1, w=1); r_retry = 1/3 (d=2, w=2/3); Σw = 5/3
        assert_eq!(perf.weights()[is_], Rational::ONE);
        assert_eq!(perf.weights()[ir], r(2, 3));
        assert_eq!(*perf.total_weight(), r(5, 3));
        assert_eq!(perf.time_share(is_).unwrap(), r(3, 5));
        assert_eq!(perf.time_share(ir).unwrap(), r(2, 5));
        assert!(perf.time_share(9).is_err());
    }

    #[test]
    fn throughput_and_recurrence() {
        let (net, _trg, dg, perf) = setup();
        let succeed = net.transition_by_name("succeed").unwrap();
        let retry = net.transition_by_name("retry").unwrap();
        // throughput(succeed) = 1 / (5/3) = 3/5 per time unit
        assert_eq!(perf.throughput(&dg, succeed), r(3, 5));
        assert_eq!(perf.throughput(&dg, retry), r(1, 5));
        // sanity: time shares sum to one
        let total: Rational = (0..dg.num_edges())
            .map(|e| perf.time_share(e).unwrap())
            .sum();
        assert_eq!(total, Rational::ONE);
        // mean recurrence of the reference edge = Σw
        let anchor = dg.nodes()[0];
        let is_ = dg.edge_firing_first(anchor, succeed).unwrap();
        assert_eq!(perf.mean_recurrence_time(is_).unwrap(), r(5, 3));
    }

    #[test]
    fn utilizations() {
        let (net, trg, dg, perf) = setup();
        let d = NumericDomain::new();
        let succeed = net.transition_by_name("succeed").unwrap();
        let retry = net.transition_by_name("retry").unwrap();
        // "succeed" is firing 1·r_s of the cycle's 5/3: 3/5 of the time.
        assert_eq!(perf.transition_utilization(&dg, &trg, &d, succeed), r(3, 5));
        assert_eq!(perf.transition_utilization(&dg, &trg, &d, retry), r(2, 5));
        // the place "p" is empty while either transition fires (tokens
        // absorbed), so utilisation 0.
        let p = net.place_by_name("p").unwrap();
        assert_eq!(perf.place_utilization(&dg, &trg, &d, p), Rational::ZERO);
    }

    #[test]
    fn describe_renders() {
        let (net, _trg, dg, perf) = setup();
        let text = perf.describe(&net, &dg);
        assert!(text.contains("edge 0"), "{text}");
        assert!(text.contains("Σw"), "{text}");
    }
}
