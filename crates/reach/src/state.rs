//! Timed states: marking + RET + RFT.

use std::fmt;
use std::hash::Hash;

use tpn_net::{Marking, TransId};

/// A state of a timed reachability graph, parameterised by the time
/// representation `T` ([`tpn_rational::Rational`] for the numeric
/// domain, [`tpn_symbolic::LinExpr`] for the symbolic one).
///
/// Invariants maintained by the construction:
///
/// * `ret[t]` is `Some` **iff** the marking covers `I(t)` (the paper's
///   "reset RET to 0 when disabled" with `None` playing the role of the
///   paper's 0-for-disabled); a value of zero means *firable now*;
/// * `rft[t]` is `Some` **iff** `t` is currently firing; the value is
///   always strictly positive (completions are processed eagerly).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TimedState<T> {
    pub(crate) marking: Marking,
    pub(crate) ret: Vec<Option<T>>,
    pub(crate) rft: Vec<Option<T>>,
}

impl<T: Clone + Eq + Hash> TimedState<T> {
    /// The marking component.
    pub fn marking(&self) -> &Marking {
        &self.marking
    }

    /// The remaining enabling time of a transition (`None` when the
    /// transition is not enabled).
    pub fn ret(&self, t: TransId) -> Option<&T> {
        self.ret[t.index()].as_ref()
    }

    /// The remaining firing time of a transition (`None` when the
    /// transition is not firing).
    pub fn rft(&self, t: TransId) -> Option<&T> {
        self.rft[t.index()].as_ref()
    }

    /// Transitions currently enabled (RET tracked).
    pub fn enabled(&self) -> impl Iterator<Item = TransId> + '_ {
        self.ret
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_some())
            .map(|(i, _)| TransId::from_index(i))
    }

    /// Transitions currently firing.
    pub fn firing(&self) -> impl Iterator<Item = TransId> + '_ {
        self.rft
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_some())
            .map(|(i, _)| TransId::from_index(i))
    }

    /// `true` iff no transition is enabled or firing (a dead state).
    pub fn is_terminal(&self) -> bool {
        self.ret.iter().all(Option::is_none) && self.rft.iter().all(Option::is_none)
    }
}

impl<T: fmt::Display> TimedState<T> {
    /// Render in the style of the paper's Figure 4b/6b rows:
    /// `marking | RET: t2=…, … | RFT: t4=…, …`.
    pub fn describe(&self, trans_name: impl Fn(TransId) -> String) -> String {
        let mut out = format!("{}", self.marking);
        let fmt_vec = |v: &[Option<T>]| {
            let parts: Vec<String> = v
                .iter()
                .enumerate()
                .filter_map(|(i, x)| {
                    x.as_ref()
                        .map(|x| format!("{}={}", trans_name(TransId::from_index(i)), x))
                })
                .collect();
            if parts.is_empty() {
                "-".to_string()
            } else {
                parts.join(", ")
            }
        };
        out.push_str(" | RET: ");
        out.push_str(&fmt_vec(&self.ret));
        out.push_str(" | RFT: ");
        out.push_str(&fmt_vec(&self.rft));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpn_rational::Rational;

    fn t(i: usize) -> TransId {
        TransId::from_index(i)
    }

    #[test]
    fn accessors() {
        let s = TimedState {
            marking: Marking::from_vec(vec![1, 0]),
            ret: vec![Some(Rational::from_int(5)), None],
            rft: vec![None, Some(Rational::from_int(3))],
        };
        assert_eq!(s.ret(t(0)), Some(&Rational::from_int(5)));
        assert_eq!(s.ret(t(1)), None);
        assert_eq!(s.rft(t(1)), Some(&Rational::from_int(3)));
        assert_eq!(s.enabled().collect::<Vec<_>>(), vec![t(0)]);
        assert_eq!(s.firing().collect::<Vec<_>>(), vec![t(1)]);
        assert!(!s.is_terminal());
    }

    #[test]
    fn terminal_detection() {
        let s: TimedState<Rational> = TimedState {
            marking: Marking::from_vec(vec![0]),
            ret: vec![None, None],
            rft: vec![None, None],
        };
        assert!(s.is_terminal());
    }

    #[test]
    fn describe_format() {
        let s = TimedState {
            marking: Marking::from_vec(vec![1]),
            ret: vec![Some(Rational::from_int(1000)), None],
            rft: vec![None, Some(Rational::new(1067, 10))],
        };
        let d = s.describe(|t| format!("t{}", t.index() + 1));
        assert!(d.contains("RET: t1=1000"), "{d}");
        assert!(d.contains("RFT: t2=1067/10"), "{d}");
    }
}
