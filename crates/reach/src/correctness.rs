//! Correctness analysis over timed reachability graphs.
//!
//! The paper's conclusion argues that timed reachability graphs "reveal
//! all the allowed state transitions, given a set of timing constraints"
//! and can therefore carry the *correctness* proofs that un-timed
//! reachability graphs are classically used for — with the timing
//! constraints pruning interleavings that cannot actually occur. This
//! module implements those checks:
//!
//! * **deadlock freedom** — no terminal states;
//! * **safeness** — every reachable marking is 1-bounded;
//! * **boundedness** — the maximum token count per place;
//! * **liveness (L1)** — every transition fires somewhere in the graph
//!   (dead transitions are reported by name);
//! * **reversibility** — the recurrent behaviour returns to the initial
//!   state (the graph is a single strongly-connected component once
//!   transient states are discarded).

use std::collections::HashSet;

use tpn_net::{TimedPetriNet, TransId};

use crate::{AnalysisDomain, StateId, TimedReachabilityGraph};

/// The result of the correctness checks.
#[derive(Debug, Clone)]
pub struct CorrectnessReport {
    /// Terminal (dead) states, if any.
    pub deadlocks: Vec<StateId>,
    /// States whose marking puts more than one token on some place.
    pub unsafe_states: Vec<StateId>,
    /// Maximum token count observed on any place (the net's bound over
    /// the explored graph).
    pub bound: u32,
    /// Transitions that never begin firing anywhere in the graph.
    pub dead_transitions: Vec<TransId>,
    /// `true` iff every state can reach the initial state again.
    pub reversible: bool,
}

impl CorrectnessReport {
    /// `true` iff there is no deadlock, the net is 1-safe, every
    /// transition can fire, and the behaviour is reversible.
    pub fn is_correct(&self) -> bool {
        self.deadlocks.is_empty()
            && self.unsafe_states.is_empty()
            && self.dead_transitions.is_empty()
            && self.reversible
    }

    /// Human-readable summary naming the offending artifacts.
    pub fn describe(&self, net: &TimedPetriNet) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "deadlock-free: {}",
            if self.deadlocks.is_empty() {
                "yes".into()
            } else {
                format!("no {:?}", self.deadlocks)
            }
        );
        let _ = writeln!(
            out,
            "1-safe: {} (bound = {})",
            if self.unsafe_states.is_empty() {
                "yes"
            } else {
                "no"
            },
            self.bound
        );
        let dead: Vec<&str> = self
            .dead_transitions
            .iter()
            .map(|t| net.transition(*t).name())
            .collect();
        let _ = writeln!(
            out,
            "all transitions fire: {}",
            if dead.is_empty() {
                "yes".into()
            } else {
                format!("no, dead: {}", dead.join(", "))
            }
        );
        let _ = writeln!(
            out,
            "reversible: {}",
            if self.reversible { "yes" } else { "no" }
        );
        out
    }
}

/// Run all correctness checks on a constructed graph.
pub fn analyze<D: AnalysisDomain>(
    trg: &TimedReachabilityGraph<D>,
    net: &TimedPetriNet,
) -> CorrectnessReport {
    let deadlocks = trg.terminal_states();
    let mut unsafe_states = Vec::new();
    let mut bound = 0u32;
    for s in trg.state_ids() {
        let m = trg.state(s).marking();
        let max = (0..m.num_places())
            .map(|p| m.tokens(tpn_net::PlaceId::from_index(p)))
            .max()
            .unwrap_or(0);
        bound = bound.max(max);
        if max > 1 {
            unsafe_states.push(s);
        }
    }
    let mut fired: HashSet<TransId> = HashSet::new();
    for e in trg.all_edges() {
        fired.extend(e.fired.iter().copied());
    }
    let dead_transitions: Vec<TransId> = net.transitions().filter(|t| !fired.contains(t)).collect();
    // Reversibility: every state reachable from the initial state can
    // reach it back. Compute backward reachability from the initial
    // state and compare with the full state set... the initial state may
    // itself be transient (not on the recurrent cycle); in that case
    // check against the set of *recurrent* states: states from which the
    // graph cannot escape re-visiting. We approximate the classical
    // definition: reversible iff the initial state is a home state.
    let n = trg.num_states();
    let mut reaches_initial = vec![false; n];
    // reverse adjacency
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in trg.all_edges() {
        preds[e.to.index()].push(e.from.index());
    }
    let mut stack = vec![trg.initial().index()];
    while let Some(s) = stack.pop() {
        if reaches_initial[s] {
            continue;
        }
        reaches_initial[s] = true;
        stack.extend(preds[s].iter().copied());
    }
    let reversible = reaches_initial.iter().all(|x| *x);
    CorrectnessReport {
        deadlocks,
        unsafe_states,
        bound,
        dead_transitions,
        reversible,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_trg, NumericDomain, TrgOptions};
    use tpn_net::NetBuilder;

    #[test]
    fn healthy_cycle_is_correct() {
        let mut b = NetBuilder::new("ok");
        let pa = b.place("pa", 1);
        let pb = b.place("pb", 0);
        b.transition("go")
            .input(pa)
            .output(pb)
            .firing_const(1)
            .add();
        b.transition("back")
            .input(pb)
            .output(pa)
            .firing_const(2)
            .add();
        let net = b.build().unwrap();
        let trg = build_trg(&net, &NumericDomain::new(), &TrgOptions::default()).unwrap();
        let rep = analyze(&trg, &net);
        assert!(rep.is_correct(), "{}", rep.describe(&net));
        assert_eq!(rep.bound, 1);
    }

    #[test]
    fn deadlock_reported() {
        let mut b = NetBuilder::new("dead");
        let p = b.place("p", 1);
        let q = b.place("q", 0);
        b.transition("once")
            .input(p)
            .output(q)
            .firing_const(1)
            .add();
        let net = b.build().unwrap();
        let trg = build_trg(&net, &NumericDomain::new(), &TrgOptions::default()).unwrap();
        let rep = analyze(&trg, &net);
        assert!(!rep.is_correct());
        assert_eq!(rep.deadlocks.len(), 1);
        assert!(!rep.reversible);
        let text = rep.describe(&net);
        assert!(text.contains("deadlock-free: no"), "{text}");
    }

    #[test]
    fn dead_transition_reported() {
        // "never" loses every conflict to "main" (weight 0 priority).
        let mut b = NetBuilder::new("deadt");
        let p = b.place("p", 1);
        b.transition("main")
            .input(p)
            .output(p)
            .firing_const(1)
            .weight_const(1)
            .add();
        b.transition("never")
            .input(p)
            .output(p)
            .firing_const(1)
            .weight_const(0)
            .add();
        let net = b.build().unwrap();
        let trg = build_trg(&net, &NumericDomain::new(), &TrgOptions::default()).unwrap();
        let rep = analyze(&trg, &net);
        assert_eq!(rep.dead_transitions.len(), 1);
        assert_eq!(net.transition(rep.dead_transitions[0]).name(), "never");
        assert!(!rep.is_correct());
    }

    #[test]
    fn bound_reports_multi_tokens() {
        let mut b = NetBuilder::new("2bound");
        let p = b.place("p", 1);
        let q = b.place("q", 0);
        // one firing deposits two tokens in q, a second transition
        // consumes them both — bounded at 2, not 1-safe.
        b.transition("fill")
            .input(p)
            .output_n(q, 2)
            .firing_const(1)
            .add();
        b.transition("drain")
            .input_n(q, 2)
            .output(p)
            .firing_const(1)
            .add();
        let net = b.build().unwrap();
        let trg = build_trg(&net, &NumericDomain::new(), &TrgOptions::default()).unwrap();
        let rep = analyze(&trg, &net);
        assert_eq!(rep.bound, 2);
        assert!(!rep.unsafe_states.is_empty());
        assert!(rep.deadlocks.is_empty());
        assert!(rep.reversible);
    }
}
