//! Interval (range-of-delays) analysis — the paper's stated future work.
//!
//! *"We are currently exploring techniques for constructing and
//! analyzing Timed Reachability Graphs for nets which allow ranges of
//! firing times"* (paper, Conclusion). This module prototypes exactly
//! that, reusing the Figure-3 machinery unchanged: the time domain is a
//! closed interval `[lo, hi]` of exact rationals.
//!
//! Semantics and soundness:
//!
//! * a delay interval means the true delay is some fixed but unknown
//!   value inside the range (the paper's §3 reading of uncertainty, not
//!   Merlin–Farber nondeterminism);
//! * the minimum of a candidate set is decided only when one interval's
//!   upper bound is at most every competitor's lower bound; overlapping
//!   candidates abort with [`ReachError::AmbiguousComparison`] — the
//!   interval analogue of an insufficient timing-constraint set;
//! * subtracting the elapsed minimum uses interval arithmetic, which
//!   *loses the correlation* between the two occurrences of the elapsed
//!   time: residual ranges widen by the minimum's width. The analysis
//!   is therefore a sound over-approximation: every concrete behaviour
//!   is covered, but repeated uncertainty compounds and may eventually
//!   force an ambiguity error. Point intervals reproduce the numeric
//!   domain exactly.
//!
//! Probabilities stay numeric; edge delays are intervals, and
//! [`Interval::midpoint`] is used when a performance measure needs a
//! scalar (so measures of interval models are centre estimates bracketed
//! by [`Interval::lo`]/[`Interval::hi`] evaluations).

use std::fmt;

use tpn_net::{TimedPetriNet, TransId};
use tpn_rational::Rational;

use crate::{AnalysisDomain, NumericDomain, ReachError};

/// A closed interval `[lo, hi]` of exact rationals, `lo ≤ hi`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Interval {
    lo: Rational,
    hi: Rational,
}

impl Interval {
    /// Construct an interval.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn new(lo: Rational, hi: Rational) -> Interval {
        assert!(lo <= hi, "Interval::new: lo > hi");
        Interval { lo, hi }
    }

    /// The degenerate point interval `[x, x]`.
    pub fn point(x: Rational) -> Interval {
        Interval { lo: x, hi: x }
    }

    /// Lower bound.
    pub fn lo(&self) -> &Rational {
        &self.lo
    }

    /// Upper bound.
    pub fn hi(&self) -> &Rational {
        &self.hi
    }

    /// `true` iff the interval is a single point.
    pub fn is_point(&self) -> bool {
        self.lo == self.hi
    }

    /// Width `hi − lo`.
    pub fn width(&self) -> Rational {
        self.hi - self.lo
    }

    /// Midpoint `(lo + hi)/2`.
    pub fn midpoint(&self) -> Rational {
        (self.lo + self.hi) / Rational::from_int(2)
    }

    /// `true` iff the intervals share no point.
    pub fn disjoint(&self, other: &Interval) -> bool {
        self.hi < other.lo || other.hi < self.lo
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_point() {
            write!(f, "{}", self.lo)
        } else {
            write!(f, "[{}, {}]", self.lo, self.hi)
        }
    }
}

/// Analysis domain where every delay is an [`Interval`].
///
/// Build with [`IntervalDomain::from_net`] (point intervals from the
/// net's known times) and widen individual transitions with
/// [`IntervalDomain::set_firing`]/[`IntervalDomain::set_enabling`].
#[derive(Debug, Clone)]
pub struct IntervalDomain {
    enabling: Vec<Interval>,
    firing: Vec<Interval>,
}

impl IntervalDomain {
    /// Start from a fully timed net: every delay becomes a point
    /// interval.
    pub fn from_net(net: &TimedPetriNet) -> Result<IntervalDomain, ReachError> {
        let mut enabling = Vec::with_capacity(net.num_transitions());
        let mut firing = Vec::with_capacity(net.num_transitions());
        for t in net.transitions() {
            let tr = net.transition(t);
            let unknown = |which: &'static str| ReachError::UnknownAttribute {
                transition: tr.name().to_string(),
                which,
            };
            enabling.push(Interval::point(
                *tr.enabling()
                    .known()
                    .ok_or_else(|| unknown("enabling time"))?,
            ));
            firing.push(Interval::point(
                *tr.firing().known().ok_or_else(|| unknown("firing time"))?,
            ));
        }
        Ok(IntervalDomain { enabling, firing })
    }

    /// Replace a transition's firing-time interval.
    pub fn set_firing(&mut self, t: TransId, iv: Interval) -> &mut Self {
        self.firing[t.index()] = iv;
        self
    }

    /// Replace a transition's enabling-time interval.
    pub fn set_enabling(&mut self, t: TransId, iv: Interval) -> &mut Self {
        self.enabling[t.index()] = iv;
        self
    }
}

impl AnalysisDomain for IntervalDomain {
    type Time = Interval;
    type Prob = Rational;

    fn enabling_time(&self, _net: &TimedPetriNet, t: TransId) -> Result<Interval, ReachError> {
        Ok(self.enabling[t.index()].clone())
    }

    fn firing_time(&self, _net: &TimedPetriNet, t: TransId) -> Result<Interval, ReachError> {
        Ok(self.firing[t.index()].clone())
    }

    fn zero(&self) -> Interval {
        Interval::point(Rational::ZERO)
    }

    fn is_zero(&self, t: &Interval) -> bool {
        t.is_point() && t.lo.is_zero()
    }

    fn sub(&self, a: &Interval, b: &Interval) -> Interval {
        // Callers guarantee b (the elapsed minimum) satisfies
        // b.hi ≤ a.lo, so the lower bound stays non-negative. The
        // correlation between occurrences of the elapsed time is lost:
        // the result widens by b.width().
        Interval::new(a.lo - b.hi, a.hi - b.lo)
    }

    fn add(&self, a: &Interval, b: &Interval) -> Interval {
        Interval::new(a.lo + b.lo, a.hi + b.hi)
    }

    fn time_as_prob(&self, t: &Interval) -> Rational {
        t.midpoint()
    }

    fn min_index(&self, candidates: &[Interval], state: usize) -> Result<usize, ReachError> {
        'outer: for (i, ci) in candidates.iter().enumerate() {
            for (j, cj) in candidates.iter().enumerate() {
                if i == j {
                    continue;
                }
                if ci.hi > cj.lo {
                    continue 'outer;
                }
            }
            return Ok(i);
        }
        // No certainly-minimal candidate: report an overlapping pair.
        for (i, ci) in candidates.iter().enumerate() {
            for cj in candidates.iter().skip(i + 1) {
                if !ci.disjoint(cj) && ci != cj {
                    return Err(ReachError::AmbiguousComparison {
                        left: ci.to_string(),
                        right: cj.to_string(),
                        state,
                    });
                }
            }
        }
        Err(ReachError::AmbiguousComparison {
            left: candidates[0].to_string(),
            right: candidates[candidates.len() - 1].to_string(),
            state,
        })
    }

    fn time_eq(&self, a: &Interval, b: &Interval, state: usize) -> Result<bool, ReachError> {
        if a == b {
            // Identical intervals reaching this point are the elapsed
            // minimum itself (competitors would have failed min_index),
            // or genuinely equal point values.
            return Ok(true);
        }
        if a.disjoint(b) {
            return Ok(false);
        }
        Err(ReachError::AmbiguousComparison {
            left: a.to_string(),
            right: b.to_string(),
            state,
        })
    }

    fn prob_one(&self) -> Rational {
        Rational::ONE
    }

    fn probabilities(
        &self,
        net: &TimedPetriNet,
        firable: &[TransId],
    ) -> Result<Vec<Rational>, ReachError> {
        NumericDomain::new().probabilities(net, firable)
    }

    fn prob_mul(&self, a: &Rational, b: &Rational) -> Rational {
        a * b
    }

    fn prob_is_zero(&self, p: &Rational) -> bool {
        p.is_zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_trg, TrgOptions};
    use tpn_net::NetBuilder;

    fn r(n: i128) -> Rational {
        Rational::from_int(n)
    }

    fn iv(lo: i128, hi: i128) -> Interval {
        Interval::new(r(lo), r(hi))
    }

    #[test]
    fn interval_basics() {
        let a = iv(2, 5);
        assert_eq!(*a.lo(), r(2));
        assert_eq!(*a.hi(), r(5));
        assert!(!a.is_point());
        assert_eq!(a.width(), r(3));
        assert_eq!(a.midpoint(), Rational::new(7, 2));
        assert!(a.disjoint(&iv(6, 7)));
        assert!(!a.disjoint(&iv(5, 7)));
        assert_eq!(a.to_string(), "[2, 5]");
        assert_eq!(Interval::point(r(4)).to_string(), "4");
    }

    #[test]
    #[should_panic(expected = "lo > hi")]
    fn invalid_interval_rejected() {
        let _ = iv(5, 2);
    }

    #[test]
    fn point_intervals_reproduce_numeric_graph() {
        let mut b = NetBuilder::new("iv-cycle");
        let pa = b.place("pa", 1);
        let pb = b.place("pb", 0);
        b.transition("go")
            .input(pa)
            .output(pb)
            .firing_const(2)
            .add();
        b.transition("back")
            .input(pb)
            .output(pa)
            .firing_const(3)
            .add();
        let net = b.build().unwrap();
        let idom = IntervalDomain::from_net(&net).unwrap();
        let itrg = build_trg(&net, &idom, &TrgOptions::default()).unwrap();
        let ntrg = build_trg(&net, &NumericDomain::new(), &TrgOptions::default()).unwrap();
        assert_eq!(itrg.num_states(), ntrg.num_states());
        assert_eq!(itrg.num_edges(), ntrg.num_edges());
        let idelays: Vec<Interval> = itrg.all_edges().map(|e| e.delay.clone()).collect();
        let ndelays: Vec<Rational> = ntrg.all_edges().map(|e| e.delay).collect();
        for (i, n) in idelays.iter().zip(&ndelays) {
            assert_eq!(i, &Interval::point(*n));
        }
    }

    #[test]
    fn disjoint_ranges_resolve() {
        // go ∈ [2, 3] always completes before back's pending timer? No
        // timer competition here — a fork: two parallel branches with
        // disjoint ranges [1,2] and [5,6]; the first always completes
        // first, leaving the second with a widened residual [3, 5].
        let mut b = NetBuilder::new("iv-par");
        let p1 = b.place("p1", 1);
        let q1 = b.place("q1", 0);
        let p2 = b.place("p2", 1);
        let q2 = b.place("q2", 0);
        let fast = b
            .transition("fast")
            .input(p1)
            .output(q1)
            .firing_const(1)
            .add();
        let slow = b
            .transition("slow")
            .input(p2)
            .output(q2)
            .firing_const(5)
            .add();
        let net = b.build().unwrap();
        let mut dom = IntervalDomain::from_net(&net).unwrap();
        dom.set_firing(fast, iv(1, 2));
        dom.set_firing(slow, iv(5, 6));
        let trg = build_trg(&net, &dom, &TrgOptions::default()).unwrap();
        // fire both → elapse [1,2] (fast completes) → elapse residual
        let e0 = &trg.edges_from(trg.initial())[0];
        let e1 = &trg.edges_from(e0.to)[0];
        assert_eq!(e1.delay, iv(1, 2));
        assert_eq!(e1.completed.len(), 1);
        let e2 = &trg.edges_from(e1.to)[0];
        // residual of slow: [5−2, 6−1] = [3, 5] — widened by fast's width
        assert_eq!(e2.delay, iv(3, 5));
        assert!(trg.terminal_states().len() == 1);
    }

    #[test]
    fn overlapping_ranges_are_ambiguous() {
        let mut b = NetBuilder::new("iv-amb");
        let p1 = b.place("p1", 1);
        let q1 = b.place("q1", 0);
        let p2 = b.place("p2", 1);
        let q2 = b.place("q2", 0);
        let a = b.transition("a").input(p1).output(q1).firing_const(1).add();
        let z = b.transition("z").input(p2).output(q2).firing_const(5).add();
        let net = b.build().unwrap();
        let mut dom = IntervalDomain::from_net(&net).unwrap();
        dom.set_firing(a, iv(1, 4));
        dom.set_firing(z, iv(3, 6)); // overlaps [1,4]
        let err = build_trg(&net, &dom, &TrgOptions::default()).unwrap_err();
        match err {
            ReachError::AmbiguousComparison { left, right, .. } => {
                assert!(left.contains('['), "{left} vs {right}");
            }
            other => panic!("expected ambiguity, got {other:?}"),
        }
    }

    #[test]
    fn protocol_tolerates_a_narrow_jitter_band() {
        // Widen the packet transmission time of the paper's protocol to
        // [106.7−5, 106.7+5]: constraint (1) still separates every
        // comparison, so the 18-state graph survives with interval
        // delays (and the throughput midpoint brackets the exact one).
        let proto = tpn_protocols_simple_paper();
        let t4 = proto.net.transition_by_name("t4").unwrap();
        let mut dom = IntervalDomain::from_net(&proto.net).unwrap();
        let lo = Rational::new(1017, 10);
        let hi = Rational::new(1117, 10);
        dom.set_firing(t4, Interval::new(lo, hi));
        let trg = build_trg(&proto.net, &dom, &TrgOptions::default()).unwrap();
        assert_eq!(trg.num_states(), 18);
    }

    fn tpn_protocols_simple_paper() -> SimpleLike {
        // Local copy of the paper protocol to avoid a dev-dependency
        // cycle with tpn-protocols.
        let mut b = NetBuilder::new("simple-protocol");
        let p1 = b.place("sender_ready", 1);
        let p2 = b.place("packet_in_medium", 0);
        let p3 = b.place("packet_delivered", 0);
        let p4 = b.place("awaiting_ack", 0);
        let p5 = b.place("ack_accepted", 0);
        let p6 = b.place("ack_delivered", 0);
        let p7 = b.place("ack_in_medium", 0);
        let p8 = b.place("receiver_ready", 1);
        let ms = |n: i128, d: i128| Rational::new(n, d);
        b.transition("t1")
            .input(p5)
            .output(p1)
            .firing_const(1)
            .add();
        b.transition("t2")
            .input(p1)
            .output(p2)
            .output(p4)
            .firing_const(1)
            .add();
        b.transition("t3")
            .input(p4)
            .output(p1)
            .enabling_const(1000)
            .firing_const(1)
            .weight_const(0)
            .add();
        b.transition("t4")
            .input(p2)
            .output(p3)
            .firing(ms(1067, 10))
            .weight(ms(19, 20))
            .add();
        b.transition("t5")
            .input(p2)
            .firing(ms(1067, 10))
            .weight(ms(1, 20))
            .add();
        b.transition("t6")
            .input(p3)
            .input(p8)
            .output(p7)
            .output(p8)
            .firing(ms(27, 2))
            .add();
        b.transition("t7")
            .input(p4)
            .input(p6)
            .output(p5)
            .firing(ms(27, 2))
            .add();
        b.transition("t8")
            .input(p7)
            .output(p6)
            .firing(ms(1067, 10))
            .weight(ms(19, 20))
            .add();
        b.transition("t9")
            .input(p7)
            .firing(ms(1067, 10))
            .weight(ms(1, 20))
            .add();
        SimpleLike {
            net: b.build().unwrap(),
        }
    }

    struct SimpleLike {
        net: tpn_net::TimedPetriNet,
    }
}
