//! Construction and queries of timed reachability graphs — the paper's
//! Figure-3 procedure, domain-generic.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt::Write as _;

use tpn_net::{ConflictSetId, TimedPetriNet, TransId};

use crate::{AnalysisDomain, ReachError, TimedState};

/// Index of a state within its graph (discovery order; the initial state
/// is always `StateId(0)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(pub(crate) u32);

impl StateId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for StateId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// What kind of step an edge represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// A zero-delay step in which a selector of firable transitions
    /// begins firing (the paper's "the act of beginning to fire is
    /// instantaneous").
    Fire,
    /// A time-elapse step: the minimum non-zero RET/RFT passes.
    Elapse,
}

/// An edge of the timed reachability graph.
#[derive(Debug, Clone)]
pub struct Edge<D: AnalysisDomain> {
    /// Source state.
    pub from: StateId,
    /// Target state.
    pub to: StateId,
    /// Step kind.
    pub kind: EdgeKind,
    /// Time elapsing along the edge (zero for [`EdgeKind::Fire`]).
    pub delay: D::Time,
    /// Branching probability (one for [`EdgeKind::Elapse`]).
    pub prob: D::Prob,
    /// Transitions that *begin* firing on this edge (the selector).
    pub fired: Vec<TransId>,
    /// Transitions that *finish* firing on this edge (elapse completions
    /// plus instantaneous zero-firing-time transitions).
    pub completed: Vec<TransId>,
}

/// Audit record of one minimum-delay decision taken during construction,
/// the information the paper tabulates in Figure 7 ("timing constraints
/// used in reachability graph").
#[derive(Debug, Clone)]
pub struct MinResolution<T> {
    /// The state (by index) where the decision was taken.
    pub state: StateId,
    /// The competing candidate delays: `(transition, is_rft, remaining)`.
    /// `is_rft == false` means the entry was a remaining *enabling* time.
    pub candidates: Vec<(TransId, bool, T)>,
    /// Index into `candidates` of the chosen minimum.
    pub chosen: usize,
}

/// Options for graph construction.
#[derive(Debug, Clone)]
pub struct TrgOptions {
    /// Maximum number of states to explore before failing with
    /// [`ReachError::StateLimitExceeded`].
    pub max_states: usize,
    /// Number of worker threads for frontier expansion: `1` (the
    /// default) builds serially; `0` uses the machine's available
    /// parallelism; any other value uses that many workers. The state
    /// numbering, edges and min-resolutions are identical for every
    /// setting — successors of a breadth-first frontier are generated
    /// in parallel and merged deterministically. Requires the
    /// `parallel` feature; without it non-`1` values fall back to the
    /// serial construction.
    pub threads: usize,
}

impl Default for TrgOptions {
    fn default() -> Self {
        TrgOptions {
            max_states: 100_000,
            threads: 1,
        }
    }
}

/// A fully constructed timed reachability graph.
#[derive(Debug, Clone)]
pub struct TimedReachabilityGraph<D: AnalysisDomain> {
    states: Vec<TimedState<D::Time>>,
    edges: Vec<Vec<Edge<D>>>,
    min_resolutions: Vec<MinResolution<D::Time>>,
}

impl<D: AnalysisDomain> TimedReachabilityGraph<D> {
    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Total number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }

    /// The initial state's id.
    pub fn initial(&self) -> StateId {
        StateId(0)
    }

    /// Iterate over all state ids in discovery order.
    pub fn state_ids(&self) -> impl Iterator<Item = StateId> {
        (0..self.states.len() as u32).map(StateId)
    }

    /// A state by id.
    pub fn state(&self, id: StateId) -> &TimedState<D::Time> {
        &self.states[id.index()]
    }

    /// Outgoing edges of a state.
    pub fn edges_from(&self, id: StateId) -> &[Edge<D>] {
        &self.edges[id.index()]
    }

    /// Iterate over every edge.
    pub fn all_edges(&self) -> impl Iterator<Item = &Edge<D>> {
        self.edges.iter().flatten()
    }

    /// States with more than one successor — the paper's *decision
    /// nodes*.
    pub fn decision_states(&self) -> Vec<StateId> {
        self.state_ids()
            .filter(|s| self.edges_from(*s).len() > 1)
            .collect()
    }

    /// States with no successors (dead states).
    pub fn terminal_states(&self) -> Vec<StateId> {
        self.state_ids()
            .filter(|s| self.edges_from(*s).is_empty())
            .collect()
    }

    /// The minimum-delay decisions taken during construction (Figure-7
    /// material). Only states with *competing* candidates are recorded.
    pub fn min_resolutions(&self) -> &[MinResolution<D::Time>] {
        &self.min_resolutions
    }

    /// Re-label the graph into another domain by mapping every time and
    /// probability value, keeping the skeleton — states, edges,
    /// transitions fired/completed, min-resolutions — untouched. This
    /// is how a lifted graph is *instantiated* at a concrete parameter
    /// point: evaluate each symbolic label there and the result is the
    /// numeric graph the cold construction would have built, provided
    /// the point stays inside the domain's validity region
    /// ([`LiftedDomain::check_point`](crate::LiftedDomain::check_point)).
    /// Returns `None` if any label fails to map (an unbound symbol).
    pub fn map<D2, FT, FP>(&self, mut time: FT, mut prob: FP) -> Option<TimedReachabilityGraph<D2>>
    where
        D2: AnalysisDomain,
        FT: FnMut(&D::Time) -> Option<D2::Time>,
        FP: FnMut(&D::Prob) -> Option<D2::Prob>,
    {
        let map_slots = |slots: &[Option<D::Time>], time: &mut FT| {
            slots
                .iter()
                .map(|s| match s {
                    Some(x) => time(x).map(Some),
                    None => Some(None),
                })
                .collect::<Option<Vec<Option<D2::Time>>>>()
        };
        let states = self
            .states
            .iter()
            .map(|s| {
                Some(TimedState {
                    marking: s.marking.clone(),
                    ret: map_slots(&s.ret, &mut time)?,
                    rft: map_slots(&s.rft, &mut time)?,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        let edges = self
            .edges
            .iter()
            .map(|es| {
                es.iter()
                    .map(|e| {
                        Some(Edge {
                            from: e.from,
                            to: e.to,
                            kind: e.kind,
                            delay: time(&e.delay)?,
                            prob: prob(&e.prob)?,
                            fired: e.fired.clone(),
                            completed: e.completed.clone(),
                        })
                    })
                    .collect::<Option<Vec<_>>>()
            })
            .collect::<Option<Vec<_>>>()?;
        let min_resolutions = self
            .min_resolutions
            .iter()
            .map(|m| {
                Some(MinResolution {
                    state: m.state,
                    candidates: m
                        .candidates
                        .iter()
                        .map(|(t, is_rft, x)| Some((*t, *is_rft, time(x)?)))
                        .collect::<Option<Vec<_>>>()?,
                    chosen: m.chosen,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        Some(TimedReachabilityGraph {
            states,
            edges,
            min_resolutions,
        })
    }

    /// Pre-split the graph for repeated instantiation: every label the
    /// `*_dependent` predicates reject is mapped through `base_*` once,
    /// up front; the accepted (point-dependent) labels are kept in their
    /// source form together with their locations. The returned
    /// [`TrgTemplate`] instantiates at a point with one structural
    /// clone plus one evaluation *per dependent label* — for a lift
    /// over a few attributes that is a handful of evaluations instead
    /// of one per slot, which is what makes batched re-timing cheap.
    /// Returns `None` if any point-independent label fails to map.
    pub fn template<D2, BT, BP, DT, DP>(
        &self,
        mut base_time: BT,
        mut base_prob: BP,
        mut time_dependent: DT,
        mut prob_dependent: DP,
    ) -> Option<TrgTemplate<D, D2>>
    where
        D2: AnalysisDomain,
        BT: FnMut(&D::Time) -> Option<D2::Time>,
        BP: FnMut(&D::Prob) -> Option<D2::Prob>,
        DT: FnMut(&D::Time) -> bool,
        DP: FnMut(&D::Prob) -> bool,
    {
        let base = self.map(&mut base_time, &mut base_prob)?;
        let mut times = Vec::new();
        let mut probs = Vec::new();
        for (si, s) in self.states.iter().enumerate() {
            let mut slot_patches = |slots: &[Option<D::Time>], ret: bool, times: &mut Vec<_>| {
                for (ti, slot) in slots.iter().enumerate() {
                    if let Some(x) = slot {
                        if time_dependent(x) {
                            let loc = if ret {
                                TimeLoc::Ret {
                                    state: si as u32,
                                    trans: ti as u32,
                                }
                            } else {
                                TimeLoc::Rft {
                                    state: si as u32,
                                    trans: ti as u32,
                                }
                            };
                            times.push((loc, x.clone()));
                        }
                    }
                }
            };
            slot_patches(&s.ret, true, &mut times);
            slot_patches(&s.rft, false, &mut times);
        }
        for (si, es) in self.edges.iter().enumerate() {
            for (ei, e) in es.iter().enumerate() {
                if time_dependent(&e.delay) {
                    times.push((
                        TimeLoc::Delay {
                            state: si as u32,
                            edge: ei as u32,
                        },
                        e.delay.clone(),
                    ));
                }
                if prob_dependent(&e.prob) {
                    probs.push((si as u32, ei as u32, e.prob.clone()));
                }
            }
        }
        for (ri, m) in self.min_resolutions.iter().enumerate() {
            for (ci, (_, _, x)) in m.candidates.iter().enumerate() {
                if time_dependent(x) {
                    times.push((
                        TimeLoc::MinCandidate {
                            resolution: ri as u32,
                            candidate: ci as u32,
                        },
                        x.clone(),
                    ));
                }
            }
        }
        Some(TrgTemplate { base, times, probs })
    }

    /// Render the state table in the style of the paper's Figure 4b/6b.
    pub fn describe_states(&self, net: &TimedPetriNet) -> String {
        let mut out = String::new();
        for id in self.state_ids() {
            let _ = writeln!(
                out,
                "{:>4}  {}",
                id.to_string(),
                self.state(id)
                    .describe(|t| net.transition(t).name().to_string())
            );
        }
        out
    }

    /// Graphviz DOT rendering of the graph (states as nodes, edges
    /// labelled with probability and delay).
    pub fn to_dot(&self, net: &TimedPetriNet) -> String {
        let mut out = String::from("digraph trg {\n  rankdir=LR;\n");
        let decisions: std::collections::HashSet<usize> =
            self.decision_states().iter().map(|s| s.index()).collect();
        for id in self.state_ids() {
            let shape = if decisions.contains(&id.index()) {
                "doublecircle"
            } else {
                "circle"
            };
            let _ = writeln!(out, "  {id} [shape={shape}, label=\"{id}\"];");
        }
        for e in self.all_edges() {
            let mut label = String::new();
            match e.kind {
                EdgeKind::Fire => {
                    let names: Vec<&str> =
                        e.fired.iter().map(|t| net.transition(*t).name()).collect();
                    let _ = write!(label, "fire {} p={}", names.join("+"), e.prob);
                }
                EdgeKind::Elapse => {
                    let _ = write!(label, "τ={}", e.delay);
                }
            }
            let _ = writeln!(out, "  {} -> {} [label=\"{}\"];", e.from, e.to, label);
        }
        out.push_str("}\n");
        out
    }
}

/// Where a point-dependent time label lives inside a graph.
#[derive(Debug, Clone, Copy)]
enum TimeLoc {
    /// A remaining-enabling-time slot of a state.
    Ret { state: u32, trans: u32 },
    /// A remaining-firing-time slot of a state.
    Rft { state: u32, trans: u32 },
    /// An edge's elapse delay (edge index within its source bucket).
    Delay { state: u32, edge: u32 },
    /// A candidate delay of a recorded minimum resolution.
    MinCandidate { resolution: u32, candidate: u32 },
}

/// A graph pre-split for repeated instantiation, produced by
/// [`TimedReachabilityGraph::template`]: the point-independent labels
/// already mapped into the target domain, the point-dependent ones kept
/// symbolic with their locations. [`TrgTemplate::instantiate`] is then
/// a structural clone plus one evaluation per dependent label.
#[derive(Debug)]
pub struct TrgTemplate<D: AnalysisDomain, D2: AnalysisDomain> {
    base: TimedReachabilityGraph<D2>,
    times: Vec<(TimeLoc, D::Time)>,
    probs: Vec<(u32, u32, D::Prob)>,
}

impl<D: AnalysisDomain, D2: AnalysisDomain> TrgTemplate<D, D2> {
    /// Instantiate at a point: clone the pre-mapped base and overwrite
    /// each dependent label with its evaluation. Equivalent to
    /// [`TimedReachabilityGraph::map`] over the source graph with the
    /// same closures, but touching only the dependent labels. Returns
    /// `None` if any evaluation fails (an unbound symbol).
    pub fn instantiate<FT, FP>(
        &self,
        mut time: FT,
        mut prob: FP,
    ) -> Option<TimedReachabilityGraph<D2>>
    where
        D2: Clone,
        FT: FnMut(&D::Time) -> Option<D2::Time>,
        FP: FnMut(&D::Prob) -> Option<D2::Prob>,
    {
        let mut g = self.base.clone();
        for (loc, x) in &self.times {
            let v = time(x)?;
            match *loc {
                TimeLoc::Ret { state, trans } => {
                    g.states[state as usize].ret[trans as usize] = Some(v)
                }
                TimeLoc::Rft { state, trans } => {
                    g.states[state as usize].rft[trans as usize] = Some(v)
                }
                TimeLoc::Delay { state, edge } => g.edges[state as usize][edge as usize].delay = v,
                TimeLoc::MinCandidate {
                    resolution,
                    candidate,
                } => g.min_resolutions[resolution as usize].candidates[candidate as usize].2 = v,
            }
        }
        for &(state, edge, ref p) in &self.probs {
            g.edges[state as usize][edge as usize].prob = prob(p)?;
        }
        Some(g)
    }

    /// How many point-dependent labels the template patches per
    /// instantiation: `(time labels, probability labels)`.
    pub fn num_patches(&self) -> (usize, usize) {
        (self.times.len(), self.probs.len())
    }
}

/// Build the timed reachability graph of `net` under `domain`, starting
/// from the net's initial marking — the recursive successor calculation
/// of the paper's Figure 3, breadth-first with state deduplication.
pub fn build_trg<D: AnalysisDomain>(
    net: &TimedPetriNet,
    domain: &D,
    opts: &TrgOptions,
) -> Result<TimedReachabilityGraph<D>, ReachError> {
    #[cfg(feature = "parallel")]
    {
        // Resolve `threads: 0` (auto) against the machine. With a
        // single effective worker the fan-out machinery (per-candidate
        // hashing, pre-resolution) is pure overhead, so anything that
        // resolves to one worker takes the serial path below. Cached:
        // `available_parallelism` walks the cgroup fs on every call.
        static AUTO_THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
        let threads = match opts.threads {
            0 => *AUTO_THREADS.get_or_init(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            }),
            n => n,
        };
        if threads > 1 {
            return parallel::build_trg_parallel(net, domain, opts, threads);
        }
    }
    let nt = net.num_transitions();
    let mut initial = TimedState {
        marking: net.initial_marking().clone(),
        ret: vec![None; nt],
        rft: vec![None; nt],
    };
    refresh_enablement(net, domain, &mut initial)?;

    let mut states: Vec<TimedState<D::Time>> = vec![initial.clone()];
    let mut edges: Vec<Vec<Edge<D>>> = vec![Vec::new()];
    let mut index: HashMap<TimedState<D::Time>, StateId> = HashMap::new();
    index.insert(initial, StateId(0));
    let mut min_resolutions = Vec::new();
    let mut queue: VecDeque<StateId> = VecDeque::from([StateId(0)]);

    while let Some(sid) = queue.pop_front() {
        let state = states[sid.index()].clone();
        let (successors, resolution) = successors_of(net, domain, &state, sid)?;
        min_resolutions.extend(resolution);
        for (mut edge, succ) in successors {
            let to = match index.get(&succ) {
                Some(&id) => id,
                None => {
                    if states.len() >= opts.max_states {
                        return Err(ReachError::StateLimitExceeded {
                            limit: opts.max_states,
                        });
                    }
                    let id = StateId(states.len() as u32);
                    states.push(succ.clone());
                    edges.push(Vec::new());
                    index.insert(succ, id);
                    queue.push_back(id);
                    id
                }
            };
            edge.from = sid;
            edge.to = to;
            edges[sid.index()].push(edge);
        }
    }

    Ok(TimedReachabilityGraph {
        states,
        edges,
        min_resolutions,
    })
}

/// One successor candidate: the edge label (with placeholder endpoints)
/// and the raw successor state.
type Succ<D> = (Edge<D>, TimedState<<D as AnalysisDomain>::Time>);

/// All successors of one state plus its Figure-7 audit record, if any.
type Successors<D> = (
    Vec<Succ<D>>,
    Option<MinResolution<<D as AnalysisDomain>::Time>>,
);

fn successors_of<D: AnalysisDomain>(
    net: &TimedPetriNet,
    domain: &D,
    state: &TimedState<D::Time>,
    sid: StateId,
) -> Result<Successors<D>, ReachError> {
    // Firable = enabled with elapsed RET.
    let firable: Vec<TransId> = state
        .ret
        .iter()
        .enumerate()
        .filter_map(|(i, v)| match v {
            Some(x) if domain.is_zero(x) => Some(TransId::from_index(i)),
            _ => None,
        })
        .collect();

    if !firable.is_empty() {
        Ok((fire_successors(net, domain, state, sid, &firable)?, None))
    } else {
        let (succ, resolution) = elapse_successor(net, domain, state, sid)?;
        Ok((succ.into_iter().collect(), resolution))
    }
}

/// The if-branch of Figure 3: one zero-delay successor per selector.
fn fire_successors<D: AnalysisDomain>(
    net: &TimedPetriNet,
    domain: &D,
    state: &TimedState<D::Time>,
    sid: StateId,
    firable: &[TransId],
) -> Result<Vec<Succ<D>>, ReachError> {
    // A firable transition that is already firing would constitute a
    // second simultaneous firing: the paper's self-conflict restriction.
    for &t in firable {
        if state.rft[t.index()].is_some() {
            return Err(ReachError::MultipleFiring {
                transition: net.transition(t).name().to_string(),
                state: sid.index(),
            });
        }
    }
    // Partition the firable set into firable conflict sets.
    let mut by_set: BTreeMap<ConflictSetId, Vec<TransId>> = BTreeMap::new();
    for &t in firable {
        by_set.entry(net.conflict_set_of(t)).or_default().push(t);
    }
    // Per-set branching probabilities.
    let mut sets: Vec<(Vec<TransId>, Vec<D::Prob>)> = Vec::with_capacity(by_set.len());
    for members in by_set.into_values() {
        let probs = domain.probabilities(net, &members)?;
        sets.push((members, probs));
    }
    // "Let the set of selectors Sel = cross product of firable conflict
    // sets" — enumerate with an odometer.
    let mut out = Vec::new();
    let mut choice = vec![0usize; sets.len()];
    loop {
        // Selector probability and member list.
        let mut prob = domain.prob_one();
        let mut selector = Vec::with_capacity(sets.len());
        for (si, &ci) in choice.iter().enumerate() {
            prob = domain.prob_mul(&prob, &sets[si].1[ci]);
            selector.push(sets[si].0[ci]);
        }
        if !domain.prob_is_zero(&prob) {
            out.push(apply_selector(net, domain, state, sid, &selector, prob)?);
        }
        // Advance the odometer.
        let mut pos = 0usize;
        loop {
            if pos == choice.len() {
                return Ok(out);
            }
            choice[pos] += 1;
            if choice[pos] < sets[pos].0.len() {
                break;
            }
            choice[pos] = 0;
            pos += 1;
        }
    }
}

fn apply_selector<D: AnalysisDomain>(
    net: &TimedPetriNet,
    domain: &D,
    state: &TimedState<D::Time>,
    sid: StateId,
    selector: &[TransId],
    prob: D::Prob,
) -> Result<Succ<D>, ReachError> {
    let mut succ = state.clone();
    // "Remove tokens from input places of transitions in s."
    for &t in selector {
        succ.marking.subtract(net.transition(t).input());
    }
    // The paper's conflict-set restriction: firing must disable every
    // other firable member of each chosen set. If any firable member of
    // a chosen set (including the fired one) is *still* enabled, a
    // second same-instant firing would be possible.
    for &t in selector {
        let cs = net.conflict_set(net.conflict_set_of(t));
        for &u in cs.members() {
            let was_firable = matches!(&state.ret[u.index()], Some(x) if domain.is_zero(x));
            if was_firable && succ.marking.covers(net.transition(u).input()) {
                return Err(ReachError::MultipleFiring {
                    transition: net.transition(u).name().to_string(),
                    state: sid.index(),
                });
            }
        }
    }
    // "Set the RFT of each transition in s to F(t)." Transitions with a
    // provably zero firing time complete instantaneously (documented
    // extension; the paper's nets have strictly positive firing times).
    let mut completed = Vec::new();
    for &t in selector {
        let ft = domain.firing_time(net, t)?;
        if domain.is_zero(&ft) {
            succ.marking.add(net.transition(t).output());
            completed.push(t);
        } else {
            succ.rft[t.index()] = Some(ft);
        }
    }
    refresh_enablement(net, domain, &mut succ)?;
    let edge = Edge {
        from: sid,
        to: sid, // patched by the caller
        kind: EdgeKind::Fire,
        delay: domain.zero(),
        prob,
        fired: selector.to_vec(),
        completed,
    };
    Ok((edge, succ))
}

/// The else-branch of Figure 3: let the minimum non-zero RET/RFT elapse.
/// Returns no successor for terminal states; the second component is
/// the Figure-7 audit record when several candidate delays competed.
type Elapse<D> = (
    Option<Succ<D>>,
    Option<MinResolution<<D as AnalysisDomain>::Time>>,
);

fn elapse_successor<D: AnalysisDomain>(
    net: &TimedPetriNet,
    domain: &D,
    state: &TimedState<D::Time>,
    sid: StateId,
) -> Result<Elapse<D>, ReachError> {
    // Candidates: every tracked RET/RFT (all strictly positive here — a
    // zero RET would have made the state a decision state, and zero RFTs
    // are completed eagerly).
    let mut candidates: Vec<(TransId, bool, D::Time)> = Vec::new();
    for (i, v) in state.ret.iter().enumerate() {
        if let Some(x) = v {
            candidates.push((TransId::from_index(i), false, x.clone()));
        }
    }
    for (i, v) in state.rft.iter().enumerate() {
        if let Some(x) = v {
            candidates.push((TransId::from_index(i), true, x.clone()));
        }
    }
    if candidates.is_empty() {
        return Ok((None, None)); // terminal state
    }
    let exprs: Vec<D::Time> = candidates.iter().map(|(_, _, x)| x.clone()).collect();
    let chosen = domain.min_index(&exprs, sid.index())?;
    let tmin = exprs[chosen].clone();
    let resolution = (candidates.len() > 1).then(|| MinResolution {
        state: sid,
        candidates: candidates.clone(),
        chosen,
    });
    // "Generate S' by subtracting Tmin from all non-zero RET and RFT."
    let mut succ = state.clone();
    let mut completed = Vec::new();
    for (t, is_rft, x) in &candidates {
        let slot = if *is_rft {
            &mut succ.rft[t.index()]
        } else {
            &mut succ.ret[t.index()]
        };
        if domain.time_eq(x, &tmin, sid.index())? {
            if *is_rft {
                // "For all transitions whose RFT reaches 0, add tokens to
                // output places" — applied below so newly enabled
                // transitions see the complete marking.
                *slot = None;
                completed.push(*t);
            } else {
                *slot = Some(domain.zero()); // became firable
            }
        } else {
            *slot = Some(domain.sub(x, &tmin));
        }
    }
    for &t in &completed {
        succ.marking.add(net.transition(t).output());
    }
    refresh_enablement(net, domain, &mut succ)?;
    let edge = Edge {
        from: sid,
        to: sid, // patched by the caller
        kind: EdgeKind::Elapse,
        delay: tmin,
        prob: domain.prob_one(),
        fired: Vec::new(),
        completed,
    };
    Ok((Some((edge, succ)), resolution))
}

/// Parallel frontier expansion (the `parallel` feature).
///
/// The breadth-first construction is level-synchronous: all states of
/// one frontier are expanded before any state of the next. Successor
/// generation per state — marking arithmetic, the selector cross
/// product, enablement refresh — is independent work, so each level is
/// fanned out across worker threads. Discovered states are then merged
/// *sequentially in frontier order*, which reproduces the serial FIFO
/// numbering exactly: the graph (state table, edges, min-resolutions,
/// and any error) is byte-identical to the serial construction.
///
/// The seen-set is sharded by state hash. Workers pre-resolve their
/// successors against the frozen shards of previous levels without
/// locks; the sequential merge only touches the shard a state hashes
/// to, so its hash lookups stay cheap as the graph grows.
#[cfg(feature = "parallel")]
mod parallel {
    use std::collections::HashMap;
    use std::hash::{Hash, Hasher};
    use std::sync::atomic::{AtomicUsize, Ordering};

    use tpn_net::TimedPetriNet;

    use super::{
        refresh_enablement, successors_of, AnalysisDomain, Edge, MinResolution, ReachError,
        StateId, TimedReachabilityGraph, TimedState, TrgOptions,
    };

    /// A successor produced by a worker: the edge label, the raw state,
    /// its hash, and its id if it was already present in a frozen shard.
    type Candidate<D> = (
        Edge<D>,
        TimedState<<D as AnalysisDomain>::Time>,
        u64,
        Option<StateId>,
    );

    /// One frontier state's expansion result.
    type Expansion<D> = Result<
        (
            Vec<Candidate<D>>,
            Option<MinResolution<<D as AnalysisDomain>::Time>>,
        ),
        ReachError,
    >;

    /// The seen-set, sharded by state hash (shard count is a power of
    /// two). Shards are read concurrently by workers and written only
    /// by the sequential merge.
    struct ShardedIndex<D: AnalysisDomain> {
        shards: Vec<HashMap<TimedState<D::Time>, StateId>>,
        mask: u64,
    }

    impl<D: AnalysisDomain> ShardedIndex<D> {
        fn new(shard_count: usize) -> Self {
            let n = shard_count.next_power_of_two();
            ShardedIndex {
                shards: (0..n).map(|_| HashMap::new()).collect(),
                mask: n as u64 - 1,
            }
        }

        fn hash_of(state: &TimedState<D::Time>) -> u64 {
            let mut hasher = std::collections::hash_map::DefaultHasher::new();
            state.hash(&mut hasher);
            hasher.finish()
        }

        fn get(&self, hash: u64, state: &TimedState<D::Time>) -> Option<StateId> {
            self.shards[(hash & self.mask) as usize].get(state).copied()
        }

        fn insert(&mut self, hash: u64, state: TimedState<D::Time>, id: StateId) {
            self.shards[(hash & self.mask) as usize].insert(state, id);
        }
    }

    /// Expand every frontier state, in parallel when the frontier is
    /// wide enough to pay for the fan-out. Results are positionally
    /// aligned with `frontier`.
    fn expand_frontier<D: AnalysisDomain>(
        net: &TimedPetriNet,
        domain: &D,
        states: &[TimedState<D::Time>],
        index: &ShardedIndex<D>,
        frontier: &[StateId],
        threads: usize,
    ) -> Vec<Expansion<D>> {
        let expand_one = |&sid: &StateId| -> Expansion<D> {
            let (succs, resolution) = successors_of(net, domain, &states[sid.index()], sid)?;
            let candidates = succs
                .into_iter()
                .map(|(edge, succ)| {
                    let hash = ShardedIndex::<D>::hash_of(&succ);
                    let pre = index.get(hash, &succ);
                    (edge, succ, hash, pre)
                })
                .collect();
            Ok((candidates, resolution))
        };

        if threads < 2 || frontier.len() < 2 {
            return frontier.iter().map(expand_one).collect();
        }
        // Dynamic scheduling off a shared counter: workers grab the next
        // unexpanded frontier position, so uneven successor costs stay
        // balanced. Each worker returns (position, result) pairs, which
        // are then scattered back into frontier order.
        let workers = threads.min(frontier.len());
        let next = AtomicUsize::new(0);
        let worker_outputs: Vec<Vec<(usize, Expansion<D>)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut out = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(sid) = frontier.get(i) else { break };
                            out.push((i, expand_one(sid)));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                // Re-raise a worker panic with its original payload so
                // domain panics read the same as on the serial path.
                .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
                .collect()
        });
        let mut results: Vec<Option<Expansion<D>>> = Vec::new();
        results.resize_with(frontier.len(), || None);
        for (i, expansion) in worker_outputs.into_iter().flatten() {
            results[i] = Some(expansion);
        }
        results
            .into_iter()
            .map(|slot| slot.expect("every frontier slot filled"))
            .collect()
    }

    pub(super) fn build_trg_parallel<D: AnalysisDomain>(
        net: &TimedPetriNet,
        domain: &D,
        opts: &TrgOptions,
        threads: usize,
    ) -> Result<TimedReachabilityGraph<D>, ReachError> {
        debug_assert!(
            threads > 1,
            "caller resolves single-worker builds to the serial path"
        );
        let nt = net.num_transitions();
        let mut initial = TimedState {
            marking: net.initial_marking().clone(),
            ret: vec![None; nt],
            rft: vec![None; nt],
        };
        refresh_enablement(net, domain, &mut initial)?;

        let mut states: Vec<TimedState<D::Time>> = vec![initial.clone()];
        let mut edges: Vec<Vec<Edge<D>>> = vec![Vec::new()];
        let mut index: ShardedIndex<D> = ShardedIndex::new(4 * threads);
        index.insert(ShardedIndex::<D>::hash_of(&initial), initial, StateId(0));
        let mut min_resolutions = Vec::new();
        let mut frontier = vec![StateId(0)];

        while !frontier.is_empty() {
            let expansions = expand_frontier(net, domain, &states, &index, &frontier, threads);
            // Deterministic merge: walk expansions in frontier order and
            // number new states exactly as the serial FIFO queue would.
            let mut next_frontier = Vec::new();
            for (&sid, expansion) in frontier.iter().zip(expansions) {
                let (candidates, resolution) = expansion?;
                min_resolutions.extend(resolution);
                for (mut edge, succ, hash, pre) in candidates {
                    // A pre-resolved hit is still valid — shards only
                    // grow — but a miss must be re-checked against the
                    // states merged earlier in this level.
                    let to = match pre.or_else(|| index.get(hash, &succ)) {
                        Some(id) => id,
                        None => {
                            if states.len() >= opts.max_states {
                                return Err(ReachError::StateLimitExceeded {
                                    limit: opts.max_states,
                                });
                            }
                            let id = StateId(states.len() as u32);
                            states.push(succ.clone());
                            edges.push(Vec::new());
                            index.insert(hash, succ, id);
                            next_frontier.push(id);
                            id
                        }
                    };
                    edge.from = sid;
                    edge.to = to;
                    edges[sid.index()].push(edge);
                }
            }
            frontier = next_frontier;
        }

        Ok(TimedReachabilityGraph {
            states,
            edges,
            min_resolutions,
        })
    }
}

/// Restore the RET invariant after a marking change: newly enabled
/// transitions start their enabling clock at `E(t)`; disabled ones are
/// cleared ("reset its RET to 0"); continuously enabled ones keep their
/// remaining time.
fn refresh_enablement<D: AnalysisDomain>(
    net: &TimedPetriNet,
    domain: &D,
    state: &mut TimedState<D::Time>,
) -> Result<(), ReachError> {
    for t in net.transitions() {
        let covered = state.marking.covers(net.transition(t).input());
        let slot = &mut state.ret[t.index()];
        match (covered, slot.is_some()) {
            (true, false) => *slot = Some(domain.enabling_time(net, t)?),
            (false, true) => *slot = None,
            _ => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NumericDomain;
    use tpn_net::NetBuilder;
    use tpn_rational::Rational;

    fn r(n: i128) -> Rational {
        Rational::from_int(n)
    }

    /// A 2-transition cycle: a → b → a, firing times 2 and 3.
    fn cycle_net() -> TimedPetriNet {
        let mut b = NetBuilder::new("cycle");
        let pa = b.place("pa", 1);
        let pb = b.place("pb", 0);
        b.transition("go")
            .input(pa)
            .output(pb)
            .firing_const(2)
            .add();
        b.transition("back")
            .input(pb)
            .output(pa)
            .firing_const(3)
            .add();
        b.build().unwrap()
    }

    #[test]
    fn cycle_graph_shape() {
        let net = cycle_net();
        let trg = build_trg(&net, &NumericDomain::new(), &TrgOptions::default()).unwrap();
        // states: {pa ready} → {go firing} → {pb ready} → {back firing} → …
        assert_eq!(trg.num_states(), 4);
        assert_eq!(trg.num_edges(), 4);
        assert!(trg.decision_states().is_empty());
        assert!(trg.terminal_states().is_empty());
        // alternating fire/elapse edges with the right delays
        let kinds: Vec<(EdgeKind, Rational)> = {
            let mut out = Vec::new();
            let mut s = trg.initial();
            for _ in 0..4 {
                let e = &trg.edges_from(s)[0];
                out.push((e.kind, e.delay));
                s = e.to;
            }
            out
        };
        assert_eq!(
            kinds,
            vec![
                (EdgeKind::Fire, r(0)),
                (EdgeKind::Elapse, r(2)),
                (EdgeKind::Fire, r(0)),
                (EdgeKind::Elapse, r(3)),
            ]
        );
    }

    #[test]
    fn conflict_probabilities_on_edges() {
        let mut b = NetBuilder::new("coin");
        let p = b.place("p", 1);
        let heads = b.place("h", 0);
        let tails = b.place("t", 0);
        b.transition("heads")
            .input(p)
            .output(heads)
            .firing_const(1)
            .weight(Rational::new(19, 20))
            .add();
        b.transition("tails")
            .input(p)
            .output(tails)
            .firing_const(1)
            .weight(Rational::new(1, 20))
            .add();
        let net = b.build().unwrap();
        let trg = build_trg(&net, &NumericDomain::new(), &TrgOptions::default()).unwrap();
        assert_eq!(trg.decision_states(), vec![trg.initial()]);
        let es = trg.edges_from(trg.initial());
        assert_eq!(es.len(), 2);
        let psum: Rational = es.iter().map(|e| e.prob).sum();
        assert_eq!(psum, Rational::ONE);
        // both outcomes end in distinct terminal states
        assert_eq!(trg.terminal_states().len(), 2);
    }

    #[test]
    fn priority_suppresses_zero_frequency_edge() {
        let mut b = NetBuilder::new("prio");
        let p = b.place("p", 1);
        let win = b.place("win", 0);
        let lose = b.place("lose", 0);
        b.transition("preferred")
            .input(p)
            .output(win)
            .firing_const(1)
            .weight_const(1)
            .add();
        b.transition("fallback")
            .input(p)
            .output(lose)
            .firing_const(1)
            .weight_const(0)
            .add();
        let net = b.build().unwrap();
        let trg = build_trg(&net, &NumericDomain::new(), &TrgOptions::default()).unwrap();
        // only the preferred transition appears
        let es = trg.edges_from(trg.initial());
        assert_eq!(es.len(), 1);
        assert_eq!(net.transition(es[0].fired[0]).name(), "preferred");
        assert_eq!(es[0].prob, Rational::ONE);
    }

    #[test]
    fn parallel_firings_cross_product() {
        // Two independent tokens → two independent conflict sets firable
        // at once → a single selector containing both (no interleaving
        // states, matching the cross-product construction).
        let mut b = NetBuilder::new("par");
        let p1 = b.place("p1", 1);
        let p2 = b.place("p2", 0);
        let q1 = b.place("q1", 1);
        let q2 = b.place("q2", 0);
        b.transition("a").input(p1).output(p2).firing_const(2).add();
        b.transition("z").input(q1).output(q2).firing_const(5).add();
        let net = b.build().unwrap();
        let trg = build_trg(&net, &NumericDomain::new(), &TrgOptions::default()).unwrap();
        let es = trg.edges_from(trg.initial());
        assert_eq!(es.len(), 1, "both start in one selector");
        assert_eq!(es[0].fired.len(), 2);
        // the elapse chain: 2 elapses (min 2, then 3)
        let s1 = es[0].to;
        let e1 = &trg.edges_from(s1)[0];
        assert_eq!(e1.kind, EdgeKind::Elapse);
        assert_eq!(e1.delay, r(2));
        assert_eq!(e1.completed.len(), 1);
        let e2 = &trg.edges_from(e1.to)[0];
        assert_eq!(e2.delay, r(3));
        // a multi-candidate minimum was recorded (Figure-7 material)
        assert!(!trg.min_resolutions().is_empty());
    }

    #[test]
    fn enabling_time_delays_firability() {
        // timeout-style: enabling time 10, firing 1.
        let mut b = NetBuilder::new("en");
        let p = b.place("p", 1);
        let q = b.place("q", 0);
        b.transition("timeout")
            .input(p)
            .output(q)
            .enabling_const(10)
            .firing_const(1)
            .add();
        let net = b.build().unwrap();
        let trg = build_trg(&net, &NumericDomain::new(), &TrgOptions::default()).unwrap();
        // s0 --elapse 10--> s1 --fire--> s2 --elapse 1--> s3 (terminal)
        let e0 = &trg.edges_from(trg.initial())[0];
        assert_eq!(e0.kind, EdgeKind::Elapse);
        assert_eq!(e0.delay, r(10));
        let e1 = &trg.edges_from(e0.to)[0];
        assert_eq!(e1.kind, EdgeKind::Fire);
        let e2 = &trg.edges_from(e1.to)[0];
        assert_eq!(e2.delay, r(1));
        assert_eq!(trg.terminal_states().len(), 1);
    }

    #[test]
    fn disabled_transition_resets_enabling_clock() {
        // Two transitions conflict on p; "fast" fires at once and removes
        // the token, so "slow" (enabling 10) must never fire even though
        // it was enabled momentarily — and if the token returns, slow
        // restarts from 10 (continuous-enabling rule).
        let mut b = NetBuilder::new("reset");
        let p = b.place("p", 1);
        let q = b.place("q", 0);
        b.transition("fast")
            .input(p)
            .output(q)
            .firing_const(3)
            .weight_const(1)
            .add();
        b.transition("slow")
            .input(p)
            .output(q)
            .enabling_const(10)
            .firing_const(1)
            .weight_const(1)
            .add();
        b.transition("back")
            .input(q)
            .output(p)
            .firing_const(4)
            .add();
        let net = b.build().unwrap();
        let trg = build_trg(&net, &NumericDomain::new(), &TrgOptions::default()).unwrap();
        // "slow" never fires: no edge fires it
        for e in trg.all_edges() {
            for &t in &e.fired {
                assert_ne!(net.transition(t).name(), "slow");
            }
        }
        // the graph is a finite cycle (states repeat)
        assert!(trg.num_states() <= 6);
    }

    #[test]
    fn multiple_firing_violation_detected() {
        // Two tokens in a shared place: firing one member leaves the
        // other firable at the same instant.
        let mut b = NetBuilder::new("viol");
        let p = b.place("p", 2);
        b.transition("a").input(p).firing_const(1).add();
        let net = b.build().unwrap();
        let err = build_trg(&net, &NumericDomain::new(), &TrgOptions::default()).unwrap_err();
        assert!(matches!(err, ReachError::MultipleFiring { .. }), "{err}");
    }

    #[test]
    fn state_limit_enforced() {
        // An unbounded net: each cycle deposits a token in the sink
        // place `q`, so every lap reaches a fresh state.
        let mut b = NetBuilder::new("unbounded");
        let p = b.place("p", 1);
        let q = b.place("q", 0);
        b.transition("grow")
            .input(p)
            .output(p)
            .output(q)
            .firing_const(1)
            .add();
        let net = b.build().unwrap();
        let err = build_trg(
            &net,
            &NumericDomain::new(),
            &TrgOptions {
                max_states: 50,
                ..TrgOptions::default()
            },
        );
        assert!(matches!(
            err,
            Err(ReachError::StateLimitExceeded { limit: 50 })
        ));
    }

    #[test]
    fn zero_firing_time_is_instantaneous() {
        let mut b = NetBuilder::new("instant");
        let p = b.place("p", 1);
        let q = b.place("q", 0);
        let z = b.place("z", 0);
        b.transition("now").input(p).output(q).firing_const(0).add();
        b.transition("later")
            .input(q)
            .output(z)
            .firing_const(5)
            .add();
        let net = b.build().unwrap();
        let trg = build_trg(&net, &NumericDomain::new(), &TrgOptions::default()).unwrap();
        let e0 = &trg.edges_from(trg.initial())[0];
        assert_eq!(e0.kind, EdgeKind::Fire);
        assert_eq!(
            e0.completed, e0.fired,
            "zero-time firing completes on the same edge"
        );
        // and "later" is immediately enabled in the successor
        let s1 = trg.state(e0.to);
        let later = net.transition_by_name("later").unwrap();
        assert!(s1.ret(later).is_some());
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_matches_serial_exactly() {
        // A net with decision states, parallelism and cycles: two
        // independent rings plus a weighted conflict feeding both.
        let mut b = NetBuilder::new("mix");
        let p = b.place("p", 1);
        let l = b.place("l", 0);
        let r2 = b.place("r", 0);
        let q1 = b.place("q1", 1);
        let q2 = b.place("q2", 0);
        b.transition("left")
            .input(p)
            .output(l)
            .firing_const(2)
            .weight_const(3)
            .add();
        b.transition("right")
            .input(p)
            .output(r2)
            .firing_const(3)
            .weight_const(1)
            .add();
        b.transition("lback")
            .input(l)
            .output(p)
            .firing_const(1)
            .add();
        b.transition("rback")
            .input(r2)
            .output(p)
            .firing_const(4)
            .add();
        b.transition("tick")
            .input(q1)
            .output(q2)
            .firing_const(5)
            .add();
        b.transition("tock")
            .input(q2)
            .output(q1)
            .firing_const(7)
            .add();
        let net = b.build().unwrap();

        let domain = NumericDomain::new();
        let serial = build_trg(&net, &domain, &TrgOptions::default()).unwrap();
        for threads in [0, 2, 3, 8] {
            let par = build_trg(
                &net,
                &domain,
                &TrgOptions {
                    threads,
                    ..TrgOptions::default()
                },
            )
            .unwrap();
            // byte-identical state tables and graphs
            assert_eq!(par.describe_states(&net), serial.describe_states(&net));
            assert_eq!(par.to_dot(&net), serial.to_dot(&net));
            assert_eq!(par.min_resolutions().len(), serial.min_resolutions().len());
            for (a, b) in par.min_resolutions().iter().zip(serial.min_resolutions()) {
                assert_eq!(a.state, b.state);
                assert_eq!(a.candidates, b.candidates);
                assert_eq!(a.chosen, b.chosen);
            }
        }
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_reports_same_errors() {
        // state-limit error triggers at the same limit
        let mut b = NetBuilder::new("unbounded");
        let p = b.place("p", 1);
        let q = b.place("q", 0);
        b.transition("grow")
            .input(p)
            .output(p)
            .output(q)
            .firing_const(1)
            .add();
        let net = b.build().unwrap();
        let err = build_trg(
            &net,
            &NumericDomain::new(),
            &TrgOptions {
                max_states: 50,
                threads: 4,
            },
        );
        assert!(matches!(
            err,
            Err(ReachError::StateLimitExceeded { limit: 50 })
        ));

        // the multiple-firing violation is detected identically
        let mut b = NetBuilder::new("viol");
        let p = b.place("p", 2);
        b.transition("a").input(p).firing_const(1).add();
        let net = b.build().unwrap();
        let serial = build_trg(&net, &NumericDomain::new(), &TrgOptions::default()).unwrap_err();
        let par = build_trg(
            &net,
            &NumericDomain::new(),
            &TrgOptions {
                threads: 4,
                ..TrgOptions::default()
            },
        )
        .unwrap_err();
        assert_eq!(format!("{serial}"), format!("{par}"));
    }

    #[test]
    fn mapped_lifted_graph_matches_cold_numeric_graph() {
        use crate::LiftedDomain;
        use tpn_net::symbols;
        use tpn_symbolic::Assignment;

        let net = cycle_net(); // go: 2, back: 3
        let sym = symbols::firing("back");
        let lifted = LiftedDomain::new(&net, &[sym]).unwrap();
        let trg = build_trg(&net, &lifted, &TrgOptions::default()).unwrap();
        // Perturb F(back) 3 → 7 and instantiate the lifted skeleton.
        let point = Assignment::new().with(sym, Rational::from_int(7));
        lifted.check_point(&point).unwrap();
        let mapped: TimedReachabilityGraph<NumericDomain> =
            trg.map(|t| t.eval(&point), |p| p.eval(&point)).unwrap();
        // Cold build of the perturbed net.
        let mut b = NetBuilder::new("cycle");
        let pa = b.place("pa", 1);
        let pb = b.place("pb", 0);
        b.transition("go")
            .input(pa)
            .output(pb)
            .firing_const(2)
            .add();
        b.transition("back")
            .input(pb)
            .output(pa)
            .firing_const(7)
            .add();
        let perturbed = b.build().unwrap();
        let cold = build_trg(&perturbed, &NumericDomain::new(), &TrgOptions::default()).unwrap();
        assert_eq!(
            mapped.describe_states(&perturbed),
            cold.describe_states(&perturbed)
        );
        assert_eq!(mapped.to_dot(&perturbed), cold.to_dot(&perturbed));
        // An unbound symbol makes the mapping fail, not mislabel.
        let empty = Assignment::new();
        assert!(trg
            .map::<NumericDomain, _, _>(|t| t.eval(&empty), |p| p.eval(&empty))
            .is_none());
    }

    #[test]
    fn dot_and_describe_render() {
        let net = cycle_net();
        let trg = build_trg(&net, &NumericDomain::new(), &TrgOptions::default()).unwrap();
        let dot = trg.to_dot(&net);
        assert!(dot.contains("digraph trg"));
        assert!(dot.contains("fire go"));
        let table = trg.describe_states(&net);
        assert!(table.contains("s0"));
        assert!(table.contains("RET"));
    }
}
