//! Errors from reachability-graph construction.

use std::fmt;

use tpn_symbolic::ConstraintError;

/// An error during timed-reachability-graph construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReachError {
    /// The numeric domain was given a net with unknown times or
    /// frequencies (Section-2 analysis needs everything a priori).
    UnknownAttribute {
        /// The offending transition's name.
        transition: String,
        /// `"enabling time"`, `"firing time"` or `"frequency"`.
        which: &'static str,
    },
    /// The timing constraints cannot order two candidate delays; the
    /// paper's "insufficient timing constraints" condition. Add a
    /// constraint relating the two expressions and rebuild.
    AmbiguousComparison {
        /// Rendered form of one candidate delay expression.
        left: String,
        /// Rendered form of the other.
        right: String,
        /// Index of the state (in discovery order) where the ambiguity
        /// arose.
        state: usize,
    },
    /// A firable transition was already firing, or firing a selector
    /// left another member of the same conflict set firable at the same
    /// instant — the net violates the paper's restriction that firing a
    /// transition disables its whole conflict set.
    MultipleFiring {
        /// The offending transition's name.
        transition: String,
        /// Index of the state where the violation was detected.
        state: usize,
    },
    /// Exploration exceeded the configured state bound (unbounded or
    /// enormous net).
    StateLimitExceeded {
        /// The configured bound.
        limit: usize,
    },
    /// The constraint solver failed (complexity cap or internal error).
    Constraint(ConstraintError),
    /// A symbol handed to [`LiftedDomain`](crate::LiftedDomain) cannot
    /// be lifted: it names no attribute of the net, or its base value
    /// does not admit lifting (see the variant message).
    BadLift {
        /// The offending symbol's interned name.
        symbol: String,
        /// Why the symbol cannot be lifted.
        reason: String,
    },
    /// A timing perturbation leaves the validity region recorded by a
    /// [`LiftedDomain`](crate::LiftedDomain): at the perturbed point
    /// some comparison frozen during construction would flip (or can no
    /// longer be evaluated), so the lifted skeleton cannot be reused —
    /// the graph itself may change shape there. Rebuild cold instead.
    OutOfRegion {
        /// The violated condition, rendered (`"expr > 0"`/`"expr = 0"`).
        constraint: String,
    },
    /// All firable members of a conflict set have frequency zero *and*
    /// the domain cannot assign them probabilities... this variant is
    /// reserved; the implemented semantics assigns uniform probabilities
    /// instead. Kept for API stability of exhaustive matches.
    #[doc(hidden)]
    Unreachable,
}

impl fmt::Display for ReachError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReachError::UnknownAttribute { transition, which } => write!(
                f,
                "numeric analysis requires a known {which} for transition {transition:?}"
            ),
            ReachError::AmbiguousComparison { left, right, state } => write!(
                f,
                "timing constraints cannot order ({left}) against ({right}) in state {state}; \
                 add a constraint relating them"
            ),
            ReachError::MultipleFiring { transition, state } => write!(
                f,
                "transition {transition:?} would fire more than once at the same instant \
                 in state {state} (conflict-set restriction violated)"
            ),
            ReachError::StateLimitExceeded { limit } => {
                write!(f, "reachability exploration exceeded {limit} states")
            }
            ReachError::Constraint(e) => write!(f, "constraint solver: {e}"),
            ReachError::BadLift { symbol, reason } => {
                write!(f, "cannot lift symbol {symbol}: {reason}")
            }
            ReachError::OutOfRegion { constraint } => write!(
                f,
                "the perturbed point leaves the recorded validity region \
                 (violated: {constraint}); the lifted skeleton cannot be reused"
            ),
            ReachError::Unreachable => write!(f, "internal: unreachable error variant"),
        }
    }
}

impl std::error::Error for ReachError {}

impl From<ConstraintError> for ReachError {
    fn from(e: ConstraintError) -> ReachError {
        ReachError::Constraint(e)
    }
}
