//! Analysis domains: what "time" and "probability" mean.
//!
//! The Figure-3 successor procedure is identical for the numeric
//! analysis of Section 2 and the symbolic analysis of Section 3; only
//! the interpretation of times (exact rationals vs. affine expressions
//! under timing constraints) and probabilities (rationals vs. rational
//! functions of frequency symbols) differs. [`AnalysisDomain`] captures
//! that interface, so the graph construction in [`crate::build_trg`] is
//! written once. The paper's envisioned extensions (e.g. ranges of
//! firing times, §Conclusion) would slot in as further domains.

use std::fmt;
use std::hash::Hash;

use tpn_net::{symbols, Frequency, TimeValue, TimedPetriNet, TransId};
use tpn_rational::Rational;
use tpn_symbolic::{ConstraintSet, LinExpr, Poly, RatFn, Relation};

use crate::ReachError;

/// The time/probability interpretation used by a reachability analysis.
///
/// Domains and their times/probabilities are `Send + Sync` so the
/// graph construction can expand frontier states on worker threads
/// (the `parallel` feature of this crate); all existing domains are
/// plain data and satisfy the bounds for free.
pub trait AnalysisDomain: Sync {
    /// Representation of delays (RET/RFT entries, edge delays).
    type Time: Clone + Eq + Hash + fmt::Debug + fmt::Display + Send + Sync;
    /// Representation of branching probabilities.
    type Prob: Clone + Eq + fmt::Debug + fmt::Display + Send + Sync;

    /// The enabling time `E(t)`.
    fn enabling_time(&self, net: &TimedPetriNet, t: TransId) -> Result<Self::Time, ReachError>;

    /// The firing time `F(t)`.
    fn firing_time(&self, net: &TimedPetriNet, t: TransId) -> Result<Self::Time, ReachError>;

    /// The zero delay.
    fn zero(&self) -> Self::Time;

    /// Decide whether a delay is zero. For the symbolic domain this must
    /// be *decidable* under the constraints (an invariant of the
    /// construction: every stored delay is decidably zero or positive).
    fn is_zero(&self, t: &Self::Time) -> bool;

    /// `a − b`. Callers guarantee `a ≥ b` is entailed.
    fn sub(&self, a: &Self::Time, b: &Self::Time) -> Self::Time;

    /// `a + b` (used when collapsing paths into decision-graph edges).
    fn add(&self, a: &Self::Time, b: &Self::Time) -> Self::Time;

    /// Embed a time into the probability domain, so that expressions
    /// mixing rates and delays (`w = r·d`, throughputs, utilizations)
    /// can be formed. Numeric: identity. Symbolic: affine time
    /// expressions embed into rational functions.
    fn time_as_prob(&self, t: &Self::Time) -> Self::Prob;

    /// Index of a provably-minimal element of `candidates` (non-empty).
    fn min_index(&self, candidates: &[Self::Time], state: usize) -> Result<usize, ReachError>;

    /// Decide `a == b` (callers use this to detect simultaneous
    /// completions after subtracting the minimum). Must be exact.
    fn time_eq(&self, a: &Self::Time, b: &Self::Time, state: usize) -> Result<bool, ReachError>;

    /// The probability 1.
    fn prob_one(&self) -> Self::Prob;

    /// Branching probabilities for the firable members of one conflict
    /// set, in the order given. Implements the paper's rule: zero-
    /// frequency members are excluded when any positive-frequency member
    /// is firable; a lone firable member gets probability 1.
    fn probabilities(
        &self,
        net: &TimedPetriNet,
        firable: &[TransId],
    ) -> Result<Vec<Self::Prob>, ReachError>;

    /// Product of probabilities (for selector cross products).
    fn prob_mul(&self, a: &Self::Prob, b: &Self::Prob) -> Self::Prob;

    /// `true` iff a probability is identically zero. Zero-probability
    /// selectors (a zero-frequency transition losing to a prioritised
    /// competitor) are omitted from the graph, exactly as in the paper's
    /// Figure 4.
    fn prob_is_zero(&self, p: &Self::Prob) -> bool;
}

/// Section-2 analysis: every time and frequency is known a priori.
#[derive(Debug, Clone, Copy, Default)]
pub struct NumericDomain;

impl NumericDomain {
    /// Create the numeric domain.
    pub fn new() -> NumericDomain {
        NumericDomain
    }

    fn known(
        v: &TimeValue,
        net: &TimedPetriNet,
        t: TransId,
        which: &'static str,
    ) -> Result<Rational, ReachError> {
        v.known()
            .copied()
            .ok_or_else(|| ReachError::UnknownAttribute {
                transition: net.transition(t).name().to_string(),
                which,
            })
    }
}

impl AnalysisDomain for NumericDomain {
    type Time = Rational;
    type Prob = Rational;

    fn enabling_time(&self, net: &TimedPetriNet, t: TransId) -> Result<Rational, ReachError> {
        Self::known(net.transition(t).enabling(), net, t, "enabling time")
    }

    fn firing_time(&self, net: &TimedPetriNet, t: TransId) -> Result<Rational, ReachError> {
        Self::known(net.transition(t).firing(), net, t, "firing time")
    }

    fn zero(&self) -> Rational {
        Rational::ZERO
    }

    fn is_zero(&self, t: &Rational) -> bool {
        t.is_zero()
    }

    fn sub(&self, a: &Rational, b: &Rational) -> Rational {
        a - b
    }

    fn add(&self, a: &Rational, b: &Rational) -> Rational {
        a + b
    }

    fn time_as_prob(&self, t: &Rational) -> Rational {
        *t
    }

    fn min_index(&self, candidates: &[Rational], _state: usize) -> Result<usize, ReachError> {
        let mut best = 0usize;
        for (i, c) in candidates.iter().enumerate().skip(1) {
            if c < &candidates[best] {
                best = i;
            }
        }
        Ok(best)
    }

    fn time_eq(&self, a: &Rational, b: &Rational, _state: usize) -> Result<bool, ReachError> {
        Ok(a == b)
    }

    fn prob_one(&self) -> Rational {
        Rational::ONE
    }

    fn probabilities(
        &self,
        net: &TimedPetriNet,
        firable: &[TransId],
    ) -> Result<Vec<Rational>, ReachError> {
        let weights: Result<Vec<Rational>, ReachError> = firable
            .iter()
            .map(|&t| match net.transition(t).frequency() {
                Frequency::Weight(w) => Ok(*w),
                Frequency::Unknown => Err(ReachError::UnknownAttribute {
                    transition: net.transition(t).name().to_string(),
                    which: "frequency",
                }),
            })
            .collect();
        let weights = weights?;
        Ok(split_weights_numeric(&weights))
    }

    fn prob_mul(&self, a: &Rational, b: &Rational) -> Rational {
        a * b
    }

    fn prob_is_zero(&self, p: &Rational) -> bool {
        p.is_zero()
    }
}

/// Apply the paper's conflict-resolution rule to known weights.
fn split_weights_numeric(weights: &[Rational]) -> Vec<Rational> {
    if weights.len() == 1 {
        // "If only one transition is firable, the probability of firing
        // it is 1, regardless of firing frequency."
        return vec![Rational::ONE];
    }
    let any_positive = weights.iter().any(|w| w.is_positive());
    if any_positive {
        let total: Rational = weights.iter().copied().sum();
        weights.iter().map(|w| w / total).collect()
    } else {
        // All firable members have frequency zero: the paper leaves this
        // open; we document a uniform choice.
        let n = Rational::from_int(weights.len() as i128);
        weights.iter().map(|_| Rational::ONE / n).collect()
    }
}

/// Section-3 analysis: unknown times become symbols `E(t)`/`F(t)`
/// constrained by a [`ConstraintSet`]; unknown frequencies become
/// symbols `f(t)`.
///
/// Two implicit assumptions are added automatically, mirroring the
/// paper's reading of the model:
///
/// * every *unknown* enabling/firing time is strictly positive (give the
///   net a `Known(0)` value — the paper's constraint (2) — or an explicit
///   constraint if you need something weaker);
/// * every *unknown* frequency is strictly positive (a zero frequency is
///   a structural priority statement and must be written as
///   `Frequency::Weight(0)`).
#[derive(Debug, Clone)]
pub struct SymbolicDomain {
    constraints: ConstraintSet,
}

impl SymbolicDomain {
    /// Build the domain for a net from user-supplied timing constraints,
    /// adding the implicit positivity assumptions for unknown times.
    pub fn new(net: &TimedPetriNet, user_constraints: ConstraintSet) -> SymbolicDomain {
        let mut constraints = user_constraints;
        for t in net.transitions() {
            let tr = net.transition(t);
            if tr.enabling().known().is_none() {
                let sym = LinExpr::symbol(symbols::enabling(tr.name()));
                constraints.assume(sym, Relation::Gt);
            }
            if tr.firing().known().is_none() {
                let sym = LinExpr::symbol(symbols::firing(tr.name()));
                constraints.assume(sym, Relation::Gt);
            }
        }
        SymbolicDomain { constraints }
    }

    /// The effective constraint set (user constraints plus implicit
    /// positivity assumptions).
    pub fn constraints(&self) -> &ConstraintSet {
        &self.constraints
    }

    fn time_expr(v: &TimeValue, sym: tpn_symbolic::Symbol) -> LinExpr {
        match v {
            TimeValue::Known(r) => LinExpr::constant(*r),
            TimeValue::Unknown => LinExpr::symbol(sym),
        }
    }
}

impl AnalysisDomain for SymbolicDomain {
    type Time = LinExpr;
    type Prob = RatFn;

    fn enabling_time(&self, net: &TimedPetriNet, t: TransId) -> Result<LinExpr, ReachError> {
        let tr = net.transition(t);
        Ok(Self::time_expr(tr.enabling(), symbols::enabling(tr.name())))
    }

    fn firing_time(&self, net: &TimedPetriNet, t: TransId) -> Result<LinExpr, ReachError> {
        let tr = net.transition(t);
        Ok(Self::time_expr(tr.firing(), symbols::firing(tr.name())))
    }

    fn zero(&self) -> LinExpr {
        LinExpr::zero()
    }

    fn is_zero(&self, t: &LinExpr) -> bool {
        // Construction invariant: stored delays are either syntactically
        // zero or entailed positive, so a syntactic test suffices.
        t.is_zero()
    }

    fn sub(&self, a: &LinExpr, b: &LinExpr) -> LinExpr {
        a.clone() - b
    }

    fn add(&self, a: &LinExpr, b: &LinExpr) -> LinExpr {
        a.clone() + b
    }

    fn time_as_prob(&self, t: &LinExpr) -> RatFn {
        RatFn::from_poly(Poly::from_linexpr(t))
    }

    fn min_index(&self, candidates: &[LinExpr], state: usize) -> Result<usize, ReachError> {
        match self.constraints.min_of(candidates) {
            Ok(i) => Ok(i),
            Err(tpn_symbolic::ConstraintError::AmbiguousMinimum { left, right }) => {
                Err(ReachError::AmbiguousComparison {
                    left: left.to_string(),
                    right: right.to_string(),
                    state,
                })
            }
            Err(e) => Err(ReachError::Constraint(e)),
        }
    }

    fn time_eq(&self, a: &LinExpr, b: &LinExpr, state: usize) -> Result<bool, ReachError> {
        if a == b {
            return Ok(true);
        }
        match self.constraints.compare(a, b)? {
            tpn_symbolic::Cmp::Equal => Ok(true),
            tpn_symbolic::Cmp::Less | tpn_symbolic::Cmp::Greater => Ok(false),
            _ => Err(ReachError::AmbiguousComparison {
                left: a.to_string(),
                right: b.to_string(),
                state,
            }),
        }
    }

    fn prob_one(&self) -> RatFn {
        RatFn::one()
    }

    fn probabilities(
        &self,
        net: &TimedPetriNet,
        firable: &[TransId],
    ) -> Result<Vec<RatFn>, ReachError> {
        if firable.len() == 1 {
            return Ok(vec![RatFn::one()]);
        }
        // Weight polynomials: known weights are constants, unknown ones
        // symbols. A transition with *known zero* weight is excluded when
        // any other member could have positive weight (symbols are
        // assumed positive).
        let mut weights: Vec<Poly> = Vec::with_capacity(firable.len());
        let mut any_nonzero = false;
        for &t in firable {
            let tr = net.transition(t);
            let w = match tr.frequency() {
                Frequency::Weight(w) => Poly::constant(*w),
                Frequency::Unknown => Poly::symbol(symbols::frequency(tr.name())),
            };
            if !w.is_zero() {
                any_nonzero = true;
            }
            weights.push(w);
        }
        if !any_nonzero {
            let n = Rational::from_int(firable.len() as i128);
            return Ok(vec![RatFn::constant(Rational::ONE / n); firable.len()]);
        }
        let total: Poly = weights.iter().fold(Poly::zero(), |acc, w| &acc + w);
        Ok(weights
            .into_iter()
            .map(|w| RatFn::new(w, total.clone()))
            .collect())
    }

    fn prob_mul(&self, a: &RatFn, b: &RatFn) -> RatFn {
        a * b
    }

    fn prob_is_zero(&self, p: &RatFn) -> bool {
        p.is_zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpn_net::NetBuilder;

    fn conflict_net() -> TimedPetriNet {
        let mut b = NetBuilder::new("dom-test");
        let p = b.place("shared", 1);
        b.transition("hi")
            .input(p)
            .weight(Rational::new(19, 20))
            .firing_const(1)
            .add();
        b.transition("lo")
            .input(p)
            .weight(Rational::new(1, 20))
            .firing_const(1)
            .add();
        b.transition("pri")
            .input(p)
            .weight_const(0)
            .firing_const(1)
            .add();
        b.build().unwrap()
    }

    #[test]
    fn numeric_probabilities() {
        let net = conflict_net();
        let d = NumericDomain::new();
        let hi = net.transition_by_name("hi").unwrap();
        let lo = net.transition_by_name("lo").unwrap();
        let pri = net.transition_by_name("pri").unwrap();
        // zero-frequency member among positive ones: gets probability 0
        let ps = d.probabilities(&net, &[hi, lo, pri]).unwrap();
        assert_eq!(ps[0], Rational::new(19, 20));
        assert_eq!(ps[1], Rational::new(1, 20));
        assert_eq!(ps[2], Rational::ZERO);
        // singleton fires with probability 1 even at frequency 0
        assert_eq!(d.probabilities(&net, &[pri]).unwrap(), vec![Rational::ONE]);
        // all-zero: uniform
        let mut b = NetBuilder::new("zz");
        let p = b.place("s", 1);
        b.transition("a").input(p).weight_const(0).add();
        b.transition("z").input(p).weight_const(0).add();
        let net2 = b.build().unwrap();
        let a = net2.transition_by_name("a").unwrap();
        let z = net2.transition_by_name("z").unwrap();
        let ps2 = d.probabilities(&net2, &[a, z]).unwrap();
        assert_eq!(ps2, vec![Rational::new(1, 2), Rational::new(1, 2)]);
    }

    #[test]
    fn numeric_rejects_unknowns() {
        let mut b = NetBuilder::new("unk");
        let p = b.place("s", 1);
        let t = b.transition("t").input(p).firing_unknown().add();
        let net = b.build().unwrap();
        let d = NumericDomain::new();
        assert!(matches!(
            d.firing_time(&net, t),
            Err(ReachError::UnknownAttribute {
                which: "firing time",
                ..
            })
        ));
        assert!(d.enabling_time(&net, t).is_ok()); // enabling defaulted to 0
    }

    #[test]
    fn numeric_min_and_eq() {
        let d = NumericDomain::new();
        let xs = [
            Rational::from_int(5),
            Rational::from_int(3),
            Rational::from_int(9),
        ];
        assert_eq!(d.min_index(&xs, 0), Ok(1));
        assert_eq!(d.time_eq(&xs[0], &xs[0], 0), Ok(true));
        assert_eq!(d.time_eq(&xs[0], &xs[1], 0), Ok(false));
        assert_eq!(d.sub(&xs[2], &xs[1]), Rational::from_int(6));
    }

    #[test]
    fn symbolic_time_expressions() {
        let mut b = NetBuilder::new("symdom");
        let p = b.place("s", 1);
        let t = b
            .transition("work")
            .input(p)
            .enabling_const(0)
            .firing_unknown()
            .add();
        let net = b.build().unwrap();
        let d = SymbolicDomain::new(&net, ConstraintSet::new());
        // known enabling time is a constant expression
        assert!(d.enabling_time(&net, t).unwrap().is_zero());
        // unknown firing time is the canonical symbol, assumed positive
        let ft = d.firing_time(&net, t).unwrap();
        assert_eq!(ft, LinExpr::symbol(symbols::firing("work")));
        assert_eq!(
            d.constraints().entails(&ft, Relation::Gt),
            Ok(true),
            "implicit positivity assumption"
        );
    }

    #[test]
    fn symbolic_probabilities() {
        let mut b = NetBuilder::new("symprob");
        let p = b.place("s", 1);
        b.transition("u").input(p).weight_unknown().add();
        b.transition("v").input(p).weight_unknown().add();
        b.transition("w0").input(p).weight_const(0).add();
        let net = b.build().unwrap();
        let d = SymbolicDomain::new(&net, ConstraintSet::new());
        let u = net.transition_by_name("u").unwrap();
        let v = net.transition_by_name("v").unwrap();
        let w0 = net.transition_by_name("w0").unwrap();
        let ps = d.probabilities(&net, &[u, v, w0]).unwrap();
        // p(u) = f(u) / (f(u) + f(v)); w0 contributes nothing
        let fu = Poly::symbol(symbols::frequency("u"));
        let fv = Poly::symbol(symbols::frequency("v"));
        assert_eq!(ps[0], RatFn::new(fu.clone(), &fu + &fv));
        assert_eq!(ps[1], RatFn::new(fv.clone(), &fu + &fv));
        assert!(ps[2].is_zero());
        // probabilities sum to one
        let sum = ps.iter().fold(RatFn::zero(), |acc, p| acc + p.clone());
        assert!(sum.is_one());
        // singleton
        assert_eq!(d.probabilities(&net, &[w0]).unwrap(), vec![RatFn::one()]);
    }

    #[test]
    fn symbolic_min_uses_constraints() {
        let mut b = NetBuilder::new("symmin");
        let p = b.place("s", 1);
        b.transition("slow")
            .input(p)
            .enabling_unknown()
            .firing_unknown()
            .add();
        b.transition("fast").input(p).firing_unknown().add();
        let net = b.build().unwrap();
        let slow_e = LinExpr::symbol(symbols::enabling("slow"));
        let fast_f = LinExpr::symbol(symbols::firing("fast"));
        let mut cs = ConstraintSet::new();
        cs.assume_gt(slow_e.clone(), fast_f.clone());
        let d = SymbolicDomain::new(&net, cs);
        assert_eq!(d.min_index(&[slow_e.clone(), fast_f.clone()], 7), Ok(1));
        // without the ordering constraint: ambiguous, naming the state
        let d2 = SymbolicDomain::new(&net, ConstraintSet::new());
        match d2.min_index(&[slow_e.clone(), fast_f.clone()], 7) {
            Err(ReachError::AmbiguousComparison { state: 7, .. }) => {}
            other => panic!("expected ambiguity, got {other:?}"),
        }
    }

    #[test]
    fn symbolic_eq_decidability() {
        let net = {
            let mut b = NetBuilder::new("symeq");
            let p = b.place("s", 1);
            b.transition("a").input(p).firing_unknown().add();
            b.transition("z").input(p).firing_unknown().add();
            b.build().unwrap()
        };
        let fa = LinExpr::symbol(symbols::firing("a"));
        let fz = LinExpr::symbol(symbols::firing("z"));
        let mut cs = ConstraintSet::new();
        cs.assume_eq(fa.clone(), fz.clone());
        let d = SymbolicDomain::new(&net, cs);
        assert_eq!(d.time_eq(&fa, &fz, 0), Ok(true));
        let d2 = SymbolicDomain::new(&net, ConstraintSet::new());
        assert!(d2.time_eq(&fa, &fz, 0).is_err());
        assert_eq!(d2.time_eq(&fa, &fa, 0), Ok(true));
    }
}
