//! Numerically guided symbolic lifting of a fully timed net.
//!
//! The fully symbolic [`SymbolicDomain`](crate::SymbolicDomain) needs a
//! designer-supplied constraint set to discharge every timing
//! comparison — which exists for the paper's protocol, but not for an
//! arbitrary `.tpn` document posted to the analysis daemon (the text
//! format has no constraint syntax). [`LiftedDomain`] closes that gap
//! for the parameter-sweep workload: starting from a **fully timed**
//! net, a chosen subset of its attributes (`E(t)`, `F(t)`, `f(t)`
//! symbols) is *lifted* back into symbols while every timing comparison
//! is resolved **at the base point** — the numeric values the net was
//! written with.
//!
//! The derived performance expressions are therefore exact closed
//! forms in the lifted symbols, valid on the *region* of parameter
//! space where every frozen comparison keeps the outcome it has at the
//! base point (ties included: two delays equal at the base are treated
//! as identically equal, exactly as the paper's constraints (3)/(4)
//! equate packet-loss and packet-delivery times). The domain records
//! every comparison whose outcome depends on a lifted symbol;
//! [`LiftedDomain::region`] renders the resulting validity conditions
//! so callers can report how far a sweep may be trusted.

use std::collections::BTreeSet;
use std::sync::Mutex;

use tpn_net::{symbols, Frequency, TimedPetriNet, TransId};
use tpn_rational::Rational;
use tpn_symbolic::{Assignment, Constraint, LinExpr, Poly, RatFn, Relation, Symbol};

use crate::{AnalysisDomain, ReachError};

/// A fully timed net with a subset of its attributes lifted to symbols
/// and all comparisons frozen at the base point.
#[derive(Debug)]
pub struct LiftedDomain {
    /// Base value of every lifted symbol.
    base: Assignment,
    /// Comparisons involving lifted symbols, stored structurally as
    /// `(expr, relation)` pairs meaning `expr ⋈ 0` — the machine-
    /// evaluable validity region ([`LiftedDomain::region_constraints`]),
    /// from which the rendered form ([`LiftedDomain::region`]) derives.
    region: Mutex<BTreeSet<(LinExpr, Relation)>>,
    /// Shape conditions that [`LiftedDomain::region`] historically does
    /// *not* report: strict positivity of every non-constant delay that
    /// was non-zero at the base point. A perturbation driving such a
    /// delay to zero (or negative) changes which steps are
    /// instantaneous — i.e. the skeleton itself — without flipping any
    /// recorded comparison, so [`LiftedDomain::check_point`] tests the
    /// union of both sets before a skeleton is reused.
    shape: Mutex<BTreeSet<(LinExpr, Relation)>>,
}

impl LiftedDomain {
    /// Lift `swept` out of `net`'s attributes. Every symbol must name
    /// an attribute of the net in the canonical
    /// [`tpn_net::symbols`] grammar (`E(t)`, `F(t)`, `f(t)`), the
    /// attribute must be known (the net fully timed), and its base
    /// value must be strictly positive — a zero enabling time or a
    /// zero frequency is a structural statement (immediacy, priority)
    /// whose lifting would change the shape of the reachability graph,
    /// not just its labels.
    pub fn new(net: &TimedPetriNet, swept: &[Symbol]) -> Result<LiftedDomain, ReachError> {
        let mut base = Assignment::new();
        for &sym in swept {
            if base.contains(sym) {
                return Err(ReachError::BadLift {
                    symbol: sym.name(),
                    reason: "listed more than once".to_string(),
                });
            }
            let value = lookup_attribute(net, sym)?;
            if !value.is_positive() {
                return Err(ReachError::BadLift {
                    symbol: sym.name(),
                    reason: format!(
                        "base value {value} is not strictly positive; zero times and \
                         frequencies are structural and cannot be swept"
                    ),
                });
            }
            base.set(sym, value);
        }
        Ok(LiftedDomain {
            base,
            region: Mutex::new(BTreeSet::new()),
            shape: Mutex::new(BTreeSet::new()),
        })
    }

    /// The base value of every lifted symbol.
    pub fn base(&self) -> &Assignment {
        &self.base
    }

    /// The recorded validity region: every comparison made during graph
    /// construction whose outcome involved a lifted symbol, rendered as
    /// a condition (`"expr > 0"` or `"expr = 0"`) on the lifted
    /// parameters. Expressions derived through this domain are exact on
    /// the set of parameter values satisfying all conditions; outside
    /// it the graph itself may change shape.
    pub fn region(&self) -> Vec<String> {
        self.region_entries()
            .into_iter()
            .map(|(text, _)| text)
            .collect()
    }

    /// The validity region in machine-evaluable form: one
    /// [`Constraint`] (`expr > 0` or `expr = 0`) per recorded frozen
    /// comparison, in the same order as the rendered [`LiftedDomain::region`]
    /// strings. [`Constraint::check`] evaluates membership of a
    /// parameter point exactly; the optimizer and the sweep endpoint's
    /// `in_region` flag both consume this form.
    pub fn region_constraints(&self) -> Vec<Constraint> {
        self.region_entries().into_iter().map(|(_, c)| c).collect()
    }

    /// The region as `(rendered text, constraint)` pairs, sorted by the
    /// rendered text (the historical output order of
    /// [`LiftedDomain::region`]). Callers that need both forms — the
    /// analysis endpoints render the strings *and* evaluate the
    /// constraints — should take this once instead of paying the
    /// lock/clone/format/sort twice.
    pub fn region_entries(&self) -> Vec<(String, Constraint)> {
        let mut out: Vec<(String, Constraint)> = self
            .region
            .lock()
            .expect("region lock")
            .iter()
            .map(|(expr, rel)| {
                let c = Constraint {
                    expr: expr.clone(),
                    rel: *rel,
                };
                let text = match rel {
                    Relation::Eq => format!("{expr} = 0"),
                    _ => format!("{expr} > 0"),
                };
                (text, c)
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Check that `point` stays inside the validity region *and*
    /// preserves the graph shape, i.e. the skeleton built at the base
    /// point is exact when re-evaluated there. Tests the recorded
    /// region entries plus the shape conditions [`LiftedDomain::region`]
    /// does not report (strict positivity of every delay the skeleton
    /// treats as a real wait). Every lifted symbol must be bound in
    /// `point`; a violated or unevaluable condition yields
    /// [`ReachError::OutOfRegion`] naming it.
    pub fn check_point(&self, point: &Assignment) -> Result<(), ReachError> {
        for (sym, _) in self.base.iter() {
            if !point.contains(sym) {
                return Err(ReachError::OutOfRegion {
                    constraint: format!("{} is bound", sym.name()),
                });
            }
        }
        let render = |expr: &LinExpr, rel: &Relation| match rel {
            Relation::Eq => format!("{expr} = 0"),
            _ => format!("{expr} > 0"),
        };
        for set in [&self.region, &self.shape] {
            for (expr, rel) in set.lock().expect("constraint lock").iter() {
                let c = Constraint {
                    expr: expr.clone(),
                    rel: *rel,
                };
                if c.check(point) != Some(true) {
                    return Err(ReachError::OutOfRegion {
                        constraint: render(expr, rel),
                    });
                }
            }
        }
        Ok(())
    }

    /// Value of `e` at the base point (every symbol in any expression
    /// this domain produces is a lifted symbol, hence bound).
    fn at_base(&self, e: &LinExpr) -> Rational {
        e.eval(&self.base)
            .expect("lifted expressions only use lifted symbols")
    }

    /// Record the outcome of comparing `a` against `b` if it involves a
    /// lifted symbol: `diff = a - b` with its base sign.
    fn record(&self, a: &LinExpr, b: &LinExpr) {
        let diff = a.clone() - b;
        if diff.is_constant() {
            return; // outcome independent of the lifted parameters
        }
        let sign = self.at_base(&diff).signum();
        let entry = match sign {
            0 => (diff, Relation::Eq),
            1 => (diff, Relation::Gt),
            _ => (diff.scale(&-Rational::ONE), Relation::Gt),
        };
        self.region.lock().expect("region lock").insert(entry);
    }

    fn attribute_expr(&self, value: &Rational, sym: Symbol) -> LinExpr {
        if self.base.contains(sym) {
            LinExpr::symbol(sym)
        } else {
            LinExpr::constant(*value)
        }
    }
}

/// Resolve a canonical attribute symbol against the net.
fn lookup_attribute(net: &TimedPetriNet, sym: Symbol) -> Result<Rational, ReachError> {
    for t in net.transitions() {
        let tr = net.transition(t);
        let name = tr.name();
        if sym == symbols::enabling(name) {
            return known(net, t, tr.enabling().known(), "enabling time");
        }
        if sym == symbols::firing(name) {
            return known(net, t, tr.firing().known(), "firing time");
        }
        if sym == symbols::frequency(name) {
            return match tr.frequency() {
                Frequency::Weight(w) => Ok(*w),
                Frequency::Unknown => Err(ReachError::UnknownAttribute {
                    transition: name.to_string(),
                    which: "frequency",
                }),
            };
        }
    }
    Err(ReachError::BadLift {
        symbol: sym.name(),
        reason: "no transition attribute of the net has this canonical name \
                 (expected E(t), F(t) or f(t) for a transition t)"
            .to_string(),
    })
}

fn known(
    net: &TimedPetriNet,
    t: TransId,
    v: Option<&Rational>,
    which: &'static str,
) -> Result<Rational, ReachError> {
    v.copied().ok_or_else(|| ReachError::UnknownAttribute {
        transition: net.transition(t).name().to_string(),
        which,
    })
}

impl AnalysisDomain for LiftedDomain {
    type Time = LinExpr;
    type Prob = RatFn;

    fn enabling_time(&self, net: &TimedPetriNet, t: TransId) -> Result<LinExpr, ReachError> {
        let tr = net.transition(t);
        let v = known(net, t, tr.enabling().known(), "enabling time")?;
        Ok(self.attribute_expr(&v, symbols::enabling(tr.name())))
    }

    fn firing_time(&self, net: &TimedPetriNet, t: TransId) -> Result<LinExpr, ReachError> {
        let tr = net.transition(t);
        let v = known(net, t, tr.firing().known(), "firing time")?;
        Ok(self.attribute_expr(&v, symbols::firing(tr.name())))
    }

    fn zero(&self) -> LinExpr {
        LinExpr::zero()
    }

    fn is_zero(&self, t: &LinExpr) -> bool {
        if t.is_zero() {
            return true;
        }
        if self.at_base(t).is_zero() {
            // Symbolically non-trivial but zero at the base point: a tie
            // frozen into an equality of the validity region.
            self.record(t, &LinExpr::zero());
            return true;
        }
        // Non-zero at the base: the skeleton treats this delay as a real
        // wait. Remember the sign condition so a re-timing that collapses
        // it to zero (making the step instantaneous) is rejected.
        if !t.is_constant() {
            let sign = self.at_base(t).signum();
            let entry = if sign > 0 {
                (t.clone(), Relation::Gt)
            } else {
                (t.clone().scale(&-Rational::ONE), Relation::Gt)
            };
            self.shape.lock().expect("shape lock").insert(entry);
        }
        false
    }

    fn sub(&self, a: &LinExpr, b: &LinExpr) -> LinExpr {
        a.clone() - b
    }

    fn add(&self, a: &LinExpr, b: &LinExpr) -> LinExpr {
        a.clone() + b
    }

    fn time_as_prob(&self, t: &LinExpr) -> RatFn {
        RatFn::from_poly(Poly::from_linexpr(t))
    }

    fn min_index(&self, candidates: &[LinExpr], _state: usize) -> Result<usize, ReachError> {
        let mut best = 0usize;
        for (i, c) in candidates.iter().enumerate().skip(1) {
            if self.at_base(c) < self.at_base(&candidates[best]) {
                best = i;
            }
        }
        for (i, c) in candidates.iter().enumerate() {
            if i != best {
                self.record(c, &candidates[best]);
            }
        }
        Ok(best)
    }

    fn time_eq(&self, a: &LinExpr, b: &LinExpr, _state: usize) -> Result<bool, ReachError> {
        if a == b {
            return Ok(true);
        }
        self.record(a, b);
        Ok(self.at_base(a) == self.at_base(b))
    }

    fn prob_one(&self) -> RatFn {
        RatFn::one()
    }

    fn probabilities(
        &self,
        net: &TimedPetriNet,
        firable: &[TransId],
    ) -> Result<Vec<RatFn>, ReachError> {
        if firable.len() == 1 {
            return Ok(vec![RatFn::one()]);
        }
        let mut weights: Vec<Poly> = Vec::with_capacity(firable.len());
        let mut any_nonzero = false;
        for &t in firable {
            let tr = net.transition(t);
            let sym = symbols::frequency(tr.name());
            let w = if self.base.contains(sym) {
                Poly::symbol(sym)
            } else {
                match tr.frequency() {
                    Frequency::Weight(w) => Poly::constant(*w),
                    Frequency::Unknown => {
                        return Err(ReachError::UnknownAttribute {
                            transition: tr.name().to_string(),
                            which: "frequency",
                        })
                    }
                }
            };
            if !w.is_zero() {
                any_nonzero = true;
            }
            weights.push(w);
        }
        if !any_nonzero {
            let n = Rational::from_int(firable.len() as i128);
            return Ok(vec![RatFn::constant(Rational::ONE / n); firable.len()]);
        }
        let total: Poly = weights.iter().fold(Poly::zero(), |acc, w| &acc + w);
        Ok(weights
            .into_iter()
            .map(|w| RatFn::new(w, total.clone()))
            .collect())
    }

    fn prob_mul(&self, a: &RatFn, b: &RatFn) -> RatFn {
        a * b
    }

    fn prob_is_zero(&self, p: &RatFn) -> bool {
        p.is_zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_trg, NumericDomain, TrgOptions};
    use tpn_net::NetBuilder;

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    /// succeed (w=3, d=1) vs retry (w=1, d=2) on a shared place.
    fn two_way() -> TimedPetriNet {
        let mut b = NetBuilder::new("lift");
        let p = b.place("p", 1);
        b.transition("succeed")
            .input(p)
            .output(p)
            .firing_const(1)
            .weight_const(3)
            .add();
        b.transition("retry")
            .input(p)
            .output(p)
            .firing_const(2)
            .weight_const(1)
            .add();
        b.build().unwrap()
    }

    #[test]
    fn lifted_graph_matches_numeric_shape() {
        let net = two_way();
        let d = LiftedDomain::new(&net, &[symbols::firing("retry")]).unwrap();
        let trg = build_trg(&net, &d, &TrgOptions::default()).unwrap();
        let numeric = build_trg(&net, &NumericDomain::new(), &TrgOptions::default()).unwrap();
        assert_eq!(trg.num_states(), numeric.num_states());
        assert_eq!(trg.num_edges(), numeric.num_edges());
    }

    #[test]
    fn lifting_a_frequency_yields_symbolic_probabilities() {
        let net = two_way();
        let fr = symbols::frequency("retry");
        let d = LiftedDomain::new(&net, &[fr]).unwrap();
        let s = net.transition_by_name("succeed").unwrap();
        let t = net.transition_by_name("retry").unwrap();
        let ps = d.probabilities(&net, &[s, t]).unwrap();
        // p(succeed) = 3 / (3 + f(retry))
        let expect = RatFn::new(
            Poly::constant(r(3, 1)),
            &Poly::constant(r(3, 1)) + &Poly::symbol(fr),
        );
        assert_eq!(ps[0], expect);
        let at = Assignment::new().with(fr, r(1, 1));
        assert_eq!(ps[0].eval(&at), Some(r(3, 4)));
    }

    #[test]
    fn rejects_unknown_and_nonpositive_symbols() {
        let net = two_way();
        let bogus = Symbol::intern("F(nonexistent)");
        assert!(matches!(
            LiftedDomain::new(&net, &[bogus]),
            Err(ReachError::BadLift { .. })
        ));
        // enabling times default to zero: not sweepable
        let e = symbols::enabling("succeed");
        let err = LiftedDomain::new(&net, &[e]).unwrap_err();
        assert!(matches!(err, ReachError::BadLift { .. }), "{err}");
        // duplicate listing
        let f = symbols::firing("succeed");
        assert!(matches!(
            LiftedDomain::new(&net, &[f, f]),
            Err(ReachError::BadLift { .. })
        ));
    }

    #[test]
    fn comparisons_are_frozen_and_recorded() {
        let net = two_way();
        let f_retry = symbols::firing("retry");
        let d = LiftedDomain::new(&net, &[f_retry]).unwrap();
        let a = LinExpr::symbol(f_retry); // base 2
        let b = LinExpr::constant(r(1, 1));
        // min picks the constant 1 and records F(retry) - 1 > 0
        assert_eq!(d.min_index(&[a.clone(), b.clone()], 0), Ok(1));
        assert_eq!(d.time_eq(&a, &b, 0), Ok(false));
        let region = d.region();
        assert!(
            region
                .iter()
                .any(|c| c.contains("F(retry)") && c.contains("> 0")),
            "{region:?}"
        );
        // a tie freezes into an equality
        let c2 = LinExpr::constant(r(2, 1));
        assert_eq!(d.time_eq(&a, &c2, 0), Ok(true));
        assert!(
            d.region().iter().any(|c| c.ends_with("= 0")),
            "{:?}",
            d.region()
        );
    }

    #[test]
    fn check_point_accepts_in_region_and_rejects_violations() {
        // A fork-join: the next-event choice min(1, F(slow)) freezes
        // F(slow) - 1 > 0 into the region, and the join resynchronizes
        // the branches so no other comparison constrains F(slow).
        let mut b = NetBuilder::new("forkjoin");
        let s = b.place("s", 1);
        let pa = b.place("a", 0);
        let pb = b.place("b", 0);
        let pa2 = b.place("a2", 0);
        let pb2 = b.place("b2", 0);
        b.transition("fork").input(s).output(pa).output(pb).add();
        b.transition("fast")
            .input(pa)
            .output(pa2)
            .firing_const(1)
            .add();
        b.transition("slow")
            .input(pb)
            .output(pb2)
            .firing_const(2)
            .add();
        b.transition("join")
            .input(pa2)
            .input(pb2)
            .output(s)
            .firing_const(1)
            .add();
        let net = b.build().unwrap();
        let f_slow = symbols::firing("slow");
        let d = LiftedDomain::new(&net, &[f_slow]).unwrap();
        build_trg(&net, &d, &TrgOptions::default()).unwrap();
        // Inside: any F(slow) > 1 keeps every frozen comparison.
        d.check_point(&Assignment::new().with(f_slow, r(3, 2)))
            .unwrap();
        // Unbound lifted symbol.
        let err = d.check_point(&Assignment::new()).unwrap_err();
        assert!(matches!(err, ReachError::OutOfRegion { .. }), "{err}");
        // Outside the recorded region (flips the min choice).
        let err = d
            .check_point(&Assignment::new().with(f_slow, r(1, 2)))
            .unwrap_err();
        assert!(matches!(err, ReachError::OutOfRegion { .. }), "{err}");
    }

    #[test]
    fn check_point_uses_shape_conditions_beyond_the_reported_region() {
        // A single lifted transition records no comparisons — the
        // rendered region is empty — yet collapsing its delay to zero
        // would make the step instantaneous and change the skeleton.
        let mut b = NetBuilder::new("single");
        let p = b.place("p", 1);
        b.transition("t").input(p).output(p).firing_const(5).add();
        let net = b.build().unwrap();
        let ft = symbols::firing("t");
        let d = LiftedDomain::new(&net, &[ft]).unwrap();
        build_trg(&net, &d, &TrgOptions::default()).unwrap();
        assert!(d.region().is_empty(), "{:?}", d.region());
        d.check_point(&Assignment::new().with(ft, r(7, 1))).unwrap();
        let err = d
            .check_point(&Assignment::new().with(ft, Rational::ZERO))
            .unwrap_err();
        assert!(matches!(err, ReachError::OutOfRegion { .. }), "{err}");
    }

    #[test]
    fn structured_region_is_machine_evaluable_and_matches_rendering() {
        let net = two_way();
        let f_retry = symbols::firing("retry");
        let d = LiftedDomain::new(&net, &[f_retry]).unwrap();
        let a = LinExpr::symbol(f_retry); // base 2
        let one = LinExpr::constant(r(1, 1));
        let two = LinExpr::constant(r(2, 1));
        d.min_index(&[a.clone(), one], 0).unwrap(); // F(retry) - 1 > 0
        d.time_eq(&a, &two, 0).unwrap(); // F(retry) - 2 = 0
        let rendered = d.region();
        let constraints = d.region_constraints();
        assert_eq!(rendered.len(), constraints.len());
        // Same order: constraint i renders as string i.
        for (text, c) in rendered.iter().zip(&constraints) {
            let shown = match c.rel {
                tpn_symbolic::Relation::Eq => format!("{} = 0", c.expr),
                _ => format!("{} > 0", c.expr),
            };
            assert_eq!(*text, shown);
        }
        // The base point satisfies every recorded constraint; a point
        // outside (F(retry) = 1/2) violates the strict one.
        let base = Assignment::new().with(f_retry, r(2, 1));
        let outside = Assignment::new().with(f_retry, r(1, 2));
        assert!(constraints.iter().all(|c| c.check(&base) == Some(true)));
        assert!(constraints.iter().any(|c| c.check(&outside) == Some(false)));
    }
}
