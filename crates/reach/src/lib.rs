//! Timed reachability graphs (paper §2–§3).
//!
//! A state of a Timed Petri Net is characterised by (paper §2):
//!
//! 1. a **marking** — the token distribution;
//! 2. a vector of **remaining enabling times** (RET) — how much longer
//!    each enabled transition must stay enabled before it *must* fire;
//! 3. a vector of **remaining firing times** (RFT) — how much longer
//!    each firing transition keeps absorbing time before it deposits its
//!    output tokens.
//!
//! The timed reachability graph (TRG) enumerates all reachable states by
//! the successor procedure of the paper's **Figure 3**:
//!
//! * if any transition is *firable* (enabled with elapsed RET), the state
//!   is a **decision state**: one zero-delay successor per *selector*
//!   (one firable member per firable conflict set, cross product), each
//!   labelled with a branching probability;
//! * otherwise the unique successor is obtained by letting the minimum
//!   non-zero RET/RFT elapse, completing any firings that reach zero.
//!
//! The construction is generic over an [`AnalysisDomain`]:
//! [`NumericDomain`] implements Section 2 (all times known a priori —
//! Zuberek's method), and [`SymbolicDomain`] implements Section 3, where
//! times are *symbols* and the minimum-delay decisions are discharged by
//! a [`tpn_symbolic::ConstraintSet`]. When the constraints are too weak
//! to order two candidate delays, construction stops with
//! [`ReachError::AmbiguousComparison`] naming the offending pair — the
//! structured version of the paper's "prompt the designer for timing
//! constraints at the necessary points".

#![allow(clippy::result_large_err)] // diagnostic errors carry rendered expressions by design

pub mod correctness;
mod domain;
mod error;
mod graph;
mod interval;
mod lifted;
mod state;

pub use correctness::{analyze, CorrectnessReport};
pub use domain::{AnalysisDomain, NumericDomain, SymbolicDomain};
pub use error::ReachError;
pub use graph::{
    build_trg, Edge, EdgeKind, MinResolution, StateId, TimedReachabilityGraph, TrgOptions,
    TrgTemplate,
};
pub use interval::{Interval, IntervalDomain};
pub use lifted::LiftedDomain;
pub use state::TimedState;
