//! Sparse exact matrices (map-per-row).
//!
//! Decision-graph rate systems are extremely sparse: each edge's rate
//! equation mentions only the edges entering its source node. The dense
//! solver is fine at paper scale, but the scaling benches sweep graphs
//! with thousands of edges, where the sparse representation wins. Kept
//! deliberately simple — a `BTreeMap` per row and elimination with
//! first-fit pivoting — because exactness, not constant factors, is the
//! point.

use std::collections::BTreeMap;

use crate::{Field, LinalgError, Matrix};

/// A sparse matrix over an exact [`Field`], stored as one ordered map of
/// `column → value` per row.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMatrix<F: Field> {
    rows: Vec<BTreeMap<usize, F>>,
    cols: usize,
}

impl<F: Field> SparseMatrix<F> {
    /// The zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> SparseMatrix<F> {
        SparseMatrix {
            rows: vec![BTreeMap::new(); rows],
            cols,
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.cols
    }

    /// Number of structurally non-zero entries.
    pub fn nnz(&self) -> usize {
        self.rows.iter().map(BTreeMap::len).sum()
    }

    /// Element access (zero if absent).
    pub fn get(&self, r: usize, c: usize) -> F {
        self.rows[r].get(&c).cloned().unwrap_or_else(F::zero)
    }

    /// Element update; zero values delete the entry.
    pub fn set(&mut self, r: usize, c: usize, v: F) {
        assert!(c < self.cols, "column out of range");
        if v.is_zero() {
            self.rows[r].remove(&c);
        } else {
            self.rows[r].insert(c, v);
        }
    }

    /// Convert to a dense matrix.
    pub fn to_dense(&self) -> Matrix<F> {
        let mut out = Matrix::zeros(self.rows.len(), self.cols);
        for (r, row) in self.rows.iter().enumerate() {
            for (c, v) in row {
                out.set(r, *c, v.clone());
            }
        }
        out
    }

    /// Build from a dense matrix.
    pub fn from_dense(m: &Matrix<F>) -> SparseMatrix<F> {
        let mut out = SparseMatrix::zeros(m.num_rows(), m.num_cols());
        for r in 0..m.num_rows() {
            for c in 0..m.num_cols() {
                let v = m.get(r, c);
                if !v.is_zero() {
                    out.set(r, c, v.clone());
                }
            }
        }
        out
    }

    /// Sparse matrix–vector product.
    pub fn mul_vec(&self, v: &[F]) -> Result<Vec<F>, LinalgError> {
        if v.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                detail: format!("matrix has {} cols, vector has {}", self.cols, v.len()),
            });
        }
        Ok(self
            .rows
            .iter()
            .map(|row| {
                let mut acc = F::zero();
                for (c, x) in row {
                    acc = acc.add(&x.mul(&v[*c]));
                }
                acc
            })
            .collect())
    }

    /// Solve `A·x = b` for a unique solution by sparse Gaussian
    /// elimination with partial (fewest-fill first-fit) pivoting.
    pub fn solve(&self, b: &[F]) -> Result<Vec<F>, LinalgError> {
        if b.len() != self.rows.len() {
            return Err(LinalgError::DimensionMismatch {
                detail: format!("matrix has {} rows, rhs has {}", self.rows.len(), b.len()),
            });
        }
        let n = self.cols;
        let mut rows: Vec<BTreeMap<usize, F>> = self.rows.clone();
        let mut rhs: Vec<F> = b.to_vec();
        let mut pivot_of_col: Vec<Option<usize>> = vec![None; n];
        let mut used_row = vec![false; rows.len()];
        for col in 0..n {
            // Choose the unused row with a non-zero in `col` and fewest
            // entries (cheap Markowitz criterion).
            let mut best: Option<(usize, usize)> = None;
            for (r, row) in rows.iter().enumerate() {
                if used_row[r] {
                    continue;
                }
                if row.get(&col).map(|v| !v.is_zero()).unwrap_or(false) {
                    let fill = row.len();
                    if best.map(|(_, bf)| fill < bf).unwrap_or(true) {
                        best = Some((r, fill));
                    }
                }
            }
            let Some((pr, _)) = best else { continue };
            used_row[pr] = true;
            pivot_of_col[col] = Some(pr);
            let pivot = rows[pr][&col].clone();
            // Eliminate `col` from every other row.
            let pivot_row = rows[pr].clone();
            let pivot_rhs = rhs[pr].clone();
            for (r, row) in rows.iter_mut().enumerate() {
                if r == pr {
                    continue;
                }
                let Some(v) = row.get(&col).cloned() else {
                    continue;
                };
                let factor = v.div(&pivot);
                for (c, pv) in &pivot_row {
                    let cur = row.get(c).cloned().unwrap_or_else(F::zero);
                    let nv = cur.sub(&factor.mul(pv));
                    if nv.is_zero() {
                        row.remove(c);
                    } else {
                        row.insert(*c, nv);
                    }
                }
                rhs[r] = rhs[r].sub(&factor.mul(&pivot_rhs));
            }
        }
        // Inconsistent leftover rows?
        for (r, row) in rows.iter().enumerate() {
            if !used_row[r] && row.is_empty() && !rhs[r].is_zero() {
                return Err(LinalgError::Singular);
            }
        }
        // Unique solution requires a pivot in every column.
        let mut x = vec![F::zero(); n];
        for col in 0..n {
            match pivot_of_col[col] {
                Some(r) => {
                    let pivot = rows[r][&col].clone();
                    x[col] = rhs[r].div(&pivot);
                }
                None => return Err(LinalgError::Singular),
            }
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpn_rational::Rational;

    fn r(n: i128) -> Rational {
        Rational::from_int(n)
    }

    #[test]
    fn set_get_nnz() {
        let mut m = SparseMatrix::<Rational>::zeros(2, 3);
        assert_eq!(m.nnz(), 0);
        m.set(0, 1, r(5));
        m.set(1, 2, r(7));
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 1), r(5));
        assert_eq!(m.get(0, 0), Rational::ZERO);
        m.set(0, 1, Rational::ZERO);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn dense_roundtrip() {
        let mut m = SparseMatrix::<Rational>::zeros(2, 2);
        m.set(0, 0, r(1));
        m.set(0, 1, r(2));
        m.set(1, 1, r(3));
        let d = m.to_dense();
        assert_eq!(SparseMatrix::from_dense(&d), m);
    }

    #[test]
    fn solve_matches_dense() {
        let mut m = SparseMatrix::<Rational>::zeros(3, 3);
        m.set(0, 0, r(2));
        m.set(0, 1, r(1));
        m.set(1, 1, r(3));
        m.set(1, 2, r(-1));
        m.set(2, 0, r(1));
        m.set(2, 2, r(4));
        let b = [r(5), r(2), r(9)];
        let xs = m.solve(&b).unwrap();
        let xd = m.to_dense().solve(&b).unwrap();
        assert_eq!(xs, xd);
        assert_eq!(m.mul_vec(&xs).unwrap(), b.to_vec());
    }

    #[test]
    fn singular_detected() {
        let mut m = SparseMatrix::<Rational>::zeros(2, 2);
        m.set(0, 0, r(1));
        m.set(0, 1, r(2));
        m.set(1, 0, r(2));
        m.set(1, 1, r(4));
        assert_eq!(m.solve(&[r(1), r(2)]), Err(LinalgError::Singular));
        assert_eq!(m.solve(&[r(1), r(3)]), Err(LinalgError::Singular));
    }

    #[test]
    fn dimension_errors() {
        let m = SparseMatrix::<Rational>::zeros(2, 2);
        assert!(m.solve(&[r(1)]).is_err());
        assert!(m.mul_vec(&[r(1)]).is_err());
    }
}
