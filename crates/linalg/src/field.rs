//! The [`Field`] abstraction.

use tpn_rational::Rational;
use tpn_symbolic::RatFn;

/// An exact field: the coefficient domain for elimination.
///
/// Implementations must be *exact* — `a.div(b).mul(b) == a` for non-zero
/// `b` — because pivoting decisions test `is_zero` structurally. The two
/// implementations used in this workspace are [`Rational`] (numeric
/// analysis) and [`RatFn`] (symbolic analysis over the frequency
/// symbols).
pub trait Field: Clone + PartialEq + std::fmt::Debug {
    /// The additive identity.
    fn zero() -> Self;
    /// The multiplicative identity.
    fn one() -> Self;
    /// `true` iff this is the additive identity.
    fn is_zero(&self) -> bool;
    /// Addition.
    fn add(&self, other: &Self) -> Self;
    /// Subtraction.
    fn sub(&self, other: &Self) -> Self;
    /// Multiplication.
    fn mul(&self, other: &Self) -> Self;
    /// Division.
    ///
    /// # Panics
    /// May panic when `other` is zero; callers guard with
    /// [`Field::is_zero`].
    fn div(&self, other: &Self) -> Self;
    /// Negation.
    fn neg(&self) -> Self;

    /// A size heuristic used for pivot selection (smaller pivots keep
    /// intermediate expressions small). Defaults to 0 (no preference).
    fn complexity(&self) -> usize {
        0
    }
}

impl Field for Rational {
    fn zero() -> Self {
        Rational::ZERO
    }
    fn one() -> Self {
        Rational::ONE
    }
    fn is_zero(&self) -> bool {
        Rational::is_zero(self)
    }
    fn add(&self, other: &Self) -> Self {
        self + other
    }
    fn sub(&self, other: &Self) -> Self {
        self - other
    }
    fn mul(&self, other: &Self) -> Self {
        self * other
    }
    fn div(&self, other: &Self) -> Self {
        self / other
    }
    fn neg(&self) -> Self {
        -self
    }
    fn complexity(&self) -> usize {
        (128 - self.numer().unsigned_abs().leading_zeros()) as usize
            + (128 - self.denom().unsigned_abs().leading_zeros()) as usize
    }
}

impl Field for RatFn {
    fn zero() -> Self {
        RatFn::zero()
    }
    fn one() -> Self {
        RatFn::one()
    }
    fn is_zero(&self) -> bool {
        RatFn::is_zero(self)
    }
    fn add(&self, other: &Self) -> Self {
        self + other
    }
    fn sub(&self, other: &Self) -> Self {
        self - other
    }
    fn mul(&self, other: &Self) -> Self {
        self * other
    }
    fn div(&self, other: &Self) -> Self {
        self / other
    }
    fn neg(&self) -> Self {
        -self.clone()
    }
    fn complexity(&self) -> usize {
        self.numer().num_terms() + self.denom().num_terms()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpn_symbolic::{Poly, Symbol};

    fn check_axioms<F: Field>(a: F, b: F) {
        assert_eq!(a.add(&b), b.add(&a));
        assert_eq!(a.add(&F::zero()), a);
        assert_eq!(a.mul(&F::one()), a);
        assert_eq!(a.sub(&a), F::zero());
        assert_eq!(a.add(&a.neg()), F::zero());
        if !b.is_zero() {
            assert_eq!(a.div(&b).mul(&b), a);
        }
    }

    #[test]
    fn rational_field() {
        check_axioms(Rational::new(3, 4), Rational::new(-2, 5));
        assert!(Rational::ZERO.complexity() < Rational::new(123456, 789).complexity());
    }

    #[test]
    fn ratfn_field() {
        let x = RatFn::symbol(Symbol::intern("fld_x"));
        let y = RatFn::new(Poly::one(), Poly::symbol(Symbol::intern("fld_y")));
        check_axioms(x.clone(), y.clone());
        assert!(RatFn::one().complexity() <= (x.clone() + y).complexity());
    }
}
