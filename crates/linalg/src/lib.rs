//! Exact linear algebra over generic fields.
//!
//! The decision-graph traversal-rate equations (paper §4) form a linear
//! system whose coefficients are branching probabilities. In the numeric
//! analysis those are exact rationals; in the *symbolic* analysis they
//! are rational functions of the frequency symbols. Solving the system
//! exactly in either case requires Gaussian elimination over a generic
//! [`Field`] — floating-point libraries are useless here because the
//! whole point is to obtain closed-form expressions.
//!
//! Provided:
//!
//! * [`Field`] — the algebraic interface, implemented for
//!   [`tpn_rational::Rational`] and [`tpn_symbolic::RatFn`];
//! * [`Matrix`] — dense row-major matrices with reduced row-echelon
//!   form, rank, determinant, inverse, [`Matrix::solve`] and
//!   [`Matrix::null_space`];
//! * [`SparseMatrix`] — a map-per-row sparse variant with the same
//!   elimination-based solver, kept as an ablation point for the
//!   benchmark suite (the paper's systems are tiny, but the scaling
//!   benches sweep larger graphs).

#![allow(clippy::needless_range_loop)] // index-based loops mirror the matrix algebra

mod dense;
mod error;
mod field;
mod sparse;

pub use dense::Matrix;
pub use error::LinalgError;
pub use field::Field;
pub use sparse::SparseMatrix;
