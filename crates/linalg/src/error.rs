//! Linear-algebra errors.

use std::fmt;

/// An error from an exact linear-algebra operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Operand shapes are incompatible.
    DimensionMismatch {
        /// Human-readable description of the expected/actual shapes.
        detail: String,
    },
    /// The system has no unique solution (singular matrix).
    Singular,
    /// A non-square matrix was passed where a square one is required.
    NotSquare,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { detail } => {
                write!(f, "dimension mismatch: {detail}")
            }
            LinalgError::Singular => write!(f, "matrix is singular"),
            LinalgError::NotSquare => write!(f, "matrix is not square"),
        }
    }
}

impl std::error::Error for LinalgError {}
