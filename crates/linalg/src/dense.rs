//! Dense exact matrices.

use std::fmt;

use crate::{Field, LinalgError};

/// A dense row-major matrix over an exact [`Field`].
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix<F: Field> {
    rows: usize,
    cols: usize,
    data: Vec<F>,
}

impl<F: Field> Matrix<F> {
    /// The zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Matrix<F> {
        Matrix {
            rows,
            cols,
            data: vec![F::zero(); rows * cols],
        }
    }

    /// The identity matrix of order `n`.
    pub fn identity(n: usize) -> Matrix<F> {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, F::one());
        }
        m
    }

    /// Build from nested rows.
    ///
    /// # Panics
    /// Panics if rows have unequal lengths.
    pub fn from_rows(rows: Vec<Vec<F>>) -> Matrix<F> {
        let r = rows.len();
        let c = rows.first().map(Vec::len).unwrap_or(0);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    pub fn get(&self, r: usize, c: usize) -> &F {
        &self.data[r * self.cols + c]
    }

    /// Element update.
    pub fn set(&mut self, r: usize, c: usize, v: F) {
        self.data[r * self.cols + c] = v;
    }

    /// Matrix–vector product.
    pub fn mul_vec(&self, v: &[F]) -> Result<Vec<F>, LinalgError> {
        if v.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                detail: format!("matrix has {} cols, vector has {}", self.cols, v.len()),
            });
        }
        let mut out = vec![F::zero(); self.rows];
        for r in 0..self.rows {
            let mut acc = F::zero();
            for c in 0..self.cols {
                let term = self.get(r, c).mul(&v[c]);
                acc = acc.add(&term);
            }
            out[r] = acc;
        }
        Ok(out)
    }

    /// Matrix product.
    pub fn mul_mat(&self, other: &Matrix<F>) -> Result<Matrix<F>, LinalgError> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                detail: format!(
                    "{}×{} · {}×{}",
                    self.rows, self.cols, other.rows, other.cols
                ),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for c in 0..other.cols {
                let mut acc = F::zero();
                for k in 0..self.cols {
                    acc = acc.add(&self.get(r, k).mul(other.get(k, c)));
                }
                out.set(r, c, acc);
            }
        }
        Ok(out)
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix<F> {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c).clone());
            }
        }
        out
    }

    /// In-place reduction to *reduced row-echelon form*. Returns the
    /// pivot column of each pivot row.
    pub fn rref(&mut self) -> Vec<usize> {
        let mut pivots = Vec::new();
        let mut pivot_row = 0usize;
        for col in 0..self.cols {
            if pivot_row >= self.rows {
                break;
            }
            // Choose the structurally simplest non-zero pivot (keeps
            // symbolic expressions small).
            let mut best: Option<(usize, usize)> = None;
            for r in pivot_row..self.rows {
                let v = self.get(r, col);
                if !v.is_zero() {
                    let cx = v.complexity();
                    if best.map(|(_, b)| cx < b).unwrap_or(true) {
                        best = Some((r, cx));
                    }
                }
            }
            let Some((r, _)) = best else { continue };
            self.swap_rows(pivot_row, r);
            // Normalise the pivot row.
            let pivot = self.get(pivot_row, col).clone();
            for c in col..self.cols {
                let v = self.get(pivot_row, c).div(&pivot);
                self.set(pivot_row, c, v);
            }
            // Eliminate the column everywhere else.
            for rr in 0..self.rows {
                if rr == pivot_row {
                    continue;
                }
                let factor = self.get(rr, col).clone();
                if factor.is_zero() {
                    continue;
                }
                for c in col..self.cols {
                    let v = self.get(rr, c).sub(&factor.mul(self.get(pivot_row, c)));
                    self.set(rr, c, v);
                }
            }
            pivots.push(col);
            pivot_row += 1;
        }
        pivots
    }

    /// Rank.
    pub fn rank(&self) -> usize {
        let mut work = self.clone();
        work.rref().len()
    }

    /// Determinant (square matrices only), by fraction-free-ish Gaussian
    /// elimination with exact field arithmetic.
    pub fn determinant(&self) -> Result<F, LinalgError> {
        if self.rows != self.cols {
            return Err(LinalgError::NotSquare);
        }
        let n = self.rows;
        let mut work = self.clone();
        let mut det = F::one();
        for col in 0..n {
            let Some(r) = (col..n).find(|&r| !work.get(r, col).is_zero()) else {
                return Ok(F::zero());
            };
            if r != col {
                work.swap_rows(col, r);
                det = det.neg();
            }
            let pivot = work.get(col, col).clone();
            det = det.mul(&pivot);
            for rr in (col + 1)..n {
                let factor = work.get(rr, col).div(&pivot);
                if factor.is_zero() {
                    continue;
                }
                for c in col..n {
                    let v = work.get(rr, c).sub(&factor.mul(work.get(col, c)));
                    work.set(rr, c, v);
                }
            }
        }
        Ok(det)
    }

    /// Solve `A·x = b` for a unique `x`.
    pub fn solve(&self, b: &[F]) -> Result<Vec<F>, LinalgError> {
        if b.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                detail: format!("matrix has {} rows, rhs has {}", self.rows, b.len()),
            });
        }
        // Augment and reduce.
        let mut aug = Matrix::zeros(self.rows, self.cols + 1);
        for r in 0..self.rows {
            for c in 0..self.cols {
                aug.set(r, c, self.get(r, c).clone());
            }
            aug.set(r, self.cols, b[r].clone());
        }
        let pivots = aug.rref();
        // Inconsistency: pivot in the augmented column.
        if pivots.contains(&self.cols) {
            return Err(LinalgError::Singular);
        }
        // Uniqueness: every variable must be a pivot.
        if pivots.len() != self.cols {
            return Err(LinalgError::Singular);
        }
        let mut x = vec![F::zero(); self.cols];
        for (row, col) in pivots.into_iter().enumerate() {
            x[col] = aug.get(row, self.cols).clone();
        }
        Ok(x)
    }

    /// Inverse (square, non-singular).
    pub fn inverse(&self) -> Result<Matrix<F>, LinalgError> {
        if self.rows != self.cols {
            return Err(LinalgError::NotSquare);
        }
        let n = self.rows;
        let mut aug = Matrix::zeros(n, 2 * n);
        for r in 0..n {
            for c in 0..n {
                aug.set(r, c, self.get(r, c).clone());
            }
            aug.set(r, n + r, F::one());
        }
        let pivots = aug.rref();
        if pivots.len() != n || pivots.iter().enumerate().any(|(i, &c)| c != i) {
            return Err(LinalgError::Singular);
        }
        let mut out = Matrix::zeros(n, n);
        for r in 0..n {
            for c in 0..n {
                out.set(r, c, aug.get(r, n + c).clone());
            }
        }
        Ok(out)
    }

    /// A basis of the null space `{x : A·x = 0}`. The rate equations of a
    /// decision graph are homogeneous with a one-dimensional kernel; this
    /// is how the canonical rates are extracted before normalisation.
    pub fn null_space(&self) -> Vec<Vec<F>> {
        let mut work = self.clone();
        let pivots = work.rref();
        let pivot_set: std::collections::BTreeSet<usize> = pivots.iter().copied().collect();
        let free: Vec<usize> = (0..self.cols).filter(|c| !pivot_set.contains(c)).collect();
        let mut basis = Vec::with_capacity(free.len());
        for &f in &free {
            let mut v = vec![F::zero(); self.cols];
            v[f] = F::one();
            for (row, &pc) in pivots.iter().enumerate() {
                // x_pc = −A'[row][f]
                v[pc] = work.get(row, f).neg();
            }
            basis.push(v);
        }
        basis
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for c in 0..self.cols {
            self.data.swap(a * self.cols + c, b * self.cols + c);
        }
    }
}

impl<F: Field + fmt::Display> fmt::Display for Matrix<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            write!(f, "[")?;
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", self.get(r, c))?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpn_rational::Rational;
    use tpn_symbolic::{Poly, RatFn, Symbol};

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    fn m(rows: Vec<Vec<i128>>) -> Matrix<Rational> {
        Matrix::from_rows(
            rows.into_iter()
                .map(|row| row.into_iter().map(Rational::from_int).collect())
                .collect(),
        )
    }

    #[test]
    fn solve_unique() {
        // 2x + y = 5, x - y = 1  =>  x = 2, y = 1
        let a = m(vec![vec![2, 1], vec![1, -1]]);
        let x = a.solve(&[r(5, 1), r(1, 1)]).unwrap();
        assert_eq!(x, vec![r(2, 1), r(1, 1)]);
        // verify
        assert_eq!(a.mul_vec(&x).unwrap(), vec![r(5, 1), r(1, 1)]);
    }

    #[test]
    fn solve_singular_and_inconsistent() {
        let a = m(vec![vec![1, 1], vec![2, 2]]);
        // inconsistent
        assert_eq!(a.solve(&[r(1, 1), r(3, 1)]), Err(LinalgError::Singular));
        // consistent but underdetermined: still not unique
        assert_eq!(a.solve(&[r(1, 1), r(2, 1)]), Err(LinalgError::Singular));
    }

    #[test]
    fn determinant_rank() {
        let a = m(vec![vec![1, 2], vec![3, 4]]);
        assert_eq!(a.determinant().unwrap(), r(-2, 1));
        assert_eq!(a.rank(), 2);
        let s = m(vec![vec![1, 2], vec![2, 4]]);
        assert_eq!(s.determinant().unwrap(), Rational::ZERO);
        assert_eq!(s.rank(), 1);
        assert_eq!(
            m(vec![vec![1, 2, 3]]).determinant(),
            Err(LinalgError::NotSquare)
        );
        assert_eq!(
            Matrix::<Rational>::identity(3).determinant().unwrap(),
            Rational::ONE
        );
    }

    #[test]
    fn inverse_roundtrip() {
        let a = m(vec![vec![2, 1], vec![1, 1]]);
        let inv = a.inverse().unwrap();
        assert_eq!(a.mul_mat(&inv).unwrap(), Matrix::identity(2));
        assert_eq!(inv.mul_mat(&a).unwrap(), Matrix::identity(2));
        let s = m(vec![vec![1, 2], vec![2, 4]]);
        assert_eq!(s.inverse(), Err(LinalgError::Singular));
    }

    #[test]
    fn null_space_dimension() {
        // rank-1 2×2 matrix: kernel is 1-dimensional.
        let a = m(vec![vec![1, 2], vec![2, 4]]);
        let basis = a.null_space();
        assert_eq!(basis.len(), 1);
        let v = &basis[0];
        assert_eq!(a.mul_vec(v).unwrap(), vec![Rational::ZERO; 2]);
        assert!(!v.iter().all(Rational::is_zero));
        // full-rank: trivial kernel
        assert!(m(vec![vec![1, 0], vec![0, 1]]).null_space().is_empty());
        // zero matrix: full kernel
        assert_eq!(Matrix::<Rational>::zeros(2, 3).null_space().len(), 3);
    }

    #[test]
    fn transpose_and_products() {
        let a = m(vec![vec![1, 2, 3], vec![4, 5, 6]]);
        let t = a.transpose();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.num_cols(), 2);
        assert_eq!(*t.get(2, 1), r(6, 1));
        let prod = a.mul_mat(&t).unwrap();
        assert_eq!(*prod.get(0, 0), r(14, 1));
        assert_eq!(*prod.get(1, 1), r(77, 1));
        assert!(a.mul_mat(&a).is_err());
        assert!(a.mul_vec(&[Rational::ONE]).is_err());
        assert!(a.solve(&[Rational::ONE]).is_err());
    }

    #[test]
    fn symbolic_solve() {
        // Solve [ [1, -p], [0, 1] ] x = [0, 1]  =>  x = [p, 1]
        let p = RatFn::new(
            Poly::symbol(Symbol::intern("la_f4")),
            &Poly::symbol(Symbol::intern("la_f4")) + &Poly::symbol(Symbol::intern("la_f5")),
        );
        let a = Matrix::from_rows(vec![
            vec![RatFn::one(), p.clone().neg()],
            vec![RatFn::zero(), RatFn::one()],
        ]);
        let x = a.solve(&[RatFn::zero(), RatFn::one()]).unwrap();
        assert_eq!(x, vec![p, RatFn::one()]);
    }

    #[test]
    fn symbolic_null_space() {
        // Markov-style: rows sum to zero ⇒ kernel contains the stationary
        // direction. A = [[-q, q], [p, -p]]ᵀ acting on rates.
        let p = RatFn::constant(r(19, 20));
        let q = RatFn::constant(r(1, 20));
        let a = Matrix::from_rows(vec![vec![p.clone().neg(), q.clone()], vec![p, q.neg()]]);
        let basis = a.null_space();
        assert_eq!(basis.len(), 1);
        assert_eq!(a.mul_vec(&basis[0]).unwrap(), vec![RatFn::zero(); 2]);
    }

    #[test]
    fn display() {
        let a = m(vec![vec![1, 2]]);
        assert_eq!(a.to_string(), "[1, 2]\n");
    }
}
