//! Property tests for exact linear algebra: solver correctness against
//! matrix–vector multiplication, dense/sparse agreement, and algebraic
//! identities of rank/determinant/inverse.

use proptest::prelude::*;
use tpn_linalg::{LinalgError, Matrix, SparseMatrix};
use tpn_rational::Rational;

fn small() -> impl Strategy<Value = Rational> {
    (-5i128..=5, 1i128..=3).prop_map(|(n, d)| Rational::new(n, d))
}

fn square(n: usize) -> impl Strategy<Value = Matrix<Rational>> {
    proptest::collection::vec(proptest::collection::vec(small(), n), n).prop_map(Matrix::from_rows)
}

fn vector(n: usize) -> impl Strategy<Value = Vec<Rational>> {
    proptest::collection::vec(small(), n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn solve_then_multiply_roundtrips(a in square(3), b in vector(3)) {
        match a.solve(&b) {
            Ok(x) => {
                prop_assert_eq!(a.mul_vec(&x).unwrap(), b);
                // unique solution ⇒ full rank ⇒ non-zero determinant
                prop_assert!(!a.determinant().unwrap().is_zero());
            }
            Err(LinalgError::Singular) => {
                prop_assert_eq!(a.determinant().unwrap(), Rational::ZERO);
            }
            Err(e) => return Err(TestCaseError::fail(format!("unexpected {e}"))),
        }
    }

    #[test]
    fn sparse_agrees_with_dense(a in square(4), b in vector(4)) {
        let s = SparseMatrix::from_dense(&a);
        prop_assert_eq!(s.to_dense(), a.clone());
        match (a.solve(&b), s.solve(&b)) {
            (Ok(xd), Ok(xs)) => prop_assert_eq!(xd, xs),
            (Err(LinalgError::Singular), Err(LinalgError::Singular)) => {}
            (d, sres) => {
                return Err(TestCaseError::fail(format!("dense {d:?} vs sparse {sres:?}")));
            }
        }
    }

    #[test]
    fn inverse_is_two_sided(a in square(3)) {
        if let Ok(inv) = a.inverse() {
            prop_assert_eq!(a.mul_mat(&inv).unwrap(), Matrix::identity(3));
            prop_assert_eq!(inv.mul_mat(&a).unwrap(), Matrix::identity(3));
        } else {
            prop_assert_eq!(a.determinant().unwrap(), Rational::ZERO);
        }
    }

    #[test]
    fn determinant_multiplicative(a in square(3), b in square(3)) {
        let ab = a.mul_mat(&b).unwrap();
        prop_assert_eq!(
            ab.determinant().unwrap(),
            a.determinant().unwrap() * b.determinant().unwrap()
        );
    }

    #[test]
    fn null_space_spans_the_kernel(a in square(3)) {
        let basis = a.null_space();
        prop_assert_eq!(basis.len(), 3 - a.rank());
        for v in &basis {
            prop_assert_eq!(a.mul_vec(v).unwrap(), vec![Rational::ZERO; 3]);
            prop_assert!(!v.iter().all(Rational::is_zero));
        }
    }

    #[test]
    fn rank_of_transpose_equal(a in square(3)) {
        prop_assert_eq!(a.rank(), a.transpose().rank());
    }
}
