//! Property tests for `tpn-session`: every memoized artifact must be
//! *semantically identical* to a fresh standalone computation through
//! the stage-by-stage API, on randomly timed ring nets — the session
//! is a cache, never a different algorithm. Plus the concurrency law:
//! N threads demanding the same vacant stage produce exactly one
//! computation, and every thread receives the same `Arc`.

use std::sync::Arc;

use proptest::prelude::*;
use tpn_core::{solve_rates, DecisionGraph, ExprTarget, Performance};
use tpn_net::{symbols, NetBuilder, TimedPetriNet};
use tpn_rational::Rational;
use tpn_reach::{build_trg, LiftedDomain, NumericDomain, TrgOptions};
use tpn_session::{Session, SessionOptions, Stage};

/// A timed ring: one token cycling through `times.len()` transitions
/// with random firing times — deterministic, live, and analyzable.
fn random_ring(times: &[(i128, i128)]) -> TimedPetriNet {
    let mut b = NetBuilder::new("ring");
    let places: Vec<_> = (0..times.len())
        .map(|i| b.place(&format!("s{i}"), u32::from(i == 0)))
        .collect();
    for (i, (n, d)) in times.iter().enumerate() {
        let next = (i + 1) % times.len();
        b.transition(&format!("t{i}"))
            .input(places[i])
            .output(places[next])
            .firing(Rational::new(*n, *d))
            .add();
    }
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn memoized_artifacts_equal_standalone_computation(
        times in proptest::collection::vec((1i128..500, 1i128..10), 2..7),
    ) {
        let net = random_ring(&times);
        let session = Session::new(net.clone(), SessionOptions::new());

        // Standalone chain, stage by stage.
        let domain = NumericDomain::new();
        let trg = build_trg(&net, &domain, &TrgOptions::default()).unwrap();
        let dg = DecisionGraph::from_trg(&trg, &domain).unwrap();
        let rates = solve_rates(&dg, 0).unwrap();
        let perf = Performance::new(&dg, rates.clone(), &domain).unwrap();

        // Session artifacts agree with it, stage by stage.
        let strg = session.trg().unwrap();
        prop_assert_eq!(strg.num_states(), trg.num_states());
        prop_assert_eq!(strg.num_edges(), trg.num_edges());
        let sdg = session.decision_graph().unwrap();
        prop_assert_eq!(sdg.num_nodes(), dg.num_nodes());
        prop_assert_eq!(sdg.edges().len(), dg.edges().len());
        let srates = session.rates().unwrap();
        for e in 0..dg.edges().len() {
            prop_assert_eq!(srates.rate(e), rates.rate(e));
        }
        let sperf = session.performance().unwrap();
        prop_assert_eq!(sperf.total_weight(), perf.total_weight());
        for t in net.transitions() {
            prop_assert_eq!(sperf.throughput(&sdg, t), perf.throughput(&dg, t));
        }

        // Each stage was built exactly once despite the many demands.
        for stage in [Stage::Trg, Stage::DecisionGraph, Stage::Rates, Stage::Performance] {
            prop_assert_eq!(session.stage_stats(stage).builds, 1);
        }
    }

    #[test]
    fn memoized_lift_equals_standalone_lift(
        times in proptest::collection::vec((1i128..200, 1i128..8), 2..5),
    ) {
        let net = random_ring(&times);
        let session = Session::new(net.clone(), SessionOptions::new());
        let swept = [symbols::firing("t0")];
        let t0 = net.transition_by_name("t0").unwrap();
        let target = ExprTarget::Throughput(t0);

        // Standalone lifted chain.
        let domain = LiftedDomain::new(&net, &swept).unwrap();
        let trg = build_trg(&net, &domain, &TrgOptions::default()).unwrap();
        let dg = DecisionGraph::from_trg(&trg, &domain).unwrap();
        let rates = solve_rates(&dg, 0).unwrap();
        let perf = Performance::new(&dg, rates, &domain).unwrap();
        let expr = perf.export_expr(&dg, &trg, &domain, target);

        // The session's compiled artifact exports the same closed form
        // and records the same validity region.
        let compiled = session.compiled(&swept, &[target], false).unwrap();
        prop_assert_eq!(&compiled.exprs[0], &expr);
        let lifted = session.lifted(&swept).unwrap();
        prop_assert_eq!(lifted.domain.region(), domain.region());
        prop_assert_eq!(lifted.trg.num_states(), trg.num_states());

        // One lift, one compile — the compile demanded the lift.
        prop_assert_eq!(session.stage_stats(Stage::Lifted).builds, 1);
        prop_assert_eq!(session.stage_stats(Stage::Compiled).builds, 1);
    }
}

#[test]
fn concurrent_demands_build_once_and_share_the_arc() {
    let net = random_ring(&[(2, 1), (3, 1), (7, 2)]);
    let session = Arc::new(Session::new(net, SessionOptions::new()));
    const THREADS: usize = 8;
    let artifacts: Vec<_> = std::thread::scope(|scope| {
        let tasks: Vec<_> = (0..THREADS)
            .map(|_| {
                let session = Arc::clone(&session);
                scope.spawn(move || session.performance().unwrap())
            })
            .collect();
        tasks.into_iter().map(|t| t.join().unwrap()).collect()
    });
    // Exactly one computation per stage of the chain…
    for stage in [
        Stage::Trg,
        Stage::DecisionGraph,
        Stage::Rates,
        Stage::Performance,
    ] {
        let snap = session.stage_stats(stage);
        assert_eq!(snap.builds, 1, "{stage:?}: {snap:?}");
    }
    // …with every demand accounted as a hit or a miss…
    let snap = session.stage_stats(Stage::Performance);
    assert_eq!(snap.hits + snap.misses, THREADS as u64, "{snap:?}");
    // …and every thread holding the same artifact.
    for a in &artifacts[1..] {
        assert!(Arc::ptr_eq(a, &artifacts[0]));
    }
}

#[test]
fn concurrent_lift_demands_build_once() {
    let net = random_ring(&[(5, 1), (11, 3)]);
    let session = Arc::new(Session::new(net, SessionOptions::new()));
    let swept = [symbols::firing("t0")];
    let artifacts: Vec<_> = std::thread::scope(|scope| {
        let tasks: Vec<_> = (0..6)
            .map(|_| {
                let session = Arc::clone(&session);
                scope.spawn(move || session.lifted(&swept).unwrap())
            })
            .collect();
        tasks.into_iter().map(|t| t.join().unwrap()).collect()
    });
    assert_eq!(session.stage_stats(Stage::Lifted).builds, 1);
    for a in &artifacts[1..] {
        assert!(Arc::ptr_eq(a, &artifacts[0]));
    }
}
