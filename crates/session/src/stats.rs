//! Per-stage artifact counters.
//!
//! Every [`Session`](crate::Session) accessor classifies its demand as
//! a **hit** (the artifact was already materialised), a **miss** (it
//! was not) or — for the thread that actually runs the computation — a
//! **build**. Under concurrent demand several threads may miss the same
//! vacant artifact, but exactly one of them builds it; the others block
//! and share the built `Arc`. `hits + misses` therefore counts demands,
//! while `builds` counts pipeline executions, and `misses - builds` is
//! the number of demands that coalesced onto a concurrent build (or
//! re-observed a memoized error).
//!
//! Counters are plain relaxed atomics: they feed observability
//! endpoints (`/stats`), not control flow. Alongside the counters,
//! every stage records its **build durations** into a lock-free
//! [`Histogram`] — the `tpn_stage_build_seconds{stage}` histograms of
//! `/metrics` — so the cost of each pipeline stage (not just its
//! frequency) is observable per service.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use tpn_obs::hist::{Histogram, HistogramSnapshot};

/// One pipeline stage of a session, in derivation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// The numeric timed reachability graph.
    Trg,
    /// The numeric decision graph collapsed from the TRG.
    DecisionGraph,
    /// The solved traversal rates.
    Rates,
    /// The assembled performance measures.
    Performance,
    /// A lifted (symbolic-in-the-swept-attributes) derivation chain,
    /// one artifact per distinct swept-symbol list.
    Lifted,
    /// A compiled expression program, one artifact per distinct
    /// (swept, targets, derivatives) request.
    Compiled,
    /// An incremental re-timing ([`Session::retimed`](crate::Session::retimed)):
    /// a hit means the full lift it substitutes into was already
    /// materialised, a miss that the lift had to be built first, and a
    /// build counts the substitution itself.
    Retimed,
}

/// Every stage, in derivation order (the order `/stats` renders).
pub const STAGES: [Stage; 7] = [
    Stage::Trg,
    Stage::DecisionGraph,
    Stage::Rates,
    Stage::Performance,
    Stage::Lifted,
    Stage::Compiled,
    Stage::Retimed,
];

impl Stage {
    /// The stable identifier used in `/stats` documents.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Trg => "trg",
            Stage::DecisionGraph => "decision_graph",
            Stage::Rates => "rates",
            Stage::Performance => "performance",
            Stage::Lifted => "lifted",
            Stage::Compiled => "compiled",
            Stage::Retimed => "retimed",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::Trg => 0,
            Stage::DecisionGraph => 1,
            Stage::Rates => 2,
            Stage::Performance => 3,
            Stage::Lifted => 4,
            Stage::Compiled => 5,
            Stage::Retimed => 6,
        }
    }
}

/// Shared per-stage hit/miss/build counters. One instance can back a
/// single [`Session`](crate::Session) or be shared by every session a
/// server creates, aggregating artifact effectiveness service-wide.
#[derive(Debug, Default)]
pub struct StageCounters {
    hits: [AtomicU64; 7],
    misses: [AtomicU64; 7],
    builds: [AtomicU64; 7],
    build_time: [Histogram; 7],
}

impl StageCounters {
    /// Fresh all-zero counters.
    pub fn new() -> StageCounters {
        StageCounters::default()
    }

    pub(crate) fn hit(&self, stage: Stage) {
        self.hits[stage.index()].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn miss(&self, stage: Stage) {
        self.misses[stage.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Count one build of `stage` and record how long it ran.
    pub(crate) fn build_timed(&self, stage: Stage, elapsed: Duration) {
        let i = stage.index();
        self.builds[i].fetch_add(1, Ordering::Relaxed);
        self.build_time[i].record(elapsed);
    }

    /// A consistent-enough snapshot of one stage's counters.
    pub fn snapshot(&self, stage: Stage) -> StageSnapshot {
        let i = stage.index();
        StageSnapshot {
            hits: self.hits[i].load(Ordering::Relaxed),
            misses: self.misses[i].load(Ordering::Relaxed),
            builds: self.builds[i].load(Ordering::Relaxed),
        }
    }

    /// A snapshot of one stage's build-duration histogram (each sample
    /// is one pipeline execution of that stage; hits record nothing).
    pub fn build_times(&self, stage: Stage) -> HistogramSnapshot {
        self.build_time[stage.index()].snapshot()
    }
}

/// One stage's counter values at a point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageSnapshot {
    /// Demands answered by an already-materialised artifact.
    pub hits: u64,
    /// Demands that found the artifact vacant.
    pub misses: u64,
    /// Actual computations run (at most one per artifact).
    pub builds: u64,
}
